#!/usr/bin/env python3
"""Compare google-benchmark counter JSON against a committed baseline.

CI's bench-smoke job runs bench_grad_micro once and feeds the JSON here
together with the baseline checked in under bench/baselines/. The
comparison gates on the batched-dispatch sweep's two headline counters:

  batched_speedup    serial wall-clock / batched wall-clock for a full
                     parameter-shift gradient (same machine, same run,
                     so the ratio transfers across hardware)
  states_per_second  shifted-binding simulations per second of batched
                     execution (absolute throughput; noisier across
                     machines, which is why the peak-of-sweep value is
                     compared rather than per-batch-width rows)

For each tracked counter the script takes the PEAK value across every
benchmark that reports it — the sweep's best batch width — and compares
peaks. Only regressions gate: a current peak more than --warn-pct below
the baseline prints a warning, more than --fail-pct below fails the run
(exit 1). Improvements never fail; a >warn-pct improvement prints a
reminder to refresh the baseline so the gate keeps teeth.

Usage:
  bench_compare.py CURRENT.json BASELINE.json
      [--counters batched_speedup,states_per_second]
      [--warn-pct 10] [--fail-pct 25]

Exit codes: 0 ok (possibly with warnings), 1 regression beyond
--fail-pct or malformed input.
"""

from __future__ import annotations

import argparse
import json
import sys


def load_benchmarks(path: str) -> list[dict]:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        raise SystemExit(f"bench_compare: cannot read {path}: {err}")
    benchmarks = data.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        raise SystemExit(f"bench_compare: {path} has no 'benchmarks' array")
    return benchmarks


def peak(benchmarks: list[dict], counter: str) -> tuple[float, str] | None:
    """Best (value, benchmark-name) for a counter, or None if unreported."""
    best: tuple[float, str] | None = None
    for bench in benchmarks:
        value = bench.get(counter)
        if isinstance(value, (int, float)):
            if best is None or value > best[0]:
                best = (float(value), str(bench.get("name", "?")))
    return best


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="fresh --benchmark_out JSON")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument(
        "--counters",
        default="batched_speedup,states_per_second",
        help="comma-separated counter names to gate on",
    )
    parser.add_argument("--warn-pct", type=float, default=10.0)
    parser.add_argument("--fail-pct", type=float, default=25.0)
    args = parser.parse_args()

    current = load_benchmarks(args.current)
    baseline = load_benchmarks(args.baseline)
    counters = [c.strip() for c in args.counters.split(",") if c.strip()]
    if not counters:
        raise SystemExit("bench_compare: no counters to compare")

    failed = False
    warned = False
    print(f"{'counter':<20} {'baseline':>12} {'current':>12} {'change':>9}  verdict")
    for counter in counters:
        base = peak(baseline, counter)
        cur = peak(current, counter)
        if base is None:
            raise SystemExit(
                f"bench_compare: baseline lacks counter '{counter}' — "
                "regenerate it from bench_grad_micro --benchmark_out"
            )
        if cur is None:
            print(f"{counter:<20} {base[0]:>12.4g} {'missing':>12} {'':>9}  FAIL")
            failed = True
            continue
        change_pct = (cur[0] - base[0]) / base[0] * 100.0 if base[0] else 0.0
        if change_pct <= -args.fail_pct:
            verdict = f"FAIL (regressed beyond {args.fail_pct:g}%)"
            failed = True
        elif change_pct <= -args.warn_pct:
            verdict = f"WARN (regressed beyond {args.warn_pct:g}%)"
            warned = True
        elif change_pct >= args.warn_pct:
            verdict = "ok (improved — consider refreshing the baseline)"
        else:
            verdict = "ok"
        print(
            f"{counter:<20} {base[0]:>12.4g} {cur[0]:>12.4g} "
            f"{change_pct:>+8.1f}%  {verdict}"
        )

    if failed:
        print(
            "bench_compare: counter regression beyond the fail threshold; "
            "if intentional, refresh the baseline JSON in the same change",
            file=sys.stderr,
        )
        return 1
    if warned:
        print("bench_compare: regression warnings above — not fatal", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
