#!/usr/bin/env python3
"""Plot qbarren experiment JSON exports (Fig 5a/5b/5c/Fig 1 equivalents).

Usage:
    # generate the data
    build/examples/variance_analysis --qubits 2,4,6,8,10 --circuits 200 \
        --layers 50 --json variance.json
    build/examples/train_identity --optimizer adam --json training.json
    build/examples/qbarren_cli landscape --json landscape.json

    # plot it
    python3 scripts/plot_results.py variance.json training.json landscape.json

Each input file is dispatched on its "schema" field and saved as
<input>.png next to the input. Requires matplotlib.
"""

import json
import sys


def plot_variance(data, out_path, plt):
    fig, ax = plt.subplots(figsize=(6, 4))
    for series in data["series"]:
        qubits = [p["qubits"] for p in series["points"]]
        variances = [p["variance"] for p in series["points"]]
        ax.semilogy(qubits, variances, marker="o",
                    label=series["initializer"])
    ax.set_xlabel("qubits")
    ax.set_ylabel("Var[dC/dθ_last]")
    ax.set_title("Gradient variance decay (Fig 5a protocol)")
    ax.legend(fontsize=8)
    ax.grid(True, which="both", alpha=0.3)
    fig.tight_layout()
    fig.savefig(out_path, dpi=150)
    print(f"wrote {out_path}")


def plot_training(data, out_path, plt):
    fig, ax = plt.subplots(figsize=(6, 4))
    for series in data["series"]:
        ax.plot(series["loss_history"], label=series["initializer"])
    opts = data["options"]
    ax.set_xlabel("iteration")
    ax.set_ylabel("loss (1 - p|0...0>)")
    ax.set_title(f"Identity training, {opts['optimizer']}, "
                 f"{opts['qubits']} qubits (Fig 5b/5c protocol)")
    ax.legend(fontsize=8)
    ax.grid(True, alpha=0.3)
    fig.tight_layout()
    fig.savefig(out_path, dpi=150)
    print(f"wrote {out_path}")


def plot_landscape(data, out_path, plt):
    import numpy as np
    n = data["options"]["grid_points"]
    grid = np.array(data["values_row_major"]).reshape(n, n)
    axis = data["axis"]
    fig, ax = plt.subplots(figsize=(5, 4))
    im = ax.imshow(grid, origin="lower",
                   extent=[axis[0], axis[-1], axis[0], axis[-1]],
                   aspect="auto", cmap="viridis")
    fig.colorbar(im, ax=ax, label="cost")
    ax.set_xlabel("θ_b")
    ax.set_ylabel("θ_a")
    ax.set_title(f"Cost landscape, {data['options']['qubits']} qubits "
                 "(Fig 1 protocol)")
    fig.tight_layout()
    fig.savefig(out_path, dpi=150)
    print(f"wrote {out_path}")


DISPATCH = {
    "qbarren.variance.v1": plot_variance,
    "qbarren.training.v1": plot_training,
    "qbarren.landscape.v1": plot_landscape,
}


def main(paths):
    if not paths:
        print(__doc__)
        return 1
    import matplotlib
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    for path in paths:
        with open(path) as f:
            data = json.load(f)
        schema = data.get("schema")
        plotter = DISPATCH.get(schema)
        if plotter is None:
            print(f"skipping {path}: unknown schema {schema!r}")
            continue
        plotter(data, path + ".png", plt)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
