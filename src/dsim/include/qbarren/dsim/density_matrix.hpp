// Exact density-matrix simulator.
//
// The paper frames its study in the NISQ setting (§I) where circuits run
// under noise; mixed states need a density matrix rho. This module is the
// exact (no-trajectory) companion to qsim::StateVector: unitaries act as
// rho -> U rho U^dag, noise as Kraus channels rho -> sum_k K rho K^dag.
// Memory is O(4^n) — intended for n <= 10 (16 MiB of amplitudes).
#pragma once

#include <vector>

#include "qbarren/obs/observable.hpp"
#include "qbarren/qsim/statevector.hpp"

namespace qbarren {

/// A CPTP map given by its Kraus operators; all operators share one shape
/// (2x2 for single-qubit, 4x4 for two-qubit channels) and satisfy
/// sum_k K^dag K = I (validated at construction).
class KrausChannel {
 public:
  explicit KrausChannel(std::vector<ComplexMatrix> operators,
                        std::string name = "channel");

  [[nodiscard]] const std::vector<ComplexMatrix>& operators() const noexcept {
    return operators_;
  }
  /// 1 for 2x2 channels, 2 for 4x4 channels.
  [[nodiscard]] std::size_t num_qubits() const noexcept { return qubits_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  std::vector<ComplexMatrix> operators_;
  std::size_t qubits_ = 1;
  std::string name_;
};

class DensityMatrix {
 public:
  /// |0...0><0...0| on num_qubits qubits (1 <= n <= 10).
  explicit DensityMatrix(std::size_t num_qubits);

  /// rho = |psi><psi|.
  [[nodiscard]] static DensityMatrix pure(const StateVector& state);

  /// rho = I / 2^n.
  [[nodiscard]] static DensityMatrix maximally_mixed(std::size_t num_qubits);

  [[nodiscard]] std::size_t num_qubits() const noexcept { return num_qubits_; }
  [[nodiscard]] std::size_t dimension() const noexcept { return dim_; }

  [[nodiscard]] Complex element(std::size_t row, std::size_t col) const;

  // --- evolution -----------------------------------------------------------

  /// rho <- U rho U^dag for a 2x2 unitary (or any 2x2 matrix) on `target`.
  void apply_unitary_1q(const ComplexMatrix& u, std::size_t target);

  /// rho <- U rho U^dag for a 4x4 matrix; `q_low` maps to matrix bit 0.
  void apply_unitary_2q(const ComplexMatrix& u, std::size_t q_low,
                        std::size_t q_high);

  /// Specialized CZ conjugation (diagonal, symmetric in the qubits).
  void apply_cz(std::size_t a, std::size_t b);

  /// rho <- sum_k K rho K^dag for a single-qubit channel.
  void apply_channel_1q(const KrausChannel& channel, std::size_t target);

  /// Two-qubit channel; `q_low` maps to Kraus-matrix bit 0.
  void apply_channel_2q(const KrausChannel& channel, std::size_t q_low,
                        std::size_t q_high);

  // --- readout ---------------------------------------------------------------

  /// tr(rho) — 1 for any physical state (channels are trace-preserving).
  [[nodiscard]] double trace() const;

  /// tr(rho^2) in [1/2^n, 1]; 1 iff pure.
  [[nodiscard]] double purity() const;

  /// Diagonal element rho_ii = probability of basis state i.
  [[nodiscard]] double probability(std::size_t basis_index) const;

  /// tr(H rho) for any Observable (uses Observable::apply column-wise).
  [[nodiscard]] double expectation(const Observable& observable) const;

  /// Max |rho - rho^dag| element — Hermiticity diagnostic for tests.
  [[nodiscard]] double hermiticity_error() const;

 private:
  void check_qubit(std::size_t q, const char* who) const;
  /// v <- M v over the row index (for each fixed column).
  void transform_rows_1q(const ComplexMatrix& m, std::size_t target);
  /// v <- M v over the column index (for each fixed row).
  void transform_cols_1q(const ComplexMatrix& m, std::size_t target);
  void transform_rows_2q(const ComplexMatrix& m, std::size_t q_low,
                         std::size_t q_high);
  void transform_cols_2q(const ComplexMatrix& m, std::size_t q_low,
                         std::size_t q_high);

  std::size_t num_qubits_ = 0;
  std::size_t dim_ = 0;
  std::vector<Complex> data_;  ///< row-major dim x dim
};

}  // namespace qbarren
