// Noisy circuit execution and noisy cost functions.
//
// A NoiseModel attaches Kraus channels after gates; simulate_noisy runs a
// qbarren::Circuit on a DensityMatrix under that model. Because the
// channels carry no trainable parameters, the parameter-shift rule remains
// exact for noisy expectation values — `noisy_parameter_shift_gradient`
// exploits that to study barren plateaus under noise (cf. noise-induced
// barren plateaus, Wang et al. 2021).
#pragma once

#include <optional>
#include <span>

#include "qbarren/circuit/circuit.hpp"
#include "qbarren/dsim/channels.hpp"

namespace qbarren {

struct NoiseModel {
  /// Applied to the target qubit after every single-qubit gate, and to
  /// both qubits after a two-qubit gate when `two_qubit` is unset.
  std::optional<KrausChannel> single_qubit;
  /// Applied to the qubit pair after every two-qubit gate.
  std::optional<KrausChannel> two_qubit;

  [[nodiscard]] bool empty() const noexcept {
    return !single_qubit.has_value() && !two_qubit.has_value();
  }
};

/// Uniform depolarizing model: depolarizing(p1) after one-qubit gates,
/// depolarizing_2q(p2) after two-qubit gates.
[[nodiscard]] NoiseModel make_depolarizing_model(double p1, double p2);

/// Runs `circuit` from |0...0><0...0| under `noise`.
[[nodiscard]] DensityMatrix simulate_noisy(const Circuit& circuit,
                                           std::span<const double> params,
                                           const NoiseModel& noise);

/// tr(H rho(theta)) for the noisy execution.
[[nodiscard]] double noisy_expectation(const Circuit& circuit,
                                       std::span<const double> params,
                                       const Observable& observable,
                                       const NoiseModel& noise);

/// Exact dC/dtheta_index of the noisy expectation via parameter shift.
[[nodiscard]] double noisy_parameter_shift_partial(
    const Circuit& circuit, std::span<const double> params,
    const Observable& observable, const NoiseModel& noise,
    std::size_t index);

}  // namespace qbarren
