// Standard noise-channel factories.
//
// All channels are CPTP maps in Kraus form, validated at construction.
// Parameters follow the usual conventions:
//   depolarizing(p):      rho -> (1-p) rho + (p/3)(X rho X + Y rho Y + Z rho Z)
//   bit_flip(p):          rho -> (1-p) rho + p X rho X
//   phase_flip(p):        rho -> (1-p) rho + p Z rho Z
//   amplitude_damping(g): T1 decay with damping probability g
//   phase_damping(l):     pure dephasing with probability l
//   depolarizing_2q(p):   rho -> (1-p) rho + (p/15) sum_{P != II} P rho P
#pragma once

#include "qbarren/dsim/density_matrix.hpp"

namespace qbarren::channels {

[[nodiscard]] KrausChannel depolarizing(double p);
[[nodiscard]] KrausChannel bit_flip(double p);
[[nodiscard]] KrausChannel phase_flip(double p);
[[nodiscard]] KrausChannel amplitude_damping(double gamma);
[[nodiscard]] KrausChannel phase_damping(double lambda);
[[nodiscard]] KrausChannel depolarizing_2q(double p);

}  // namespace qbarren::channels
