#include "qbarren/dsim/channels.hpp"

#include <cmath>

#include "qbarren/qsim/gates.hpp"

namespace qbarren::channels {

namespace {

void check_probability(double p, const char* who) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw InvalidArgument(std::string(who) +
                          ": probability must be in [0, 1]");
  }
}

ComplexMatrix scaled(double factor, const ComplexMatrix& m) {
  return Complex{factor, 0.0} * m;
}

}  // namespace

KrausChannel depolarizing(double p) {
  check_probability(p, "depolarizing");
  std::vector<ComplexMatrix> ops;
  ops.push_back(scaled(std::sqrt(1.0 - p), gates::identity2()));
  const double q = std::sqrt(p / 3.0);
  ops.push_back(scaled(q, gates::pauli_x()));
  ops.push_back(scaled(q, gates::pauli_y()));
  ops.push_back(scaled(q, gates::pauli_z()));
  return KrausChannel(std::move(ops), "depolarizing(" + std::to_string(p) +
                                          ")");
}

KrausChannel bit_flip(double p) {
  check_probability(p, "bit_flip");
  std::vector<ComplexMatrix> ops;
  ops.push_back(scaled(std::sqrt(1.0 - p), gates::identity2()));
  ops.push_back(scaled(std::sqrt(p), gates::pauli_x()));
  return KrausChannel(std::move(ops), "bit-flip(" + std::to_string(p) + ")");
}

KrausChannel phase_flip(double p) {
  check_probability(p, "phase_flip");
  std::vector<ComplexMatrix> ops;
  ops.push_back(scaled(std::sqrt(1.0 - p), gates::identity2()));
  ops.push_back(scaled(std::sqrt(p), gates::pauli_z()));
  return KrausChannel(std::move(ops), "phase-flip(" + std::to_string(p) +
                                          ")");
}

KrausChannel amplitude_damping(double gamma) {
  check_probability(gamma, "amplitude_damping");
  ComplexMatrix k0(2, 2);
  k0(0, 0) = 1.0;
  k0(1, 1) = std::sqrt(1.0 - gamma);
  ComplexMatrix k1(2, 2);
  k1(0, 1) = std::sqrt(gamma);
  return KrausChannel({k0, k1},
                      "amplitude-damping(" + std::to_string(gamma) + ")");
}

KrausChannel phase_damping(double lambda) {
  check_probability(lambda, "phase_damping");
  ComplexMatrix k0(2, 2);
  k0(0, 0) = 1.0;
  k0(1, 1) = std::sqrt(1.0 - lambda);
  ComplexMatrix k1(2, 2);
  k1(1, 1) = std::sqrt(lambda);
  return KrausChannel({k0, k1},
                      "phase-damping(" + std::to_string(lambda) + ")");
}

KrausChannel depolarizing_2q(double p) {
  check_probability(p, "depolarizing_2q");
  const ComplexMatrix paulis[4] = {gates::identity2(), gates::pauli_x(),
                                   gates::pauli_y(), gates::pauli_z()};
  std::vector<ComplexMatrix> ops;
  for (std::size_t a = 0; a < 4; ++a) {
    for (std::size_t b = 0; b < 4; ++b) {
      const double weight =
          (a == 0 && b == 0) ? std::sqrt(1.0 - p) : std::sqrt(p / 15.0);
      if (weight == 0.0) continue;
      // Matrix bit 0 = first tensor factor => kron(high, low).
      ops.push_back(scaled(weight, kron(paulis[b], paulis[a])));
    }
  }
  return KrausChannel(std::move(ops),
                      "depolarizing-2q(" + std::to_string(p) + ")");
}

}  // namespace qbarren::channels
