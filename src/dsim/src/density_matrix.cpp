#include "qbarren/dsim/density_matrix.hpp"

#include <cmath>

#include "qbarren/linalg/checks.hpp"

namespace qbarren {

namespace {
constexpr std::size_t kMaxQubits = 10;
}  // namespace

KrausChannel::KrausChannel(std::vector<ComplexMatrix> operators,
                           std::string name)
    : operators_(std::move(operators)), name_(std::move(name)) {
  QBARREN_REQUIRE(!operators_.empty(), "KrausChannel: no operators");
  const std::size_t dim = operators_.front().rows();
  QBARREN_REQUIRE(dim == 2 || dim == 4,
                  "KrausChannel: operators must be 2x2 or 4x4");
  qubits_ = (dim == 2) ? 1 : 2;
  ComplexMatrix completeness(dim, dim);
  for (const ComplexMatrix& k : operators_) {
    QBARREN_REQUIRE(k.rows() == dim && k.cols() == dim,
                    "KrausChannel: inconsistent operator shapes");
    completeness = completeness + adjoint(k) * k;
  }
  QBARREN_REQUIRE(
      max_abs_diff(completeness, ComplexMatrix::identity(dim)) < 1e-10,
      "KrausChannel: operators do not satisfy sum K^dag K = I");
}

DensityMatrix::DensityMatrix(std::size_t num_qubits)
    : num_qubits_(num_qubits) {
  QBARREN_REQUIRE(num_qubits >= 1 && num_qubits <= kMaxQubits,
                  "DensityMatrix: qubit count out of supported range");
  dim_ = std::size_t{1} << num_qubits;
  data_.assign(dim_ * dim_, Complex{0.0, 0.0});
  data_[0] = Complex{1.0, 0.0};
}

DensityMatrix DensityMatrix::pure(const StateVector& state) {
  DensityMatrix rho(state.num_qubits());
  const auto& amps = state.amplitudes();
  for (std::size_t r = 0; r < rho.dim_; ++r) {
    for (std::size_t c = 0; c < rho.dim_; ++c) {
      rho.data_[r * rho.dim_ + c] = amps[r] * std::conj(amps[c]);
    }
  }
  return rho;
}

DensityMatrix DensityMatrix::maximally_mixed(std::size_t num_qubits) {
  DensityMatrix rho(num_qubits);
  std::fill(rho.data_.begin(), rho.data_.end(), Complex{0.0, 0.0});
  const double p = 1.0 / static_cast<double>(rho.dim_);
  for (std::size_t i = 0; i < rho.dim_; ++i) {
    rho.data_[i * rho.dim_ + i] = Complex{p, 0.0};
  }
  return rho;
}

Complex DensityMatrix::element(std::size_t row, std::size_t col) const {
  QBARREN_REQUIRE(row < dim_ && col < dim_,
                  "DensityMatrix::element: index out of range");
  return data_[row * dim_ + col];
}

void DensityMatrix::check_qubit(std::size_t q, const char* who) const {
  if (q >= num_qubits_) {
    throw InvalidArgument(std::string(who) + ": qubit index out of range");
  }
}

void DensityMatrix::transform_rows_1q(const ComplexMatrix& m,
                                      std::size_t target) {
  const Complex m00 = m.at_unchecked(0, 0);
  const Complex m01 = m.at_unchecked(0, 1);
  const Complex m10 = m.at_unchecked(1, 0);
  const Complex m11 = m.at_unchecked(1, 1);
  const std::size_t bit = std::size_t{1} << target;
  const std::size_t low_mask = bit - 1;
  for (std::size_t i = 0; i < dim_ / 2; ++i) {
    const std::size_t r0 = ((i & ~low_mask) << 1) | (i & low_mask);
    const std::size_t r1 = r0 | bit;
    Complex* row0 = data_.data() + r0 * dim_;
    Complex* row1 = data_.data() + r1 * dim_;
    for (std::size_t c = 0; c < dim_; ++c) {
      const Complex a = row0[c];
      const Complex b = row1[c];
      row0[c] = m00 * a + m01 * b;
      row1[c] = m10 * a + m11 * b;
    }
  }
}

void DensityMatrix::transform_cols_1q(const ComplexMatrix& m,
                                      std::size_t target) {
  const Complex m00 = m.at_unchecked(0, 0);
  const Complex m01 = m.at_unchecked(0, 1);
  const Complex m10 = m.at_unchecked(1, 0);
  const Complex m11 = m.at_unchecked(1, 1);
  const std::size_t bit = std::size_t{1} << target;
  const std::size_t low_mask = bit - 1;
  for (std::size_t r = 0; r < dim_; ++r) {
    Complex* row = data_.data() + r * dim_;
    for (std::size_t i = 0; i < dim_ / 2; ++i) {
      const std::size_t c0 = ((i & ~low_mask) << 1) | (i & low_mask);
      const std::size_t c1 = c0 | bit;
      const Complex a = row[c0];
      const Complex b = row[c1];
      row[c0] = m00 * a + m01 * b;
      row[c1] = m10 * a + m11 * b;
    }
  }
}

namespace {

ComplexMatrix conjugate_matrix(const ComplexMatrix& m) {
  ComplexMatrix out = m;
  for (auto& v : out.data()) {
    v = std::conj(v);
  }
  return out;
}

}  // namespace

void DensityMatrix::apply_unitary_1q(const ComplexMatrix& u,
                                     std::size_t target) {
  check_qubit(target, "apply_unitary_1q");
  QBARREN_REQUIRE(u.rows() == 2 && u.cols() == 2,
                  "apply_unitary_1q: matrix must be 2x2");
  transform_rows_1q(u, target);
  // rho U^dag: apply conj(U) over the column index.
  transform_cols_1q(conjugate_matrix(u), target);
}

void DensityMatrix::transform_rows_2q(const ComplexMatrix& m,
                                      std::size_t q_low, std::size_t q_high) {
  const std::size_t bl = std::size_t{1} << q_low;
  const std::size_t bh = std::size_t{1} << q_high;
  Complex k[4][4];
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      k[r][c] = m.at_unchecked(r, c);
    }
  }
  for (std::size_t base = 0; base < dim_; ++base) {
    if ((base & bl) != 0 || (base & bh) != 0) continue;
    const std::size_t rows[4] = {base, base | bl, base | bh, base | bl | bh};
    for (std::size_t c = 0; c < dim_; ++c) {
      Complex in[4];
      for (std::size_t x = 0; x < 4; ++x) {
        in[x] = data_[rows[x] * dim_ + c];
      }
      for (std::size_t x = 0; x < 4; ++x) {
        Complex acc{0.0, 0.0};
        for (std::size_t y = 0; y < 4; ++y) {
          acc += k[x][y] * in[y];
        }
        data_[rows[x] * dim_ + c] = acc;
      }
    }
  }
}

void DensityMatrix::transform_cols_2q(const ComplexMatrix& m,
                                      std::size_t q_low, std::size_t q_high) {
  const std::size_t bl = std::size_t{1} << q_low;
  const std::size_t bh = std::size_t{1} << q_high;
  Complex k[4][4];
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      k[r][c] = m.at_unchecked(r, c);
    }
  }
  for (std::size_t r = 0; r < dim_; ++r) {
    Complex* row = data_.data() + r * dim_;
    for (std::size_t base = 0; base < dim_; ++base) {
      if ((base & bl) != 0 || (base & bh) != 0) continue;
      const std::size_t cols[4] = {base, base | bl, base | bh,
                                   base | bl | bh};
      Complex in[4];
      for (std::size_t x = 0; x < 4; ++x) {
        in[x] = row[cols[x]];
      }
      for (std::size_t x = 0; x < 4; ++x) {
        Complex acc{0.0, 0.0};
        for (std::size_t y = 0; y < 4; ++y) {
          acc += k[x][y] * in[y];
        }
        row[cols[x]] = acc;
      }
    }
  }
}

void DensityMatrix::apply_unitary_2q(const ComplexMatrix& u,
                                     std::size_t q_low, std::size_t q_high) {
  check_qubit(q_low, "apply_unitary_2q");
  check_qubit(q_high, "apply_unitary_2q");
  QBARREN_REQUIRE(q_low != q_high, "apply_unitary_2q: qubits must differ");
  QBARREN_REQUIRE(u.rows() == 4 && u.cols() == 4,
                  "apply_unitary_2q: matrix must be 4x4");
  transform_rows_2q(u, q_low, q_high);
  transform_cols_2q(conjugate_matrix(u), q_low, q_high);
}

void DensityMatrix::apply_cz(std::size_t a, std::size_t b) {
  check_qubit(a, "apply_cz");
  check_qubit(b, "apply_cz");
  QBARREN_REQUIRE(a != b, "apply_cz: qubits must differ");
  const std::size_t mask = (std::size_t{1} << a) | (std::size_t{1} << b);
  // CZ rho CZ: element (r, c) flips sign when exactly one of r, c has both
  // qubit bits set.
  for (std::size_t r = 0; r < dim_; ++r) {
    const bool row_flag = (r & mask) == mask;
    Complex* row = data_.data() + r * dim_;
    for (std::size_t c = 0; c < dim_; ++c) {
      if (row_flag != ((c & mask) == mask)) {
        row[c] = -row[c];
      }
    }
  }
}

void DensityMatrix::apply_channel_1q(const KrausChannel& channel,
                                     std::size_t target) {
  check_qubit(target, "apply_channel_1q");
  QBARREN_REQUIRE(channel.num_qubits() == 1,
                  "apply_channel_1q: channel is not single-qubit");
  std::vector<Complex> acc(data_.size(), Complex{0.0, 0.0});
  const std::vector<Complex> original = data_;
  for (const ComplexMatrix& k : channel.operators()) {
    data_ = original;
    transform_rows_1q(k, target);
    transform_cols_1q(conjugate_matrix(k), target);
    for (std::size_t i = 0; i < acc.size(); ++i) {
      acc[i] += data_[i];
    }
  }
  data_ = std::move(acc);
}

void DensityMatrix::apply_channel_2q(const KrausChannel& channel,
                                     std::size_t q_low, std::size_t q_high) {
  check_qubit(q_low, "apply_channel_2q");
  check_qubit(q_high, "apply_channel_2q");
  QBARREN_REQUIRE(q_low != q_high, "apply_channel_2q: qubits must differ");
  QBARREN_REQUIRE(channel.num_qubits() == 2,
                  "apply_channel_2q: channel is not two-qubit");
  std::vector<Complex> acc(data_.size(), Complex{0.0, 0.0});
  const std::vector<Complex> original = data_;
  for (const ComplexMatrix& k : channel.operators()) {
    data_ = original;
    transform_rows_2q(k, q_low, q_high);
    transform_cols_2q(conjugate_matrix(k), q_low, q_high);
    for (std::size_t i = 0; i < acc.size(); ++i) {
      acc[i] += data_[i];
    }
  }
  data_ = std::move(acc);
}

double DensityMatrix::trace() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < dim_; ++i) {
    acc += data_[i * dim_ + i].real();
  }
  return acc;
}

double DensityMatrix::purity() const {
  // tr(rho^2) = sum_{r,c} rho_rc * rho_cr = sum |rho_rc|^2 for Hermitian rho.
  double acc = 0.0;
  for (const Complex& v : data_) {
    acc += std::norm(v);
  }
  return acc;
}

double DensityMatrix::probability(std::size_t basis_index) const {
  QBARREN_REQUIRE(basis_index < dim_,
                  "DensityMatrix::probability: index out of range");
  return data_[basis_index * dim_ + basis_index].real();
}

double DensityMatrix::expectation(const Observable& observable) const {
  QBARREN_REQUIRE(observable.num_qubits() == num_qubits_,
                  "DensityMatrix::expectation: width mismatch");
  // tr(H rho) = sum_j (H * rho e_j)_j.
  double acc = 0.0;
  std::vector<Complex> column(dim_);
  for (std::size_t j = 0; j < dim_; ++j) {
    for (std::size_t r = 0; r < dim_; ++r) {
      column[r] = data_[r * dim_ + j];
    }
    const StateVector col_state(num_qubits_, column);
    const StateVector h_col = observable.apply(col_state);
    acc += h_col.amplitude(j).real();
  }
  return acc;
}

double DensityMatrix::hermiticity_error() const {
  double worst = 0.0;
  for (std::size_t r = 0; r < dim_; ++r) {
    for (std::size_t c = 0; c <= r; ++c) {
      worst = std::max(worst, std::abs(data_[r * dim_ + c] -
                                       std::conj(data_[c * dim_ + r])));
    }
  }
  return worst;
}

}  // namespace qbarren
