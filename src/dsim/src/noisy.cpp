#include "qbarren/dsim/noisy.hpp"

#include <cmath>

#include "qbarren/qsim/gates.hpp"

namespace qbarren {

NoiseModel make_depolarizing_model(double p1, double p2) {
  NoiseModel model;
  model.single_qubit = channels::depolarizing(p1);
  model.two_qubit = channels::depolarizing_2q(p2);
  return model;
}

namespace {

ComplexMatrix op_unitary(const Operation& op,
                         std::span<const double> params) {
  switch (op.kind) {
    case OpKind::kRotation:
      return gates::rotation(op.axis, params[op.param_index]);
    case OpKind::kFixedRotation:
      return gates::rotation(op.axis, op.fixed_angle);
    case OpKind::kControlledRotation: {
      const ComplexMatrix r =
          gates::rotation(op.axis, params[op.param_index]);
      ComplexMatrix full = ComplexMatrix::identity(4);
      full(1, 1) = r.at_unchecked(0, 0);
      full(1, 3) = r.at_unchecked(0, 1);
      full(3, 1) = r.at_unchecked(1, 0);
      full(3, 3) = r.at_unchecked(1, 1);
      return full;
    }
    case OpKind::kHadamard:
      return gates::hadamard();
    case OpKind::kPauliX:
      return gates::pauli_x();
    case OpKind::kPauliY:
      return gates::pauli_y();
    case OpKind::kPauliZ:
      return gates::pauli_z();
    case OpKind::kSGate:
      return gates::s_gate();
    case OpKind::kTGate:
      return gates::t_gate();
    case OpKind::kCz:
      return gates::cz();
    case OpKind::kCnot:
      return gates::cnot();
    case OpKind::kSwap:
      return gates::swap();
  }
  throw InvalidArgument("op_unitary: unknown op kind");
}

}  // namespace

DensityMatrix simulate_noisy(const Circuit& circuit,
                             std::span<const double> params,
                             const NoiseModel& noise) {
  QBARREN_REQUIRE(params.size() == circuit.num_parameters(),
                  "simulate_noisy: parameter count mismatch");
  DensityMatrix rho(circuit.num_qubits());
  for (const Operation& op : circuit.operations()) {
    if (is_two_qubit(op.kind)) {
      if (op.kind == OpKind::kCz) {
        rho.apply_cz(op.qubit0, op.qubit1);
      } else {
        // Matrix convention: op.qubit0 maps to matrix bit 0 (e.g. CNOT
        // control), matching Circuit::unitary's embedding.
        rho.apply_unitary_2q(op_unitary(op, params), op.qubit0, op.qubit1);
      }
      if (noise.two_qubit.has_value()) {
        rho.apply_channel_2q(*noise.two_qubit, op.qubit0, op.qubit1);
      } else if (noise.single_qubit.has_value()) {
        rho.apply_channel_1q(*noise.single_qubit, op.qubit0);
        rho.apply_channel_1q(*noise.single_qubit, op.qubit1);
      }
    } else {
      rho.apply_unitary_1q(op_unitary(op, params), op.qubit0);
      if (noise.single_qubit.has_value()) {
        rho.apply_channel_1q(*noise.single_qubit, op.qubit0);
      }
    }
  }
  return rho;
}

double noisy_expectation(const Circuit& circuit,
                         std::span<const double> params,
                         const Observable& observable,
                         const NoiseModel& noise) {
  QBARREN_REQUIRE(observable.num_qubits() == circuit.num_qubits(),
                  "noisy_expectation: width mismatch");
  return simulate_noisy(circuit, params, noise).expectation(observable);
}

double noisy_parameter_shift_partial(const Circuit& circuit,
                                     std::span<const double> params,
                                     const Observable& observable,
                                     const NoiseModel& noise,
                                     std::size_t index) {
  QBARREN_REQUIRE(index < params.size(),
                  "noisy_parameter_shift_partial: index out of range");
  std::vector<double> shifted(params.begin(), params.end());
  constexpr double kShift = M_PI / 2.0;
  shifted[index] = params[index] + kShift;
  const double plus = noisy_expectation(circuit, shifted, observable, noise);
  shifted[index] = params[index] - kShift;
  const double minus = noisy_expectation(circuit, shifted, observable, noise);
  return 0.5 * (plus - minus);
}

}  // namespace qbarren
