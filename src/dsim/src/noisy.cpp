#include "qbarren/dsim/noisy.hpp"

#include <cmath>

#include "qbarren/exec/compiled_circuit.hpp"

namespace qbarren {

NoiseModel make_depolarizing_model(double p1, double p2) {
  NoiseModel model;
  model.single_qubit = channels::depolarizing(p1);
  model.two_qubit = channels::depolarizing_2q(p2);
  return model;
}

DensityMatrix simulate_noisy(const Circuit& circuit,
                             std::span<const double> params,
                             const NoiseModel& noise) {
  QBARREN_REQUIRE(params.size() == circuit.num_parameters(),
                  "simulate_noisy: parameter count mismatch");
  DensityMatrix rho(circuit.num_qubits());
  // Constant-gate matrices come from the compiled plan's dedup cache; only
  // parameterized rotations are rebuilt per call.
  const auto plan = exec::plan_for(circuit);
  const auto matrix_for = [&](std::size_t i) -> const ComplexMatrix& {
    if (plan != nullptr && plan->source_op_is_constant(i)) {
      return plan->source_constant_matrix(i);
    }
    thread_local ComplexMatrix scratch;
    scratch = circuit.operation_matrix(i, params);
    return scratch;
  };
  const auto& ops = circuit.operations();
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Operation& op = ops[i];
    if (is_two_qubit(op.kind)) {
      if (op.kind == OpKind::kCz) {
        rho.apply_cz(op.qubit0, op.qubit1);
      } else {
        // Matrix convention: op.qubit0 maps to matrix bit 0 (e.g. CNOT
        // control), matching Circuit::unitary's embedding.
        rho.apply_unitary_2q(matrix_for(i), op.qubit0, op.qubit1);
      }
      if (noise.two_qubit.has_value()) {
        rho.apply_channel_2q(*noise.two_qubit, op.qubit0, op.qubit1);
      } else if (noise.single_qubit.has_value()) {
        rho.apply_channel_1q(*noise.single_qubit, op.qubit0);
        rho.apply_channel_1q(*noise.single_qubit, op.qubit1);
      }
    } else {
      rho.apply_unitary_1q(matrix_for(i), op.qubit0);
      if (noise.single_qubit.has_value()) {
        rho.apply_channel_1q(*noise.single_qubit, op.qubit0);
      }
    }
  }
  return rho;
}

double noisy_expectation(const Circuit& circuit,
                         std::span<const double> params,
                         const Observable& observable,
                         const NoiseModel& noise) {
  QBARREN_REQUIRE(observable.num_qubits() == circuit.num_qubits(),
                  "noisy_expectation: width mismatch");
  return simulate_noisy(circuit, params, noise).expectation(observable);
}

double noisy_parameter_shift_partial(const Circuit& circuit,
                                     std::span<const double> params,
                                     const Observable& observable,
                                     const NoiseModel& noise,
                                     std::size_t index) {
  QBARREN_REQUIRE(index < params.size(),
                  "noisy_parameter_shift_partial: index out of range");
  std::vector<double> shifted(params.begin(), params.end());
  constexpr double kShift = M_PI / 2.0;
  shifted[index] = params[index] + kShift;
  const double plus = noisy_expectation(circuit, shifted, observable, noise);
  shifted[index] = params[index] - kShift;
  const double minus = noisy_expectation(circuit, shifted, observable, noise);
  return 0.5 * (plus - minus);
}

}  // namespace qbarren
