#include "qbarren/exec/batched.hpp"
#include "qbarren/exec/compiled_circuit.hpp"
#include "qbarren/grad/engine.hpp"

namespace qbarren {

FiniteDifferenceEngine::FiniteDifferenceEngine(double h) : h_(h) {
  QBARREN_REQUIRE(h > 0.0, "FiniteDifferenceEngine: step must be positive");
}

double FiniteDifferenceEngine::partial(const Circuit& circuit,
                                       const Observable& observable,
                                       std::span<const double> params,
                                       std::size_t index) const {
  check_args(circuit, observable, params);
  QBARREN_REQUIRE(index < params.size(),
                  "FiniteDifferenceEngine::partial: index out of range");
  if (const auto plan = exec::plan_for(circuit)) {
    if (exec::batching_enabled()) {
      // The +/- pair as a batch of 2 lanes sharing prefix and suffix.
      const exec::ShiftSpec specs[] = {{index, h_}, {index, -h_}};
      const std::vector<double> v =
          exec::shifted_expectations(*plan, observable, params, specs);
      return (v[0] - v[1]) / (2.0 * h_);
    }
    // Both evaluations reuse the prefix state before the shifted gate.
    exec::PartialEvaluator cost(plan, observable, params, index);
    const double plus = cost(h_);
    const double minus = cost(-h_);
    return (plus - minus) / (2.0 * h_);
  }
  std::vector<double> work(params.begin(), params.end());
  work[index] = params[index] + h_;
  const double plus = observable.expectation(circuit.simulate(work));
  work[index] = params[index] - h_;
  const double minus = observable.expectation(circuit.simulate(work));
  return (plus - minus) / (2.0 * h_);
}

std::vector<double> FiniteDifferenceEngine::gradient(
    const Circuit& circuit, const Observable& observable,
    std::span<const double> params) const {
  check_args(circuit, observable, params);
  std::vector<double> grad(params.size());
  const auto plan = exec::plan_for(circuit);
  if (plan != nullptr && exec::batching_enabled() && !params.empty()) {
    // All 2P shifted bindings through the chunked batched dispatch: one
    // monotonic walk of the op stream instead of a fresh prefix per
    // parameter.
    std::vector<exec::ShiftSpec> specs;
    specs.reserve(2 * params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
      specs.push_back({i, h_});
      specs.push_back({i, -h_});
    }
    const std::vector<double> v =
        exec::shifted_expectations(*plan, observable, params, specs);
    for (std::size_t i = 0; i < params.size(); ++i) {
      grad[i] = (v[2 * i] - v[2 * i + 1]) / (2.0 * h_);
    }
    return grad;
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    grad[i] = partial(circuit, observable, params, i);
  }
  return grad;
}

}  // namespace qbarren
