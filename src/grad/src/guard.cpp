#include "qbarren/grad/guard.hpp"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <thread>

namespace qbarren {

namespace {

void check_finite(double v, const std::string& engine, const char* what) {
  if (!std::isfinite(v)) {
    throw NumericalError("NonFiniteGuardEngine: engine '" + engine +
                         "' produced a non-finite " + what);
  }
}

void check_finite(std::span<const double> values, const std::string& engine,
                  const char* what) {
  for (const double v : values) {
    check_finite(v, engine, what);
  }
}

}  // namespace

NonFiniteGuardEngine::NonFiniteGuardEngine(
    std::unique_ptr<GradientEngine> inner)
    : inner_(std::move(inner)) {
  QBARREN_REQUIRE(inner_ != nullptr, "NonFiniteGuardEngine: null inner");
}

std::vector<double> NonFiniteGuardEngine::gradient(
    const Circuit& circuit, const Observable& observable,
    std::span<const double> params) const {
  std::vector<double> g = inner_->gradient(circuit, observable, params);
  check_finite(g, inner_->name(), "gradient component");
  return g;
}

double NonFiniteGuardEngine::partial(const Circuit& circuit,
                                     const Observable& observable,
                                     std::span<const double> params,
                                     std::size_t index) const {
  const double g = inner_->partial(circuit, observable, params, index);
  check_finite(g, inner_->name(), "partial derivative");
  return g;
}

ValueAndGradient NonFiniteGuardEngine::value_and_gradient(
    const Circuit& circuit, const Observable& observable,
    std::span<const double> params) const {
  ValueAndGradient vg =
      inner_->value_and_gradient(circuit, observable, params);
  check_finite(vg.value, inner_->name(), "cost value");
  check_finite(vg.gradient, inner_->name(), "gradient component");
  return vg;
}

FaultInjectedEngine::FaultInjectedEngine(
    std::unique_ptr<GradientEngine> inner, std::size_t fault_call_index,
    FaultKind kind)
    : inner_(std::move(inner)),
      fault_call_index_(fault_call_index),
      kind_(kind) {
  QBARREN_REQUIRE(inner_ != nullptr, "FaultInjectedEngine: null inner");
}

std::string FaultInjectedEngine::name() const {
  const char* prefix = "nan-at:";
  switch (kind_) {
    case FaultKind::kNan: break;
    case FaultKind::kCrash: prefix = "crash-at:"; break;
    case FaultKind::kHang: prefix = "hang-at:"; break;
  }
  return prefix + std::to_string(fault_call_index_) + ":" + inner_->name();
}

bool FaultInjectedEngine::fire() const {
  if (calls_++ != fault_call_index_) return false;
  switch (kind_) {
    case FaultKind::kNan:
      return true;
    case FaultKind::kCrash:
      // The deterministic stand-in for a segfault/OOM kill: an abnormal
      // process death no in-process handler can absorb.
      std::abort();
    case FaultKind::kHang:
      // "Forever" for any test or watchdog, chunked so the hosting
      // process can still die promptly when SIGKILLed (sleep just gets
      // cut short — no cleanup runs anyway).
      for (int i = 0; i < 36000; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
      return true;
  }
  return true;
}

std::vector<double> FaultInjectedEngine::gradient(
    const Circuit& circuit, const Observable& observable,
    std::span<const double> params) const {
  const bool inject = fire();
  std::vector<double> g = inner_->gradient(circuit, observable, params);
  if (inject && !g.empty()) {
    g.front() = std::numeric_limits<double>::quiet_NaN();
  }
  return g;
}

double FaultInjectedEngine::partial(const Circuit& circuit,
                                    const Observable& observable,
                                    std::span<const double> params,
                                    std::size_t index) const {
  const bool inject = fire();
  const double g = inner_->partial(circuit, observable, params, index);
  return inject ? std::numeric_limits<double>::quiet_NaN() : g;
}

ValueAndGradient FaultInjectedEngine::value_and_gradient(
    const Circuit& circuit, const Observable& observable,
    std::span<const double> params) const {
  const bool inject = fire();
  ValueAndGradient vg =
      inner_->value_and_gradient(circuit, observable, params);
  if (inject && !vg.gradient.empty()) {
    vg.gradient.front() = std::numeric_limits<double>::quiet_NaN();
  }
  return vg;
}

}  // namespace qbarren
