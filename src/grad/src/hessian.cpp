#include "qbarren/grad/hessian.hpp"

#include <cmath>

namespace qbarren {

namespace {

double eval(const Circuit& circuit, const Observable& observable,
            const std::vector<double>& params) {
  return observable.expectation(circuit.simulate(params));
}

void check(const Circuit& circuit, const Observable& observable,
           std::span<const double> params) {
  QBARREN_REQUIRE(circuit.num_qubits() == observable.num_qubits(),
                  "hessian: circuit/observable width mismatch");
  QBARREN_REQUIRE(params.size() == circuit.num_parameters(),
                  "hessian: parameter count mismatch");
}

}  // namespace

double second_partial(const Circuit& circuit, const Observable& observable,
                      std::span<const double> params, std::size_t index) {
  check(circuit, observable, params);
  QBARREN_REQUIRE(index < params.size(),
                  "second_partial: index out of range");
  std::vector<double> work(params.begin(), params.end());
  const double center = eval(circuit, observable, work);
  work[index] = params[index] + M_PI;
  const double plus = eval(circuit, observable, work);
  work[index] = params[index] - M_PI;
  const double minus = eval(circuit, observable, work);
  return (plus - 2.0 * center + minus) / 4.0;
}

double mixed_partial(const Circuit& circuit, const Observable& observable,
                     std::span<const double> params, std::size_t i,
                     std::size_t j) {
  check(circuit, observable, params);
  QBARREN_REQUIRE(i < params.size() && j < params.size(),
                  "mixed_partial: index out of range");
  if (i == j) {
    return second_partial(circuit, observable, params, i);
  }
  constexpr double kShift = M_PI / 2.0;
  std::vector<double> work(params.begin(), params.end());
  auto eval_at = [&](double si, double sj) {
    work[i] = params[i] + si;
    work[j] = params[j] + sj;
    const double value = eval(circuit, observable, work);
    work[i] = params[i];
    work[j] = params[j];
    return value;
  };
  return (eval_at(kShift, kShift) - eval_at(kShift, -kShift) -
          eval_at(-kShift, kShift) + eval_at(-kShift, -kShift)) /
         4.0;
}

RealMatrix hessian(const Circuit& circuit, const Observable& observable,
                   std::span<const double> params) {
  check(circuit, observable, params);
  QBARREN_REQUIRE(!params.empty(), "hessian: circuit has no parameters");
  const std::size_t p = params.size();
  RealMatrix h(p, p);
  for (std::size_t i = 0; i < p; ++i) {
    h.at_unchecked(i, i) = second_partial(circuit, observable, params, i);
    for (std::size_t j = i + 1; j < p; ++j) {
      const double value = mixed_partial(circuit, observable, params, i, j);
      h.at_unchecked(i, j) = value;
      h.at_unchecked(j, i) = value;
    }
  }
  return h;
}

std::vector<double> hessian_diagonal(const Circuit& circuit,
                                     const Observable& observable,
                                     std::span<const double> params) {
  check(circuit, observable, params);
  std::vector<double> out(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    out[i] = second_partial(circuit, observable, params, i);
  }
  return out;
}

}  // namespace qbarren
