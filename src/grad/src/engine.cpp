#include "qbarren/grad/engine.hpp"

#include <cstdlib>
#include <utility>

#include "qbarren/exec/compiled_circuit.hpp"
#include "qbarren/grad/guard.hpp"

namespace qbarren {

void GradientEngine::check_args(const Circuit& circuit,
                                const Observable& observable,
                                std::span<const double> params) {
  QBARREN_REQUIRE(circuit.num_qubits() == observable.num_qubits(),
                  "GradientEngine: circuit/observable width mismatch");
  QBARREN_REQUIRE(params.size() == circuit.num_parameters(),
                  "GradientEngine: parameter count mismatch");
}

double GradientEngine::partial(const Circuit& circuit,
                               const Observable& observable,
                               std::span<const double> params,
                               std::size_t index) const {
  check_args(circuit, observable, params);
  QBARREN_REQUIRE(index < params.size(),
                  "GradientEngine::partial: index out of range");
  return gradient(circuit, observable, params)[index];
}

ValueAndGradient GradientEngine::value_and_gradient(
    const Circuit& circuit, const Observable& observable,
    std::span<const double> params) const {
  check_args(circuit, observable, params);
  // Attach the plan once; simulate and gradient below reuse it.
  static_cast<void>(exec::plan_for(circuit));
  ValueAndGradient out;
  out.value = observable.expectation(circuit.simulate(params));
  out.gradient = gradient(circuit, observable, params);
  return out;
}

std::unique_ptr<GradientEngine> make_gradient_engine(const std::string& name) {
  // Decorator prefixes (see guard.hpp). "guarded:<inner>" wraps a
  // non-finite output guard; "nan-at:<k>:<inner>" poisons call k with a
  // NaN, "crash-at:<k>:<inner>" abort()s on call k, and
  // "hang-at:<k>:<inner>" sleeps past any watchdog on call k —
  // deterministic fault injection for the resilience and serve tests.
  if (name.starts_with("guarded:")) {
    return std::make_unique<NonFiniteGuardEngine>(
        make_gradient_engine(name.substr(std::string("guarded:").size())));
  }
  for (const auto& [prefix, kind] :
       {std::pair<const char*, FaultKind>{"nan-at:", FaultKind::kNan},
        {"crash-at:", FaultKind::kCrash},
        {"hang-at:", FaultKind::kHang}}) {
    if (!name.starts_with(prefix)) continue;
    const std::size_t k_begin = std::string(prefix).size();
    const std::size_t colon = name.find(':', k_begin);
    if (colon != std::string::npos && colon > k_begin) {
      char* end = nullptr;
      const std::string digits = name.substr(k_begin, colon - k_begin);
      const unsigned long long k = std::strtoull(digits.c_str(), &end, 10);
      if (end != digits.c_str() && *end == '\0') {
        return std::make_unique<FaultInjectedEngine>(
            make_gradient_engine(name.substr(colon + 1)),
            static_cast<std::size_t>(k), kind);
      }
    }
    throw NotFound("make_gradient_engine: malformed fault spec '" + name +
                   "' (want " + prefix + "<k>:<engine>)");
  }
  if (name == "parameter-shift") {
    return std::make_unique<ParameterShiftEngine>();
  }
  if (name == "finite-difference") {
    return std::make_unique<FiniteDifferenceEngine>();
  }
  if (name == "adjoint") {
    return std::make_unique<AdjointEngine>();
  }
  if (name == "spsa") {
    return std::make_unique<SpsaEngine>(0);
  }
  throw NotFound("make_gradient_engine: unknown engine '" + name + "'");
}

}  // namespace qbarren
