#include "qbarren/grad/engine.hpp"

namespace qbarren {

void GradientEngine::check_args(const Circuit& circuit,
                                const Observable& observable,
                                std::span<const double> params) {
  QBARREN_REQUIRE(circuit.num_qubits() == observable.num_qubits(),
                  "GradientEngine: circuit/observable width mismatch");
  QBARREN_REQUIRE(params.size() == circuit.num_parameters(),
                  "GradientEngine: parameter count mismatch");
}

double GradientEngine::partial(const Circuit& circuit,
                               const Observable& observable,
                               std::span<const double> params,
                               std::size_t index) const {
  check_args(circuit, observable, params);
  QBARREN_REQUIRE(index < params.size(),
                  "GradientEngine::partial: index out of range");
  return gradient(circuit, observable, params)[index];
}

ValueAndGradient GradientEngine::value_and_gradient(
    const Circuit& circuit, const Observable& observable,
    std::span<const double> params) const {
  check_args(circuit, observable, params);
  ValueAndGradient out;
  out.value = observable.expectation(circuit.simulate(params));
  out.gradient = gradient(circuit, observable, params);
  return out;
}

std::unique_ptr<GradientEngine> make_gradient_engine(const std::string& name) {
  if (name == "parameter-shift") {
    return std::make_unique<ParameterShiftEngine>();
  }
  if (name == "finite-difference") {
    return std::make_unique<FiniteDifferenceEngine>();
  }
  if (name == "adjoint") {
    return std::make_unique<AdjointEngine>();
  }
  if (name == "spsa") {
    return std::make_unique<SpsaEngine>(0);
  }
  throw NotFound("make_gradient_engine: unknown engine '" + name + "'");
}

}  // namespace qbarren
