#include "qbarren/exec/batched.hpp"
#include "qbarren/exec/compiled_circuit.hpp"
#include "qbarren/grad/engine.hpp"

namespace qbarren {

SpsaEngine::SpsaEngine(std::uint64_t seed, double c)
    : rng_(Rng(seed)), c_(c) {
  QBARREN_REQUIRE(c > 0.0, "SpsaEngine: perturbation size must be positive");
}

std::vector<double> SpsaEngine::gradient(const Circuit& circuit,
                                         const Observable& observable,
                                         std::span<const double> params) const {
  check_args(circuit, observable, params);
  // Attach the plan once; both evaluations below route through it.
  const auto plan = exec::plan_for(circuit);
  const std::size_t n = params.size();
  std::vector<double> delta(n);
  for (auto& d : delta) {
    d = rng_.bernoulli(0.5) ? 1.0 : -1.0;
  }

  std::vector<double> plus(params.begin(), params.end());
  std::vector<double> minus(params.begin(), params.end());
  for (std::size_t i = 0; i < n; ++i) {
    plus[i] += c_ * delta[i];
    minus[i] -= c_ * delta[i];
  }
  double c_plus = 0.0;
  double c_minus = 0.0;
  if (plan != nullptr && exec::batching_enabled()) {
    // The +/- pair as a batch of 2 lanes: both bindings walk the kernel-op
    // stream once, byte-identical to two serial simulations.
    std::vector<double> bindings;
    bindings.reserve(2 * n);
    bindings.insert(bindings.end(), plus.begin(), plus.end());
    bindings.insert(bindings.end(), minus.begin(), minus.end());
    const std::vector<double> costs =
        plan->expectation_batch(observable, bindings, 2);
    c_plus = costs[0];
    c_minus = costs[1];
  } else {
    c_plus = observable.expectation(circuit.simulate(plus));
    c_minus = observable.expectation(circuit.simulate(minus));
  }
  const double scale = (c_plus - c_minus) / (2.0 * c_);

  std::vector<double> grad(n);
  for (std::size_t i = 0; i < n; ++i) {
    grad[i] = scale / delta[i];  // delta is +/-1 so this is scale * delta_i
  }
  return grad;
}

}  // namespace qbarren
