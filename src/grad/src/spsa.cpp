#include "qbarren/exec/compiled_circuit.hpp"
#include "qbarren/grad/engine.hpp"

namespace qbarren {

SpsaEngine::SpsaEngine(std::uint64_t seed, double c)
    : rng_(Rng(seed)), c_(c) {
  QBARREN_REQUIRE(c > 0.0, "SpsaEngine: perturbation size must be positive");
}

std::vector<double> SpsaEngine::gradient(const Circuit& circuit,
                                         const Observable& observable,
                                         std::span<const double> params) const {
  check_args(circuit, observable, params);
  // Attach the plan once; both simulate calls below route through it.
  static_cast<void>(exec::plan_for(circuit));
  const std::size_t n = params.size();
  std::vector<double> delta(n);
  for (auto& d : delta) {
    d = rng_.bernoulli(0.5) ? 1.0 : -1.0;
  }

  std::vector<double> plus(params.begin(), params.end());
  std::vector<double> minus(params.begin(), params.end());
  for (std::size_t i = 0; i < n; ++i) {
    plus[i] += c_ * delta[i];
    minus[i] -= c_ * delta[i];
  }
  const double c_plus = observable.expectation(circuit.simulate(plus));
  const double c_minus = observable.expectation(circuit.simulate(minus));
  const double scale = (c_plus - c_minus) / (2.0 * c_);

  std::vector<double> grad(n);
  for (std::size_t i = 0; i < n; ++i) {
    grad[i] = scale / delta[i];  // delta is +/-1 so this is scale * delta_i
  }
  return grad;
}

}  // namespace qbarren
