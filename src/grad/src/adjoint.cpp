#include "qbarren/exec/compiled_circuit.hpp"
#include "qbarren/grad/engine.hpp"

namespace qbarren {

// Reverse-mode ("adjoint") differentiation for state-vector simulation.
//
// With |phi_k> = U_k ... U_1 |0> and C = <phi_N| H |phi_N>, the derivative
// with respect to the parameter of gate k is
//   dC/dtheta_k = 2 Re <lambda_k | dU_k/dtheta_k | phi_{k-1}>,
// where |lambda_k> = U_{k+1}^dag ... U_N^dag H |phi_N>. Sweeping k from N
// down to 1 while un-applying each gate from |phi> and |lambda> yields the
// full gradient with O(N) gate applications and three live state vectors
// (phi, lambda, and a scratch vector for dU_k |phi>).
//
// Requirement: H must be applied exactly once (it is generally not unitary,
// so it cannot be "un-applied"); this is why lambda is seeded with H|phi_N>
// before the sweep.
ValueAndGradient AdjointEngine::value_and_gradient(
    const Circuit& circuit, const Observable& observable,
    std::span<const double> params) const {
  check_args(circuit, observable, params);

  ValueAndGradient out;
  out.gradient.assign(params.size(), 0.0);

  if (const auto plan = exec::plan_for(circuit)) {
    // Whole pass through the lowered op stream: rotation entries computed
    // once per op, allocation-free kernels, out-of-place derivative.
    out.value =
        plan->adjoint_value_and_gradient(observable, params, out.gradient);
    return out;
  }

  StateVector phi = circuit.simulate(params);
  StateVector lambda = observable.apply(phi);
  out.value = phi.inner_product(lambda).real();

  StateVector scratch(circuit.num_qubits());
  const auto& ops = circuit.operations();
  for (std::size_t k = ops.size(); k-- > 0;) {
    circuit.apply_operation_inverse(k, phi, params);  // phi = |phi_{k-1}>
    if (is_parameterized(ops[k].kind)) {
      scratch = phi;
      circuit.apply_operation_derivative(k, scratch, params);
      // Accumulate: circuits built by qbarren use one parameter per gate,
      // but += keeps shared-parameter circuits correct too.
      out.gradient[ops[k].param_index] +=
          2.0 * lambda.inner_product(scratch).real();
    }
    circuit.apply_operation_inverse(k, lambda, params);
  }
  return out;
}

std::vector<double> AdjointEngine::gradient(
    const Circuit& circuit, const Observable& observable,
    std::span<const double> params) const {
  return value_and_gradient(circuit, observable, params).gradient;
}

}  // namespace qbarren
