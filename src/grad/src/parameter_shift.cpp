#include <cmath>

#include "qbarren/exec/batched.hpp"
#include "qbarren/exec/compiled_circuit.hpp"
#include "qbarren/grad/engine.hpp"

namespace qbarren {

namespace {

// Evaluates C with params[index] shifted by +/- pi/2. All trainable gates
// in qbarren are single-parameter Pauli rotations R(theta) = exp(-i theta
// P/2), for which the two-term shift rule is exact (Schuld et al. 2019).
double shifted_cost(const Circuit& circuit, const Observable& observable,
                    std::span<const double> params, std::size_t index,
                    double shift) {
  std::vector<double> shifted(params.begin(), params.end());
  shifted[index] += shift;
  return observable.expectation(circuit.simulate(shifted));
}

// Four-term shift-rule constants for controlled rotations (generator
// eigenvalues {0, +-1/2}; Anselmetti et al. 2021):
//   dC = a [C(+pi/2) - C(-pi/2)] + b [C(+3pi/2) - C(-3pi/2)],
//   a = (sqrt(2)+1)/(4 sqrt(2)),  b = -(sqrt(2)-1)/(4 sqrt(2)).
struct FourTermRule {
  double a;
  double b;
};

FourTermRule four_term_rule() {
  const double sqrt2 = std::sqrt(2.0);
  return {(sqrt2 + 1.0) / (4.0 * sqrt2), -(sqrt2 - 1.0) / (4.0 * sqrt2)};
}

}  // namespace

double ParameterShiftEngine::partial(const Circuit& circuit,
                                     const Observable& observable,
                                     std::span<const double> params,
                                     std::size_t index) const {
  check_args(circuit, observable, params);
  QBARREN_REQUIRE(index < params.size(),
                  "ParameterShiftEngine::partial: index out of range");
  constexpr double kShift = M_PI / 2.0;

  // Attach the compiled plan first so operation_for_parameter below hits
  // the binding table rather than the linear scan.
  const auto plan = exec::plan_for(circuit);

  if (circuit.operation_for_parameter(index).kind ==
      OpKind::kControlledRotation) {
    const auto [a, b] = four_term_rule();
    if (plan != nullptr && exec::batching_enabled()) {
      // All four shifted bindings in one batched dispatch (same prefix,
      // per-lane shifted gate, shared suffix passes).
      const exec::ShiftSpec specs[] = {{index, kShift},
                                       {index, -kShift},
                                       {index, 3.0 * kShift},
                                       {index, -3.0 * kShift}};
      const std::vector<double> v =
          exec::shifted_expectations(*plan, observable, params, specs);
      const double d1 = v[0] - v[1];
      const double d3 = v[2] - v[3];
      return a * d1 + b * d3;
    }
    if (plan != nullptr) {
      // All four evaluations share the prefix state before the shifted
      // gate; only that gate and its suffix are re-run per shift.
      exec::PartialEvaluator cost(plan, observable, params, index);
      const double d1 = cost(kShift) - cost(-kShift);
      const double d3 = cost(3.0 * kShift) - cost(-3.0 * kShift);
      return a * d1 + b * d3;
    }
    const double d1 =
        shifted_cost(circuit, observable, params, index, kShift) -
        shifted_cost(circuit, observable, params, index, -kShift);
    const double d3 =
        shifted_cost(circuit, observable, params, index, 3.0 * kShift) -
        shifted_cost(circuit, observable, params, index, -3.0 * kShift);
    return a * d1 + b * d3;
  }

  if (plan != nullptr && exec::batching_enabled()) {
    // The +/- pair as a batch of 2 lanes sharing the prefix and suffix
    // dispatch.
    const exec::ShiftSpec specs[] = {{index, kShift}, {index, -kShift}};
    const std::vector<double> v =
        exec::shifted_expectations(*plan, observable, params, specs);
    return 0.5 * (v[0] - v[1]);
  }
  if (plan != nullptr) {
    // Prefix-state reuse: the Fig 5a hot path differentiates the LAST
    // parameter, whose prefix is nearly the whole circuit — simulating it
    // once roughly halves the forward work of the two evaluations.
    exec::PartialEvaluator cost(plan, observable, params, index);
    const double plus = cost(kShift);
    const double minus = cost(-kShift);
    return 0.5 * (plus - minus);
  }
  const double plus = shifted_cost(circuit, observable, params, index, kShift);
  const double minus =
      shifted_cost(circuit, observable, params, index, -kShift);
  return 0.5 * (plus - minus);
}

std::vector<double> ParameterShiftEngine::gradient(
    const Circuit& circuit, const Observable& observable,
    std::span<const double> params) const {
  check_args(circuit, observable, params);
  constexpr double kShift = M_PI / 2.0;
  std::vector<double> grad(params.size());
  const auto plan = exec::plan_for(circuit);
  if (plan != nullptr && exec::batching_enabled() && !params.empty()) {
    // Build every parameter's shifted bindings (2 per rotation, 4 per
    // controlled rotation) and evaluate them all through the chunked
    // batched dispatch — one monotonic walk of the op stream instead of a
    // fresh prefix simulation per parameter.
    std::vector<exec::ShiftSpec> specs;
    specs.reserve(2 * params.size());
    std::vector<std::size_t> first_spec(params.size());
    std::vector<bool> four_term(params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
      first_spec[i] = specs.size();
      four_term[i] = circuit.operation_for_parameter(i).kind ==
                     OpKind::kControlledRotation;
      specs.push_back({i, kShift});
      specs.push_back({i, -kShift});
      if (four_term[i]) {
        specs.push_back({i, 3.0 * kShift});
        specs.push_back({i, -3.0 * kShift});
      }
    }
    const std::vector<double> v =
        exec::shifted_expectations(*plan, observable, params, specs);
    const auto [a, b] = four_term_rule();
    for (std::size_t i = 0; i < params.size(); ++i) {
      const std::size_t s = first_spec[i];
      if (four_term[i]) {
        const double d1 = v[s] - v[s + 1];
        const double d3 = v[s + 2] - v[s + 3];
        grad[i] = a * d1 + b * d3;
      } else {
        grad[i] = 0.5 * (v[s] - v[s + 1]);
      }
    }
    return grad;
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    grad[i] = partial(circuit, observable, params, i);
  }
  return grad;
}

}  // namespace qbarren
