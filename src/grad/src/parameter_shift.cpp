#include <cmath>

#include "qbarren/exec/compiled_circuit.hpp"
#include "qbarren/grad/engine.hpp"

namespace qbarren {

namespace {

// Evaluates C with params[index] shifted by +/- pi/2. All trainable gates
// in qbarren are single-parameter Pauli rotations R(theta) = exp(-i theta
// P/2), for which the two-term shift rule is exact (Schuld et al. 2019).
double shifted_cost(const Circuit& circuit, const Observable& observable,
                    std::span<const double> params, std::size_t index,
                    double shift) {
  std::vector<double> shifted(params.begin(), params.end());
  shifted[index] += shift;
  return observable.expectation(circuit.simulate(shifted));
}

}  // namespace

double ParameterShiftEngine::partial(const Circuit& circuit,
                                     const Observable& observable,
                                     std::span<const double> params,
                                     std::size_t index) const {
  check_args(circuit, observable, params);
  QBARREN_REQUIRE(index < params.size(),
                  "ParameterShiftEngine::partial: index out of range");
  constexpr double kShift = M_PI / 2.0;

  // Attach the compiled plan first so operation_for_parameter below hits
  // the binding table rather than the linear scan.
  const auto plan = exec::plan_for(circuit);

  if (circuit.operation_for_parameter(index).kind ==
      OpKind::kControlledRotation) {
    // Controlled rotations have generator eigenvalues {0, +-1/2}: the
    // cost carries frequencies 1/2 and 1 in theta, and the exact rule is
    // the four-term shift (Anselmetti et al. 2021)
    //   dC = a [C(+pi/2) - C(-pi/2)] + b [C(+3pi/2) - C(-3pi/2)],
    //   a = (sqrt(2)+1)/(4 sqrt(2)),  b = -(sqrt(2)-1)/(4 sqrt(2)).
    const double sqrt2 = std::sqrt(2.0);
    const double a = (sqrt2 + 1.0) / (4.0 * sqrt2);
    const double b = -(sqrt2 - 1.0) / (4.0 * sqrt2);
    if (plan != nullptr) {
      // All four evaluations share the prefix state before the shifted
      // gate; only that gate and its suffix are re-run per shift.
      exec::PartialEvaluator cost(plan, observable, params, index);
      const double d1 = cost(kShift) - cost(-kShift);
      const double d3 = cost(3.0 * kShift) - cost(-3.0 * kShift);
      return a * d1 + b * d3;
    }
    const double d1 =
        shifted_cost(circuit, observable, params, index, kShift) -
        shifted_cost(circuit, observable, params, index, -kShift);
    const double d3 =
        shifted_cost(circuit, observable, params, index, 3.0 * kShift) -
        shifted_cost(circuit, observable, params, index, -3.0 * kShift);
    return a * d1 + b * d3;
  }

  if (plan != nullptr) {
    // Prefix-state reuse: the Fig 5a hot path differentiates the LAST
    // parameter, whose prefix is nearly the whole circuit — simulating it
    // once roughly halves the forward work of the two evaluations.
    exec::PartialEvaluator cost(plan, observable, params, index);
    const double plus = cost(kShift);
    const double minus = cost(-kShift);
    return 0.5 * (plus - minus);
  }
  const double plus = shifted_cost(circuit, observable, params, index, kShift);
  const double minus =
      shifted_cost(circuit, observable, params, index, -kShift);
  return 0.5 * (plus - minus);
}

std::vector<double> ParameterShiftEngine::gradient(
    const Circuit& circuit, const Observable& observable,
    std::span<const double> params) const {
  check_args(circuit, observable, params);
  std::vector<double> grad(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    grad[i] = partial(circuit, observable, params, i);
  }
  return grad;
}

}  // namespace qbarren
