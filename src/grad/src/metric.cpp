#include "qbarren/grad/metric.hpp"

namespace qbarren {

std::vector<StateVector> derivative_states(const Circuit& circuit,
                                           std::span<const double> params) {
  QBARREN_REQUIRE(params.size() == circuit.num_parameters(),
                  "derivative_states: parameter count mismatch");
  const auto& ops = circuit.operations();

  // Forward pass: remember the state entering every parameterized op.
  std::vector<std::pair<std::size_t, StateVector>> checkpoints;  // (op, state)
  checkpoints.reserve(params.size());
  StateVector phi(circuit.num_qubits());
  for (std::size_t k = 0; k < ops.size(); ++k) {
    if (is_parameterized(ops[k].kind)) {
      checkpoints.emplace_back(k, phi);
    }
    circuit.apply_operation(k, phi, params);
  }

  // For each checkpoint: apply the derivative of its op, then the rest of
  // the circuit. Order derivative states by parameter index.
  std::vector<StateVector> derivatives(params.size(),
                                       StateVector(circuit.num_qubits()));
  for (auto& [op_index, state] : checkpoints) {
    StateVector d = std::move(state);
    circuit.apply_operation_derivative(op_index, d, params);
    for (std::size_t k = op_index + 1; k < ops.size(); ++k) {
      circuit.apply_operation(k, d, params);
    }
    derivatives[ops[op_index].param_index] = std::move(d);
  }
  return derivatives;
}

RealMatrix fubini_study_metric(const Circuit& circuit,
                               std::span<const double> params) {
  QBARREN_REQUIRE(circuit.num_parameters() >= 1,
                  "fubini_study_metric: circuit has no parameters");
  const StateVector psi = circuit.simulate(params);
  const std::vector<StateVector> d = derivative_states(circuit, params);
  const std::size_t p = d.size();

  // Berry connections a_i = <psi | d_i psi>.
  std::vector<Complex> a(p);
  for (std::size_t i = 0; i < p; ++i) {
    a[i] = psi.inner_product(d[i]);
  }

  RealMatrix f(p, p);
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = i; j < p; ++j) {
      const Complex overlap = d[i].inner_product(d[j]);
      const double value = (overlap - std::conj(a[i]) * a[j]).real();
      f.at_unchecked(i, j) = value;
      f.at_unchecked(j, i) = value;
    }
  }
  return f;
}

}  // namespace qbarren
