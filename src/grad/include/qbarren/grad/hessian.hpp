// Exact second derivatives via the parameter-shift rule.
//
// For Pauli-rotation parameters the cost is a sinusoid in each angle, so
// second derivatives also have exact shift formulas:
//   d2C/dtheta_i^2       = [C(t + pi e_i) - 2 C(t) + C(t - pi e_i)] / 4
//   d2C/dtheta_i dtheta_j = [C(++) - C(+-) - C(-+) + C(--)] / 4,
// with +- denoting +-pi/2 shifts on i and j. Barren plateaus flatten the
// whole Taylor expansion — the Hessian's entries vanish exponentially with
// width alongside the gradient (Cerezo & Coles 2021), which
// bench_ablation_curvature demonstrates and which rules out second-order
// optimizers as a plateau escape.
#pragma once

#include <span>

#include "qbarren/circuit/circuit.hpp"
#include "qbarren/linalg/matrix.hpp"
#include "qbarren/obs/observable.hpp"

namespace qbarren {

/// d2C/dtheta_index^2 at `params`.
[[nodiscard]] double second_partial(const Circuit& circuit,
                                    const Observable& observable,
                                    std::span<const double> params,
                                    std::size_t index);

/// Mixed partial d2C/dtheta_i dtheta_j (i == j delegates to
/// second_partial).
[[nodiscard]] double mixed_partial(const Circuit& circuit,
                                   const Observable& observable,
                                   std::span<const double> params,
                                   std::size_t i, std::size_t j);

/// Full symmetric P x P Hessian; O(P^2) circuit evaluations.
[[nodiscard]] RealMatrix hessian(const Circuit& circuit,
                                 const Observable& observable,
                                 std::span<const double> params);

/// Diagonal only; O(P) evaluations.
[[nodiscard]] std::vector<double> hessian_diagonal(
    const Circuit& circuit, const Observable& observable,
    std::span<const double> params);

}  // namespace qbarren
