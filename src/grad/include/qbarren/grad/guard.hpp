// Gradient-engine decorators for numerical robustness testing and guards.
//
// NonFiniteGuardEngine turns a silent NaN/Inf anywhere in an engine's
// output into an immediate NumericalError at the point of production —
// far easier to debug than a NaN that surfaces hours later as a NaN
// variance cell. FaultInjectedEngine deterministically corrupts the k-th
// call's output, which is how the resilience tests exercise every
// non-finite recovery path without relying on a numerically fragile
// circuit.
//
// Both compose through make_gradient_engine's name syntax:
//   "guarded:adjoint"          — adjoint with a non-finite output guard
//   "nan-at:3:parameter-shift" — parameter-shift whose 4th call (0-based
//                                index 3) returns NaN
#pragma once

#include <memory>

#include "qbarren/grad/engine.hpp"

namespace qbarren {

/// Delegates to `inner` and throws NumericalError when any returned value
/// or gradient component is non-finite.
class NonFiniteGuardEngine final : public GradientEngine {
 public:
  explicit NonFiniteGuardEngine(std::unique_ptr<GradientEngine> inner);

  [[nodiscard]] std::string name() const override {
    return "guarded:" + inner_->name();
  }
  [[nodiscard]] std::vector<double> gradient(
      const Circuit& circuit, const Observable& observable,
      std::span<const double> params) const override;
  [[nodiscard]] double partial(const Circuit& circuit,
                               const Observable& observable,
                               std::span<const double> params,
                               std::size_t index) const override;
  [[nodiscard]] ValueAndGradient value_and_gradient(
      const Circuit& circuit, const Observable& observable,
      std::span<const double> params) const override;

 private:
  std::unique_ptr<GradientEngine> inner_;
};

/// Delegates to `inner` but poisons the output of call number
/// `nan_call_index` (0-based, counted across gradient / partial /
/// value_and_gradient) with a quiet NaN. Deterministic: the same call
/// sequence always fails at the same point.
class FaultInjectedEngine final : public GradientEngine {
 public:
  FaultInjectedEngine(std::unique_ptr<GradientEngine> inner,
                      std::size_t nan_call_index);

  [[nodiscard]] std::string name() const override {
    return "nan-at:" + std::to_string(nan_call_index_) + ":" +
           inner_->name();
  }
  [[nodiscard]] std::vector<double> gradient(
      const Circuit& circuit, const Observable& observable,
      std::span<const double> params) const override;
  [[nodiscard]] double partial(const Circuit& circuit,
                               const Observable& observable,
                               std::span<const double> params,
                               std::size_t index) const override;
  [[nodiscard]] ValueAndGradient value_and_gradient(
      const Circuit& circuit, const Observable& observable,
      std::span<const double> params) const override;

  [[nodiscard]] std::size_t calls_made() const noexcept { return calls_; }

 private:
  [[nodiscard]] bool fire() const;  // advances the counter

  std::unique_ptr<GradientEngine> inner_;
  std::size_t nan_call_index_;
  mutable std::size_t calls_ = 0;
};

}  // namespace qbarren
