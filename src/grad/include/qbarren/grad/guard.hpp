// Gradient-engine decorators for numerical robustness testing and guards.
//
// NonFiniteGuardEngine turns a silent NaN/Inf anywhere in an engine's
// output into an immediate NumericalError at the point of production —
// far easier to debug than a NaN that surfaces hours later as a NaN
// variance cell. FaultInjectedEngine deterministically corrupts the k-th
// call's output, which is how the resilience tests exercise every
// non-finite recovery path without relying on a numerically fragile
// circuit.
//
// All compose through make_gradient_engine's name syntax:
//   "guarded:adjoint"          — adjoint with a non-finite output guard
//   "nan-at:3:parameter-shift" — parameter-shift whose 4th call (0-based
//                                index 3) returns NaN
//   "crash-at:3:adjoint"       — abort() on the 4th call: deterministic
//                                worker-process death for the serve
//                                layer's crash-recovery paths
//   "hang-at:3:adjoint"        — sleep "forever" on the 4th call: a hung
//                                worker for the hard-kill watchdog
#pragma once

#include <memory>

#include "qbarren/grad/engine.hpp"

namespace qbarren {

/// Delegates to `inner` and throws NumericalError when any returned value
/// or gradient component is non-finite.
class NonFiniteGuardEngine final : public GradientEngine {
 public:
  explicit NonFiniteGuardEngine(std::unique_ptr<GradientEngine> inner);

  [[nodiscard]] std::string name() const override {
    return "guarded:" + inner_->name();
  }
  [[nodiscard]] std::vector<double> gradient(
      const Circuit& circuit, const Observable& observable,
      std::span<const double> params) const override;
  [[nodiscard]] double partial(const Circuit& circuit,
                               const Observable& observable,
                               std::span<const double> params,
                               std::size_t index) const override;
  [[nodiscard]] ValueAndGradient value_and_gradient(
      const Circuit& circuit, const Observable& observable,
      std::span<const double> params) const override;

 private:
  std::unique_ptr<GradientEngine> inner_;
};

/// What FaultInjectedEngine does when the faulting call fires.
enum class FaultKind {
  kNan,    ///< poison the call's output with a quiet NaN
  kCrash,  ///< std::abort() — kills the whole process (worker isolation
           ///< is the only thing that survives this)
  kHang,   ///< sleep far past any reasonable watchdog, polling nothing —
           ///< the uncooperative-cell case soft deadlines cannot reach
};

/// Delegates to `inner` but injects a deterministic fault on call number
/// `fault_call_index` (0-based, counted across gradient / partial /
/// value_and_gradient): the same call sequence always fails at the same
/// point. kNan poisons that call's output; kCrash aborts the process
/// before the inner engine runs; kHang sleeps ~1 hour in small chunks.
class FaultInjectedEngine final : public GradientEngine {
 public:
  FaultInjectedEngine(std::unique_ptr<GradientEngine> inner,
                      std::size_t fault_call_index,
                      FaultKind kind = FaultKind::kNan);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::vector<double> gradient(
      const Circuit& circuit, const Observable& observable,
      std::span<const double> params) const override;
  [[nodiscard]] double partial(const Circuit& circuit,
                               const Observable& observable,
                               std::span<const double> params,
                               std::size_t index) const override;
  [[nodiscard]] ValueAndGradient value_and_gradient(
      const Circuit& circuit, const Observable& observable,
      std::span<const double> params) const override;

  [[nodiscard]] std::size_t calls_made() const noexcept { return calls_; }

 private:
  /// Advances the counter; on the faulting call, crashes/hangs for those
  /// kinds or returns true (= poison the output) for kNan.
  [[nodiscard]] bool fire() const;

  std::unique_ptr<GradientEngine> inner_;
  std::size_t fault_call_index_;
  FaultKind kind_;
  mutable std::size_t calls_ = 0;
};

}  // namespace qbarren
