// Fubini-Study (quantum geometric) metric tensor.
//
// Quantum natural gradient (paper §II-b; Wierichs et al. 2020) replaces
// the Euclidean gradient step with F^{-1} g, where
//   F_ij = Re( <d_i psi | d_j psi> - <d_i psi|psi><psi|d_j psi> )
// is the real part of the quantum geometric tensor. qbarren computes the
// *full* (not block-diagonal) metric exactly from the state vector:
// one derivative state |d_i psi> per parameter (O(P * ops) gate
// applications), then O(P^2) inner products. The paper's related-work
// section flags the metric's cost as QNG's main drawback — visible
// directly in bench_ablation_qng.
#pragma once

#include <span>

#include "qbarren/circuit/circuit.hpp"
#include "qbarren/linalg/matrix.hpp"

namespace qbarren {

/// All derivative states |d_i psi> = U_N .. dU_i .. U_1 |0...0>, indexed
/// by parameter. Exposed for tests and custom geometry analyses.
[[nodiscard]] std::vector<StateVector> derivative_states(
    const Circuit& circuit, std::span<const double> params);

/// The P x P Fubini-Study metric at `params`. Symmetric positive
/// semidefinite (up to roundoff).
[[nodiscard]] RealMatrix fubini_study_metric(const Circuit& circuit,
                                             std::span<const double> params);

}  // namespace qbarren
