// Gradient engines for expectation-value cost functions.
//
// All engines differentiate C(theta) = <0| U(theta)^dag H U(theta) |0>.
// Three exact engines are provided (they agree to numerical precision and
// are cross-checked in the property tests) plus one stochastic estimator:
//
//   ParameterShift   — the paper's method: C'(t) = (C(t+pi/2) - C(t-pi/2))/2
//                      per parameter; 2 circuit evaluations per parameter.
//   FiniteDifference — central differences; a convention-free oracle.
//   Adjoint          — reverse-mode sweep (Jones & Gacon 2020): full
//                      gradient in O(ops) gate applications with three
//                      state vectors; the engine used by the training loop.
//   Spsa             — simultaneous-perturbation estimate; 2 evaluations
//                      for the whole gradient, unbiased but noisy.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "qbarren/circuit/circuit.hpp"
#include "qbarren/common/rng.hpp"
#include "qbarren/obs/observable.hpp"

namespace qbarren {

struct ValueAndGradient {
  double value = 0.0;
  std::vector<double> gradient;
};

class GradientEngine {
 public:
  virtual ~GradientEngine() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Full gradient dC/dtheta at `params`.
  [[nodiscard]] virtual std::vector<double> gradient(
      const Circuit& circuit, const Observable& observable,
      std::span<const double> params) const = 0;

  /// Single partial derivative dC/dtheta_index. The default computes the
  /// full gradient; engines with a cheaper per-parameter path override it.
  [[nodiscard]] virtual double partial(const Circuit& circuit,
                                       const Observable& observable,
                                       std::span<const double> params,
                                       std::size_t index) const;

  /// Cost value and full gradient together. The default performs one extra
  /// forward simulation; Adjoint overrides it for free.
  [[nodiscard]] virtual ValueAndGradient value_and_gradient(
      const Circuit& circuit, const Observable& observable,
      std::span<const double> params) const;

 protected:
  static void check_args(const Circuit& circuit, const Observable& observable,
                         std::span<const double> params);
};

class ParameterShiftEngine final : public GradientEngine {
 public:
  [[nodiscard]] std::string name() const override { return "parameter-shift"; }
  [[nodiscard]] std::vector<double> gradient(
      const Circuit& circuit, const Observable& observable,
      std::span<const double> params) const override;
  [[nodiscard]] double partial(const Circuit& circuit,
                               const Observable& observable,
                               std::span<const double> params,
                               std::size_t index) const override;
};

class FiniteDifferenceEngine final : public GradientEngine {
 public:
  /// Central differences with step `h` (default balances truncation vs
  /// cancellation for double precision on O(1) costs).
  explicit FiniteDifferenceEngine(double h = 1e-6);
  [[nodiscard]] std::string name() const override {
    return "finite-difference";
  }
  [[nodiscard]] std::vector<double> gradient(
      const Circuit& circuit, const Observable& observable,
      std::span<const double> params) const override;
  [[nodiscard]] double partial(const Circuit& circuit,
                               const Observable& observable,
                               std::span<const double> params,
                               std::size_t index) const override;

 private:
  double h_;
};

class AdjointEngine final : public GradientEngine {
 public:
  [[nodiscard]] std::string name() const override { return "adjoint"; }
  [[nodiscard]] std::vector<double> gradient(
      const Circuit& circuit, const Observable& observable,
      std::span<const double> params) const override;
  [[nodiscard]] ValueAndGradient value_and_gradient(
      const Circuit& circuit, const Observable& observable,
      std::span<const double> params) const override;
};

/// Simultaneous-perturbation stochastic approximation. Each call draws a
/// fresh Rademacher perturbation from an internal child stream of the seed
/// passed at construction, so a given engine instance is deterministic.
class SpsaEngine final : public GradientEngine {
 public:
  explicit SpsaEngine(std::uint64_t seed, double c = 0.01);
  [[nodiscard]] std::string name() const override { return "spsa"; }
  [[nodiscard]] std::vector<double> gradient(
      const Circuit& circuit, const Observable& observable,
      std::span<const double> params) const override;

 private:
  mutable Rng rng_;
  double c_;
};

/// Builds an engine by name: "parameter-shift", "finite-difference",
/// "adjoint", "spsa" (spsa takes seed 0). Two decorator prefixes compose
/// with any inner name (see guard.hpp): "guarded:<inner>" throws
/// NumericalError on any non-finite output, and "nan-at:<k>:<inner>"
/// deterministically injects a NaN at call k (fault-injection testing).
/// Throws NotFound otherwise.
[[nodiscard]] std::unique_ptr<GradientEngine> make_gradient_engine(
    const std::string& name);

}  // namespace qbarren
