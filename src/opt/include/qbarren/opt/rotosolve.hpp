// Rotosolve: sequential closed-form parameter updates
// (Ostaszewski, Grant & Benedetti, Quantum 5, 391 (2021)).
//
// For a circuit of Pauli rotations, the cost as a function of any single
// parameter is a sinusoid C(theta) = a + b cos(theta - phi). Three
// evaluations — C(t), C(t + pi/2), C(t - pi/2) — determine it, and the
// minimizing angle has the closed form
//   theta* = t - pi/2 - atan2(2 C(t) - C(t+pi/2) - C(t-pi/2),
//                             C(t+pi/2) - C(t-pi/2)).
// One Rotosolve sweep updates every parameter in order, each jumping to
// its conditional optimum: no learning rate, no gradient — and therefore a
// different relationship to barren plateaus (on a plateau the sinusoid's
// amplitude b is exponentially small, so the *location* of its minimum is
// still well-defined but barely lowers the cost).
#pragma once

#include "qbarren/opt/trainer.hpp"

namespace qbarren {

struct RotosolveOptions {
  std::size_t max_sweeps = 10;  ///< full passes over the parameter vector
  /// Stop when a full sweep improves the loss by less than this.
  double min_improvement = 0.0;
};

/// Runs Rotosolve on `cost` from `initial_params`. The returned
/// loss_history records the loss after every *sweep* (index 0 = initial);
/// `iterations` counts sweeps.
[[nodiscard]] TrainResult train_rotosolve(const CostFunction& cost,
                                          std::vector<double> initial_params,
                                          const RotosolveOptions& options =
                                              {});

}  // namespace qbarren
