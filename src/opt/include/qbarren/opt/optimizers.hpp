// First-order optimizers.
//
// The paper trains with vanilla Gradient Descent and Adam, both at step
// size 0.1 (§V). Momentum/Nesterov/RMSProp/AMSGrad are provided as
// extensions for ablation studies. Optimizers are stateful (moment
// buffers); call `reset` (or construct fresh) before reusing one across
// training runs.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

namespace qbarren {

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Clears internal state and sizes buffers for `num_params` parameters.
  virtual void reset(std::size_t num_params) = 0;

  /// In-place update params -= f(grad). Sizes must match the reset() size
  /// (or each other, for stateless optimizers).
  virtual void step(std::span<double> params,
                    std::span<const double> grad) = 0;

  /// Fresh optimizer with the same hyperparameters and cleared state.
  [[nodiscard]] virtual std::unique_ptr<Optimizer> clone() const = 0;
};

class GradientDescent final : public Optimizer {
 public:
  explicit GradientDescent(double learning_rate = 0.1);
  [[nodiscard]] std::string name() const override {
    return "gradient-descent";
  }
  void reset(std::size_t num_params) override;
  void step(std::span<double> params, std::span<const double> grad) override;
  [[nodiscard]] std::unique_ptr<Optimizer> clone() const override;

 private:
  double lr_;
};

class MomentumOptimizer final : public Optimizer {
 public:
  explicit MomentumOptimizer(double learning_rate = 0.1,
                             double momentum = 0.9);
  [[nodiscard]] std::string name() const override { return "momentum"; }
  void reset(std::size_t num_params) override;
  void step(std::span<double> params, std::span<const double> grad) override;
  [[nodiscard]] std::unique_ptr<Optimizer> clone() const override;

 private:
  double lr_;
  double mu_;
  std::vector<double> velocity_;
};

class NesterovOptimizer final : public Optimizer {
 public:
  explicit NesterovOptimizer(double learning_rate = 0.1,
                             double momentum = 0.9);
  [[nodiscard]] std::string name() const override { return "nesterov"; }
  void reset(std::size_t num_params) override;
  void step(std::span<double> params, std::span<const double> grad) override;
  [[nodiscard]] std::unique_ptr<Optimizer> clone() const override;

 private:
  double lr_;
  double mu_;
  std::vector<double> velocity_;
};

class RmsPropOptimizer final : public Optimizer {
 public:
  explicit RmsPropOptimizer(double learning_rate = 0.1, double alpha = 0.99,
                            double epsilon = 1e-8);
  [[nodiscard]] std::string name() const override { return "rmsprop"; }
  void reset(std::size_t num_params) override;
  void step(std::span<double> params, std::span<const double> grad) override;
  [[nodiscard]] std::unique_ptr<Optimizer> clone() const override;

 private:
  double lr_;
  double alpha_;
  double eps_;
  std::vector<double> sq_avg_;
};

class AdamOptimizer final : public Optimizer {
 public:
  explicit AdamOptimizer(double learning_rate = 0.1, double beta1 = 0.9,
                         double beta2 = 0.999, double epsilon = 1e-8);
  [[nodiscard]] std::string name() const override { return "adam"; }
  void reset(std::size_t num_params) override;
  void step(std::span<double> params, std::span<const double> grad) override;
  [[nodiscard]] std::unique_ptr<Optimizer> clone() const override;

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  std::size_t t_ = 0;
  std::vector<double> m_;
  std::vector<double> v_;
};

class AmsGradOptimizer final : public Optimizer {
 public:
  explicit AmsGradOptimizer(double learning_rate = 0.1, double beta1 = 0.9,
                            double beta2 = 0.999, double epsilon = 1e-8);
  [[nodiscard]] std::string name() const override { return "amsgrad"; }
  void reset(std::size_t num_params) override;
  void step(std::span<double> params, std::span<const double> grad) override;
  [[nodiscard]] std::unique_ptr<Optimizer> clone() const override;

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  std::size_t t_ = 0;
  std::vector<double> m_;
  std::vector<double> v_;
  std::vector<double> v_hat_max_;
};

class AdaGradOptimizer final : public Optimizer {
 public:
  explicit AdaGradOptimizer(double learning_rate = 0.1,
                            double epsilon = 1e-10);
  [[nodiscard]] std::string name() const override { return "adagrad"; }
  void reset(std::size_t num_params) override;
  void step(std::span<double> params, std::span<const double> grad) override;
  [[nodiscard]] std::unique_ptr<Optimizer> clone() const override;

 private:
  double lr_;
  double eps_;
  std::vector<double> sum_sq_;
};

class AdadeltaOptimizer final : public Optimizer {
 public:
  explicit AdadeltaOptimizer(double rho = 0.95, double epsilon = 1e-6);
  [[nodiscard]] std::string name() const override { return "adadelta"; }
  void reset(std::size_t num_params) override;
  void step(std::span<double> params, std::span<const double> grad) override;
  [[nodiscard]] std::unique_ptr<Optimizer> clone() const override;

 private:
  double rho_;
  double eps_;
  std::vector<double> sq_grad_avg_;
  std::vector<double> sq_update_avg_;
};

/// Builds an optimizer by name ("gradient-descent", "momentum", "nesterov",
/// "rmsprop", "adam", "amsgrad", "adagrad", "adadelta") with the given
/// learning rate and default secondary hyperparameters (adadelta ignores
/// the learning rate by design). Throws NotFound for unknown names.
[[nodiscard]] std::unique_ptr<Optimizer> make_optimizer(
    const std::string& name, double learning_rate = 0.1);

}  // namespace qbarren
