// Quantum natural gradient training (paper §II-b context).
//
// Each iteration solves (F + lambda I) dx = grad with F the Fubini-Study
// metric and updates theta <- theta - lr * dx. QNG follows the steepest-
// descent direction in state space rather than parameter space, which
// helps escape flat regions — at the cost of one metric computation
// (O(P * ops) simulation work + an O(P^3) solve) per step.
#pragma once

#include "qbarren/opt/trainer.hpp"

namespace qbarren {

struct NaturalGradientOptions {
  std::size_t max_iterations = 50;
  double learning_rate = 0.1;
  /// Tikhonov regularizer added to the metric diagonal; keeps the solve
  /// well-posed on plateaus where F is nearly singular.
  double lambda = 1e-3;
  bool record_gradient_norms = true;
};

/// Trains `cost` by quantum natural gradient descent from
/// `initial_params`; gradients come from `engine` and the metric from
/// fubini_study_metric. Returns the same TrainResult as train().
[[nodiscard]] TrainResult train_natural_gradient(
    const CostFunction& cost, const GradientEngine& engine,
    std::vector<double> initial_params,
    const NaturalGradientOptions& options = {});

}  // namespace qbarren
