// Layer-wise training (paper §II-c context; Skolik et al. 2021).
//
// Instead of optimizing all parameters at once, train one layer at a time:
// stage s updates only the parameters of layer s (others frozen by masking
// their gradient entries), then optionally finish with a full sweep over
// every parameter. Early stages optimize effectively shallow circuits that
// are less plateau-prone, which lets even randomly initialized deep
// circuits start learning — the trade-off (more total iterations) is
// quantified in bench_ablation_layerwise.
#pragma once

#include "qbarren/opt/trainer.hpp"

namespace qbarren {

struct LayerwiseOptions {
  std::size_t iterations_per_layer = 10;
  /// Full-parameter fine-tuning iterations after the per-layer stages.
  std::size_t final_sweep_iterations = 0;
  double learning_rate = 0.1;
  std::string optimizer = "gradient-descent";  ///< fresh instance per stage
  bool record_gradient_norms = true;
};

/// Layer-wise training of `cost`. The circuit must carry LayerShape
/// metadata (every ansatz builder records it); parameter i belongs to
/// layer i / params_per_layer. The returned loss_history spans all stages
/// (initial loss + one entry per iteration, stages concatenated).
[[nodiscard]] TrainResult train_layerwise(const CostFunction& cost,
                                          const GradientEngine& engine,
                                          std::vector<double> initial_params,
                                          const LayerwiseOptions& options =
                                              {});

struct GrowingLayerwiseOptions {
  std::size_t qubits = 10;
  std::size_t total_layers = 5;      ///< final Eq-3 ansatz depth
  std::size_t iterations_per_stage = 10;
  double learning_rate = 0.1;
  std::string optimizer = "gradient-descent";
  /// Range for the very first layer's random parameters.
  double first_layer_lo = 0.0;
  double first_layer_hi = 2.0 * M_PI;
  std::uint64_t seed = 0;
  bool record_gradient_norms = true;
};

/// Skolik-style growing layer-wise training: stage s optimizes an s-layer
/// Eq-3 ansatz (all s layers trainable), then appends layer s+1 with
/// zero-initialized parameters — the identity — so growth never changes
/// the state and each stage's landscape is that of a shallow, less
/// plateau-prone circuit. `observable` fixes the cost (width must equal
/// options.qubits). Returns the concatenated TrainResult; final_params
/// belong to the full total_layers ansatz.
[[nodiscard]] TrainResult train_layerwise_growing(
    std::shared_ptr<const Observable> observable,
    const GradientEngine& engine, const GrowingLayerwiseOptions& options);

}  // namespace qbarren
