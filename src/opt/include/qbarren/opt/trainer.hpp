// Training-loop driver.
//
// Runs the paper's training protocol: starting from an initializer-supplied
// parameter vector, repeat for a fixed number of iterations
//   grad <- engine(cost), params <- optimizer.step(params, grad)
// recording the loss (and optionally the gradient norm) at every iterate.
//
// The loop is hardened for long unattended sweeps: non-finite losses and
// gradients are detected the iteration they appear and handled under a
// configurable policy, an optional wall-clock deadline bounds the run, and
// a cancellation token makes Ctrl-C interrupt a training series between
// engine evaluations instead of killing the process.
#pragma once

#include <limits>
#include <vector>

#include "qbarren/common/run.hpp"
#include "qbarren/grad/engine.hpp"
#include "qbarren/obs/cost.hpp"
#include "qbarren/opt/optimizers.hpp"

namespace qbarren {

/// What train() does when the loss or a gradient component is non-finite.
enum class NonFinitePolicy {
  /// Throw NumericalError naming the iteration (default: fail loudly).
  kThrow,
  /// Record what happened, stop this series, and return the partial
  /// result with `aborted_non_finite` set — a sweep loses one series, not
  /// the whole run.
  kAbortSeries,
  /// Recompute the offending gradient once with `fallback_engine`
  /// (typically parameter-shift when the primary is adjoint); throw
  /// NumericalError if the fallback is non-finite too. A non-finite
  /// *loss* cannot be retried and aborts the series as kAbortSeries.
  kFallbackEngine,
};

struct TrainOptions {
  std::size_t max_iterations = 50;  ///< the paper's training budget
  /// Stop early when the loss drops below this (default: never).
  double target_loss = -std::numeric_limits<double>::infinity();
  bool record_gradient_norms = true;

  /// Non-finite loss/gradient handling (see NonFinitePolicy).
  NonFinitePolicy non_finite_policy = NonFinitePolicy::kThrow;
  /// Required (non-null, non-owning) when policy is kFallbackEngine.
  const GradientEngine* fallback_engine = nullptr;

  /// Wall-clock budget in seconds; when exceeded the loop stops before
  /// the next iteration and sets `hit_deadline` (default: unbounded).
  double deadline_seconds = std::numeric_limits<double>::infinity();

  /// Polled before every iteration; a set token throws Cancelled
  /// (non-owning, may be null).
  const CancellationToken* cancel = nullptr;
};

struct TrainResult {
  /// loss_history[k] = loss at iterate k; index 0 is the initial loss and
  /// the last entry the post-training loss (size = iterations + 1).
  std::vector<double> loss_history;
  /// Euclidean norms of the gradient at each of the `iterations` steps
  /// (empty when not recorded).
  std::vector<double> gradient_norm_history;
  std::vector<double> final_params;
  double initial_loss = 0.0;
  double final_loss = 0.0;
  std::size_t iterations = 0;  ///< optimizer steps actually taken
  bool reached_target = false;
  bool aborted_non_finite = false;  ///< stopped by kAbortSeries
  bool hit_deadline = false;        ///< stopped by deadline_seconds
  std::size_t fallback_invocations = 0;  ///< kFallbackEngine retries used
};

/// Trains `cost` with the given engine/optimizer from `initial_params`.
/// The optimizer is reset() before the first step. Throws InvalidArgument
/// when initial_params does not match the circuit's parameter count, when
/// deadline_seconds is negative, or when kFallbackEngine is selected
/// without a fallback engine; NumericalError per the non-finite policy;
/// Cancelled when options.cancel fires.
[[nodiscard]] TrainResult train(const CostFunction& cost,
                                const GradientEngine& engine,
                                Optimizer& optimizer,
                                std::vector<double> initial_params,
                                const TrainOptions& options = {});

}  // namespace qbarren
