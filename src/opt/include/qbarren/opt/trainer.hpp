// Training-loop driver.
//
// Runs the paper's training protocol: starting from an initializer-supplied
// parameter vector, repeat for a fixed number of iterations
//   grad <- engine(cost), params <- optimizer.step(params, grad)
// recording the loss (and optionally the gradient norm) at every iterate.
#pragma once

#include <limits>
#include <vector>

#include "qbarren/grad/engine.hpp"
#include "qbarren/obs/cost.hpp"
#include "qbarren/opt/optimizers.hpp"

namespace qbarren {

struct TrainOptions {
  std::size_t max_iterations = 50;  ///< the paper's training budget
  /// Stop early when the loss drops below this (default: never).
  double target_loss = -std::numeric_limits<double>::infinity();
  bool record_gradient_norms = true;
};

struct TrainResult {
  /// loss_history[k] = loss at iterate k; index 0 is the initial loss and
  /// the last entry the post-training loss (size = iterations + 1).
  std::vector<double> loss_history;
  /// Euclidean norms of the gradient at each of the `iterations` steps
  /// (empty when not recorded).
  std::vector<double> gradient_norm_history;
  std::vector<double> final_params;
  double initial_loss = 0.0;
  double final_loss = 0.0;
  std::size_t iterations = 0;  ///< optimizer steps actually taken
  bool reached_target = false;
};

/// Trains `cost` with the given engine/optimizer from `initial_params`.
/// The optimizer is reset() before the first step. Throws InvalidArgument
/// when initial_params does not match the circuit's parameter count.
[[nodiscard]] TrainResult train(const CostFunction& cost,
                                const GradientEngine& engine,
                                Optimizer& optimizer,
                                std::vector<double> initial_params,
                                const TrainOptions& options = {});

}  // namespace qbarren
