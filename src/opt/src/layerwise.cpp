#include "qbarren/opt/layerwise.hpp"

#include <cmath>

#include "qbarren/circuit/ansatz.hpp"

namespace qbarren {

TrainResult train_layerwise(const CostFunction& cost,
                            const GradientEngine& engine,
                            std::vector<double> initial_params,
                            const LayerwiseOptions& options) {
  QBARREN_REQUIRE(initial_params.size() == cost.num_parameters(),
                  "train_layerwise: initial parameter count mismatch");
  const Circuit& circuit = cost.circuit();
  const Observable& observable = cost.observable();
  QBARREN_REQUIRE(circuit.layer_shape().has_value(),
                  "train_layerwise: circuit has no layer-shape metadata");
  const LayerShape shape = *circuit.layer_shape();
  QBARREN_REQUIRE(shape.layers * shape.params_per_layer ==
                      circuit.num_parameters(),
                  "train_layerwise: layer shape does not tile the "
                  "parameter vector");

  TrainResult result;
  result.final_params = std::move(initial_params);

  double loss = cost.value(result.final_params);
  result.initial_loss = loss;
  result.loss_history.push_back(loss);

  auto run_stage = [&](std::size_t mask_begin, std::size_t mask_end,
                       std::size_t iterations) {
    // mask_begin == mask_end means "no mask": train everything.
    const auto optimizer =
        make_optimizer(options.optimizer, options.learning_rate);
    optimizer->reset(result.final_params.size());
    for (std::size_t it = 0; it < iterations; ++it) {
      ValueAndGradient vg =
          engine.value_and_gradient(circuit, observable, result.final_params);
      if (mask_begin != mask_end) {
        for (std::size_t i = 0; i < vg.gradient.size(); ++i) {
          if (i < mask_begin || i >= mask_end) {
            vg.gradient[i] = 0.0;
          }
        }
      }
      if (options.record_gradient_norms) {
        double norm2 = 0.0;
        for (double g : vg.gradient) {
          norm2 += g * g;
        }
        result.gradient_norm_history.push_back(std::sqrt(norm2));
      }
      optimizer->step(result.final_params, vg.gradient);
      loss = cost.value(result.final_params);
      result.loss_history.push_back(loss);
      ++result.iterations;
    }
  };

  for (std::size_t layer = 0; layer < shape.layers; ++layer) {
    const std::size_t begin = layer * shape.params_per_layer;
    run_stage(begin, begin + shape.params_per_layer,
              options.iterations_per_layer);
  }
  if (options.final_sweep_iterations > 0) {
    run_stage(0, 0, options.final_sweep_iterations);
  }

  result.final_loss = loss;
  return result;
}

TrainResult train_layerwise_growing(
    std::shared_ptr<const Observable> observable,
    const GradientEngine& engine, const GrowingLayerwiseOptions& options) {
  QBARREN_REQUIRE(observable != nullptr,
                  "train_layerwise_growing: null observable");
  QBARREN_REQUIRE(observable->num_qubits() == options.qubits,
                  "train_layerwise_growing: observable width mismatch");
  QBARREN_REQUIRE(options.total_layers >= 1,
                  "train_layerwise_growing: need >= 1 layer");
  QBARREN_REQUIRE(options.learning_rate > 0.0,
                  "train_layerwise_growing: learning rate must be positive");

  Rng rng(options.seed);
  const std::size_t params_per_layer = 2 * options.qubits;  // Eq 3: RX + RY

  // First layer starts random (a 1-layer circuit has no plateau to fear);
  // every appended layer starts at the identity.
  std::vector<double> params;
  params.reserve(options.total_layers * params_per_layer);
  for (std::size_t i = 0; i < params_per_layer; ++i) {
    params.push_back(rng.uniform(options.first_layer_lo,
                                 options.first_layer_hi));
  }

  TrainResult result;
  bool first_stage = true;
  double loss = 0.0;
  for (std::size_t depth = 1; depth <= options.total_layers; ++depth) {
    TrainingAnsatzOptions ansatz_options;
    ansatz_options.layers = depth;
    auto circuit = std::make_shared<const Circuit>(
        training_ansatz(options.qubits, ansatz_options));
    const CostFunction cost(circuit, observable);

    if (first_stage) {
      loss = cost.value(params);
      result.initial_loss = loss;
      result.loss_history.push_back(loss);
      first_stage = false;
    }

    const auto optimizer =
        make_optimizer(options.optimizer, options.learning_rate);
    optimizer->reset(params.size());
    for (std::size_t it = 0; it < options.iterations_per_stage; ++it) {
      const ValueAndGradient vg =
          engine.value_and_gradient(*circuit, *observable, params);
      if (options.record_gradient_norms) {
        double norm2 = 0.0;
        for (double g : vg.gradient) {
          norm2 += g * g;
        }
        result.gradient_norm_history.push_back(std::sqrt(norm2));
      }
      optimizer->step(params, vg.gradient);
      loss = cost.value(params);
      result.loss_history.push_back(loss);
      ++result.iterations;
    }

    if (depth < options.total_layers) {
      // Grow: the new layer's rotations at angle 0 are the identity, so
      // the loss is continuous across the growth step.
      params.insert(params.end(), params_per_layer, 0.0);
    }
  }

  result.final_params = std::move(params);
  result.final_loss = loss;
  return result;
}

}  // namespace qbarren
