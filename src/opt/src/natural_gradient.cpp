#include "qbarren/opt/natural_gradient.hpp"

#include <cmath>

#include "qbarren/grad/metric.hpp"
#include "qbarren/linalg/solve.hpp"

namespace qbarren {

TrainResult train_natural_gradient(const CostFunction& cost,
                                   const GradientEngine& engine,
                                   std::vector<double> initial_params,
                                   const NaturalGradientOptions& options) {
  QBARREN_REQUIRE(initial_params.size() == cost.num_parameters(),
                  "train_natural_gradient: initial parameter count mismatch");
  QBARREN_REQUIRE(options.learning_rate > 0.0,
                  "train_natural_gradient: learning rate must be positive");
  QBARREN_REQUIRE(options.lambda >= 0.0,
                  "train_natural_gradient: lambda must be non-negative");

  const Circuit& circuit = cost.circuit();
  const Observable& observable = cost.observable();

  TrainResult result;
  result.final_params = std::move(initial_params);

  double loss = cost.value(result.final_params);
  result.initial_loss = loss;
  result.loss_history.push_back(loss);

  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    const ValueAndGradient vg =
        engine.value_and_gradient(circuit, observable, result.final_params);
    if (options.record_gradient_norms) {
      double norm2 = 0.0;
      for (double g : vg.gradient) {
        norm2 += g * g;
      }
      result.gradient_norm_history.push_back(std::sqrt(norm2));
    }

    const RealMatrix metric =
        fubini_study_metric(circuit, result.final_params);
    const std::vector<double> direction =
        solve_regularized(metric, vg.gradient, options.lambda);
    for (std::size_t i = 0; i < result.final_params.size(); ++i) {
      result.final_params[i] -= options.learning_rate * direction[i];
    }

    loss = cost.value(result.final_params);
    result.loss_history.push_back(loss);
    ++result.iterations;
  }
  result.final_loss = loss;
  return result;
}

}  // namespace qbarren
