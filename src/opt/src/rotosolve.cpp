#include "qbarren/opt/rotosolve.hpp"

#include <cmath>

#include "qbarren/exec/batched.hpp"
#include "qbarren/exec/compiled_circuit.hpp"

namespace qbarren {

TrainResult train_rotosolve(const CostFunction& cost,
                            std::vector<double> initial_params,
                            const RotosolveOptions& options) {
  QBARREN_REQUIRE(initial_params.size() == cost.num_parameters(),
                  "train_rotosolve: initial parameter count mismatch");
  QBARREN_REQUIRE(options.min_improvement >= 0.0,
                  "train_rotosolve: min_improvement must be non-negative");

  TrainResult result;
  result.final_params = std::move(initial_params);

  // One lowering serves every sweep; the +/- pair of each 3-point probe
  // batches through it when batching is on.
  const auto plan = exec::plan_for(cost.circuit());

  double loss = cost.value(result.final_params);
  result.initial_loss = loss;
  result.loss_history.push_back(loss);

  constexpr double kHalfPi = M_PI / 2.0;
  std::vector<double> pair_bindings;
  for (std::size_t sweep = 0; sweep < options.max_sweeps; ++sweep) {
    for (std::size_t i = 0; i < result.final_params.size(); ++i) {
      const double theta = result.final_params[i];
      const double at = cost.value(result.final_params);
      double plus = 0.0;
      double minus = 0.0;
      if (plan != nullptr && exec::batching_enabled()) {
        // theta +/- pi/2 as a batch of 2 lanes, byte-identical to the two
        // serial evaluations below.
        const std::size_t n = result.final_params.size();
        pair_bindings.assign(result.final_params.begin(),
                             result.final_params.end());
        pair_bindings.insert(pair_bindings.end(), result.final_params.begin(),
                             result.final_params.end());
        pair_bindings[i] = theta + kHalfPi;
        pair_bindings[n + i] = theta - kHalfPi;
        const std::vector<double> probes =
            plan->expectation_batch(cost.observable(), pair_bindings, 2);
        plus = probes[0];
        minus = probes[1];
      } else {
        result.final_params[i] = theta + kHalfPi;
        plus = cost.value(result.final_params);
        result.final_params[i] = theta - kHalfPi;
        minus = cost.value(result.final_params);
      }

      // Sinusoid through the three samples; jump to its minimum.
      const double phase =
          std::atan2(2.0 * at - plus - minus, plus - minus);
      result.final_params[i] = theta - kHalfPi - phase;
    }
    const double new_loss = cost.value(result.final_params);
    result.loss_history.push_back(new_loss);
    ++result.iterations;
    const double improvement = loss - new_loss;
    loss = new_loss;
    if (improvement < options.min_improvement) {
      break;
    }
  }
  result.final_loss = loss;
  return result;
}

}  // namespace qbarren
