#include "qbarren/opt/rotosolve.hpp"

#include <cmath>

namespace qbarren {

TrainResult train_rotosolve(const CostFunction& cost,
                            std::vector<double> initial_params,
                            const RotosolveOptions& options) {
  QBARREN_REQUIRE(initial_params.size() == cost.num_parameters(),
                  "train_rotosolve: initial parameter count mismatch");
  QBARREN_REQUIRE(options.min_improvement >= 0.0,
                  "train_rotosolve: min_improvement must be non-negative");

  TrainResult result;
  result.final_params = std::move(initial_params);

  double loss = cost.value(result.final_params);
  result.initial_loss = loss;
  result.loss_history.push_back(loss);

  constexpr double kHalfPi = M_PI / 2.0;
  for (std::size_t sweep = 0; sweep < options.max_sweeps; ++sweep) {
    for (std::size_t i = 0; i < result.final_params.size(); ++i) {
      const double theta = result.final_params[i];
      const double at = cost.value(result.final_params);
      result.final_params[i] = theta + kHalfPi;
      const double plus = cost.value(result.final_params);
      result.final_params[i] = theta - kHalfPi;
      const double minus = cost.value(result.final_params);

      // Sinusoid through the three samples; jump to its minimum.
      const double phase =
          std::atan2(2.0 * at - plus - minus, plus - minus);
      result.final_params[i] = theta - kHalfPi - phase;
    }
    const double new_loss = cost.value(result.final_params);
    result.loss_history.push_back(new_loss);
    ++result.iterations;
    const double improvement = loss - new_loss;
    loss = new_loss;
    if (improvement < options.min_improvement) {
      break;
    }
  }
  result.final_loss = loss;
  return result;
}

}  // namespace qbarren
