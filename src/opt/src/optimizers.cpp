#include "qbarren/opt/optimizers.hpp"

#include <cmath>

#include "qbarren/common/error.hpp"

namespace qbarren {

namespace {

void check_sizes(std::span<double> params, std::span<const double> grad,
                 const char* who) {
  if (params.size() != grad.size()) {
    throw InvalidArgument(std::string(who) +
                          ": parameter/gradient size mismatch");
  }
}

void check_state(std::size_t state_size, std::size_t params_size,
                 const char* who) {
  if (state_size != params_size) {
    throw InvalidArgument(std::string(who) +
                          ": call reset() with the parameter count first");
  }
}

void check_lr(double lr, const char* who) {
  if (!(lr > 0.0)) {
    throw InvalidArgument(std::string(who) +
                          ": learning rate must be positive");
  }
}

}  // namespace

// --- GradientDescent --------------------------------------------------------

GradientDescent::GradientDescent(double learning_rate) : lr_(learning_rate) {
  check_lr(lr_, "GradientDescent");
}

void GradientDescent::reset(std::size_t /*num_params*/) {}

void GradientDescent::step(std::span<double> params,
                           std::span<const double> grad) {
  check_sizes(params, grad, "GradientDescent::step");
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i] -= lr_ * grad[i];
  }
}

std::unique_ptr<Optimizer> GradientDescent::clone() const {
  return std::make_unique<GradientDescent>(lr_);
}

// --- Momentum ---------------------------------------------------------------

MomentumOptimizer::MomentumOptimizer(double learning_rate, double momentum)
    : lr_(learning_rate), mu_(momentum) {
  check_lr(lr_, "MomentumOptimizer");
  QBARREN_REQUIRE(mu_ >= 0.0 && mu_ < 1.0,
                  "MomentumOptimizer: momentum must be in [0, 1)");
}

void MomentumOptimizer::reset(std::size_t num_params) {
  velocity_.assign(num_params, 0.0);
}

void MomentumOptimizer::step(std::span<double> params,
                             std::span<const double> grad) {
  check_sizes(params, grad, "MomentumOptimizer::step");
  check_state(velocity_.size(), params.size(), "MomentumOptimizer::step");
  for (std::size_t i = 0; i < params.size(); ++i) {
    velocity_[i] = mu_ * velocity_[i] + grad[i];
    params[i] -= lr_ * velocity_[i];
  }
}

std::unique_ptr<Optimizer> MomentumOptimizer::clone() const {
  return std::make_unique<MomentumOptimizer>(lr_, mu_);
}

// --- Nesterov ---------------------------------------------------------------

NesterovOptimizer::NesterovOptimizer(double learning_rate, double momentum)
    : lr_(learning_rate), mu_(momentum) {
  check_lr(lr_, "NesterovOptimizer");
  QBARREN_REQUIRE(mu_ >= 0.0 && mu_ < 1.0,
                  "NesterovOptimizer: momentum must be in [0, 1)");
}

void NesterovOptimizer::reset(std::size_t num_params) {
  velocity_.assign(num_params, 0.0);
}

void NesterovOptimizer::step(std::span<double> params,
                             std::span<const double> grad) {
  check_sizes(params, grad, "NesterovOptimizer::step");
  check_state(velocity_.size(), params.size(), "NesterovOptimizer::step");
  // PyTorch-style Nesterov: v <- mu v + g; update with g + mu v.
  for (std::size_t i = 0; i < params.size(); ++i) {
    velocity_[i] = mu_ * velocity_[i] + grad[i];
    params[i] -= lr_ * (grad[i] + mu_ * velocity_[i]);
  }
}

std::unique_ptr<Optimizer> NesterovOptimizer::clone() const {
  return std::make_unique<NesterovOptimizer>(lr_, mu_);
}

// --- RMSProp ----------------------------------------------------------------

RmsPropOptimizer::RmsPropOptimizer(double learning_rate, double alpha,
                                   double epsilon)
    : lr_(learning_rate), alpha_(alpha), eps_(epsilon) {
  check_lr(lr_, "RmsPropOptimizer");
  QBARREN_REQUIRE(alpha_ > 0.0 && alpha_ < 1.0,
                  "RmsPropOptimizer: alpha must be in (0, 1)");
  QBARREN_REQUIRE(eps_ > 0.0, "RmsPropOptimizer: epsilon must be positive");
}

void RmsPropOptimizer::reset(std::size_t num_params) {
  sq_avg_.assign(num_params, 0.0);
}

void RmsPropOptimizer::step(std::span<double> params,
                            std::span<const double> grad) {
  check_sizes(params, grad, "RmsPropOptimizer::step");
  check_state(sq_avg_.size(), params.size(), "RmsPropOptimizer::step");
  for (std::size_t i = 0; i < params.size(); ++i) {
    sq_avg_[i] = alpha_ * sq_avg_[i] + (1.0 - alpha_) * grad[i] * grad[i];
    params[i] -= lr_ * grad[i] / (std::sqrt(sq_avg_[i]) + eps_);
  }
}

std::unique_ptr<Optimizer> RmsPropOptimizer::clone() const {
  return std::make_unique<RmsPropOptimizer>(lr_, alpha_, eps_);
}

// --- Adam -------------------------------------------------------------------

AdamOptimizer::AdamOptimizer(double learning_rate, double beta1, double beta2,
                             double epsilon)
    : lr_(learning_rate), beta1_(beta1), beta2_(beta2), eps_(epsilon) {
  check_lr(lr_, "AdamOptimizer");
  QBARREN_REQUIRE(beta1_ >= 0.0 && beta1_ < 1.0,
                  "AdamOptimizer: beta1 must be in [0, 1)");
  QBARREN_REQUIRE(beta2_ >= 0.0 && beta2_ < 1.0,
                  "AdamOptimizer: beta2 must be in [0, 1)");
  QBARREN_REQUIRE(eps_ > 0.0, "AdamOptimizer: epsilon must be positive");
}

void AdamOptimizer::reset(std::size_t num_params) {
  t_ = 0;
  m_.assign(num_params, 0.0);
  v_.assign(num_params, 0.0);
}

void AdamOptimizer::step(std::span<double> params,
                         std::span<const double> grad) {
  check_sizes(params, grad, "AdamOptimizer::step");
  check_state(m_.size(), params.size(), "AdamOptimizer::step");
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    m_[i] = beta1_ * m_[i] + (1.0 - beta1_) * grad[i];
    v_[i] = beta2_ * v_[i] + (1.0 - beta2_) * grad[i] * grad[i];
    const double m_hat = m_[i] / bc1;
    const double v_hat = v_[i] / bc2;
    params[i] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
  }
}

std::unique_ptr<Optimizer> AdamOptimizer::clone() const {
  return std::make_unique<AdamOptimizer>(lr_, beta1_, beta2_, eps_);
}

// --- AMSGrad ----------------------------------------------------------------

AmsGradOptimizer::AmsGradOptimizer(double learning_rate, double beta1,
                                   double beta2, double epsilon)
    : lr_(learning_rate), beta1_(beta1), beta2_(beta2), eps_(epsilon) {
  check_lr(lr_, "AmsGradOptimizer");
  QBARREN_REQUIRE(beta1_ >= 0.0 && beta1_ < 1.0,
                  "AmsGradOptimizer: beta1 must be in [0, 1)");
  QBARREN_REQUIRE(beta2_ >= 0.0 && beta2_ < 1.0,
                  "AmsGradOptimizer: beta2 must be in [0, 1)");
  QBARREN_REQUIRE(eps_ > 0.0, "AmsGradOptimizer: epsilon must be positive");
}

void AmsGradOptimizer::reset(std::size_t num_params) {
  t_ = 0;
  m_.assign(num_params, 0.0);
  v_.assign(num_params, 0.0);
  v_hat_max_.assign(num_params, 0.0);
}

void AmsGradOptimizer::step(std::span<double> params,
                            std::span<const double> grad) {
  check_sizes(params, grad, "AmsGradOptimizer::step");
  check_state(m_.size(), params.size(), "AmsGradOptimizer::step");
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    m_[i] = beta1_ * m_[i] + (1.0 - beta1_) * grad[i];
    v_[i] = beta2_ * v_[i] + (1.0 - beta2_) * grad[i] * grad[i];
    const double m_hat = m_[i] / bc1;
    const double v_hat = v_[i] / bc2;
    v_hat_max_[i] = std::max(v_hat_max_[i], v_hat);
    params[i] -= lr_ * m_hat / (std::sqrt(v_hat_max_[i]) + eps_);
  }
}

std::unique_ptr<Optimizer> AmsGradOptimizer::clone() const {
  return std::make_unique<AmsGradOptimizer>(lr_, beta1_, beta2_, eps_);
}

// --- AdaGrad ----------------------------------------------------------------

AdaGradOptimizer::AdaGradOptimizer(double learning_rate, double epsilon)
    : lr_(learning_rate), eps_(epsilon) {
  check_lr(lr_, "AdaGradOptimizer");
  QBARREN_REQUIRE(eps_ > 0.0, "AdaGradOptimizer: epsilon must be positive");
}

void AdaGradOptimizer::reset(std::size_t num_params) {
  sum_sq_.assign(num_params, 0.0);
}

void AdaGradOptimizer::step(std::span<double> params,
                            std::span<const double> grad) {
  check_sizes(params, grad, "AdaGradOptimizer::step");
  check_state(sum_sq_.size(), params.size(), "AdaGradOptimizer::step");
  for (std::size_t i = 0; i < params.size(); ++i) {
    sum_sq_[i] += grad[i] * grad[i];
    params[i] -= lr_ * grad[i] / (std::sqrt(sum_sq_[i]) + eps_);
  }
}

std::unique_ptr<Optimizer> AdaGradOptimizer::clone() const {
  return std::make_unique<AdaGradOptimizer>(lr_, eps_);
}

// --- Adadelta ---------------------------------------------------------------

AdadeltaOptimizer::AdadeltaOptimizer(double rho, double epsilon)
    : rho_(rho), eps_(epsilon) {
  QBARREN_REQUIRE(rho_ > 0.0 && rho_ < 1.0,
                  "AdadeltaOptimizer: rho must be in (0, 1)");
  QBARREN_REQUIRE(eps_ > 0.0, "AdadeltaOptimizer: epsilon must be positive");
}

void AdadeltaOptimizer::reset(std::size_t num_params) {
  sq_grad_avg_.assign(num_params, 0.0);
  sq_update_avg_.assign(num_params, 0.0);
}

void AdadeltaOptimizer::step(std::span<double> params,
                             std::span<const double> grad) {
  check_sizes(params, grad, "AdadeltaOptimizer::step");
  check_state(sq_grad_avg_.size(), params.size(), "AdadeltaOptimizer::step");
  for (std::size_t i = 0; i < params.size(); ++i) {
    sq_grad_avg_[i] =
        rho_ * sq_grad_avg_[i] + (1.0 - rho_) * grad[i] * grad[i];
    const double update = std::sqrt((sq_update_avg_[i] + eps_) /
                                    (sq_grad_avg_[i] + eps_)) *
                          grad[i];
    sq_update_avg_[i] =
        rho_ * sq_update_avg_[i] + (1.0 - rho_) * update * update;
    params[i] -= update;
  }
}

std::unique_ptr<Optimizer> AdadeltaOptimizer::clone() const {
  return std::make_unique<AdadeltaOptimizer>(rho_, eps_);
}

// --- factory ----------------------------------------------------------------

std::unique_ptr<Optimizer> make_optimizer(const std::string& name,
                                          double learning_rate) {
  if (name == "gradient-descent" || name == "gd") {
    return std::make_unique<GradientDescent>(learning_rate);
  }
  if (name == "momentum") {
    return std::make_unique<MomentumOptimizer>(learning_rate);
  }
  if (name == "nesterov") {
    return std::make_unique<NesterovOptimizer>(learning_rate);
  }
  if (name == "rmsprop") {
    return std::make_unique<RmsPropOptimizer>(learning_rate);
  }
  if (name == "adam") {
    return std::make_unique<AdamOptimizer>(learning_rate);
  }
  if (name == "amsgrad") {
    return std::make_unique<AmsGradOptimizer>(learning_rate);
  }
  if (name == "adagrad") {
    return std::make_unique<AdaGradOptimizer>(learning_rate);
  }
  if (name == "adadelta") {
    return std::make_unique<AdadeltaOptimizer>();
  }
  throw NotFound("make_optimizer: unknown optimizer '" + name + "'");
}

}  // namespace qbarren
