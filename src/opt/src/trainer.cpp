#include "qbarren/opt/trainer.hpp"

#include <cmath>

namespace qbarren {

TrainResult train(const CostFunction& cost, const GradientEngine& engine,
                  Optimizer& optimizer, std::vector<double> initial_params,
                  const TrainOptions& options) {
  QBARREN_REQUIRE(initial_params.size() == cost.num_parameters(),
                  "train: initial parameter count mismatch");

  TrainResult result;
  result.final_params = std::move(initial_params);
  optimizer.reset(result.final_params.size());

  const Circuit& circuit = cost.circuit();
  const Observable& observable = cost.observable();

  double loss = cost.value(result.final_params);
  result.initial_loss = loss;
  result.loss_history.push_back(loss);

  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    if (loss <= options.target_loss) {
      result.reached_target = true;
      break;
    }
    const ValueAndGradient vg =
        engine.value_and_gradient(circuit, observable, result.final_params);
    if (options.record_gradient_norms) {
      double norm2 = 0.0;
      for (double g : vg.gradient) {
        norm2 += g * g;
      }
      result.gradient_norm_history.push_back(std::sqrt(norm2));
    }
    optimizer.step(result.final_params, vg.gradient);
    loss = cost.value(result.final_params);
    result.loss_history.push_back(loss);
    ++result.iterations;
  }
  if (loss <= options.target_loss) {
    result.reached_target = true;
  }
  result.final_loss = loss;
  return result;
}

}  // namespace qbarren
