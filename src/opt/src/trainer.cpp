#include "qbarren/opt/trainer.hpp"

#include <chrono>
#include <cmath>

#include "qbarren/exec/compiled_circuit.hpp"

namespace qbarren {

namespace {

bool all_finite(std::span<const double> xs) {
  for (const double x : xs) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

}  // namespace

TrainResult train(const CostFunction& cost, const GradientEngine& engine,
                  Optimizer& optimizer, std::vector<double> initial_params,
                  const TrainOptions& options) {
  QBARREN_REQUIRE(initial_params.size() == cost.num_parameters(),
                  "train: initial parameter count mismatch");
  QBARREN_REQUIRE(!(options.deadline_seconds < 0.0),
                  "train: deadline must be non-negative");
  QBARREN_REQUIRE(
      options.non_finite_policy != NonFinitePolicy::kFallbackEngine ||
          options.fallback_engine != nullptr,
      "train: kFallbackEngine policy requires a fallback engine");

  const auto start = std::chrono::steady_clock::now();
  const auto elapsed_seconds = [&start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  TrainResult result;
  result.final_params = std::move(initial_params);
  optimizer.reset(result.final_params.size());

  const Circuit& circuit = cost.circuit();
  const Observable& observable = cost.observable();
  // Lower once up front: every cost evaluation and gradient across all
  // iterations reuses the same compiled plan.
  static_cast<void>(exec::plan_for(circuit));

  double loss = cost.value(result.final_params);
  result.initial_loss = loss;
  result.loss_history.push_back(loss);
  if (!std::isfinite(loss)) {
    // A non-finite *initial* loss cannot be retried with another gradient
    // engine; it either throws or marks the (empty) series aborted.
    if (options.non_finite_policy == NonFinitePolicy::kThrow) {
      throw NumericalError("train: non-finite initial loss");
    }
    result.aborted_non_finite = true;
    result.final_loss = loss;
    return result;
  }

  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    if (options.cancel != nullptr) {
      options.cancel->throw_if_cancelled("train at iteration " +
                                         std::to_string(it));
    }
    if (elapsed_seconds() >= options.deadline_seconds) {
      result.hit_deadline = true;
      break;
    }
    if (loss <= options.target_loss) {
      result.reached_target = true;
      break;
    }

    ValueAndGradient vg =
        engine.value_and_gradient(circuit, observable, result.final_params);
    if (!std::isfinite(vg.value) || !all_finite(vg.gradient)) {
      switch (options.non_finite_policy) {
        case NonFinitePolicy::kThrow:
          throw NumericalError(
              "train: engine '" + engine.name() +
              "' produced a non-finite loss/gradient at iteration " +
              std::to_string(it));
        case NonFinitePolicy::kAbortSeries:
          result.aborted_non_finite = true;
          break;
        case NonFinitePolicy::kFallbackEngine:
          vg = options.fallback_engine->value_and_gradient(
              circuit, observable, result.final_params);
          ++result.fallback_invocations;
          if (!std::isfinite(vg.value) || !all_finite(vg.gradient)) {
            throw NumericalError(
                "train: fallback engine '" +
                options.fallback_engine->name() +
                "' also produced a non-finite loss/gradient at iteration " +
                std::to_string(it));
          }
          break;
      }
      if (result.aborted_non_finite) {
        break;
      }
    }

    if (options.record_gradient_norms) {
      double norm2 = 0.0;
      for (double g : vg.gradient) {
        norm2 += g * g;
      }
      result.gradient_norm_history.push_back(std::sqrt(norm2));
    }
    optimizer.step(result.final_params, vg.gradient);
    loss = cost.value(result.final_params);
    result.loss_history.push_back(loss);
    ++result.iterations;
    if (!std::isfinite(loss)) {
      if (options.non_finite_policy == NonFinitePolicy::kThrow) {
        throw NumericalError("train: non-finite loss after iteration " +
                             std::to_string(it));
      }
      // Recorded in the history above; stop this series (a fallback
      // engine cannot fix a diverged parameter vector either).
      result.aborted_non_finite = true;
      break;
    }
  }
  if (std::isfinite(loss) && loss <= options.target_loss) {
    result.reached_target = true;
  }
  result.final_loss = loss;
  return result;
}

}  // namespace qbarren
