#include "qbarren/qsim/statevector.hpp"

#include <cmath>

namespace qbarren {

namespace {
constexpr std::size_t kMaxQubits = 28;

bool is_power_of_two(std::size_t x) { return x != 0 && (x & (x - 1)) == 0; }
}  // namespace

StateVector::StateVector(std::size_t num_qubits) : num_qubits_(num_qubits) {
  QBARREN_REQUIRE(num_qubits >= 1 && num_qubits <= kMaxQubits,
                  "StateVector: qubit count out of supported range");
  amps_.assign(std::size_t{1} << num_qubits, Complex{0.0, 0.0});
  amps_[0] = Complex{1.0, 0.0};
}

StateVector::StateVector(std::size_t num_qubits,
                         std::vector<Complex> amplitudes)
    : num_qubits_(num_qubits), amps_(std::move(amplitudes)) {
  QBARREN_REQUIRE(num_qubits >= 1 && num_qubits <= kMaxQubits,
                  "StateVector: qubit count out of supported range");
  QBARREN_REQUIRE(is_power_of_two(amps_.size()) &&
                      amps_.size() == (std::size_t{1} << num_qubits),
                  "StateVector: amplitude count must equal 2^num_qubits");
}

void StateVector::reset() {
  std::fill(amps_.begin(), amps_.end(), Complex{0.0, 0.0});
  amps_[0] = Complex{1.0, 0.0};
}

Complex StateVector::amplitude(std::size_t basis_index) const {
  QBARREN_REQUIRE(basis_index < amps_.size(),
                  "StateVector::amplitude: basis index out of range");
  return amps_[basis_index];
}

void StateVector::check_qubit(std::size_t q, const char* who) const {
  if (q >= num_qubits_) {
    throw InvalidArgument(std::string(who) + ": qubit index out of range");
  }
}

void StateVector::apply_single_qubit(const ComplexMatrix& u,
                                     std::size_t target) {
  check_qubit(target, "apply_single_qubit");
  QBARREN_REQUIRE(u.rows() == 2 && u.cols() == 2,
                  "apply_single_qubit: matrix must be 2x2");
  const Complex u00 = u.at_unchecked(0, 0);
  const Complex u01 = u.at_unchecked(0, 1);
  const Complex u10 = u.at_unchecked(1, 0);
  const Complex u11 = u.at_unchecked(1, 1);

  const std::size_t bit = std::size_t{1} << target;
  const std::size_t dim = amps_.size();
  // Enumerate indices with the target bit clear by splitting the index into
  // high (above target) and low (below target) parts.
  const std::size_t low_mask = bit - 1;
  for (std::size_t i = 0; i < dim / 2; ++i) {
    const std::size_t i0 = ((i & ~low_mask) << 1) | (i & low_mask);
    const std::size_t i1 = i0 | bit;
    const Complex a0 = amps_[i0];
    const Complex a1 = amps_[i1];
    amps_[i0] = u00 * a0 + u01 * a1;
    amps_[i1] = u10 * a0 + u11 * a1;
  }
}

void StateVector::apply_controlled(const ComplexMatrix& u, std::size_t control,
                                   std::size_t target) {
  check_qubit(control, "apply_controlled");
  check_qubit(target, "apply_controlled");
  QBARREN_REQUIRE(control != target,
                  "apply_controlled: control and target must differ");
  QBARREN_REQUIRE(u.rows() == 2 && u.cols() == 2,
                  "apply_controlled: matrix must be 2x2");
  const Complex u00 = u.at_unchecked(0, 0);
  const Complex u01 = u.at_unchecked(0, 1);
  const Complex u10 = u.at_unchecked(1, 0);
  const Complex u11 = u.at_unchecked(1, 1);

  const std::size_t cbit = std::size_t{1} << control;
  const std::size_t tbit = std::size_t{1} << target;
  const std::size_t dim = amps_.size();
  for (std::size_t i0 = 0; i0 < dim; ++i0) {
    if ((i0 & cbit) == 0 || (i0 & tbit) != 0) continue;
    const std::size_t i1 = i0 | tbit;
    const Complex a0 = amps_[i0];
    const Complex a1 = amps_[i1];
    amps_[i0] = u00 * a0 + u01 * a1;
    amps_[i1] = u10 * a0 + u11 * a1;
  }
}

void StateVector::apply_cz(std::size_t a, std::size_t b) {
  check_qubit(a, "apply_cz");
  check_qubit(b, "apply_cz");
  QBARREN_REQUIRE(a != b, "apply_cz: qubits must differ");
  const std::size_t mask = (std::size_t{1} << a) | (std::size_t{1} << b);
  const std::size_t dim = amps_.size();
  for (std::size_t i = 0; i < dim; ++i) {
    if ((i & mask) == mask) {
      amps_[i] = -amps_[i];
    }
  }
}

void StateVector::apply_two_qubit(const ComplexMatrix& u, std::size_t q_low,
                                  std::size_t q_high) {
  check_qubit(q_low, "apply_two_qubit");
  check_qubit(q_high, "apply_two_qubit");
  QBARREN_REQUIRE(q_low != q_high, "apply_two_qubit: qubits must differ");
  QBARREN_REQUIRE(u.rows() == 4 && u.cols() == 4,
                  "apply_two_qubit: matrix must be 4x4");

  const std::size_t bl = std::size_t{1} << q_low;
  const std::size_t bh = std::size_t{1} << q_high;
  const std::size_t dim = amps_.size();

  Complex m[4][4];
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      m[r][c] = u.at_unchecked(r, c);
    }
  }

  for (std::size_t i = 0; i < dim; ++i) {
    if ((i & bl) != 0 || (i & bh) != 0) continue;  // base of each 4-group
    const std::size_t idx[4] = {i, i | bl, i | bh, i | bl | bh};
    Complex in[4];
    for (std::size_t k = 0; k < 4; ++k) {
      in[k] = amps_[idx[k]];
    }
    for (std::size_t r = 0; r < 4; ++r) {
      Complex acc{0.0, 0.0};
      for (std::size_t c = 0; c < 4; ++c) {
        acc += m[r][c] * in[c];
      }
      amps_[idx[r]] = acc;
    }
  }
}

double StateVector::norm_squared() const {
  double acc = 0.0;
  for (const Complex& a : amps_) {
    acc += std::norm(a);
  }
  return acc;
}

void StateVector::normalize() {
  const double n2 = norm_squared();
  if (n2 <= 0.0) {
    throw NumericalError("StateVector::normalize: zero vector");
  }
  const double inv = 1.0 / std::sqrt(n2);
  for (Complex& a : amps_) {
    a *= inv;
  }
}

double StateVector::probability(std::size_t basis_index) const {
  QBARREN_REQUIRE(basis_index < amps_.size(),
                  "StateVector::probability: basis index out of range");
  return std::norm(amps_[basis_index]);
}

double StateVector::probability_one(std::size_t q) const {
  check_qubit(q, "probability_one");
  const std::size_t bit = std::size_t{1} << q;
  double acc = 0.0;
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    if (i & bit) {
      acc += std::norm(amps_[i]);
    }
  }
  return acc;
}

std::vector<double> StateVector::probabilities() const {
  std::vector<double> out(amps_.size());
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    out[i] = std::norm(amps_[i]);
  }
  return out;
}

Complex StateVector::inner_product(const StateVector& other) const {
  QBARREN_REQUIRE(amps_.size() == other.amps_.size(),
                  "inner_product: dimension mismatch");
  Complex acc{0.0, 0.0};
  for (std::size_t i = 0; i < amps_.size(); ++i) {
    acc += std::conj(amps_[i]) * other.amps_[i];
  }
  return acc;
}

double StateVector::fidelity(const StateVector& other) const {
  return std::norm(inner_product(other));
}

double StateVector::expectation_z(std::size_t q) const {
  // <Z_q> = p(q = 0) - p(q = 1) = 1 - 2 p(q = 1).
  return 1.0 - 2.0 * probability_one(q);
}

ComplexMatrix embed_single_qubit(const ComplexMatrix& u, std::size_t target,
                                 std::size_t num_qubits) {
  QBARREN_REQUIRE(u.rows() == 2 && u.cols() == 2,
                  "embed_single_qubit: matrix must be 2x2");
  QBARREN_REQUIRE(target < num_qubits,
                  "embed_single_qubit: target out of range");
  // kron builds from the most-significant factor down: qubit (n-1) is the
  // leftmost tensor factor.
  const ComplexMatrix id2 = ComplexMatrix::identity(2);
  ComplexMatrix out = ComplexMatrix::identity(1);
  for (std::size_t q = num_qubits; q-- > 0;) {
    out = kron(out, q == target ? u : id2);
  }
  return out;
}

ComplexMatrix embed_two_qubit(const ComplexMatrix& u, std::size_t q_low,
                              std::size_t q_high, std::size_t num_qubits) {
  QBARREN_REQUIRE(u.rows() == 4 && u.cols() == 4,
                  "embed_two_qubit: matrix must be 4x4");
  QBARREN_REQUIRE(q_low < num_qubits && q_high < num_qubits &&
                      q_low != q_high,
                  "embed_two_qubit: bad qubit pair");
  const std::size_t dim = std::size_t{1} << num_qubits;
  const std::size_t bl = std::size_t{1} << q_low;
  const std::size_t bh = std::size_t{1} << q_high;
  ComplexMatrix out(dim, dim);
  for (std::size_t col = 0; col < dim; ++col) {
    const std::size_t in_pair =
        ((col & bl) ? 1u : 0u) | ((col & bh) ? 2u : 0u);
    const std::size_t base = col & ~(bl | bh);
    for (std::size_t out_pair = 0; out_pair < 4; ++out_pair) {
      const Complex v = u.at_unchecked(out_pair, in_pair);
      if (v == Complex{0.0, 0.0}) continue;
      const std::size_t row =
          base | ((out_pair & 1u) ? bl : 0u) | ((out_pair & 2u) ? bh : 0u);
      out.at_unchecked(row, col) = v;
    }
  }
  return out;
}

}  // namespace qbarren
