#include "qbarren/qsim/sampling.hpp"

#include <algorithm>
#include <cmath>

namespace qbarren {

std::vector<std::size_t> sample_basis_states(const StateVector& state,
                                             std::size_t shots, Rng& rng) {
  QBARREN_REQUIRE(shots >= 1, "sample_basis_states: need >= 1 shot");
  QBARREN_REQUIRE(std::abs(state.norm_squared() - 1.0) < 1e-8,
                  "sample_basis_states: state is not normalized");

  // Cumulative distribution over basis states.
  const std::size_t dim = state.dimension();
  std::vector<double> cdf(dim);
  double acc = 0.0;
  for (std::size_t i = 0; i < dim; ++i) {
    acc += std::norm(state.amplitudes()[i]);
    cdf[i] = acc;
  }
  cdf[dim - 1] = 1.0;  // guard against roundoff at the top

  std::vector<std::size_t> outcomes(shots);
  for (std::size_t s = 0; s < shots; ++s) {
    const double u = rng.uniform(0.0, 1.0);
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    outcomes[s] = static_cast<std::size_t>(it - cdf.begin());
  }
  return outcomes;
}

std::map<std::size_t, std::size_t> sample_counts(const StateVector& state,
                                                 std::size_t shots,
                                                 Rng& rng) {
  std::map<std::size_t, std::size_t> counts;
  for (const std::size_t outcome : sample_basis_states(state, shots, rng)) {
    ++counts[outcome];
  }
  return counts;
}

double estimate_probability(const StateVector& state, std::size_t basis_index,
                            std::size_t shots, Rng& rng) {
  QBARREN_REQUIRE(basis_index < state.dimension(),
                  "estimate_probability: basis index out of range");
  std::size_t hits = 0;
  for (const std::size_t outcome : sample_basis_states(state, shots, rng)) {
    if (outcome == basis_index) {
      ++hits;
    }
  }
  return static_cast<double>(hits) / static_cast<double>(shots);
}

double estimate_global_cost(const StateVector& state, std::size_t shots,
                            Rng& rng) {
  return 1.0 - estimate_probability(state, 0, shots, rng);
}

double shot_noise_stderr(double p, std::size_t shots) {
  QBARREN_REQUIRE(p >= 0.0 && p <= 1.0,
                  "shot_noise_stderr: p must be in [0, 1]");
  QBARREN_REQUIRE(shots >= 1, "shot_noise_stderr: need >= 1 shot");
  return std::sqrt(p * (1.0 - p) / static_cast<double>(shots));
}

}  // namespace qbarren
