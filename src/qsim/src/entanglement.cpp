#include "qbarren/qsim/entanglement.hpp"

namespace qbarren {

ComplexMatrix reduced_density_matrix_1q(const StateVector& state,
                                        std::size_t qubit) {
  QBARREN_REQUIRE(qubit < state.num_qubits(),
                  "reduced_density_matrix_1q: qubit out of range");
  const std::size_t bit = std::size_t{1} << qubit;
  const auto& amps = state.amplitudes();

  // rho_ab = sum over basis states with qubit = a (rows) against the same
  // rest-configuration with qubit = b.
  ComplexMatrix rho(2, 2);
  for (std::size_t i = 0; i < amps.size(); ++i) {
    if (i & bit) continue;  // enumerate rest-configurations via qubit=0 states
    const Complex a0 = amps[i];
    const Complex a1 = amps[i | bit];
    rho.at_unchecked(0, 0) += a0 * std::conj(a0);
    rho.at_unchecked(0, 1) += a0 * std::conj(a1);
    rho.at_unchecked(1, 0) += a1 * std::conj(a0);
    rho.at_unchecked(1, 1) += a1 * std::conj(a1);
  }
  return rho;
}

double single_qubit_purity(const StateVector& state, std::size_t qubit) {
  const ComplexMatrix rho = reduced_density_matrix_1q(state, qubit);
  double acc = 0.0;
  for (const Complex& v : rho.data()) {
    acc += std::norm(v);
  }
  return acc;
}

double meyer_wallach(const StateVector& state) {
  double mean_purity = 0.0;
  for (std::size_t q = 0; q < state.num_qubits(); ++q) {
    mean_purity += single_qubit_purity(state, q);
  }
  mean_purity /= static_cast<double>(state.num_qubits());
  return 2.0 * (1.0 - mean_purity);
}

}  // namespace qbarren
