#include "qbarren/qsim/gates.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>

namespace qbarren::gates {

namespace {
constexpr Complex kI{0.0, 1.0};

ComplexMatrix make2(Complex a, Complex b, Complex c, Complex d) {
  return ComplexMatrix(2, 2, {a, b, c, d});
}
}  // namespace

ComplexMatrix identity2() { return make2(1, 0, 0, 1); }

ComplexMatrix pauli_x() { return make2(0, 1, 1, 0); }

ComplexMatrix pauli_y() { return make2(0, -kI, kI, 0); }

ComplexMatrix pauli_z() { return make2(1, 0, 0, -1); }

ComplexMatrix hadamard() {
  const double s = 1.0 / std::sqrt(2.0);
  return make2(s, s, s, -s);
}

ComplexMatrix s_gate() { return make2(1, 0, 0, kI); }

ComplexMatrix t_gate() {
  return make2(1, 0, 0, std::exp(kI * (M_PI / 4.0)));
}

ComplexMatrix rx(double theta) {
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  return make2(c, -kI * s, -kI * s, c);
}

ComplexMatrix ry(double theta) {
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  return make2(c, -s, s, c);
}

ComplexMatrix rz(double theta) {
  return make2(std::exp(-kI * (theta / 2.0)), 0, 0,
               std::exp(kI * (theta / 2.0)));
}

ComplexMatrix phase(double theta) {
  return make2(1, 0, 0, std::exp(kI * theta));
}

ComplexMatrix u3(double theta, double phi, double lambda) {
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  return make2(c, -std::exp(kI * lambda) * s, std::exp(kI * phi) * s,
               std::exp(kI * (phi + lambda)) * c);
}

ComplexMatrix cz() {
  ComplexMatrix m = ComplexMatrix::identity(4);
  m(3, 3) = -1.0;
  return m;
}

ComplexMatrix cnot() {
  // Control = low-order qubit (bit 0), target = bit 1: basis order
  // |q1 q0> = 00,01,10,11 -> flips target when bit 0 is set.
  ComplexMatrix m(4, 4);
  m(0, 0) = 1.0;
  m(3, 1) = 1.0;
  m(2, 2) = 1.0;
  m(1, 3) = 1.0;
  return m;
}

ComplexMatrix swap() {
  ComplexMatrix m(4, 4);
  m(0, 0) = 1.0;
  m(2, 1) = 1.0;
  m(1, 2) = 1.0;
  m(3, 3) = 1.0;
  return m;
}

ComplexMatrix crz(double theta) {
  // Control = low-order qubit: rows/cols ordered |q1 q0>.
  ComplexMatrix m = ComplexMatrix::identity(4);
  m(1, 1) = std::exp(-kI * (theta / 2.0));
  m(3, 3) = std::exp(kI * (theta / 2.0));
  return m;
}

ComplexMatrix pauli(Axis axis) {
  switch (axis) {
    case Axis::kX:
      return pauli_x();
    case Axis::kY:
      return pauli_y();
    case Axis::kZ:
      return pauli_z();
  }
  throw InvalidArgument("pauli: invalid axis");
}

ComplexMatrix rotation(Axis axis, double theta) {
  switch (axis) {
    case Axis::kX:
      return rx(theta);
    case Axis::kY:
      return ry(theta);
    case Axis::kZ:
      return rz(theta);
  }
  throw InvalidArgument("rotation: invalid axis");
}

ComplexMatrix rotation_derivative(Axis axis, double theta) {
  const ComplexMatrix r = rotation(axis, theta);
  const ComplexMatrix p = pauli(axis);
  return (Complex(0.0, -0.5)) * (p * r);
}

std::string axis_name(Axis axis) {
  switch (axis) {
    case Axis::kX:
      return "RX";
    case Axis::kY:
      return "RY";
    case Axis::kZ:
      return "RZ";
  }
  return "R?";
}

Axis axis_from_name(const std::string& name) {
  std::string upper = name;
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char ch) { return std::toupper(ch); });
  if (upper == "RX" || upper == "X") return Axis::kX;
  if (upper == "RY" || upper == "Y") return Axis::kY;
  if (upper == "RZ" || upper == "Z") return Axis::kZ;
  throw NotFound("axis_from_name: unknown rotation axis '" + name + "'");
}

}  // namespace qbarren::gates
