#include "qbarren/qsim/gates.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>

namespace qbarren::gates {

namespace {
constexpr Complex kI{0.0, 1.0};

ComplexMatrix make2(Complex a, Complex b, Complex c, Complex d) {
  return ComplexMatrix(2, 2, {a, b, c, d});
}
}  // namespace

const ComplexMatrix& identity2() {
  static const ComplexMatrix m = make2(1, 0, 0, 1);
  return m;
}

const ComplexMatrix& pauli_x() {
  static const ComplexMatrix m = make2(0, 1, 1, 0);
  return m;
}

const ComplexMatrix& pauli_y() {
  static const ComplexMatrix m = make2(0, -kI, kI, 0);
  return m;
}

const ComplexMatrix& pauli_z() {
  static const ComplexMatrix m = make2(1, 0, 0, -1);
  return m;
}

const ComplexMatrix& hadamard() {
  static const ComplexMatrix m = [] {
    const double s = 1.0 / std::sqrt(2.0);
    return make2(s, s, s, -s);
  }();
  return m;
}

const ComplexMatrix& s_gate() {
  static const ComplexMatrix m = make2(1, 0, 0, kI);
  return m;
}

const ComplexMatrix& t_gate() {
  static const ComplexMatrix m = make2(1, 0, 0, std::exp(kI * (M_PI / 4.0)));
  return m;
}

namespace {
Mat2 rx_entries(double theta) {
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  return {c, -kI * s, -kI * s, c};
}

Mat2 ry_entries(double theta) {
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  return {c, -s, s, c};
}

Mat2 rz_entries(double theta) {
  return {std::exp(-kI * (theta / 2.0)), 0.0, 0.0,
          std::exp(kI * (theta / 2.0))};
}
}  // namespace

ComplexMatrix rx(double theta) {
  const Mat2 e = rx_entries(theta);
  return make2(e.m00, e.m01, e.m10, e.m11);
}

ComplexMatrix ry(double theta) {
  const Mat2 e = ry_entries(theta);
  return make2(e.m00, e.m01, e.m10, e.m11);
}

ComplexMatrix rz(double theta) {
  const Mat2 e = rz_entries(theta);
  return make2(e.m00, e.m01, e.m10, e.m11);
}

ComplexMatrix phase(double theta) {
  return make2(1, 0, 0, std::exp(kI * theta));
}

ComplexMatrix u3(double theta, double phi, double lambda) {
  const double c = std::cos(theta / 2.0);
  const double s = std::sin(theta / 2.0);
  return make2(c, -std::exp(kI * lambda) * s, std::exp(kI * phi) * s,
               std::exp(kI * (phi + lambda)) * c);
}

const ComplexMatrix& cz() {
  static const ComplexMatrix cached = [] {
    ComplexMatrix m = ComplexMatrix::identity(4);
    m(3, 3) = -1.0;
    return m;
  }();
  return cached;
}

const ComplexMatrix& cnot() {
  // Control = low-order qubit (bit 0), target = bit 1: basis order
  // |q1 q0> = 00,01,10,11 -> flips target when bit 0 is set.
  static const ComplexMatrix cached = [] {
    ComplexMatrix m(4, 4);
    m(0, 0) = 1.0;
    m(3, 1) = 1.0;
    m(2, 2) = 1.0;
    m(1, 3) = 1.0;
    return m;
  }();
  return cached;
}

const ComplexMatrix& swap() {
  static const ComplexMatrix cached = [] {
    ComplexMatrix m(4, 4);
    m(0, 0) = 1.0;
    m(2, 1) = 1.0;
    m(1, 2) = 1.0;
    m(3, 3) = 1.0;
    return m;
  }();
  return cached;
}

ComplexMatrix crz(double theta) {
  // Control = low-order qubit: rows/cols ordered |q1 q0>.
  ComplexMatrix m = ComplexMatrix::identity(4);
  m(1, 1) = std::exp(-kI * (theta / 2.0));
  m(3, 3) = std::exp(kI * (theta / 2.0));
  return m;
}

ComplexMatrix pauli(Axis axis) {
  switch (axis) {
    case Axis::kX:
      return pauli_x();
    case Axis::kY:
      return pauli_y();
    case Axis::kZ:
      return pauli_z();
  }
  throw InvalidArgument("pauli: invalid axis");
}

ComplexMatrix rotation(Axis axis, double theta) {
  switch (axis) {
    case Axis::kX:
      return rx(theta);
    case Axis::kY:
      return ry(theta);
    case Axis::kZ:
      return rz(theta);
  }
  throw InvalidArgument("rotation: invalid axis");
}

ComplexMatrix rotation_derivative(Axis axis, double theta) {
  const ComplexMatrix r = rotation(axis, theta);
  const ComplexMatrix p = pauli(axis);
  return (Complex(0.0, -0.5)) * (p * r);
}

Mat2 rotation_entries(Axis axis, double theta) {
  switch (axis) {
    case Axis::kX:
      return rx_entries(theta);
    case Axis::kY:
      return ry_entries(theta);
    case Axis::kZ:
      return rz_entries(theta);
  }
  throw InvalidArgument("rotation_entries: invalid axis");
}

Mat2 rotation_derivative_entries(Axis axis, double theta) {
  return rotation_derivative_entries_from(axis, rotation_entries(axis, theta));
}

Mat2 rotation_derivative_entries_from(Axis axis, const Mat2& r) {
  // Mirrors rotation_derivative() term by term: (-i/2) * (P * R) with the
  // dense matmul's accumulation semantics (zero Pauli entries skipped, the
  // accumulator starting from Complex{}), so the values are exactly the
  // ones the interpreted path computes.
  const Complex k{0.0, -0.5};
  const Complex zero{};
  switch (axis) {
    case Axis::kX: {
      const Complex one{1.0, 0.0};
      return {k * (zero + one * r.m10), k * (zero + one * r.m11),
              k * (zero + one * r.m00), k * (zero + one * r.m01)};
    }
    case Axis::kY: {
      const Complex lo = -kI;  // P(0,1), same expression pauli_y() stores
      const Complex hi = kI;   // P(1,0)
      return {k * (zero + lo * r.m10), k * (zero + lo * r.m11),
              k * (zero + hi * r.m00), k * (zero + hi * r.m01)};
    }
    case Axis::kZ: {
      const Complex one{1.0, 0.0};
      const Complex neg{-1.0, 0.0};
      return {k * (zero + one * r.m00), k * (zero + one * r.m01),
              k * (zero + neg * r.m10), k * (zero + neg * r.m11)};
    }
  }
  throw InvalidArgument("rotation_derivative_entries_from: invalid axis");
}

Mat2 entries_of(const ComplexMatrix& m) {
  QBARREN_REQUIRE(m.rows() == 2 && m.cols() == 2,
                  "entries_of: matrix must be 2x2");
  return {m(0, 0), m(0, 1), m(1, 0), m(1, 1)};
}

Mat2 adjoint_entries(const Mat2& m) {
  return {std::conj(m.m00), std::conj(m.m10), std::conj(m.m01),
          std::conj(m.m11)};
}

std::string axis_name(Axis axis) {
  switch (axis) {
    case Axis::kX:
      return "RX";
    case Axis::kY:
      return "RY";
    case Axis::kZ:
      return "RZ";
  }
  return "R?";
}

Axis axis_from_name(const std::string& name) {
  std::string upper = name;
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char ch) { return std::toupper(ch); });
  if (upper == "RX" || upper == "X") return Axis::kX;
  if (upper == "RY" || upper == "Y") return Axis::kY;
  if (upper == "RZ" || upper == "Z") return Axis::kZ;
  throw NotFound("axis_from_name: unknown rotation axis '" + name + "'");
}

}  // namespace qbarren::gates
