#include "qbarren/qsim/batched_statevector.hpp"

#include <algorithm>

#include "qbarren/common/error.hpp"

namespace qbarren {

namespace {
constexpr std::size_t kMaxQubits = 28;
constexpr std::size_t kMaxTotalAmplitudes = std::size_t{1} << kMaxQubits;
}  // namespace

BatchedStateVector::BatchedStateVector(std::size_t num_qubits,
                                       std::size_t batch_size)
    : num_qubits_(num_qubits), batch_(batch_size) {
  QBARREN_REQUIRE(num_qubits >= 1 && num_qubits <= kMaxQubits,
                  "BatchedStateVector: need 1 <= num_qubits <= 28");
  QBARREN_REQUIRE(batch_size >= 1, "BatchedStateVector: need batch_size >= 1");
  dim_ = std::size_t{1} << num_qubits;
  QBARREN_REQUIRE(batch_size <= kMaxTotalAmplitudes / dim_,
                  "BatchedStateVector: batch would exceed 2^28 amplitudes");
  amps_.assign(batch_ * dim_, Complex{0.0, 0.0});
  reset();
}

void BatchedStateVector::reset() {
  std::fill(amps_.begin(), amps_.end(), Complex{0.0, 0.0});
  for (std::size_t b = 0; b < batch_; ++b) {
    amps_[b * dim_] = Complex{1.0, 0.0};
  }
}

std::span<Complex> BatchedStateVector::lane(std::size_t b) {
  check_lane(b, "lane");
  return {amps_.data() + b * dim_, dim_};
}

std::span<const Complex> BatchedStateVector::lane(std::size_t b) const {
  check_lane(b, "lane");
  return {amps_.data() + b * dim_, dim_};
}

void BatchedStateVector::set_lane(std::size_t b, const StateVector& state) {
  check_lane(b, "set_lane");
  QBARREN_REQUIRE(state.dimension() == dim_,
                  "BatchedStateVector::set_lane: dimension mismatch");
  std::copy(state.amplitudes().begin(), state.amplitudes().end(),
            amps_.begin() + static_cast<std::ptrdiff_t>(b * dim_));
}

void BatchedStateVector::extract_lane(std::size_t b, StateVector& out) const {
  check_lane(b, "extract_lane");
  QBARREN_REQUIRE(out.dimension() == dim_,
                  "BatchedStateVector::extract_lane: dimension mismatch");
  const Complex* src = lane_data(b);
  std::copy(src, src + dim_, out.amplitudes().begin());
}

StateVector BatchedStateVector::extract_lane(std::size_t b) const {
  StateVector out(num_qubits_);
  extract_lane(b, out);
  return out;
}

void BatchedStateVector::check_lane(std::size_t b, const char* who) const {
  QBARREN_REQUIRE(b < batch_, std::string("BatchedStateVector::") + who +
                                  ": lane out of range");
}

}  // namespace qbarren
