// Dense state-vector simulator.
//
// A `StateVector` holds the 2^n complex amplitudes of an n-qubit register
// (qubit 0 = least-significant index bit) and applies gates in place.
// Single-qubit and CZ applications are specialized bit-twiddling kernels —
// these dominate the paper's workload (deep hardware-efficient ansaetze) —
// while arbitrary two-qubit unitaries go through a generic 4x4 kernel.
//
// The simulator is exact (no sampling noise): probabilities and expectation
// values are computed directly from amplitudes, matching PennyLane's
// `default.qubit` analytic mode used by the paper.
#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

#include "qbarren/linalg/matrix.hpp"

namespace qbarren {

class StateVector {
 public:
  /// |0...0> on `num_qubits` qubits. Requires 1 <= num_qubits <= 28
  /// (2^28 amplitudes ~= 4 GiB; the guard catches accidental overflow).
  explicit StateVector(std::size_t num_qubits);

  /// State with explicit amplitudes; size must be a power of two >= 2.
  /// Does not renormalize — callers wanting a unit state should pass one
  /// (checked by `norm()` in tests).
  StateVector(std::size_t num_qubits, std::vector<Complex> amplitudes);

  [[nodiscard]] std::size_t num_qubits() const noexcept { return num_qubits_; }
  [[nodiscard]] std::size_t dimension() const noexcept {
    return amps_.size();
  }

  /// Resets to |0...0>.
  void reset();

  [[nodiscard]] const std::vector<Complex>& amplitudes() const noexcept {
    return amps_;
  }
  [[nodiscard]] std::vector<Complex>& amplitudes() noexcept { return amps_; }

  [[nodiscard]] Complex amplitude(std::size_t basis_index) const;

  // --- gate application ----------------------------------------------------

  /// Applies a 2x2 unitary (or any 2x2 matrix — adjoint differentiation
  /// applies non-unitary derivatives) to `target`.
  void apply_single_qubit(const ComplexMatrix& u, std::size_t target);

  /// Applies a 2x2 matrix to `target` controlled on `control` being |1>.
  void apply_controlled(const ComplexMatrix& u, std::size_t control,
                        std::size_t target);

  /// Controlled-Z between two qubits (order irrelevant): flips the sign of
  /// every amplitude whose both qubit bits are 1. Specialized fast path.
  void apply_cz(std::size_t a, std::size_t b);

  /// Applies a 4x4 matrix to the qubit pair (low, high basis bits =
  /// q_low, q_high respectively). `q_low` and `q_high` must differ.
  void apply_two_qubit(const ComplexMatrix& u, std::size_t q_low,
                       std::size_t q_high);

  // --- measurement / inner products -----------------------------------------

  /// Squared norm <psi|psi>.
  [[nodiscard]] double norm_squared() const;

  /// Rescales to unit norm; throws NumericalError on the zero vector.
  void normalize();

  /// Probability of measuring the given computational basis state.
  [[nodiscard]] double probability(std::size_t basis_index) const;

  /// Probability of qubit `q` measuring |1>.
  [[nodiscard]] double probability_one(std::size_t q) const;

  /// All 2^n basis probabilities.
  [[nodiscard]] std::vector<double> probabilities() const;

  /// <this|other>. Dimensions must match.
  [[nodiscard]] Complex inner_product(const StateVector& other) const;

  /// |<this|other>|^2.
  [[nodiscard]] double fidelity(const StateVector& other) const;

  /// Expectation <psi| Z_q |psi> of Pauli-Z on one qubit.
  [[nodiscard]] double expectation_z(std::size_t q) const;

 private:
  void check_qubit(std::size_t q, const char* who) const;

  std::size_t num_qubits_ = 0;
  std::vector<Complex> amps_;
};

/// Full 2^n x 2^n unitary acting as `u` on `target` and identity elsewhere.
/// Test/reference helper — exponential in n; use only for small n.
[[nodiscard]] ComplexMatrix embed_single_qubit(const ComplexMatrix& u,
                                               std::size_t target,
                                               std::size_t num_qubits);

/// Full-register embedding of a 4x4 two-qubit matrix (reference helper).
[[nodiscard]] ComplexMatrix embed_two_qubit(const ComplexMatrix& u,
                                            std::size_t q_low,
                                            std::size_t q_high,
                                            std::size_t num_qubits);

}  // namespace qbarren
