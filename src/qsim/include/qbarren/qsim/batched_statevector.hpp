// Structure-of-arrays batch of state vectors.
//
// The paper's workloads evaluate ONE circuit structure at MANY parameter
// bindings (parameter-shift's 2P shifted evaluations, landscape grid rows,
// SPSA's +/- pair). A `BatchedStateVector` holds B independent n-qubit
// registers as B contiguous amplitude "lanes" in a single allocation, so a
// compiled plan can walk its kernel-op stream once and apply each op to
// every lane while the gate matrix sits in registers (qbarren/exec/
// batched_kernels.hpp). Each lane's amplitude layout is exactly a
// StateVector's (qubit 0 = least-significant index bit); lanes never
// interact, so per-lane results are bit-identical to simulating each
// binding in its own StateVector.
#pragma once

#include <span>
#include <vector>

#include "qbarren/qsim/statevector.hpp"

namespace qbarren {

class BatchedStateVector {
 public:
  /// `batch_size` lanes, each |0...0> on `num_qubits` qubits. Requires
  /// 1 <= num_qubits <= 28 and batch_size >= 1, with the total amplitude
  /// count capped at 2^28 (the same ~4 GiB guard StateVector applies to a
  /// single register).
  BatchedStateVector(std::size_t num_qubits, std::size_t batch_size);

  [[nodiscard]] std::size_t num_qubits() const noexcept { return num_qubits_; }
  [[nodiscard]] std::size_t batch_size() const noexcept { return batch_; }
  /// Amplitudes per lane (2^num_qubits).
  [[nodiscard]] std::size_t dimension() const noexcept { return dim_; }

  /// Resets every lane to |0...0>.
  void reset();

  /// Lane `b` as a span over the shared storage.
  [[nodiscard]] std::span<Complex> lane(std::size_t b);
  [[nodiscard]] std::span<const Complex> lane(std::size_t b) const;

  /// Raw pointer to lane `b`'s first amplitude (kernel hot loops).
  [[nodiscard]] Complex* lane_data(std::size_t b) noexcept {
    return amps_.data() + b * dim_;
  }
  [[nodiscard]] const Complex* lane_data(std::size_t b) const noexcept {
    return amps_.data() + b * dim_;
  }

  /// Copies `state` into lane `b`. Dimensions must match.
  void set_lane(std::size_t b, const StateVector& state);

  /// Copies lane `b` into `out` (reusing its storage). Dimensions must
  /// match.
  void extract_lane(std::size_t b, StateVector& out) const;

  /// Lane `b` as a fresh StateVector.
  [[nodiscard]] StateVector extract_lane(std::size_t b) const;

  /// The whole lane-major storage (lane b occupies [b*dim, (b+1)*dim)).
  [[nodiscard]] const std::vector<Complex>& amplitudes() const noexcept {
    return amps_;
  }
  [[nodiscard]] std::vector<Complex>& amplitudes() noexcept { return amps_; }

 private:
  void check_lane(std::size_t b, const char* who) const;

  std::size_t num_qubits_ = 0;
  std::size_t dim_ = 0;
  std::size_t batch_ = 0;
  std::vector<Complex> amps_;
};

}  // namespace qbarren
