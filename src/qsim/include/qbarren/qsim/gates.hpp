// Gate matrix library.
//
// All single-qubit rotation gates follow the physics convention
//   R_P(theta) = exp(-i * theta * P / 2),
// which is what PennyLane uses and what the parameter-shift rule
//   dC/dtheta = (C(theta + pi/2) - C(theta - pi/2)) / 2
// assumes. Qubit 0 is the least-significant bit of the basis index; for
// two-qubit matrices the first listed qubit is the low-order index bit.
#pragma once

#include <string>

#include "qbarren/linalg/matrix.hpp"

namespace qbarren::gates {

// --- fixed single-qubit gates -------------------------------------------
// Constant gates are immutable; each helper returns a reference to a
// function-local static built on first use (thread-safe), so hot loops
// that fetch them per application no longer heap-allocate a fresh matrix.

[[nodiscard]] const ComplexMatrix& identity2();
[[nodiscard]] const ComplexMatrix& pauli_x();
[[nodiscard]] const ComplexMatrix& pauli_y();
[[nodiscard]] const ComplexMatrix& pauli_z();
[[nodiscard]] const ComplexMatrix& hadamard();
[[nodiscard]] const ComplexMatrix& s_gate();   ///< sqrt(Z), diag(1, i)
[[nodiscard]] const ComplexMatrix& t_gate();   ///< diag(1, e^{i pi/4})

// --- parameterized single-qubit gates ------------------------------------

[[nodiscard]] ComplexMatrix rx(double theta);
[[nodiscard]] ComplexMatrix ry(double theta);
[[nodiscard]] ComplexMatrix rz(double theta);
/// Phase gate diag(1, e^{i theta}).
[[nodiscard]] ComplexMatrix phase(double theta);
/// General single-qubit rotation U3(theta, phi, lambda) (OpenQASM
/// convention).
[[nodiscard]] ComplexMatrix u3(double theta, double phi, double lambda);

// --- two-qubit gates ------------------------------------------------------
// The constant two-qubit gates are cached the same way as the constant
// single-qubit gates above.

[[nodiscard]] const ComplexMatrix& cz();     ///< controlled-Z (symmetric)
[[nodiscard]] const ComplexMatrix& cnot();   ///< control = low-order qubit
[[nodiscard]] const ComplexMatrix& swap();
[[nodiscard]] ComplexMatrix crz(double theta);  ///< controlled RZ

// --- generators -----------------------------------------------------------

/// The rotation axes supported by parameterized rotations. A rotation gate
/// R_P(theta) has generator P/2, i.e. dR/dtheta = (-i/2) P R.
enum class Axis { kX, kY, kZ };

/// Pauli matrix for an axis.
[[nodiscard]] ComplexMatrix pauli(Axis axis);

/// Rotation about an axis: rx/ry/rz dispatch.
[[nodiscard]] ComplexMatrix rotation(Axis axis, double theta);

/// Derivative of the rotation matrix: dR_P(theta)/dtheta = (-i/2) P R_P.
[[nodiscard]] ComplexMatrix rotation_derivative(Axis axis, double theta);

// --- stack-held gate entries ----------------------------------------------
// A 2x2 matrix by value (no heap), row-major. The entry helpers below are
// the single arithmetic source for both the heap-matrix builders above and
// the exec layer's allocation-free kernels: `rotation()` is implemented on
// top of `rotation_entries()`, so compiled and interpreted execution see
// exactly the same floating-point values.

struct Mat2 {
  Complex m00, m01, m10, m11;
};

/// Entries of rotation(axis, theta), without allocating.
[[nodiscard]] Mat2 rotation_entries(Axis axis, double theta);

/// Entries of rotation_derivative(axis, theta), without allocating.
/// Replicates the dense-matmul accumulation semantics of the matrix path.
[[nodiscard]] Mat2 rotation_derivative_entries(Axis axis, double theta);

/// Same derivative entries, but from already-computed rotation_entries()
/// output for the same (axis, theta) — skips recomputing the trig.
[[nodiscard]] Mat2 rotation_derivative_entries_from(Axis axis, const Mat2& r);

/// Entries of a 2x2 ComplexMatrix; throws InvalidArgument otherwise.
[[nodiscard]] Mat2 entries_of(const ComplexMatrix& m);

/// Conjugate transpose of a Mat2.
[[nodiscard]] Mat2 adjoint_entries(const Mat2& m);

/// Human-readable axis name ("RX"/"RY"/"RZ").
[[nodiscard]] std::string axis_name(Axis axis);

/// Parses "RX"/"RY"/"RZ" (case-insensitive); throws NotFound otherwise.
[[nodiscard]] Axis axis_from_name(const std::string& name);

}  // namespace qbarren::gates
