// Gate matrix library.
//
// All single-qubit rotation gates follow the physics convention
//   R_P(theta) = exp(-i * theta * P / 2),
// which is what PennyLane uses and what the parameter-shift rule
//   dC/dtheta = (C(theta + pi/2) - C(theta - pi/2)) / 2
// assumes. Qubit 0 is the least-significant bit of the basis index; for
// two-qubit matrices the first listed qubit is the low-order index bit.
#pragma once

#include <string>

#include "qbarren/linalg/matrix.hpp"

namespace qbarren::gates {

// --- fixed single-qubit gates -------------------------------------------

[[nodiscard]] ComplexMatrix identity2();
[[nodiscard]] ComplexMatrix pauli_x();
[[nodiscard]] ComplexMatrix pauli_y();
[[nodiscard]] ComplexMatrix pauli_z();
[[nodiscard]] ComplexMatrix hadamard();
[[nodiscard]] ComplexMatrix s_gate();   ///< sqrt(Z), diag(1, i)
[[nodiscard]] ComplexMatrix t_gate();   ///< diag(1, e^{i pi/4})

// --- parameterized single-qubit gates ------------------------------------

[[nodiscard]] ComplexMatrix rx(double theta);
[[nodiscard]] ComplexMatrix ry(double theta);
[[nodiscard]] ComplexMatrix rz(double theta);
/// Phase gate diag(1, e^{i theta}).
[[nodiscard]] ComplexMatrix phase(double theta);
/// General single-qubit rotation U3(theta, phi, lambda) (OpenQASM
/// convention).
[[nodiscard]] ComplexMatrix u3(double theta, double phi, double lambda);

// --- two-qubit gates ------------------------------------------------------

[[nodiscard]] ComplexMatrix cz();     ///< controlled-Z (symmetric)
[[nodiscard]] ComplexMatrix cnot();   ///< control = low-order qubit
[[nodiscard]] ComplexMatrix swap();
[[nodiscard]] ComplexMatrix crz(double theta);  ///< controlled RZ

// --- generators -----------------------------------------------------------

/// The rotation axes supported by parameterized rotations. A rotation gate
/// R_P(theta) has generator P/2, i.e. dR/dtheta = (-i/2) P R.
enum class Axis { kX, kY, kZ };

/// Pauli matrix for an axis.
[[nodiscard]] ComplexMatrix pauli(Axis axis);

/// Rotation about an axis: rx/ry/rz dispatch.
[[nodiscard]] ComplexMatrix rotation(Axis axis, double theta);

/// Derivative of the rotation matrix: dR_P(theta)/dtheta = (-i/2) P R_P.
[[nodiscard]] ComplexMatrix rotation_derivative(Axis axis, double theta);

/// Human-readable axis name ("RX"/"RY"/"RZ").
[[nodiscard]] std::string axis_name(Axis axis);

/// Parses "RX"/"RY"/"RZ" (case-insensitive); throws NotFound otherwise.
[[nodiscard]] Axis axis_from_name(const std::string& name);

}  // namespace qbarren::gates
