// Entanglement diagnostics.
//
// The near-identity initializations that avoid barren plateaus also start
// circuits at low entanglement; these helpers quantify that. The
// Meyer-Wallach measure Q = 2 (1 - mean_q tr rho_q^2) is 0 for product
// states and 1 for certain maximally entangled states, and is the standard
// scalar entanglement diagnostic for PQC ensembles (Sim et al. 2019).
#pragma once

#include "qbarren/linalg/matrix.hpp"
#include "qbarren/qsim/statevector.hpp"

namespace qbarren {

/// 2x2 reduced density matrix of one qubit: rho_q = tr_{rest} |psi><psi|.
/// Requires a normalized state for a physical result (not enforced; the
/// trace equals the state's squared norm).
[[nodiscard]] ComplexMatrix reduced_density_matrix_1q(const StateVector& state,
                                                      std::size_t qubit);

/// tr(rho_q^2) in [1/2, 1]; 1 iff qubit q is unentangled with the rest.
[[nodiscard]] double single_qubit_purity(const StateVector& state,
                                         std::size_t qubit);

/// Meyer-Wallach global entanglement Q in [0, 1].
[[nodiscard]] double meyer_wallach(const StateVector& state);

}  // namespace qbarren
