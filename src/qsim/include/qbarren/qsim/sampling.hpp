// Finite-shot measurement sampling.
//
// The exact simulator reads probabilities directly from amplitudes (the
// paper's analytic mode). Real NISQ executions estimate them from a finite
// number of shots; these helpers sample computational-basis measurements
// and build shot-noise-limited estimators, letting experiments quantify
// how many shots gradient resolution on a plateau would require
// (bench_ablation_shots).
#pragma once

#include <cstdint>
#include <map>

#include "qbarren/common/rng.hpp"
#include "qbarren/qsim/statevector.hpp"

namespace qbarren {

/// Draws `shots` computational-basis outcomes (basis-state indices) from
/// the exact distribution |amp_i|^2 by inverse-CDF sampling. Requires a
/// normalized state (validated to 1e-8) and shots >= 1.
[[nodiscard]] std::vector<std::size_t> sample_basis_states(
    const StateVector& state, std::size_t shots, Rng& rng);

/// Histogram of sample_basis_states: outcome index -> count.
[[nodiscard]] std::map<std::size_t, std::size_t> sample_counts(
    const StateVector& state, std::size_t shots, Rng& rng);

/// Shot-based estimate of p(basis_index): count / shots.
[[nodiscard]] double estimate_probability(const StateVector& state,
                                          std::size_t basis_index,
                                          std::size_t shots, Rng& rng);

/// Shot-based estimate of the Eq 4 global cost 1 - p(|0...0>).
[[nodiscard]] double estimate_global_cost(const StateVector& state,
                                          std::size_t shots, Rng& rng);

/// Standard error of a Bernoulli probability estimate:
/// sqrt(p (1-p) / shots). The resolvable gradient floor at a given shot
/// budget — gradients below roughly twice this value drown in shot noise.
[[nodiscard]] double shot_noise_stderr(double p, std::size_t shots);

}  // namespace qbarren
