#include "qbarren/bp/expressibility.hpp"

#include <cmath>

#include "qbarren/circuit/ansatz.hpp"
#include "qbarren/qsim/entanglement.hpp"

namespace qbarren {

double haar_frame_potential(std::size_t t, std::size_t dimension) {
  QBARREN_REQUIRE(t >= 1, "haar_frame_potential: t >= 1");
  QBARREN_REQUIRE(dimension >= 2, "haar_frame_potential: dimension >= 2");
  double value = 1.0;
  for (std::size_t k = 0; k < t; ++k) {
    value *= static_cast<double>(k + 1) /
             static_cast<double>(dimension + k);
  }
  return value;
}

double haar_fidelity_mass(double f_lo, double f_hi, std::size_t dimension) {
  QBARREN_REQUIRE(dimension >= 2, "haar_fidelity_mass: dimension >= 2");
  QBARREN_REQUIRE(0.0 <= f_lo && f_lo <= f_hi && f_hi <= 1.0,
                  "haar_fidelity_mass: need 0 <= f_lo <= f_hi <= 1");
  const double n1 = static_cast<double>(dimension) - 1.0;
  return std::pow(1.0 - f_lo, n1) - std::pow(1.0 - f_hi, n1);
}

std::vector<ExpressibilityResult> analyze_expressibility(
    const std::vector<const Initializer*>& initializers,
    const ExpressibilityOptions& options) {
  QBARREN_REQUIRE(!initializers.empty(),
                  "analyze_expressibility: no initializers");
  QBARREN_REQUIRE(options.pairs >= 10,
                  "analyze_expressibility: need >= 10 pairs");
  QBARREN_REQUIRE(options.bins >= 2,
                  "analyze_expressibility: need >= 2 bins");
  for (const Initializer* init : initializers) {
    QBARREN_REQUIRE(init != nullptr,
                    "analyze_expressibility: null initializer");
  }

  TrainingAnsatzOptions ansatz_options;
  ansatz_options.layers = options.layers;
  const Circuit circuit = training_ansatz(options.qubits, ansatz_options);
  const std::size_t dim = std::size_t{1} << options.qubits;
  const Rng root(options.seed);

  std::vector<ExpressibilityResult> results;
  for (std::size_t t = 0; t < initializers.size(); ++t) {
    const Initializer& init = *initializers[t];
    const Rng init_stream = root.child(t);

    std::vector<std::size_t> histogram(options.bins, 0);
    double fidelity_sum = 0.0;
    double fidelity_sq_sum = 0.0;
    double entanglement_sum = 0.0;
    for (std::size_t s = 0; s < options.pairs; ++s) {
      Rng rng_a = init_stream.child(2 * s);
      Rng rng_b = init_stream.child(2 * s + 1);
      const StateVector psi_a =
          circuit.simulate(init.initialize(circuit, rng_a));
      const StateVector psi_b =
          circuit.simulate(init.initialize(circuit, rng_b));
      const double f = psi_a.fidelity(psi_b);
      fidelity_sum += f;
      fidelity_sq_sum += f * f;
      entanglement_sum +=
          0.5 * (meyer_wallach(psi_a) + meyer_wallach(psi_b));
      auto bin = static_cast<std::size_t>(f * static_cast<double>(options.bins));
      bin = std::min(bin, options.bins - 1);
      ++histogram[bin];
    }

    // KL(empirical || Haar) over the binned distributions. Empty empirical
    // bins contribute zero (0 * log 0 = 0); the Haar mass is positive on
    // every bin of [0, 1) so the divergence is finite.
    double kl = 0.0;
    for (std::size_t b = 0; b < options.bins; ++b) {
      if (histogram[b] == 0) continue;
      const double p = static_cast<double>(histogram[b]) /
                       static_cast<double>(options.pairs);
      const double f_lo =
          static_cast<double>(b) / static_cast<double>(options.bins);
      const double f_hi =
          static_cast<double>(b + 1) / static_cast<double>(options.bins);
      const double q = haar_fidelity_mass(f_lo, f_hi, dim);
      kl += p * std::log(p / q);
    }

    ExpressibilityResult result;
    result.initializer = init.name();
    result.kl_divergence = kl;
    result.mean_fidelity =
        fidelity_sum / static_cast<double>(options.pairs);
    result.mean_entanglement =
        entanglement_sum / static_cast<double>(options.pairs);
    result.frame_potential_2 =
        fidelity_sq_sum / static_cast<double>(options.pairs);
    result.frame_potential_ratio =
        result.frame_potential_2 / haar_frame_potential(2, dim);
    results.push_back(result);
  }
  return results;
}

Table expressibility_table(
    const std::vector<ExpressibilityResult>& results) {
  Table table({"initializer", "KL(ensemble || Haar)", "mean fidelity",
               "mean Meyer-Wallach Q", "F2 / F2_Haar"});
  for (const ExpressibilityResult& r : results) {
    table.begin_row();
    table.push(r.initializer);
    table.push(r.kl_divergence, 4);
    table.push(r.mean_fidelity, 4);
    table.push(r.mean_entanglement, 4);
    table.push(r.frame_potential_ratio, 2);
  }
  return table;
}

}  // namespace qbarren
