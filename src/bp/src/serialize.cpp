#include "qbarren/bp/serialize.hpp"

namespace qbarren {

namespace {

JsonValue fit_to_json(const LinearFit& fit) {
  JsonValue j = JsonValue::object();
  j.set("slope", fit.slope);
  j.set("intercept", fit.intercept);
  j.set("r_squared", fit.r_squared);
  j.set("slope_stderr", fit.slope_stderr);
  j.set("points", fit.n);
  return j;
}

}  // namespace

JsonValue to_json(const VarianceResult& result) {
  JsonValue root = JsonValue::object();
  root.set("schema", "qbarren.variance.v1");

  JsonValue options = JsonValue::object();
  JsonValue qubits = JsonValue::array();
  for (const std::size_t q : result.options.qubit_counts) {
    qubits.push_back(JsonValue::integer(static_cast<std::int64_t>(q)));
  }
  options.set("qubit_counts", std::move(qubits));
  options.set("circuits_per_point", result.options.circuits_per_point);
  options.set("layers", result.options.layers);
  options.set("cost", cost_kind_name(result.options.cost));
  options.set("seed", static_cast<std::int64_t>(result.options.seed));
  options.set("gradient_engine", result.options.gradient_engine);
  root.set("options", std::move(options));

  // The improvement field is emitted whenever a "random" series exists,
  // keeping the schema stable; when its baseline fit is degenerate
  // (failure-budget run, single qubit count) the value is null rather
  // than the field silently disappearing.
  const bool have_random = [&] {
    for (const VarianceSeries& s : result.series) {
      if (s.initializer == "random") return true;
    }
    return false;
  }();
  const bool baseline_ok = result.has_improvement_baseline();

  JsonValue series = JsonValue::array();
  for (const VarianceSeries& s : result.series) {
    JsonValue entry = JsonValue::object();
    entry.set("initializer", s.initializer);
    JsonValue points = JsonValue::array();
    for (const VariancePoint& p : s.points) {
      JsonValue point = JsonValue::object();
      point.set("qubits", p.qubits);
      point.set("variance", p.variance);
      point.set("mean", p.gradient_summary.mean);
      point.set("min", p.gradient_summary.min);
      point.set("max", p.gradient_summary.max);
      points.push_back(std::move(point));
    }
    entry.set("points", std::move(points));
    entry.set("decay_fit", fit_to_json(s.decay_fit));
    if (have_random && s.initializer != "random") {
      entry.set("improvement_vs_random_percent",
                baseline_ok
                    ? JsonValue::number(result.improvement_percent(s.initializer))
                    : JsonValue::null());
    }
    series.push_back(std::move(entry));
  }
  root.set("series", std::move(series));
  root.set("failures", failures_to_json(result.failures));
  return root;
}

JsonValue to_json(const TrainingResult& result) {
  JsonValue root = JsonValue::object();
  root.set("schema", "qbarren.training.v1");

  JsonValue options = JsonValue::object();
  options.set("qubits", result.options.qubits);
  options.set("layers", result.options.layers);
  options.set("iterations", result.options.iterations);
  options.set("learning_rate", result.options.learning_rate);
  options.set("optimizer", result.options.optimizer);
  options.set("gradient_engine", result.options.gradient_engine);
  options.set("cost", cost_kind_name(result.options.cost));
  options.set("seed", static_cast<std::int64_t>(result.options.seed));
  root.set("options", std::move(options));

  JsonValue series = JsonValue::array();
  for (const TrainingSeries& s : result.series) {
    JsonValue entry = JsonValue::object();
    entry.set("initializer", s.initializer);
    entry.set("initial_loss", s.result.initial_loss);
    entry.set("final_loss", s.result.final_loss);
    entry.set("iterations", s.result.iterations);
    entry.set("loss_history",
              JsonValue::number_array(s.result.loss_history));
    entry.set("gradient_norm_history",
              JsonValue::number_array(s.result.gradient_norm_history));
    series.push_back(std::move(entry));
  }
  root.set("series", std::move(series));
  root.set("failures", failures_to_json(result.failures));
  return root;
}

JsonValue to_json(const LandscapeResult& result) {
  JsonValue root = JsonValue::object();
  root.set("schema", "qbarren.landscape.v1");

  JsonValue options = JsonValue::object();
  options.set("qubits", result.options.qubits);
  options.set("layers", result.options.layers);
  options.set("grid_points", result.options.grid_points);
  options.set("param_a", result.options.param_a);
  options.set("param_b", result.options.param_b);
  options.set("lo", result.options.lo);
  options.set("hi", result.options.hi);
  options.set("cost", cost_kind_name(result.options.cost));
  options.set("seed", static_cast<std::int64_t>(result.options.seed));
  options.set("random_background", result.options.random_background);
  root.set("options", std::move(options));

  root.set("axis", JsonValue::number_array(result.axis));
  root.set("values_row_major", JsonValue::number_array(result.values));

  JsonValue metrics = JsonValue::object();
  metrics.set("min", result.min_value);
  metrics.set("max", result.max_value);
  metrics.set("range", result.range);
  metrics.set("stddev", result.stddev);
  metrics.set("mean", result.mean);
  root.set("metrics", std::move(metrics));
  return root;
}

}  // namespace qbarren
