#include "qbarren/bp/cost_kind.hpp"

namespace qbarren {

std::shared_ptr<Observable> make_cost_observable(CostKind kind,
                                                 std::size_t num_qubits) {
  switch (kind) {
    case CostKind::kGlobalZero:
      return std::make_shared<GlobalZeroObservable>(num_qubits);
    case CostKind::kLocalZero:
      return std::make_shared<LocalZeroObservable>(num_qubits);
    case CostKind::kPauliZZ: {
      QBARREN_REQUIRE(num_qubits >= 2,
                      "make_cost_observable: ZZ needs >= 2 qubits");
      std::string s(num_qubits, 'I');
      s[0] = 'Z';
      s[1] = 'Z';
      return std::make_shared<PauliStringObservable>(std::move(s));
    }
  }
  throw InvalidArgument("make_cost_observable: unknown cost kind");
}

std::string cost_kind_name(CostKind kind) {
  switch (kind) {
    case CostKind::kGlobalZero:
      return "global";
    case CostKind::kLocalZero:
      return "local";
    case CostKind::kPauliZZ:
      return "zz";
  }
  return "?";
}

std::vector<std::size_t> cost_observable_qubits(CostKind kind,
                                                std::size_t num_qubits) {
  QBARREN_REQUIRE(num_qubits >= 1,
                  "cost_observable_qubits: need at least one qubit");
  if (kind == CostKind::kPauliZZ) {
    QBARREN_REQUIRE(num_qubits >= 2,
                    "cost_observable_qubits: ZZ needs >= 2 qubits");
    return {0, 1};
  }
  std::vector<std::size_t> all(num_qubits);
  for (std::size_t q = 0; q < num_qubits; ++q) {
    all[q] = q;
  }
  return all;
}

bool is_global_cost(CostKind kind) noexcept {
  return kind == CostKind::kGlobalZero;
}

CostKind cost_kind_from_name(const std::string& name) {
  if (name == "global") return CostKind::kGlobalZero;
  if (name == "local") return CostKind::kLocalZero;
  if (name == "zz") return CostKind::kPauliZZ;
  throw NotFound("cost_kind_from_name: unknown cost kind '" + name + "'");
}

}  // namespace qbarren
