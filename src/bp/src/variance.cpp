#include "qbarren/bp/variance.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iterator>
#include <limits>
#include <mutex>

#include "qbarren/circuit/ansatz.hpp"
#include "qbarren/common/checkpoint.hpp"
#include "qbarren/grad/engine.hpp"
#include "qbarren/init/registry.hpp"

namespace qbarren {

namespace {

std::string hexfloat_string(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);  // exact, locale-independent
  return buf;
}

std::string variance_cell_key(const RunControl& control, std::size_t qubits,
                              const std::string& initializer) {
  return control.cell_prefix + "q=" + std::to_string(qubits) +
         "/init=" + initializer;
}

void report_cell(const RunControl& control, std::string cell,
                 std::size_t completed, std::size_t total,
                 bool from_checkpoint) {
  if (control.progress) {
    control.progress(
        RunProgress{std::move(cell), completed, total, from_checkpoint});
  }
}

ExecutorOptions executor_options_from(const RunControl& control) {
  ExecutorOptions options;
  options.jobs = control.jobs;
  options.cell_timeout_seconds = control.cell_timeout_seconds;
  options.max_failures = control.max_cell_failures;
  options.max_attempts = control.max_cell_attempts;
  options.cancel = control.cancel;
  return options;
}

/// NaN-filled summary for a failed cell: serializes as null everywhere
/// instead of misleading zeros.
Summary nan_summary() {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  Summary s;
  s.mean = s.variance = s.stddev = s.min = s.max = s.median = nan;
  return s;
}

}  // namespace

std::string options_fingerprint(const VarianceExperimentOptions& options) {
  std::string fp = "variance/v1;qubits=";
  for (std::size_t i = 0; i < options.qubit_counts.size(); ++i) {
    if (i != 0) fp += ',';
    fp += std::to_string(options.qubit_counts[i]);
  }
  fp += ";circuits=" + std::to_string(options.circuits_per_point);
  fp += ";layers=" + std::to_string(options.layers);
  fp += ";cost=" + cost_kind_name(options.cost);
  fp += ";seed=" + std::to_string(options.seed);
  fp += options.entangle ? ";entangle=1" : ";entangle=0";
  fp += ";engine=" + options.gradient_engine;
  fp += ";param=" + std::to_string(static_cast<int>(options.which_parameter));
  fp += ";entangler=" + std::to_string(static_cast<int>(options.entangler));
  fp += ";topology=" + std::to_string(static_cast<int>(options.topology));
  // keep_samples is deliberately excluded: it selects what the result
  // retains, not what is sampled, so checkpoints stay valid across it.
  return fp;
}

std::vector<double> compute_variance_cell(
    const VarianceExperimentOptions& options, std::size_t qubit_index,
    const Initializer& initializer, std::size_t initializer_index,
    const GradientEngine& engine, const CellContext* ctx) {
  QBARREN_REQUIRE(qubit_index < options.qubit_counts.size(),
                  "compute_variance_cell: qubit_index out of range");
  const std::size_t q = options.qubit_counts[qubit_index];
  const auto observable = make_cost_observable(options.cost, q);
  const Rng q_stream = Rng(options.seed).child(qubit_index);
  std::vector<double> samples(options.circuits_per_point);
  for (std::size_t i = 0; i < options.circuits_per_point; ++i) {
    if (ctx != nullptr) {
      ctx->throw_if_cancelled(
          "variance experiment at qubits=" + std::to_string(q) +
          " circuit=" + std::to_string(i));
    }
    const Rng circuit_stream = q_stream.child(2 * i);
    Rng structure_rng = circuit_stream.child(0);
    VarianceAnsatzOptions ansatz_options;
    ansatz_options.layers = options.layers;
    ansatz_options.entangle = options.entangle;
    ansatz_options.entangler = options.entangler;
    ansatz_options.topology = options.topology;
    const Circuit circuit = variance_ansatz(q, structure_rng, ansatz_options);
    std::size_t which = circuit.num_parameters() - 1;
    switch (options.which_parameter) {
      case GradientParameter::kLast:
        break;
      case GradientParameter::kMiddle:
        which = circuit.num_parameters() / 2;
        break;
      case GradientParameter::kFirst:
        which = 0;
        break;
    }
    Rng param_rng = circuit_stream.child(1 + initializer_index);
    const std::vector<double> params =
        initializer.initialize(circuit, param_rng);
    // Each sample draws its own circuit *structure*, so samples cannot
    // share a compiled plan or a batch: batching happens inside the
    // engine's partial, which evaluates the sample's shifted bindings as
    // one batched dispatch when the process batch limit allows it.
    const double g = engine.partial(circuit, *observable, params, which);
    if (!std::isfinite(g)) {
      throw NumericalError(
          "VarianceExperiment::run: non-finite gradient sample "
          "(initializer '" + initializer.name() + "', qubits " +
          std::to_string(q) + ", circuit " + std::to_string(i) +
          ", engine '" + engine.name() + "')");
    }
    samples[i] = g;
  }
  return samples;
}

VarianceExperiment::VarianceExperiment(VarianceExperimentOptions options)
    : options_(std::move(options)) {
  QBARREN_REQUIRE(!options_.qubit_counts.empty(),
                  "VarianceExperiment: need at least one qubit count");
  for (std::size_t q : options_.qubit_counts) {
    QBARREN_REQUIRE(q >= 1, "VarianceExperiment: qubit counts must be >= 1");
  }
  QBARREN_REQUIRE(options_.circuits_per_point >= 2,
                  "VarianceExperiment: need >= 2 circuits per point to "
                  "compute a variance");
  QBARREN_REQUIRE(options_.layers >= 1,
                  "VarianceExperiment: need >= 1 layer");
  // Surface an unknown engine name at construction (throws NotFound)
  // instead of after the caller has committed to a long run.
  (void)make_gradient_engine(options_.gradient_engine);
}

VarianceResult VarianceExperiment::run(
    const std::vector<const Initializer*>& initializers) const {
  return run(initializers, RunControl{});
}

VarianceResult VarianceExperiment::run(
    const std::vector<const Initializer*>& initializers,
    const RunControl& control) const {
  QBARREN_REQUIRE(!initializers.empty(),
                  "VarianceExperiment::run: no initializers");
  for (const Initializer* init : initializers) {
    QBARREN_REQUIRE(init != nullptr,
                    "VarianceExperiment::run: null initializer");
  }
  Checkpoint* checkpoint = control.checkpoint;
  if (checkpoint != nullptr && control.cell_prefix.empty() &&
      checkpoint->fingerprint() != options_fingerprint(options_)) {
    throw CheckpointError(
        "VarianceExperiment::run: checkpoint fingerprint does not match "
        "this experiment's options");
  }
  QBARREN_REQUIRE(!control.restore_only || checkpoint != nullptr,
                  "VarianceExperiment::run: restore_only needs a checkpoint");

  VarianceResult result;
  result.options = options_;
  result.series.resize(initializers.size());
  // Pre-size every point so cells can deposit by (qi, t) index from any
  // worker thread; failed cells keep their NaN statistics.
  for (std::size_t t = 0; t < initializers.size(); ++t) {
    result.series[t].initializer = initializers[t]->name();
    result.series[t].points.resize(options_.qubit_counts.size());
    for (std::size_t qi = 0; qi < options_.qubit_counts.size(); ++qi) {
      result.series[t].points[qi].qubits = options_.qubit_counts[qi];
      result.series[t].points[qi].gradient_summary = nan_summary();
      result.series[t].points[qi].variance =
          std::numeric_limits<double>::quiet_NaN();
    }
  }

  const std::size_t total_cells =
      options_.qubit_counts.size() * initializers.size();
  std::size_t completed_cells = 0;
  std::mutex deposit_mu;  // guards result/checkpoint/progress deposits

  const auto deposit = [&](std::size_t qi, std::size_t t,
                           const std::vector<double>& samples) {
    VariancePoint& point = result.series[t].points[qi];
    point.gradient_summary = summarize(samples);
    point.variance = point.gradient_summary.variance;
    if (options_.keep_samples) {
      point.samples = samples;
    }
  };

  // Sample gradients. Circuit structure streams depend on (q, i) only so
  // every initializer sees the same 200 random circuits per qubit count;
  // parameter streams additionally depend on the initializer index. Each
  // (q, initializer) cell's samples therefore do not depend on which other
  // cells were computed in this process — restoring some cells from a
  // checkpoint, or computing cells concurrently in any order, reproduces
  // a serial uninterrupted run bit-for-bit.
  std::vector<CellTask> tasks;
  std::vector<CellFailure> missing;  // restore-only cells not in the store
  for (std::size_t qi = 0; qi < options_.qubit_counts.size(); ++qi) {
    const std::size_t q = options_.qubit_counts[qi];
    for (std::size_t t = 0; t < initializers.size(); ++t) {
      const std::string key =
          variance_cell_key(control, q, initializers[t]->name());
      if (checkpoint != nullptr) {
        if (const CheckpointCell* cell = checkpoint->find_cell(key)) {
          const std::vector<double>& stored = cell->vector("samples");
          if (stored.size() != options_.circuits_per_point) {
            throw CheckpointError(
                "VarianceExperiment::run: checkpoint cell for q=" +
                std::to_string(q) + " has " +
                std::to_string(stored.size()) + " samples, expected " +
                std::to_string(options_.circuits_per_point));
          }
          deposit(qi, t, stored);
          report_cell(control, key, ++completed_cells, total_cells, true);
          continue;
        }
      }
      if (control.restore_only) {
        missing.push_back(CellFailure{key, CellErrorClass::kCancelled,
                                      "cell not restored (restore-only "
                                      "assembly)",
                                      0});
        continue;
      }

      tasks.push_back(CellTask{
          key, [this, &control, &deposit, &deposit_mu, &completed_cells,
                total_cells, checkpoint, initializer = initializers[t],
                qi, t, key](CellContext& ctx) {
            // Retries recompute the whole cell with the parameter-shift
            // fallback engine — fresh instance per attempt, so stateful
            // engines (fault injection, SPSA) stay cell-deterministic.
            const auto cell_engine =
                ctx.attempt == 0
                    ? make_gradient_engine(options_.gradient_engine)
                    : std::unique_ptr<GradientEngine>(
                          std::make_unique<ParameterShiftEngine>());
            const std::vector<double> samples = compute_variance_cell(
                options_, qi, *initializer, t, *cell_engine, &ctx);

            std::lock_guard<std::mutex> lock(deposit_mu);
            if (checkpoint != nullptr) {
              CheckpointCell cell;
              cell.vectors["samples"] = samples;
              checkpoint->record_cell(key, std::move(cell));
            }
            deposit(qi, t, samples);
            report_cell(control, key, ++completed_cells, total_cells, false);
          }});
    }
  }

  const Executor executor(executor_options_from(control));
  ExecutorReport report = executor.run(std::move(tasks));
  result.failures = std::move(report.failures);
  if (!missing.empty()) {
    result.failures.insert(result.failures.end(),
                           std::make_move_iterator(missing.begin()),
                           std::make_move_iterator(missing.end()));
    std::sort(result.failures.begin(), result.failures.end(),
              [](const CellFailure& a, const CellFailure& b) {
                return a.cell < b.cell;
              });
  }

  // Decay fits: ln Var vs qubit count over the positive-variance points.
  for (VarianceSeries& s : result.series) {
    std::vector<double> xs;
    std::vector<double> ys;
    for (const VariancePoint& p : s.points) {
      if (p.variance > 0.0) {
        xs.push_back(static_cast<double>(p.qubits));
        ys.push_back(std::log(p.variance));
      }
    }
    if (xs.size() >= 2) {
      s.decay_fit = linear_fit(xs, ys);
    } else {
      s.decay_fit = LinearFit{};  // degenerate; tables will show n = 0
    }
  }
  return result;
}

VarianceResult VarianceExperiment::run_paper_set(FanMode mode) const {
  return run_paper_set(mode, RunControl{});
}

VarianceResult VarianceExperiment::run_paper_set(
    FanMode mode, const RunControl& control) const {
  const auto owned = paper_initializers(mode);
  std::vector<const Initializer*> ptrs;
  ptrs.reserve(owned.size());
  for (const auto& init : owned) {
    ptrs.push_back(init.get());
  }
  return run(ptrs, control);
}

std::string positional_fingerprint(const VarianceExperimentOptions& options,
                                   const Initializer& initializer,
                                   const std::vector<double>& fractions) {
  std::string fp = "positional/v1;init=" + initializer.name() + ";fractions=";
  for (std::size_t f = 0; f < fractions.size(); ++f) {
    if (f != 0) fp += ',';
    fp += hexfloat_string(fractions[f]);
  }
  return fp + ";" + options_fingerprint(options);
}

PositionalVarianceResult positional_variance(
    const VarianceExperimentOptions& options, const Initializer& initializer,
    std::vector<double> fractions) {
  return positional_variance(options, initializer, std::move(fractions),
                             RunControl{});
}

namespace {
// Checkpoint key of fraction index f within a qubit-count cell. Built via
// += rather than `"f" + std::to_string(f)` because GCC 12 flags the
// char*-plus-rvalue-string operator+ with a spurious -Wrestrict under
// -Werror (GCC bug 105651).
std::string fraction_key(std::size_t f) {
  std::string key = "f";
  key += std::to_string(f);
  return key;
}
}  // namespace

PositionalVarianceResult positional_variance(
    const VarianceExperimentOptions& options, const Initializer& initializer,
    std::vector<double> fractions, const RunControl& control) {
  QBARREN_REQUIRE(!fractions.empty(), "positional_variance: no fractions");
  for (const double f : fractions) {
    QBARREN_REQUIRE(f >= 0.0 && f <= 1.0,
                    "positional_variance: fractions must be in [0, 1]");
  }
  const VarianceExperiment checked(options);  // validates the options
  (void)checked;
  Checkpoint* checkpoint = control.checkpoint;
  if (checkpoint != nullptr && control.cell_prefix.empty() &&
      checkpoint->fingerprint() !=
          positional_fingerprint(options, initializer, fractions)) {
    throw CheckpointError(
        "positional_variance: checkpoint fingerprint does not match this "
        "run's options");
  }

  const Rng root(options.seed);

  PositionalVarianceResult result;
  result.fractions = std::move(fractions);
  result.qubit_counts = options.qubit_counts;
  result.variances.assign(
      result.fractions.size(),
      std::vector<double>(options.qubit_counts.size(),
                          std::numeric_limits<double>::quiet_NaN()));

  const std::size_t total_cells = options.qubit_counts.size();
  std::size_t completed_cells = 0;
  std::mutex deposit_mu;

  // One checkpoint cell per qubit count holding every fraction's samples
  // ("f0", "f1", ...); the qubit counts are independent sub-streams of the
  // root seed, so per-cell resume — and concurrent execution in any
  // order — is exact.
  std::vector<CellTask> tasks;
  for (std::size_t qi = 0; qi < options.qubit_counts.size(); ++qi) {
    const std::size_t q = options.qubit_counts[qi];
    const std::string key =
        control.cell_prefix + "q=" + std::to_string(q);

    if (checkpoint != nullptr) {
      if (const CheckpointCell* cell = checkpoint->find_cell(key)) {
        for (std::size_t f = 0; f < result.fractions.size(); ++f) {
          const std::vector<double>& stored =
              cell->vector(fraction_key(f));
          if (stored.size() != options.circuits_per_point) {
            throw CheckpointError(
                "positional_variance: checkpoint cell " + key +
                " has the wrong sample count");
          }
          result.variances[f][qi] = sample_variance(stored);
        }
        report_cell(control, key, ++completed_cells, total_cells, true);
        continue;
      }
    }

    tasks.push_back(CellTask{
        key, [&options, &control, &initializer, &result, &deposit_mu,
              &completed_cells, total_cells, checkpoint, root, qi, q,
              key](CellContext& ctx) {
          const AdjointEngine engine;
          const auto observable = make_cost_observable(options.cost, q);
          const Rng q_stream = root.child(qi);
          std::vector<std::vector<double>> samples(
              result.fractions.size(),
              std::vector<double>(options.circuits_per_point));
          for (std::size_t i = 0; i < options.circuits_per_point; ++i) {
            ctx.throw_if_cancelled(
                "positional variance at qubits=" + std::to_string(q) +
                " circuit=" + std::to_string(i));
            const Rng circuit_stream = q_stream.child(2 * i);
            Rng structure_rng = circuit_stream.child(0);
            VarianceAnsatzOptions ansatz_options;
            ansatz_options.layers = options.layers;
            ansatz_options.entangle = options.entangle;
            ansatz_options.entangler = options.entangler;
            ansatz_options.topology = options.topology;
            const Circuit circuit =
                variance_ansatz(q, structure_rng, ansatz_options);
            Rng param_rng = circuit_stream.child(1);
            const auto params = initializer.initialize(circuit, param_rng);
            const auto grad = engine.gradient(circuit, *observable, params);

            const std::size_t last = circuit.num_parameters() - 1;
            for (std::size_t f = 0; f < result.fractions.size(); ++f) {
              const auto k = static_cast<std::size_t>(std::llround(
                  result.fractions[f] * static_cast<double>(last)));
              if (!std::isfinite(grad[k])) {
                throw NumericalError(
                    "positional_variance: non-finite gradient sample at "
                    "qubits=" + std::to_string(q) +
                    " circuit=" + std::to_string(i));
              }
              samples[f][i] = grad[k];
            }
          }

          std::lock_guard<std::mutex> lock(deposit_mu);
          if (checkpoint != nullptr) {
            CheckpointCell cell;
            for (std::size_t f = 0; f < result.fractions.size(); ++f) {
              cell.vectors[fraction_key(f)] = samples[f];
            }
            checkpoint->record_cell(key, std::move(cell));
          }
          for (std::size_t f = 0; f < result.fractions.size(); ++f) {
            result.variances[f][qi] = sample_variance(samples[f]);
          }
          report_cell(control, key, ++completed_cells, total_cells, false);
        }});
  }

  const Executor executor(executor_options_from(control));
  ExecutorReport report = executor.run(std::move(tasks));
  result.failures = std::move(report.failures);
  return result;
}

Table PositionalVarianceResult::table() const {
  std::vector<std::string> headers{"position fraction"};
  for (const std::size_t q : qubit_counts) {
    headers.push_back("Var at q=" + std::to_string(q));
  }
  Table out(std::move(headers));
  for (std::size_t f = 0; f < fractions.size(); ++f) {
    out.begin_row();
    out.push(fractions[f], 2);
    for (std::size_t qi = 0; qi < qubit_counts.size(); ++qi) {
      out.push_sci(variances[f][qi]);
    }
  }
  return out;
}

SlopeConfidenceInterval bootstrap_decay_ci(const VarianceSeries& series,
                                           std::size_t resamples,
                                           double confidence,
                                           std::uint64_t seed) {
  QBARREN_REQUIRE(resamples >= 10,
                  "bootstrap_decay_ci: need >= 10 resamples");
  QBARREN_REQUIRE(confidence > 0.0 && confidence < 1.0,
                  "bootstrap_decay_ci: confidence must be in (0, 1)");
  QBARREN_REQUIRE(series.points.size() >= 2,
                  "bootstrap_decay_ci: need >= 2 qubit points");
  for (const VariancePoint& p : series.points) {
    QBARREN_REQUIRE(p.samples.size() >= 2,
                    "bootstrap_decay_ci: raw samples missing — rerun the "
                    "experiment with keep_samples = true");
  }

  Rng rng(seed);
  std::vector<double> slopes;
  slopes.reserve(resamples);
  std::vector<double> xs;
  std::vector<double> ys;
  std::vector<double> resampled;
  for (std::size_t r = 0; r < resamples; ++r) {
    xs.clear();
    ys.clear();
    for (const VariancePoint& p : series.points) {
      resampled.resize(p.samples.size());
      for (auto& v : resampled) {
        v = p.samples[rng.index(p.samples.size())];
      }
      const double var = sample_variance(resampled);
      if (var > 0.0) {
        xs.push_back(static_cast<double>(p.qubits));
        ys.push_back(std::log(var));
      }
    }
    if (xs.size() >= 2) {
      slopes.push_back(linear_fit(xs, ys).slope);
    }
  }
  QBARREN_REQUIRE(slopes.size() >= 10,
                  "bootstrap_decay_ci: too many degenerate replicates");

  std::sort(slopes.begin(), slopes.end());
  const double alpha = 1.0 - confidence;
  const auto lo_idx = static_cast<std::size_t>(
      alpha / 2.0 * static_cast<double>(slopes.size() - 1));
  const auto hi_idx = static_cast<std::size_t>(
      (1.0 - alpha / 2.0) * static_cast<double>(slopes.size() - 1));

  SlopeConfidenceInterval ci;
  ci.point = series.decay_fit.slope;
  ci.lower = slopes[lo_idx];
  ci.upper = slopes[hi_idx];
  ci.confidence = confidence;
  return ci;
}

const VarianceSeries& VarianceResult::find(
    const std::string& initializer) const {
  for (const VarianceSeries& s : series) {
    if (s.initializer == initializer) {
      return s;
    }
  }
  throw NotFound("VarianceResult::find: no series for initializer '" +
                 initializer + "'");
}

double VarianceResult::improvement_percent(
    const std::string& initializer) const {
  const VarianceSeries& random = find("random");
  const VarianceSeries& target = find(initializer);
  const double random_rate = std::abs(random.decay_fit.slope);
  if (random_rate <= 1e-12) {
    throw NumericalError(
        "VarianceResult::improvement_percent: random decay rate is ~0");
  }
  const double target_rate = std::abs(target.decay_fit.slope);
  return (random_rate - target_rate) / random_rate * 100.0;
}

bool VarianceResult::has_improvement_baseline() const noexcept {
  for (const VarianceSeries& s : series) {
    if (s.initializer == "random") {
      return s.decay_fit.n >= 2 && std::isfinite(s.decay_fit.slope) &&
             std::abs(s.decay_fit.slope) > 1e-12;
    }
  }
  return false;
}

Table VarianceResult::variance_table() const {
  std::vector<std::string> headers{"qubits"};
  for (const VarianceSeries& s : series) {
    headers.push_back("Var[" + s.initializer + "]");
  }
  Table table(std::move(headers));
  if (series.empty()) {
    return table;
  }
  for (std::size_t row = 0; row < series.front().points.size(); ++row) {
    table.begin_row();
    table.push(series.front().points[row].qubits);
    for (const VarianceSeries& s : series) {
      table.push_sci(s.points[row].variance);
    }
  }
  return table;
}

Table VarianceResult::decay_table() const {
  // The improvement column is present whenever a "random" series exists;
  // when its baseline fit is degenerate (failure-budget run, single qubit
  // count) the cells read "n/a" rather than throwing mid-print or
  // silently dropping the column.
  const bool have_random = [&] {
    for (const VarianceSeries& s : series) {
      if (s.initializer == "random") return true;
    }
    return false;
  }();
  const bool baseline_ok = has_improvement_baseline();

  std::vector<std::string> headers{"initializer", "decay slope (ln Var/qubit)",
                                   "R^2"};
  if (have_random) {
    headers.push_back("improvement vs random [%]");
  }
  Table table(std::move(headers));
  for (const VarianceSeries& s : series) {
    table.begin_row();
    table.push(s.initializer);
    table.push(s.decay_fit.slope, 4);
    table.push(s.decay_fit.r_squared, 4);
    if (have_random) {
      if (s.initializer == "random") {
        table.push(std::string("(baseline)"));
      } else if (baseline_ok) {
        table.push(improvement_percent(s.initializer), 1);
      } else {
        table.push(std::string("n/a"));
      }
    }
  }
  return table;
}

}  // namespace qbarren
