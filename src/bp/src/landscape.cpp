#include "qbarren/bp/landscape.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "qbarren/circuit/ansatz.hpp"
#include "qbarren/common/rng.hpp"
#include "qbarren/common/stats.hpp"
#include "qbarren/exec/batched.hpp"
#include "qbarren/exec/compiled_circuit.hpp"

namespace qbarren {

double LandscapeResult::value_at(std::size_t i, std::size_t j) const {
  QBARREN_REQUIRE(i < options.grid_points && j < options.grid_points,
                  "LandscapeResult::value_at: index out of range");
  return values[i * options.grid_points + j];
}

LandscapeResult scan_landscape(const LandscapeOptions& options) {
  QBARREN_REQUIRE(options.grid_points >= 2,
                  "scan_landscape: need >= 2 grid points");
  QBARREN_REQUIRE(options.lo < options.hi, "scan_landscape: lo must be < hi");
  QBARREN_REQUIRE(options.param_a != options.param_b,
                  "scan_landscape: scanned parameters must differ");

  const Circuit circuit = motivational_ansatz(options.qubits, options.layers);
  QBARREN_REQUIRE(options.param_a < circuit.num_parameters() &&
                      options.param_b < circuit.num_parameters(),
                  "scan_landscape: scanned parameter index out of range");
  const auto observable = make_cost_observable(options.cost, options.qubits);
  // One lowering serves all grid_points^2 simulations of the scan.
  const auto plan = exec::plan_for(circuit);

  Rng rng(options.seed);
  std::vector<double> params =
      options.random_background
          ? rng.uniform_vector(circuit.num_parameters(), 0.0, 2.0 * M_PI)
          : std::vector<double>(circuit.num_parameters(), 0.0);

  LandscapeResult result;
  result.options = options;
  const std::size_t n = options.grid_points;
  result.axis.resize(n);
  const double step = (options.hi - options.lo) / static_cast<double>(n - 1);
  for (std::size_t i = 0; i < n; ++i) {
    result.axis[i] = options.lo + step * static_cast<double>(i);
  }

  result.values.resize(n * n);
  if (plan != nullptr && exec::batching_enabled()) {
    // Batch each grid row: the n theta_b bindings of a row walk the
    // kernel-op stream together in chunks of at most the batch limit,
    // byte-identical to the serial point-by-point scan.
    const std::size_t lanes = exec::resolve_batch_lanes(exec::batch_limit(), n);
    const std::size_t num_params = circuit.num_parameters();
    std::vector<double> bindings(lanes * num_params);
    for (std::size_t i = 0; i < n; ++i) {
      params[options.param_a] = result.axis[i];
      for (std::size_t j0 = 0; j0 < n; j0 += lanes) {
        const std::size_t width = std::min(lanes, n - j0);
        for (std::size_t b = 0; b < width; ++b) {
          params[options.param_b] = result.axis[j0 + b];
          std::copy(params.begin(), params.end(),
                    bindings.begin() +
                        static_cast<std::ptrdiff_t>(b * num_params));
        }
        const std::vector<double> row = plan->expectation_batch(
            *observable,
            std::span<const double>(bindings.data(), width * num_params),
            width);
        std::copy(row.begin(), row.end(),
                  result.values.begin() +
                      static_cast<std::ptrdiff_t>(i * n + j0));
      }
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      params[options.param_a] = result.axis[i];
      for (std::size_t j = 0; j < n; ++j) {
        params[options.param_b] = result.axis[j];
        result.values[i * n + j] =
            observable->expectation(circuit.simulate(params));
      }
    }
  }

  const Summary summary = summarize(result.values);
  result.min_value = summary.min;
  result.max_value = summary.max;
  result.range = summary.max - summary.min;
  result.stddev = summary.stddev;
  result.mean = summary.mean;
  return result;
}

Table LandscapeResult::metrics_table() const {
  Table table({"qubits", "layers", "grid", "min", "max", "range", "stddev"});
  table.begin_row();
  table.push(options.qubits);
  table.push(options.layers);
  table.push(options.grid_points);
  table.push(min_value, 6);
  table.push(max_value, 6);
  table.push(range, 6);
  table.push(stddev, 6);
  return table;
}

Table LandscapeResult::grid_table() const {
  std::vector<std::string> headers{"theta_a \\ theta_b"};
  for (double v : axis) {
    headers.push_back(format_fixed(v, 3));
  }
  Table table(std::move(headers));
  const std::size_t n = options.grid_points;
  for (std::size_t i = 0; i < n; ++i) {
    table.begin_row();
    table.push(format_fixed(axis[i], 3));
    for (std::size_t j = 0; j < n; ++j) {
      table.push(values[i * n + j], 4);
    }
  }
  return table;
}

Table landscape_flatness_table(const std::vector<std::size_t>& qubit_counts,
                               const LandscapeOptions& base_options) {
  QBARREN_REQUIRE(!qubit_counts.empty(),
                  "landscape_flatness_table: no qubit counts");
  Table table({"qubits", "min", "max", "range", "stddev"});
  for (std::size_t q : qubit_counts) {
    LandscapeOptions options = base_options;
    options.qubits = q;
    const LandscapeResult r = scan_landscape(options);
    table.begin_row();
    table.push(q);
    table.push(r.min_value, 6);
    table.push(r.max_value, 6);
    table.push(r.range, 6);
    table.push(r.stddev, 6);
  }
  return table;
}

}  // namespace qbarren
