#include "qbarren/bp/training.hpp"

#include <algorithm>
#include <cstdio>
#include <iterator>
#include <limits>
#include <mutex>

#include "qbarren/circuit/ansatz.hpp"
#include "qbarren/common/checkpoint.hpp"
#include "qbarren/init/registry.hpp"
#include "qbarren/obs/cost.hpp"

namespace qbarren {

namespace {

std::string hexfloat_string(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

/// Placeholder for a cell that failed within the failure budget: the
/// initializer keeps its series slot with NaN losses and no history.
TrainResult failed_train_result() {
  TrainResult result;
  result.initial_loss = std::numeric_limits<double>::quiet_NaN();
  result.final_loss = std::numeric_limits<double>::quiet_NaN();
  return result;
}

ExecutorOptions executor_options_from(const RunControl& control) {
  ExecutorOptions options;
  options.jobs = control.jobs;
  options.cell_timeout_seconds = control.cell_timeout_seconds;
  options.max_failures = control.max_cell_failures;
  options.max_attempts = control.max_cell_attempts;
  options.cancel = control.cancel;
  return options;
}

/// Merges restore-only "not restored" failures into an executor report's
/// (already sorted) failure list, keeping key order.
void merge_missing_failures(std::vector<CellFailure>& failures,
                            std::vector<CellFailure> missing) {
  if (missing.empty()) return;
  failures.insert(failures.end(), std::make_move_iterator(missing.begin()),
                  std::make_move_iterator(missing.end()));
  std::sort(failures.begin(), failures.end(),
            [](const CellFailure& a, const CellFailure& b) {
              return a.cell < b.cell;
            });
}

}  // namespace

CheckpointCell checkpoint_cell_from_train_result(const TrainResult& result) {
  CheckpointCell cell;
  cell.vectors["loss_history"] = result.loss_history;
  cell.vectors["gradient_norm_history"] = result.gradient_norm_history;
  cell.vectors["final_params"] = result.final_params;
  cell.scalars["initial_loss"] = result.initial_loss;
  cell.scalars["final_loss"] = result.final_loss;
  cell.scalars["iterations"] = static_cast<double>(result.iterations);
  cell.scalars["reached_target"] = result.reached_target ? 1.0 : 0.0;
  cell.scalars["aborted_non_finite"] =
      result.aborted_non_finite ? 1.0 : 0.0;
  cell.scalars["hit_deadline"] = result.hit_deadline ? 1.0 : 0.0;
  cell.scalars["fallback_invocations"] =
      static_cast<double>(result.fallback_invocations);
  return cell;
}

TrainResult train_result_from_checkpoint_cell(const CheckpointCell& cell) {
  TrainResult result;
  result.loss_history = cell.vector("loss_history");
  result.gradient_norm_history = cell.vector("gradient_norm_history");
  result.final_params = cell.vector("final_params");
  result.initial_loss = cell.scalar("initial_loss");
  result.final_loss = cell.scalar("final_loss");
  result.iterations = static_cast<std::size_t>(cell.scalar("iterations"));
  result.reached_target = cell.scalar("reached_target") != 0.0;
  result.aborted_non_finite = cell.scalar("aborted_non_finite") != 0.0;
  result.hit_deadline = cell.scalar("hit_deadline") != 0.0;
  result.fallback_invocations =
      static_cast<std::size_t>(cell.scalar("fallback_invocations"));
  return result;
}

CostFunction make_training_cost(const TrainingExperimentOptions& options) {
  TrainingAnsatzOptions ansatz_options;
  ansatz_options.layers = options.layers;
  auto circuit = std::make_shared<const Circuit>(
      training_ansatz(options.qubits, ansatz_options));
  return CostFunction(std::move(circuit),
                      make_cost_observable(options.cost, options.qubits));
}

/// Engine, fallback, and optimizer are fresh per call so stateful engines
/// (fault injection, SPSA) stay cell-deterministic under any job count.
TrainResult run_training_cell(const TrainingExperimentOptions& options,
                              const CostFunction& cost,
                              const Initializer& initializer,
                              std::size_t initializer_index,
                              const CellContext& ctx) {
  const std::size_t t = initializer_index;
  const auto engine = make_gradient_engine(options.gradient_engine);
  NonFinitePolicy policy = options.non_finite_policy;
  if (ctx.attempt > 0 && policy == NonFinitePolicy::kThrow) {
    policy = NonFinitePolicy::kFallbackEngine;
  }
  std::unique_ptr<GradientEngine> fallback;
  if (policy == NonFinitePolicy::kFallbackEngine) {
    fallback = std::make_unique<ParameterShiftEngine>();
  }

  TrainOptions train_options;
  train_options.max_iterations = options.iterations;
  train_options.non_finite_policy = policy;
  train_options.fallback_engine = fallback.get();
  train_options.deadline_seconds = options.deadline_seconds;
  // The cell token observes both the per-cell soft deadline and (via the
  // executor's watchdog broadcast) run-wide cancellation.
  train_options.cancel = ctx.cell_token;

  // Each series draws its parameters from an independent child stream of
  // the root seed, so cells are order-independent: restoring some from a
  // checkpoint or training them concurrently cannot shift the randomness
  // of the others.
  Rng param_rng = Rng(options.seed).child(t);
  std::vector<double> params =
      initializer.initialize(cost.circuit(), param_rng);
  const auto optimizer =
      make_optimizer(options.optimizer, options.learning_rate);
  return train(cost, *engine, *optimizer, std::move(params), train_options);
}

std::string options_fingerprint(const TrainingExperimentOptions& options) {
  std::string fp = "training/v1";
  fp += ";qubits=" + std::to_string(options.qubits);
  fp += ";layers=" + std::to_string(options.layers);
  fp += ";iterations=" + std::to_string(options.iterations);
  fp += ";lr=" + hexfloat_string(options.learning_rate);
  fp += ";optimizer=" + options.optimizer;
  fp += ";engine=" + options.gradient_engine;
  fp += ";cost=" + cost_kind_name(options.cost);
  fp += ";seed=" + std::to_string(options.seed);
  fp += ";policy=" + std::to_string(static_cast<int>(options.non_finite_policy));
  // deadline_seconds is deliberately excluded: it bounds wall-clock time
  // but (when not hit) does not change what is computed, so a checkpoint
  // stays resumable under a different budget.
  return fp;
}

TrainingExperiment::TrainingExperiment(TrainingExperimentOptions options)
    : options_(std::move(options)) {
  QBARREN_REQUIRE(options_.qubits >= 1, "TrainingExperiment: need >= 1 qubit");
  QBARREN_REQUIRE(options_.layers >= 1, "TrainingExperiment: need >= 1 layer");
  QBARREN_REQUIRE(options_.iterations >= 1,
                  "TrainingExperiment: need >= 1 iteration");
  QBARREN_REQUIRE(options_.learning_rate > 0.0,
                  "TrainingExperiment: learning rate must be positive");
  QBARREN_REQUIRE(!(options_.deadline_seconds < 0.0),
                  "TrainingExperiment: deadline must be non-negative");
  // Surface unknown optimizer/engine names at construction (NotFound)
  // instead of after the caller has committed to a long run.
  (void)make_optimizer(options_.optimizer, options_.learning_rate);
  (void)make_gradient_engine(options_.gradient_engine);
}

TrainingResult TrainingExperiment::run(
    const std::vector<const Initializer*>& initializers) const {
  return run(initializers, RunControl{});
}

TrainingResult TrainingExperiment::run(
    const std::vector<const Initializer*>& initializers,
    const RunControl& control) const {
  QBARREN_REQUIRE(!initializers.empty(),
                  "TrainingExperiment::run: no initializers");
  for (const Initializer* init : initializers) {
    QBARREN_REQUIRE(init != nullptr,
                    "TrainingExperiment::run: null initializer");
  }
  Checkpoint* checkpoint = control.checkpoint;
  if (checkpoint != nullptr && control.cell_prefix.empty() &&
      checkpoint->fingerprint() != options_fingerprint(options_)) {
    throw CheckpointError(
        "TrainingExperiment::run: checkpoint fingerprint does not match "
        "this experiment's options");
  }
  QBARREN_REQUIRE(!control.restore_only || checkpoint != nullptr,
                  "TrainingExperiment::run: restore_only needs a checkpoint");

  const CostFunction cost = make_training_cost(options_);

  TrainingResult result;
  result.options = options_;
  result.series.resize(initializers.size());
  for (std::size_t t = 0; t < initializers.size(); ++t) {
    result.series[t].initializer = initializers[t]->name();
    result.series[t].result = failed_train_result();
  }

  const std::size_t total_cells = initializers.size();
  std::size_t completed_cells = 0;
  std::mutex deposit_mu;  // guards result/checkpoint/progress deposits

  std::vector<CellTask> tasks;
  std::vector<CellFailure> missing;
  for (std::size_t t = 0; t < initializers.size(); ++t) {
    const std::string key =
        control.cell_prefix + "init=" + initializers[t]->name();
    if (checkpoint != nullptr) {
      if (const CheckpointCell* cell = checkpoint->find_cell(key)) {
        result.series[t].result = train_result_from_checkpoint_cell(*cell);
        if (control.progress) {
          control.progress(
              RunProgress{key, ++completed_cells, total_cells, true});
        }
        continue;
      }
    }
    if (control.restore_only) {
      missing.push_back(CellFailure{key, CellErrorClass::kCancelled,
                                    "cell not restored (restore-only "
                                    "assembly)",
                                    0});
      continue;
    }

    tasks.push_back(CellTask{
        key, [this, &control, &cost, &result, &deposit_mu, &completed_cells,
              total_cells, checkpoint, initializer = initializers[t], t,
              key](CellContext& ctx) {
          ctx.throw_if_cancelled("training experiment at " + key);
          TrainResult trained =
              run_training_cell(options_, cost, *initializer, t, ctx);

          std::lock_guard<std::mutex> lock(deposit_mu);
          if (checkpoint != nullptr) {
            checkpoint->record_cell(key,
                                    checkpoint_cell_from_train_result(trained));
          }
          result.series[t].result = std::move(trained);
          if (control.progress) {
            control.progress(
                RunProgress{key, ++completed_cells, total_cells, false});
          }
        }});
  }

  const Executor executor(executor_options_from(control));
  ExecutorReport report = executor.run(std::move(tasks));
  result.failures = std::move(report.failures);
  merge_missing_failures(result.failures, std::move(missing));
  return result;
}

TrainingResult TrainingExperiment::run_paper_set(FanMode mode) const {
  return run_paper_set(mode, RunControl{});
}

TrainingResult TrainingExperiment::run_paper_set(
    FanMode mode, const RunControl& control) const {
  const auto owned = paper_initializers(mode);
  std::vector<const Initializer*> ptrs;
  ptrs.reserve(owned.size());
  for (const auto& init : owned) {
    ptrs.push_back(init.get());
  }
  return run(ptrs, control);
}

const TrainingSeries& TrainingResult::find(
    const std::string& initializer) const {
  for (const TrainingSeries& s : series) {
    if (s.initializer == initializer) {
      return s;
    }
  }
  throw NotFound("TrainingResult::find: no series for initializer '" +
                 initializer + "'");
}

Table TrainingResult::loss_table(std::size_t stride) const {
  QBARREN_REQUIRE(stride >= 1, "TrainingResult::loss_table: stride >= 1");
  std::vector<std::string> headers{"iteration"};
  for (const TrainingSeries& s : series) {
    headers.push_back("loss[" + s.initializer + "]");
  }
  Table table(std::move(headers));
  if (series.empty()) {
    return table;
  }
  // Rows span the longest history: a failed series has an empty (and an
  // aborted one a short) loss_history, and must render as NaN cells
  // rather than truncate or over-index the surviving series.
  std::size_t n = 0;
  for (const TrainingSeries& s : series) {
    n = std::max(n, s.result.loss_history.size());
  }
  const auto push_loss = [&table](const TrainingSeries& s, std::size_t it) {
    table.push(it < s.result.loss_history.size()
                   ? s.result.loss_history[it]
                   : std::numeric_limits<double>::quiet_NaN(),
               6);
  };
  for (std::size_t it = 0; it < n; it += stride) {
    table.begin_row();
    table.push(it);
    for (const TrainingSeries& s : series) {
      push_loss(s, it);
    }
  }
  // Always include the final iterate even when stride skips it.
  if (n >= 1 && (n - 1) % stride != 0) {
    table.begin_row();
    table.push(n - 1);
    for (const TrainingSeries& s : series) {
      push_loss(s, n - 1);
    }
  }
  return table;
}

std::string options_fingerprint(const TrainingSweepOptions& options) {
  return "training-sweep/v1;reps=" + std::to_string(options.repetitions) +
         ";" + options_fingerprint(options.base);
}

TrainingSweepResult run_training_sweep(
    const std::vector<const Initializer*>& initializers,
    const TrainingSweepOptions& options) {
  return run_training_sweep(initializers, options, RunControl{});
}

TrainingSweepResult run_training_sweep(
    const std::vector<const Initializer*>& initializers,
    const TrainingSweepOptions& options, const RunControl& control) {
  QBARREN_REQUIRE(options.repetitions >= 2,
                  "run_training_sweep: need >= 2 repetitions for spread");
  QBARREN_REQUIRE(!initializers.empty(),
                  "run_training_sweep: no initializers");
  if (control.checkpoint != nullptr && control.cell_prefix.empty() &&
      control.checkpoint->fingerprint() != options_fingerprint(options)) {
    throw CheckpointError(
        "run_training_sweep: checkpoint fingerprint does not match this "
        "sweep's options");
  }
  QBARREN_REQUIRE(!control.restore_only || control.checkpoint != nullptr,
                  "run_training_sweep: restore_only needs a checkpoint");

  // Validate the base options once (throws exactly what per-repetition
  // construction used to).
  (void)TrainingExperiment(options.base);

  // All repetitions share one circuit and cost (only the seed differs);
  // both are immutable and safe to evaluate from concurrent cells.
  const CostFunction cost = make_training_cost(options.base);

  TrainingSweepResult result;
  result.options = options;
  result.series.resize(initializers.size());
  for (std::size_t t = 0; t < initializers.size(); ++t) {
    result.series[t].initializer = initializers[t]->name();
    result.series[t].final_losses.assign(
        options.repetitions, std::numeric_limits<double>::quiet_NaN());
  }

  const std::size_t total_cells = options.repetitions * initializers.size();
  std::size_t completed_cells = 0;
  std::mutex deposit_mu;

  // The whole (repetition x initializer) grid becomes one task list, so
  // parallelism spans repetitions, not just initializers. Cells are
  // namespaced per repetition ("rep=<r>/init=<name>"), matching the keys
  // the serial per-repetition runner wrote.
  std::vector<CellTask> tasks;
  std::vector<CellFailure> missing;
  for (std::size_t rep = 0; rep < options.repetitions; ++rep) {
    TrainingExperimentOptions rep_options = options.base;
    rep_options.seed = splitmix64(options.base.seed ^ (rep + 1));
    for (std::size_t t = 0; t < initializers.size(); ++t) {
      const std::string key = control.cell_prefix + "rep=" +
                              std::to_string(rep) +
                              "/init=" + initializers[t]->name();
      if (control.checkpoint != nullptr) {
        if (const CheckpointCell* cell = control.checkpoint->find_cell(key)) {
          result.series[t].final_losses[rep] =
              train_result_from_checkpoint_cell(*cell).final_loss;
          if (control.progress) {
            control.progress(
                RunProgress{key, ++completed_cells, total_cells, true});
          }
          continue;
        }
      }
      if (control.restore_only) {
        missing.push_back(CellFailure{key, CellErrorClass::kCancelled,
                                      "cell not restored (restore-only "
                                      "assembly)",
                                      0});
        continue;
      }

      tasks.push_back(CellTask{
          key, [&control, &cost, &result, &deposit_mu, &completed_cells,
                total_cells, rep_options, initializer = initializers[t], rep,
                t, key](CellContext& ctx) {
            ctx.throw_if_cancelled("training sweep at " + key);
            const TrainResult trained =
                run_training_cell(rep_options, cost, *initializer, t, ctx);

            std::lock_guard<std::mutex> lock(deposit_mu);
            if (control.checkpoint != nullptr) {
              control.checkpoint->record_cell(
                  key, checkpoint_cell_from_train_result(trained));
            }
            result.series[t].final_losses[rep] = trained.final_loss;
            if (control.progress) {
              control.progress(
                  RunProgress{key, ++completed_cells, total_cells, false});
            }
          }});
    }
  }

  const Executor executor(executor_options_from(control));
  ExecutorReport report = executor.run(std::move(tasks));
  result.failures = std::move(report.failures);
  merge_missing_failures(result.failures, std::move(missing));

  for (TrainingSweepSeries& s : result.series) {
    s.final_loss_summary = summarize(s.final_losses);
  }
  return result;
}

Table TrainingSweepResult::summary_table() const {
  Table table({"initializer", "mean final loss", "stddev", "min", "max",
               "seeds"});
  for (const TrainingSweepSeries& s : series) {
    table.begin_row();
    table.push(s.initializer);
    table.push(s.final_loss_summary.mean, 6);
    table.push(s.final_loss_summary.stddev, 6);
    table.push(s.final_loss_summary.min, 6);
    table.push(s.final_loss_summary.max, 6);
    table.push(s.final_losses.size());
  }
  return table;
}

Table TrainingResult::summary_table() const {
  Table table({"initializer", "initial loss", "final loss", "loss drop",
               "iterations"});
  for (const TrainingSeries& s : series) {
    table.begin_row();
    table.push(s.initializer);
    table.push(s.result.initial_loss, 6);
    table.push(s.result.final_loss, 6);
    table.push(s.result.initial_loss - s.result.final_loss, 6);
    table.push(s.result.iterations);
  }
  return table;
}

}  // namespace qbarren
