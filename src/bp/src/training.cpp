#include "qbarren/bp/training.hpp"

#include "qbarren/circuit/ansatz.hpp"
#include "qbarren/init/registry.hpp"
#include "qbarren/obs/cost.hpp"

namespace qbarren {

TrainingExperiment::TrainingExperiment(TrainingExperimentOptions options)
    : options_(std::move(options)) {
  QBARREN_REQUIRE(options_.qubits >= 1, "TrainingExperiment: need >= 1 qubit");
  QBARREN_REQUIRE(options_.layers >= 1, "TrainingExperiment: need >= 1 layer");
  QBARREN_REQUIRE(options_.learning_rate > 0.0,
                  "TrainingExperiment: learning rate must be positive");
}

TrainingResult TrainingExperiment::run(
    const std::vector<const Initializer*>& initializers) const {
  QBARREN_REQUIRE(!initializers.empty(),
                  "TrainingExperiment::run: no initializers");
  for (const Initializer* init : initializers) {
    QBARREN_REQUIRE(init != nullptr,
                    "TrainingExperiment::run: null initializer");
  }

  TrainingAnsatzOptions ansatz_options;
  ansatz_options.layers = options_.layers;
  auto circuit = std::make_shared<const Circuit>(
      training_ansatz(options_.qubits, ansatz_options));
  const CostFunction cost(circuit,
                          make_cost_observable(options_.cost, options_.qubits));
  const auto engine = make_gradient_engine(options_.gradient_engine);

  TrainOptions train_options;
  train_options.max_iterations = options_.iterations;

  const Rng root(options_.seed);

  TrainingResult result;
  result.options = options_;
  for (std::size_t t = 0; t < initializers.size(); ++t) {
    Rng param_rng = root.child(t);
    std::vector<double> params =
        initializers[t]->initialize(*circuit, param_rng);

    const auto optimizer =
        make_optimizer(options_.optimizer, options_.learning_rate);
    TrainingSeries series;
    series.initializer = initializers[t]->name();
    series.result =
        train(cost, *engine, *optimizer, std::move(params), train_options);
    result.series.push_back(std::move(series));
  }
  return result;
}

TrainingResult TrainingExperiment::run_paper_set(FanMode mode) const {
  const auto owned = paper_initializers(mode);
  std::vector<const Initializer*> ptrs;
  ptrs.reserve(owned.size());
  for (const auto& init : owned) {
    ptrs.push_back(init.get());
  }
  return run(ptrs);
}

const TrainingSeries& TrainingResult::find(
    const std::string& initializer) const {
  for (const TrainingSeries& s : series) {
    if (s.initializer == initializer) {
      return s;
    }
  }
  throw NotFound("TrainingResult::find: no series for initializer '" +
                 initializer + "'");
}

Table TrainingResult::loss_table(std::size_t stride) const {
  QBARREN_REQUIRE(stride >= 1, "TrainingResult::loss_table: stride >= 1");
  std::vector<std::string> headers{"iteration"};
  for (const TrainingSeries& s : series) {
    headers.push_back("loss[" + s.initializer + "]");
  }
  Table table(std::move(headers));
  if (series.empty()) {
    return table;
  }
  const std::size_t n = series.front().result.loss_history.size();
  for (std::size_t it = 0; it < n; it += stride) {
    table.begin_row();
    table.push(it);
    for (const TrainingSeries& s : series) {
      table.push(s.result.loss_history[it], 6);
    }
  }
  // Always include the final iterate even when stride skips it.
  if (n >= 1 && (n - 1) % stride != 0) {
    table.begin_row();
    table.push(n - 1);
    for (const TrainingSeries& s : series) {
      table.push(s.result.loss_history[n - 1], 6);
    }
  }
  return table;
}

TrainingSweepResult run_training_sweep(
    const std::vector<const Initializer*>& initializers,
    const TrainingSweepOptions& options) {
  QBARREN_REQUIRE(options.repetitions >= 2,
                  "run_training_sweep: need >= 2 repetitions for spread");
  QBARREN_REQUIRE(!initializers.empty(),
                  "run_training_sweep: no initializers");

  TrainingSweepResult result;
  result.options = options;
  result.series.resize(initializers.size());
  for (std::size_t t = 0; t < initializers.size(); ++t) {
    result.series[t].initializer = initializers[t]->name();
  }

  for (std::size_t rep = 0; rep < options.repetitions; ++rep) {
    TrainingExperimentOptions rep_options = options.base;
    rep_options.seed = splitmix64(options.base.seed ^ (rep + 1));
    const TrainingResult run =
        TrainingExperiment(rep_options).run(initializers);
    for (std::size_t t = 0; t < initializers.size(); ++t) {
      result.series[t].final_losses.push_back(
          run.series[t].result.final_loss);
    }
  }
  for (TrainingSweepSeries& s : result.series) {
    s.final_loss_summary = summarize(s.final_losses);
  }
  return result;
}

Table TrainingSweepResult::summary_table() const {
  Table table({"initializer", "mean final loss", "stddev", "min", "max",
               "seeds"});
  for (const TrainingSweepSeries& s : series) {
    table.begin_row();
    table.push(s.initializer);
    table.push(s.final_loss_summary.mean, 6);
    table.push(s.final_loss_summary.stddev, 6);
    table.push(s.final_loss_summary.min, 6);
    table.push(s.final_loss_summary.max, 6);
    table.push(s.final_losses.size());
  }
  return table;
}

Table TrainingResult::summary_table() const {
  Table table({"initializer", "initial loss", "final loss", "loss drop",
               "iterations"});
  for (const TrainingSeries& s : series) {
    table.begin_row();
    table.push(s.initializer);
    table.push(s.result.initial_loss, 6);
    table.push(s.result.final_loss, 6);
    table.push(s.result.initial_loss - s.result.final_loss, 6);
    table.push(s.result.iterations);
  }
  return table;
}

}  // namespace qbarren
