#include "qbarren/bp/lightcone.hpp"

namespace qbarren {

LightConeReport analyze_light_cone(
    const Circuit& circuit,
    const std::vector<std::size_t>& observable_qubits) {
  QBARREN_REQUIRE(!observable_qubits.empty(),
                  "analyze_light_cone: empty observable support");
  std::vector<bool> support(circuit.num_qubits(), false);
  for (const std::size_t q : observable_qubits) {
    QBARREN_REQUIRE(q < circuit.num_qubits(),
                    "analyze_light_cone: observable qubit out of range");
    support[q] = true;
  }

  LightConeReport report;
  report.alive.assign(circuit.num_parameters(), false);

  // Walk the circuit backward, growing the observable's support through
  // entangling gates. A parameterized rotation encountered at position k
  // sees the support of H conjugated by everything after k.
  const auto& ops = circuit.operations();
  for (std::size_t k = ops.size(); k-- > 0;) {
    const Operation& op = ops[k];
    if (is_two_qubit(op.kind)) {
      // A parameterized two-qubit gate (controlled rotation) can have a
      // non-zero gradient whenever the observable touches either qubit.
      if (is_parameterized(op.kind) &&
          (support[op.qubit0] || support[op.qubit1])) {
        report.alive[op.param_index] = true;
      }
      // Conjugation through a two-qubit gate can spread the observable to
      // both qubits whenever it currently touches either.
      if (support[op.qubit0] || support[op.qubit1]) {
        support[op.qubit0] = true;
        support[op.qubit1] = true;
      }
      continue;
    }
    if (op.kind == OpKind::kRotation) {
      if (support[op.qubit0]) {
        report.alive[op.param_index] = true;
      }
    }
    // Single-qubit gates never change which qubits the observable touches.
  }

  for (const bool alive : report.alive) {
    if (!alive) {
      ++report.dead_count;
    }
  }
  return report;
}

Table light_cone_table(
    const std::vector<std::pair<std::string, LightConeReport>>& reports) {
  Table table({"circuit", "parameters", "dead parameters",
               "dead fraction"});
  for (const auto& [label, report] : reports) {
    table.begin_row();
    table.push(label);
    table.push(report.alive.size());
    table.push(report.dead_count);
    const double fraction =
        report.alive.empty()
            ? 0.0
            : static_cast<double>(report.dead_count) /
                  static_cast<double>(report.alive.size());
    table.push(fraction, 3);
  }
  return table;
}

}  // namespace qbarren
