// Expressibility and entanglement analysis of initialized ensembles
// (Sim, Johnson & Aspuru-Guzik 2019, adapted to initialization studies).
//
// Expressibility measures how closely an ensemble of circuit states covers
// the Haar distribution: sample parameter pairs from an initializer,
// compute pairwise fidelities F = |<psi(a)|psi(b)>|^2, and take the KL
// divergence of the empirical fidelity histogram from the Haar prediction
// P_Haar(F) = (N-1)(1-F)^{N-2}. Low KL = Haar-like = expressive — and,
// per the BP literature, plateau-prone; the classical initializers trade
// expressibility-at-initialization for trainability, which this analysis
// quantifies. The same sweep records the mean Meyer-Wallach entanglement
// of the ensemble.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "qbarren/common/table.hpp"
#include "qbarren/init/initializers.hpp"

namespace qbarren {

struct ExpressibilityOptions {
  std::size_t qubits = 4;
  std::size_t layers = 5;      ///< Eq 3 ansatz depth
  std::size_t pairs = 300;     ///< sampled state pairs per initializer
  std::size_t bins = 40;       ///< fidelity histogram resolution
  std::uint64_t seed = 17;
};

struct ExpressibilityResult {
  std::string initializer;
  double kl_divergence = 0.0;      ///< KL(empirical || Haar); lower = more
                                   ///< expressive
  double mean_fidelity = 0.0;      ///< mean pairwise fidelity (Haar: 1/N)
  double mean_entanglement = 0.0;  ///< mean Meyer-Wallach Q over samples
  /// Second frame potential F_2 = E[F^2] — the quantity whose Haar value
  /// 2/(N(N+1)) certifies a 2-design, the exact hypothesis of McClean et
  /// al.'s barren-plateau theorem. frame_potential_ratio = F_2 / F_2^Haar
  /// >= 1, with ratio -> 1 meaning "plateau theorem applies".
  double frame_potential_2 = 0.0;
  double frame_potential_ratio = 0.0;
};

/// Haar value of the t-th frame potential on an N-dimensional space:
/// t! (N-1)! / (N+t-1)! (= product_{k=0}^{t-1} (k+1)/(N+k)).
[[nodiscard]] double haar_frame_potential(std::size_t t,
                                          std::size_t dimension);

/// Runs the analysis for each initializer on the Eq 3 ansatz.
[[nodiscard]] std::vector<ExpressibilityResult> analyze_expressibility(
    const std::vector<const Initializer*>& initializers,
    const ExpressibilityOptions& options = {});

/// Tabulates analyze_expressibility results.
[[nodiscard]] Table expressibility_table(
    const std::vector<ExpressibilityResult>& results);

/// Probability mass the Haar fidelity distribution assigns to
/// [f_lo, f_hi] on an N-dimensional space:
/// (1 - f_lo)^{N-1} - (1 - f_hi)^{N-1}.
[[nodiscard]] double haar_fidelity_mass(double f_lo, double f_hi,
                                        std::size_t dimension);

}  // namespace qbarren
