// Cost-landscape scans (paper Fig 1).
//
// Scans the cost over a 2-D grid of two chosen parameters of a deep HEA
// while holding the remaining parameters fixed at a random draw. The
// paper's motivational figure shows the surface flattening as the qubit
// count grows; the scan reports flatness metrics (range and standard
// deviation of the grid) that quantify the same effect numerically.
#pragma once

#include <cstdint>
#include <vector>

#include "qbarren/bp/cost_kind.hpp"
#include "qbarren/common/table.hpp"

namespace qbarren {

struct LandscapeOptions {
  std::size_t qubits = 2;
  std::size_t layers = 100;       ///< Fig 1's constant depth
  std::size_t grid_points = 25;   ///< grid_points x grid_points samples
  std::size_t param_a = 0;        ///< first scanned parameter index
  std::size_t param_b = 1;        ///< second scanned parameter index
  double lo = 0.0;                ///< scan range [lo, hi] on both axes
  double hi = 2.0 * M_PI;
  CostKind cost = CostKind::kGlobalZero;
  std::uint64_t seed = 1;         ///< seeds the background parameter draw
  /// Background parameters: true = U[0, 2pi) random draw (Fig 1's setting),
  /// false = all zeros.
  bool random_background = true;
};

struct LandscapeResult {
  LandscapeOptions options;
  std::vector<double> axis;    ///< the grid_points scan values (both axes)
  std::vector<double> values;  ///< row-major grid: values[i*N + j] =
                               ///< C(axis[i] -> param_a, axis[j] -> param_b)

  // Flatness metrics over the grid.
  double min_value = 0.0;
  double max_value = 0.0;
  double range = 0.0;    ///< max - min; shrinks as BP flattens the surface
  double stddev = 0.0;   ///< grid standard deviation
  double mean = 0.0;

  [[nodiscard]] double value_at(std::size_t i, std::size_t j) const;

  /// Metric row for cross-width comparisons.
  [[nodiscard]] Table metrics_table() const;

  /// The full grid as a table (axis value columns), for CSV export.
  [[nodiscard]] Table grid_table() const;
};

/// Runs the scan. Requires grid_points >= 2, param indices distinct and
/// within the ansatz's parameter count, lo < hi.
[[nodiscard]] LandscapeResult scan_landscape(const LandscapeOptions& options);

/// Convenience for Fig 1: runs scans for several widths and tabulates the
/// flatness metrics side by side.
[[nodiscard]] Table landscape_flatness_table(
    const std::vector<std::size_t>& qubit_counts,
    const LandscapeOptions& base_options);

}  // namespace qbarren
