// Training analysis (paper §IV-D / §V / Fig 5b-c).
//
// Trains the Eq 3 hardware-efficient ansatz (RX+RY per qubit per layer, CZ
// ladder) to learn the identity function under the Eq 4 global cost, once
// per initializer, with a fixed iteration budget. The loss curves are the
// paper's Fig 5b (gradient descent) and Fig 5c (Adam).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "qbarren/bp/cost_kind.hpp"
#include "qbarren/common/checkpoint.hpp"
#include "qbarren/common/executor.hpp"
#include "qbarren/common/run.hpp"
#include "qbarren/common/stats.hpp"
#include "qbarren/common/table.hpp"
#include "qbarren/init/initializers.hpp"
#include "qbarren/opt/trainer.hpp"

namespace qbarren {

struct TrainingExperimentOptions {
  std::size_t qubits = 10;      ///< paper's width
  std::size_t layers = 5;       ///< paper's depth (145 gates, 100 params)
  std::size_t iterations = 50;  ///< paper's budget
  double learning_rate = 0.1;   ///< paper's step size
  std::string optimizer = "gradient-descent";  ///< or "adam" (Fig 5c)
  /// Engine for the training gradient. "adjoint" computes the exact same
  /// gradients as the paper's parameter-shift at a fraction of the cost;
  /// set "parameter-shift" to match the paper's mechanics literally.
  std::string gradient_engine = "adjoint";
  CostKind cost = CostKind::kGlobalZero;
  std::uint64_t seed = 7;
  /// Non-finite loss/gradient handling for each series (see trainer.hpp).
  /// Under kFallbackEngine the experiment supplies a parameter-shift
  /// fallback automatically.
  NonFinitePolicy non_finite_policy = NonFinitePolicy::kThrow;
  /// Wall-clock budget per training series, in seconds (default
  /// unbounded); forwarded to TrainOptions::deadline_seconds.
  double deadline_seconds = std::numeric_limits<double>::infinity();
};

/// Canonical single-line encoding of every option that shapes the
/// experiment's results (checkpoint staleness key).
[[nodiscard]] std::string options_fingerprint(
    const TrainingExperimentOptions& options);

/// The Eq-3 circuit + cost observable a training run with these options
/// builds — the fixed context every per-initializer cell shares.
[[nodiscard]] CostFunction make_training_cost(
    const TrainingExperimentOptions& options);

/// Trains one (options, initializer) cell exactly as
/// TrainingExperiment::run does for the cell keyed "init=<name>". The
/// cell's parameter stream is Rng(options.seed).child(initializer_index),
/// so any process reproduces the in-process series bit-for-bit. On a
/// retry (ctx.attempt > 0) a kThrow non-finite policy is escalated to
/// kFallbackEngine with a parameter-shift fallback — a serve worker
/// redispatched after a non-finite failure passes the attempt through
/// ctx to reproduce the in-process retry semantics.
[[nodiscard]] TrainResult run_training_cell(
    const TrainingExperimentOptions& options, const CostFunction& cost,
    const Initializer& initializer, std::size_t initializer_index,
    const CellContext& ctx);

/// Full TrainResult <-> checkpoint-cell round trip (hexfloat storage, so
/// restoration is bit-exact). The serve layer uses these to move training
/// cells between worker processes and the result cache.
[[nodiscard]] CheckpointCell checkpoint_cell_from_train_result(
    const TrainResult& result);
[[nodiscard]] TrainResult train_result_from_checkpoint_cell(
    const CheckpointCell& cell);

struct TrainingSeries {
  std::string initializer;
  TrainResult result;
};

struct TrainingResult {
  std::vector<TrainingSeries> series;
  TrainingExperimentOptions options;
  /// Cells that failed within the run's failure budget (sorted by cell
  /// key; empty on a clean run). A failed series keeps its initializer
  /// name and carries a NaN final loss with empty histories.
  std::vector<CellFailure> failures;

  /// Loss-vs-iteration table (Fig 5b/5c data): one row per recorded
  /// iteration (subsampled by `stride`), one column per initializer. Rows
  /// cover the longest history; series with shorter (or empty, for failed
  /// cells) histories render NaN cells past their end.
  [[nodiscard]] Table loss_table(std::size_t stride = 1) const;

  /// Final-loss summary: initializer, initial loss, final loss, loss drop.
  [[nodiscard]] Table summary_table() const;

  [[nodiscard]] const TrainingSeries& find(
      const std::string& initializer) const;
};

class TrainingExperiment {
 public:
  explicit TrainingExperiment(TrainingExperimentOptions options);

  [[nodiscard]] TrainingResult run(
      const std::vector<const Initializer*>& initializers) const;

  /// As above with resilient-run hooks: one checkpoint cell per
  /// initializer ("init=<name>") holding the full TrainResult, restored
  /// instead of retrained on resume; cancellation is polled between
  /// series and between training iterations (completed cells are already
  /// flushed when Cancelled propagates). A resumed run is bit-for-bit
  /// identical to an uninterrupted one.
  [[nodiscard]] TrainingResult run(
      const std::vector<const Initializer*>& initializers,
      const RunControl& control) const;

  [[nodiscard]] TrainingResult run_paper_set(
      FanMode mode = FanMode::kLayerTensor) const;
  [[nodiscard]] TrainingResult run_paper_set(FanMode mode,
                                             const RunControl& control) const;

  [[nodiscard]] const TrainingExperimentOptions& options() const noexcept {
    return options_;
  }

 private:
  TrainingExperimentOptions options_;
};

// --- multi-seed sweep --------------------------------------------------------
//
// The paper's Fig 5b/c are single training runs; a sweep over independent
// seeds shows the initialization effect is not a seed artifact and puts
// error bars on the final losses.

struct TrainingSweepOptions {
  TrainingExperimentOptions base;   ///< seed field is the sweep's root seed
  std::size_t repetitions = 5;      ///< independent seeds per initializer
};

struct TrainingSweepSeries {
  std::string initializer;
  std::vector<double> final_losses;  ///< one per repetition
  Summary final_loss_summary;
};

struct TrainingSweepResult {
  std::vector<TrainingSweepSeries> series;
  TrainingSweepOptions options;
  /// Cells that failed within the run's failure budget (sorted by cell
  /// key); a failed (repetition, initializer) cell leaves NaN in that
  /// repetition's slot of final_losses.
  std::vector<CellFailure> failures;

  /// initializer, mean/min/max final loss, stddev across seeds.
  [[nodiscard]] Table summary_table() const;
};

/// Fingerprint of a sweep (repetitions + the base experiment's options).
[[nodiscard]] std::string options_fingerprint(
    const TrainingSweepOptions& options);

/// Runs the training experiment `repetitions` times with derived seeds.
[[nodiscard]] TrainingSweepResult run_training_sweep(
    const std::vector<const Initializer*>& initializers,
    const TrainingSweepOptions& options);

/// As above with resilient-run hooks: cells are namespaced per repetition
/// ("rep=<r>/init=<name>"), so an interrupted sweep resumes at the exact
/// (repetition, initializer) pair it stopped at.
[[nodiscard]] TrainingSweepResult run_training_sweep(
    const std::vector<const Initializer*>& initializers,
    const TrainingSweepOptions& options, const RunControl& control);

}  // namespace qbarren
