// Gradient-variance analysis (paper §IV-C / Fig 5a / §VI-A).
//
// For every qubit count q and every initializer t, sample `circuits_per_
// point` random Eq-2 HEA circuits, initialize their parameters with t, and
// record the cost gradient with respect to the last parameter. The variance
// of those samples, plotted against q on a log scale, is the paper's
// barren-plateau signature; the OLS slope of ln Var vs q is the "variance
// decay rate", and each strategy's improvement over Random is
//   (|slope_random| - |slope_t|) / |slope_random| * 100 %.
//
// The same 200 circuit *structures* are reused across initializers (only
// the parameter draws differ), which removes structure-sampling noise from
// the cross-initializer comparison.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "qbarren/bp/cost_kind.hpp"
#include "qbarren/circuit/ansatz.hpp"
#include "qbarren/common/executor.hpp"
#include "qbarren/common/run.hpp"
#include "qbarren/common/stats.hpp"
#include "qbarren/common/table.hpp"
#include "qbarren/init/initializers.hpp"

namespace qbarren {

class GradientEngine;  // grad/engine.hpp; forward-declared to keep this
                       // header below the grad layer

/// Which parameter's derivative is sampled. The paper uses the last
/// parameter (kLast). For observables with small support (e.g. the ZZ
/// ablation cost) the last rotation sits on qubit q-1, *outside the
/// observable's light cone*: everything applied after it (the trailing CZ
/// ladder) commutes with Z_0 Z_1, so its gradient is identically zero for
/// q > 2. kFirst picks the first parameter instead, which has the whole
/// circuit between it and the measurement.
enum class GradientParameter {
  kLast,
  kMiddle,
  kFirst,
};

struct VarianceExperimentOptions {
  std::vector<std::size_t> qubit_counts = {2, 4, 6, 8, 10};  ///< paper's Q
  std::size_t circuits_per_point = 200;                      ///< paper's count
  /// The paper requires "substantial depth" for the variance analysis but
  /// never quotes the number (Fig 1's landscapes use 100). Depth 50 best
  /// reproduces the paper's reported improvement percentages (see
  /// bench_ablation_depth for the sweep); by depth >= 100 the non-Xavier
  /// strategies' angle variances (~1/q) are large enough that circuits
  /// approach a 2-design anyway and their improvement over random shrinks.
  std::size_t layers = 50;
  CostKind cost = CostKind::kGlobalZero;
  std::uint64_t seed = 42;
  bool entangle = true;       ///< CZ ladder on (off only for ablations)
  /// Engine used for the single-parameter derivative. The paper's method
  /// is the parameter-shift rule; "adjoint" and "finite-difference" give
  /// identical values (cross-checked in tests).
  std::string gradient_engine = "parameter-shift";
  GradientParameter which_parameter = GradientParameter::kLast;  ///< paper
  EntanglerGate entangler = EntanglerGate::kCz;                  ///< Eq 1
  EntanglerTopology topology = EntanglerTopology::kLinear;
  /// Retain the raw gradient samples in each VariancePoint (needed for
  /// bootstrap confidence intervals; off by default to keep results lean).
  bool keep_samples = false;
};

/// Canonical single-line encoding of every option that shapes the
/// experiment's results. Checkpoints are keyed by this string, so a
/// checkpoint written under different options is rejected on resume.
[[nodiscard]] std::string options_fingerprint(
    const VarianceExperimentOptions& options);

/// Computes the gradient samples of one (qubit count, initializer) cell —
/// the exact computation VarianceExperiment::run performs for the cell
/// keyed "q=<qubit_counts[qubit_index]>/init=<name>". The cell's RNG
/// child streams depend only on (options.seed, qubit_index,
/// initializer_index), so any process — an executor worker thread or a
/// serve worker process on another machine — reproduces the in-process
/// samples bit-for-bit. `ctx`, when non-null, is polled for cancellation
/// between circuits. Throws NumericalError on a non-finite sample.
[[nodiscard]] std::vector<double> compute_variance_cell(
    const VarianceExperimentOptions& options, std::size_t qubit_index,
    const Initializer& initializer, std::size_t initializer_index,
    const GradientEngine& engine, const CellContext* ctx = nullptr);

/// One (qubit count, initializer) cell of the experiment.
struct VariancePoint {
  std::size_t qubits = 0;
  double variance = 0.0;       ///< Var over the sampled gradients
  Summary gradient_summary;    ///< full sample summary (mean, min, max, ...)
  std::vector<double> samples; ///< raw gradients (only when keep_samples)
};

/// One initializer's curve across qubit counts plus its decay fit.
struct VarianceSeries {
  std::string initializer;
  std::vector<VariancePoint> points;
  LinearFit decay_fit;  ///< ln Var vs qubit count (positive-variance points)
};

struct VarianceResult {
  std::vector<VarianceSeries> series;
  VarianceExperimentOptions options;
  /// Cells that failed within the run's failure budget (sorted by cell
  /// key; empty on a clean run). A failed cell's point keeps its qubit
  /// count but carries NaN statistics.
  std::vector<CellFailure> failures;

  /// Fig 5a data: one row per qubit count, one column per initializer,
  /// cells = gradient variance (scientific notation).
  [[nodiscard]] Table variance_table() const;

  /// §VI-A data: initializer, decay slope, R^2, and improvement vs the
  /// "random" series when present.
  [[nodiscard]] Table decay_table() const;

  /// Improvement of `initializer` over "random" in percent. Throws
  /// NotFound when either series is missing, NumericalError when the
  /// random slope is ~0.
  [[nodiscard]] double improvement_percent(
      const std::string& initializer) const;

  /// True when a "random" series exists and its decay fit is a usable
  /// improvement baseline (>= 2 fitted points, finite slope with
  /// magnitude > ~0) — i.e. improvement_percent() will not throw. False
  /// on failure-degenerate or single-qubit-count runs, where reports
  /// render the improvement as null / "n/a" instead of a value.
  [[nodiscard]] bool has_improvement_baseline() const noexcept;

  [[nodiscard]] const VarianceSeries& find(
      const std::string& initializer) const;
};

/// Percentile bootstrap confidence interval on a decay slope.
struct SlopeConfidenceInterval {
  double point = 0.0;   ///< the full-sample slope
  double lower = 0.0;
  double upper = 0.0;
  double confidence = 0.0;
};

/// Bootstrap CI for a series' ln-Var-vs-qubits slope: resamples the raw
/// gradient samples within every qubit point (requires keep_samples),
/// refits the slope per replicate, and takes percentile bounds. Throws
/// InvalidArgument when samples are missing, confidence is outside (0,1),
/// or resamples < 10.
[[nodiscard]] SlopeConfidenceInterval bootstrap_decay_ci(
    const VarianceSeries& series, std::size_t resamples = 500,
    double confidence = 0.95, std::uint64_t seed = 1234);

/// Positional gradient-variance analysis: Var[dC/dtheta_k] as a function
/// of where parameter k sits in the circuit. McClean et al. prove the
/// exponential decay for parameters "deep" in a 2-design; parameters near
/// the measured end of a *local* observable's light cone behave
/// differently. This analysis computes the variance at several fractional
/// positions of the parameter vector (0 = first parameter, 1 = last) in
/// one pass per circuit via adjoint full gradients.
struct PositionalVarianceResult {
  std::vector<double> fractions;
  std::vector<std::size_t> qubit_counts;
  /// variances[f][q] for fraction index f and qubit-count index q.
  std::vector<std::vector<double>> variances;
  /// Cells that failed within the run's failure budget (sorted by cell
  /// key); the failed qubit count's column holds NaN.
  std::vector<CellFailure> failures;

  [[nodiscard]] Table table() const;
};

[[nodiscard]] PositionalVarianceResult positional_variance(
    const VarianceExperimentOptions& options, const Initializer& initializer,
    std::vector<double> fractions = {0.0, 0.25, 0.5, 0.75, 1.0});

/// As above with resilient-run hooks: one checkpoint cell per qubit count,
/// cancellation polled per sampled circuit.
[[nodiscard]] PositionalVarianceResult positional_variance(
    const VarianceExperimentOptions& options, const Initializer& initializer,
    std::vector<double> fractions, const RunControl& control);

/// Fingerprint of a positional-variance run (includes the initializer name
/// and the fraction grid on top of the base options).
[[nodiscard]] std::string positional_fingerprint(
    const VarianceExperimentOptions& options, const Initializer& initializer,
    const std::vector<double>& fractions);

class VarianceExperiment {
 public:
  explicit VarianceExperiment(VarianceExperimentOptions options);

  /// Runs the experiment for the given initializers (non-owning pointers,
  /// all non-null).
  [[nodiscard]] VarianceResult run(
      const std::vector<const Initializer*>& initializers) const;

  /// As above with resilient-run hooks: cells are checkpointed per
  /// (qubit count, initializer) as "q=<q>/init=<name>", completed cells
  /// are restored instead of recomputed on resume, and cancellation is
  /// polled per sampled circuit (completed cells are already flushed when
  /// Cancelled propagates). A resumed run is bit-for-bit identical to an
  /// uninterrupted one.
  [[nodiscard]] VarianceResult run(
      const std::vector<const Initializer*>& initializers,
      const RunControl& control) const;

  /// Runs with the paper's six strategies (§IV, set T).
  [[nodiscard]] VarianceResult run_paper_set(
      FanMode mode = FanMode::kLayerTensor) const;
  [[nodiscard]] VarianceResult run_paper_set(FanMode mode,
                                             const RunControl& control) const;

  [[nodiscard]] const VarianceExperimentOptions& options() const noexcept {
    return options_;
  }

 private:
  VarianceExperimentOptions options_;
};

}  // namespace qbarren
