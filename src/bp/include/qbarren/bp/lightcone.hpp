// Light-cone (causal support) analysis of parameter gradients.
//
// The gradient of parameter k vanishes *identically* — for every parameter
// value — when the observable, conjugated backward through every gate
// after gate k, acts trivially on gate k's qubit:
//   dC/dtheta_k = (i/2) <psi_{k}| [P_k, U_after^dag H U_after] |psi_k> = 0
// whenever the backward-propagated support of H misses qubit(k).
//
// This module computes a conservative backward support propagation (any
// two-qubit gate merges the supports of its qubits; single-qubit gates
// preserve support) and flags structurally dead parameters. The effect is
// real in the paper's protocol: differentiating the *last* parameter of an
// Eq-2 circuit against a Z0 Z1 observable measures exactly zero for q > 2
// (see bench_ablation_cost_locality).
#pragma once

#include <vector>

#include "qbarren/circuit/circuit.hpp"
#include "qbarren/common/table.hpp"

namespace qbarren {

struct LightConeReport {
  /// alive[k] == true when parameter k's gradient is NOT structurally
  /// zero under the analyzed observable support.
  std::vector<bool> alive;
  std::size_t dead_count = 0;
};

/// Analyzes which parameters can have non-zero gradients for an observable
/// supported on `observable_qubits` (e.g. {0, 1} for Z0 Z1; every qubit
/// for the global cost). Conservative: alive = "possibly non-zero".
[[nodiscard]] LightConeReport analyze_light_cone(
    const Circuit& circuit, const std::vector<std::size_t>& observable_qubits);

/// Tabulates dead-parameter counts for an observable across circuits.
[[nodiscard]] Table light_cone_table(
    const std::vector<std::pair<std::string, LightConeReport>>& reports);

}  // namespace qbarren
