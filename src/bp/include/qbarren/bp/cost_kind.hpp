// Cost-function selection shared by the bp experiments.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "qbarren/obs/observable.hpp"

namespace qbarren {

enum class CostKind {
  kGlobalZero,  ///< Eq 4: 1 - p(|0...0>) — the paper's cost
  kLocalZero,   ///< Cerezo-style local cost (ablation)
  kPauliZZ,     ///< <Z_0 Z_1> (McClean-style benchmark observable)
};

/// Instantiates the observable for a cost kind on `num_qubits` qubits.
/// kPauliZZ requires num_qubits >= 2.
[[nodiscard]] std::shared_ptr<Observable> make_cost_observable(
    CostKind kind, std::size_t num_qubits);

[[nodiscard]] std::string cost_kind_name(CostKind kind);

/// Support of the cost observable: every qubit for the global and local
/// costs (the local cost is a sum of one-qubit terms covering the whole
/// register), {0, 1} for kPauliZZ. This is the support light-cone analysis
/// (and lint rule QB001) propagates backward through the circuit.
[[nodiscard]] std::vector<std::size_t> cost_observable_qubits(
    CostKind kind, std::size_t num_qubits);

/// True when the cost measures a joint property of every qubit at once
/// (Eq 4's global projector) — the configuration McClean et al. 2018 and
/// Cerezo et al. 2021 predict to be most barren-plateau-prone at depth.
[[nodiscard]] bool is_global_cost(CostKind kind) noexcept;

/// Parses "global" / "local" / "zz"; throws NotFound otherwise.
[[nodiscard]] CostKind cost_kind_from_name(const std::string& name);

}  // namespace qbarren
