// Cost-function selection shared by the bp experiments.
#pragma once

#include <memory>
#include <string>

#include "qbarren/obs/observable.hpp"

namespace qbarren {

enum class CostKind {
  kGlobalZero,  ///< Eq 4: 1 - p(|0...0>) — the paper's cost
  kLocalZero,   ///< Cerezo-style local cost (ablation)
  kPauliZZ,     ///< <Z_0 Z_1> (McClean-style benchmark observable)
};

/// Instantiates the observable for a cost kind on `num_qubits` qubits.
/// kPauliZZ requires num_qubits >= 2.
[[nodiscard]] std::shared_ptr<Observable> make_cost_observable(
    CostKind kind, std::size_t num_qubits);

[[nodiscard]] std::string cost_kind_name(CostKind kind);

/// Parses "global" / "local" / "zz"; throws NotFound otherwise.
[[nodiscard]] CostKind cost_kind_from_name(const std::string& name);

}  // namespace qbarren
