// JSON export of experiment results for downstream plotting.
//
// Schemas are stable and versioned by the top-level "schema" field; all
// options that shaped the run are embedded so a JSON file is
// self-describing.
#pragma once

#include "qbarren/bp/landscape.hpp"
#include "qbarren/bp/training.hpp"
#include "qbarren/bp/variance.hpp"
#include "qbarren/common/json.hpp"

namespace qbarren {

/// Fig 5a data: options, per-initializer points, decay fits,
/// improvements vs random when present.
[[nodiscard]] JsonValue to_json(const VarianceResult& result);

/// Fig 5b/5c data: options and per-initializer loss histories.
[[nodiscard]] JsonValue to_json(const TrainingResult& result);

/// Fig 1 data: options, axis, row-major grid, flatness metrics.
[[nodiscard]] JsonValue to_json(const LandscapeResult& result);

}  // namespace qbarren
