#include "qbarren/exec/batched_kernels.hpp"

#include <algorithm>

namespace qbarren::exec {

// Every lane loop below runs the serial kernel's body (kernels.cpp /
// statevector.cpp) on that lane's amplitudes: identical pair enumeration,
// identical per-amplitude arithmetic. Lanes are independent, so looping
// them outside the serial body cannot change any per-lane value.
//
// The complex products are expanded to the naive component formula the
// compiler inlines for finite std::complex operands. The library multiply
// only diverges from this expansion through its NaN fixup (__muldc3),
// which never fires on the finite amplitudes and gate entries a valid
// simulation produces — so per-lane results stay bit-identical while the
// per-product NaN branch (which blocks pipelining across amplitude pairs)
// disappears from the hot loops.

namespace {

/// One complex value held as two scalars, for branch-free products.
struct RawC {
  double re;
  double im;
};

inline RawC raw(const Complex& c) { return RawC{c.real(), c.imag()}; }

/// a * b by the naive formula: same scalar products, same summation order
/// as the inlined finite-path std::complex multiply.
inline RawC cmul(RawC a, RawC b) {
  return RawC{a.re * b.re - a.im * b.im, a.re * b.im + a.im * b.re};
}

inline RawC cadd(RawC a, RawC b) { return RawC{a.re + b.re, a.im + b.im}; }

inline Complex pack(RawC a) { return Complex{a.re, a.im}; }

/// u00*a0 + u01*a1 with the serial kernel's operand order.
inline RawC mat2_row(RawC u0, RawC u1, RawC a0, RawC a1) {
  return cadd(cmul(u0, a0), cmul(u1, a1));
}

}  // namespace

void batched_apply_mat2(BatchedStateVector& batch, std::size_t lanes,
                        const gates::Mat2& u, std::size_t target) {
  const RawC u00 = raw(u.m00);
  const RawC u01 = raw(u.m01);
  const RawC u10 = raw(u.m10);
  const RawC u11 = raw(u.m11);
  const std::size_t bit = std::size_t{1} << target;
  const std::size_t dim = batch.dimension();
  const std::size_t low_mask = bit - 1;
  // Two lanes per pass: their updates are independent, which keeps two
  // dependency chains in flight per amplitude pair. Each lane still sees
  // exactly the single-lane expressions.
  std::size_t b = 0;
  for (; b + 1 < lanes; b += 2) {
    Complex* ampsx = batch.lane_data(b);
    Complex* ampsy = batch.lane_data(b + 1);
    for (std::size_t i = 0; i < dim / 2; ++i) {
      const std::size_t i0 = ((i & ~low_mask) << 1) | (i & low_mask);
      const std::size_t i1 = i0 | bit;
      const RawC x0 = raw(ampsx[i0]);
      const RawC x1 = raw(ampsx[i1]);
      const RawC y0 = raw(ampsy[i0]);
      const RawC y1 = raw(ampsy[i1]);
      ampsx[i0] = pack(mat2_row(u00, u01, x0, x1));
      ampsx[i1] = pack(mat2_row(u10, u11, x0, x1));
      ampsy[i0] = pack(mat2_row(u00, u01, y0, y1));
      ampsy[i1] = pack(mat2_row(u10, u11, y0, y1));
    }
  }
  for (; b < lanes; ++b) {
    Complex* amps = batch.lane_data(b);
    for (std::size_t i = 0; i < dim / 2; ++i) {
      const std::size_t i0 = ((i & ~low_mask) << 1) | (i & low_mask);
      const std::size_t i1 = i0 | bit;
      const RawC a0 = raw(amps[i0]);
      const RawC a1 = raw(amps[i1]);
      amps[i0] = pack(mat2_row(u00, u01, a0, a1));
      amps[i1] = pack(mat2_row(u10, u11, a0, a1));
    }
  }
}

void batched_apply_mat2_per_lane(BatchedStateVector& batch, std::size_t lanes,
                                 const gates::Mat2* entries,
                                 std::size_t target) {
  const std::size_t bit = std::size_t{1} << target;
  const std::size_t dim = batch.dimension();
  const std::size_t low_mask = bit - 1;
  for (std::size_t b = 0; b < lanes; ++b) {
    const RawC u00 = raw(entries[b].m00);
    const RawC u01 = raw(entries[b].m01);
    const RawC u10 = raw(entries[b].m10);
    const RawC u11 = raw(entries[b].m11);
    Complex* amps = batch.lane_data(b);
    for (std::size_t i = 0; i < dim / 2; ++i) {
      const std::size_t i0 = ((i & ~low_mask) << 1) | (i & low_mask);
      const std::size_t i1 = i0 | bit;
      const RawC a0 = raw(amps[i0]);
      const RawC a1 = raw(amps[i1]);
      amps[i0] = pack(mat2_row(u00, u01, a0, a1));
      amps[i1] = pack(mat2_row(u10, u11, a0, a1));
    }
  }
}

namespace {

// RZ diagonal body, as apply_rotation_mat2's fast path: the off-diagonal
// entries are exact zeros, so the skipped products only ever add a signed
// zero.
inline void diagonal_lane(Complex* amps, std::size_t dim, std::size_t bit,
                          std::size_t low_mask, const RawC u00,
                          const RawC u11) {
  for (std::size_t i = 0; i < dim / 2; ++i) {
    const std::size_t i0 = ((i & ~low_mask) << 1) | (i & low_mask);
    const std::size_t i1 = i0 | bit;
    amps[i0] = pack(cmul(u00, raw(amps[i0])));
    amps[i1] = pack(cmul(u11, raw(amps[i1])));
  }
}

}  // namespace

void batched_apply_rotation_mat2(BatchedStateVector& batch, std::size_t lanes,
                                 gates::Axis axis, const gates::Mat2& u,
                                 std::size_t target) {
  if (axis == gates::Axis::kZ) {
    const RawC u00 = raw(u.m00);
    const RawC u11 = raw(u.m11);
    const std::size_t bit = std::size_t{1} << target;
    const std::size_t dim = batch.dimension();
    const std::size_t low_mask = bit - 1;
    for (std::size_t b = 0; b < lanes; ++b) {
      diagonal_lane(batch.lane_data(b), dim, bit, low_mask, u00, u11);
    }
    return;
  }
  batched_apply_mat2(batch, lanes, u, target);
}

void batched_apply_rotation_per_lane(BatchedStateVector& batch,
                                     std::size_t lanes, gates::Axis axis,
                                     const gates::Mat2* entries,
                                     std::size_t target) {
  if (axis == gates::Axis::kZ) {
    const std::size_t bit = std::size_t{1} << target;
    const std::size_t dim = batch.dimension();
    const std::size_t low_mask = bit - 1;
    for (std::size_t b = 0; b < lanes; ++b) {
      diagonal_lane(batch.lane_data(b), dim, bit, low_mask,
                    raw(entries[b].m00), raw(entries[b].m11));
    }
    return;
  }
  batched_apply_mat2_per_lane(batch, lanes, entries, target);
}

void batched_apply_mat2_pair(BatchedStateVector& batch, std::size_t lanes,
                             const gates::Mat2& u_first,
                             const gates::Mat2& u_second, std::size_t target) {
  const RawC f00 = raw(u_first.m00);
  const RawC f01 = raw(u_first.m01);
  const RawC f10 = raw(u_first.m10);
  const RawC f11 = raw(u_first.m11);
  const RawC s00 = raw(u_second.m00);
  const RawC s01 = raw(u_second.m01);
  const RawC s10 = raw(u_second.m10);
  const RawC s11 = raw(u_second.m11);
  const std::size_t bit = std::size_t{1} << target;
  const std::size_t dim = batch.dimension();
  const std::size_t low_mask = bit - 1;
  // Two lanes per pass, as batched_apply_mat2.
  std::size_t b = 0;
  for (; b + 1 < lanes; b += 2) {
    Complex* ampsx = batch.lane_data(b);
    Complex* ampsy = batch.lane_data(b + 1);
    for (std::size_t i = 0; i < dim / 2; ++i) {
      const std::size_t i0 = ((i & ~low_mask) << 1) | (i & low_mask);
      const std::size_t i1 = i0 | bit;
      const RawC x0 = raw(ampsx[i0]);
      const RawC x1 = raw(ampsx[i1]);
      const RawC y0 = raw(ampsy[i0]);
      const RawC y1 = raw(ampsy[i1]);
      const RawC bx0 = mat2_row(f00, f01, x0, x1);
      const RawC bx1 = mat2_row(f10, f11, x0, x1);
      const RawC by0 = mat2_row(f00, f01, y0, y1);
      const RawC by1 = mat2_row(f10, f11, y0, y1);
      ampsx[i0] = pack(mat2_row(s00, s01, bx0, bx1));
      ampsx[i1] = pack(mat2_row(s10, s11, bx0, bx1));
      ampsy[i0] = pack(mat2_row(s00, s01, by0, by1));
      ampsy[i1] = pack(mat2_row(s10, s11, by0, by1));
    }
  }
  for (; b < lanes; ++b) {
    Complex* amps = batch.lane_data(b);
    for (std::size_t i = 0; i < dim / 2; ++i) {
      const std::size_t i0 = ((i & ~low_mask) << 1) | (i & low_mask);
      const std::size_t i1 = i0 | bit;
      const RawC a0 = raw(amps[i0]);
      const RawC a1 = raw(amps[i1]);
      const RawC b0 = mat2_row(f00, f01, a0, a1);
      const RawC b1 = mat2_row(f10, f11, a0, a1);
      amps[i0] = pack(mat2_row(s00, s01, b0, b1));
      amps[i1] = pack(mat2_row(s10, s11, b0, b1));
    }
  }
}

void batched_apply_mat2_run(BatchedStateVector& batch, std::size_t lanes,
                            const gates::Mat2* pool,
                            const std::uint32_t* indices, std::size_t count,
                            bool reverse, std::size_t target) {
  const std::size_t bit = std::size_t{1} << target;
  const std::size_t dim = batch.dimension();
  const std::size_t low_mask = bit - 1;
  for (std::size_t b = 0; b < lanes; ++b) {
    Complex* amps = batch.lane_data(b);
    for (std::size_t i = 0; i < dim / 2; ++i) {
      const std::size_t i0 = ((i & ~low_mask) << 1) | (i & low_mask);
      const std::size_t i1 = i0 | bit;
      RawC a0 = raw(amps[i0]);
      RawC a1 = raw(amps[i1]);
      for (std::size_t j = 0; j < count; ++j) {
        const gates::Mat2& u = pool[indices[reverse ? count - 1 - j : j]];
        const RawC b0 = mat2_row(raw(u.m00), raw(u.m01), a0, a1);
        const RawC b1 = mat2_row(raw(u.m10), raw(u.m11), a0, a1);
        a0 = b0;
        a1 = b1;
      }
      amps[i0] = pack(a0);
      amps[i1] = pack(a1);
    }
  }
}

void batched_apply_controlled_mat2(BatchedStateVector& batch,
                                   std::size_t lanes, const gates::Mat2& u,
                                   std::size_t control, std::size_t target) {
  const RawC u00 = raw(u.m00);
  const RawC u01 = raw(u.m01);
  const RawC u10 = raw(u.m10);
  const RawC u11 = raw(u.m11);
  const std::size_t cbit = std::size_t{1} << control;
  const std::size_t tbit = std::size_t{1} << target;
  const std::size_t dim = batch.dimension();
  for (std::size_t b = 0; b < lanes; ++b) {
    Complex* amps = batch.lane_data(b);
    for (std::size_t i0 = 0; i0 < dim; ++i0) {
      if ((i0 & cbit) == 0 || (i0 & tbit) != 0) continue;
      const std::size_t i1 = i0 | tbit;
      const RawC a0 = raw(amps[i0]);
      const RawC a1 = raw(amps[i1]);
      amps[i0] = pack(mat2_row(u00, u01, a0, a1));
      amps[i1] = pack(mat2_row(u10, u11, a0, a1));
    }
  }
}

void batched_apply_controlled_per_lane(BatchedStateVector& batch,
                                       std::size_t lanes,
                                       const gates::Mat2* entries,
                                       std::size_t control,
                                       std::size_t target) {
  const std::size_t cbit = std::size_t{1} << control;
  const std::size_t tbit = std::size_t{1} << target;
  const std::size_t dim = batch.dimension();
  for (std::size_t b = 0; b < lanes; ++b) {
    const RawC u00 = raw(entries[b].m00);
    const RawC u01 = raw(entries[b].m01);
    const RawC u10 = raw(entries[b].m10);
    const RawC u11 = raw(entries[b].m11);
    Complex* amps = batch.lane_data(b);
    for (std::size_t i0 = 0; i0 < dim; ++i0) {
      if ((i0 & cbit) == 0 || (i0 & tbit) != 0) continue;
      const std::size_t i1 = i0 | tbit;
      const RawC a0 = raw(amps[i0]);
      const RawC a1 = raw(amps[i1]);
      amps[i0] = pack(mat2_row(u00, u01, a0, a1));
      amps[i1] = pack(mat2_row(u10, u11, a0, a1));
    }
  }
}

namespace {
// Ascending enumeration of the basis indices with both qubit bits set, as
// in kernels.cpp.
inline std::size_t both_set_index(std::size_t x, std::size_t low_mask,
                                  std::size_t high_mask, std::size_t bits) {
  const std::size_t t = ((x & ~low_mask) << 1) | (x & low_mask);
  return (((t & ~high_mask) << 1) | (t & high_mask)) | bits;
}
}  // namespace

void batched_apply_cz(BatchedStateVector& batch, std::size_t lanes,
                      std::size_t qubit_a, std::size_t qubit_b) {
  const std::size_t bl = std::size_t{1} << std::min(qubit_a, qubit_b);
  const std::size_t bh = std::size_t{1} << std::max(qubit_a, qubit_b);
  const std::size_t lm = bl - 1;
  const std::size_t hm = bh - 1;
  const std::size_t dim = batch.dimension();
  for (std::size_t b = 0; b < lanes; ++b) {
    Complex* amps = batch.lane_data(b);
    for (std::size_t x = 0; x < dim / 4; ++x) {
      const std::size_t i = both_set_index(x, lm, hm, bl | bh);
      amps[i] = -amps[i];
    }
  }
}

void batched_apply_mat4(BatchedStateVector& batch, std::size_t lanes,
                        const ComplexMatrix& u, std::size_t q_low,
                        std::size_t q_high) {
  const std::size_t bl = std::size_t{1} << q_low;
  const std::size_t bh = std::size_t{1} << q_high;
  const std::size_t dim = batch.dimension();
  RawC m[4][4];
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      m[r][c] = raw(u.at_unchecked(r, c));
    }
  }
  for (std::size_t b = 0; b < lanes; ++b) {
    Complex* amps = batch.lane_data(b);
    for (std::size_t i = 0; i < dim; ++i) {
      if ((i & bl) != 0 || (i & bh) != 0) continue;  // base of each 4-group
      const std::size_t idx[4] = {i, i | bl, i | bh, i | bl | bh};
      RawC in[4];
      for (std::size_t k = 0; k < 4; ++k) {
        in[k] = raw(amps[idx[k]]);
      }
      for (std::size_t r = 0; r < 4; ++r) {
        RawC acc{0.0, 0.0};
        for (std::size_t c = 0; c < 4; ++c) {
          acc = cadd(acc, cmul(m[r][c], in[c]));
        }
        amps[idx[r]] = pack(acc);
      }
    }
  }
}

}  // namespace qbarren::exec
