#include "qbarren/exec/compiled_circuit.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <map>
#include <mutex>
#include <tuple>
#include <utility>

#include "qbarren/exec/batched_kernels.hpp"
#include "qbarren/exec/kernels.hpp"
#include "qbarren/obs/observable.hpp"

namespace qbarren::exec {

namespace {

constexpr std::uint32_t kNoIndex32 = static_cast<std::uint32_t>(-1);

std::atomic<bool> g_plans_enabled{true};

// Plan-attach hook: shared_ptr so plan_for can invoke a stable copy
// outside the lock while another thread swaps the hook.
std::mutex g_attach_hook_mutex;
std::shared_ptr<const PlanAttachHook> g_attach_hook;  // NOLINT(cert-err58-cpp)

std::shared_ptr<const PlanAttachHook> current_attach_hook() {
  const std::lock_guard<std::mutex> lock(g_attach_hook_mutex);
  return g_attach_hook;
}

// Dedup key for cached matrices: everything that determines an op's dense
// matrix (qubit placement does not).
using PoolKey = std::tuple<int, int, std::uint64_t, std::size_t>;

PoolKey key_for(const Operation& op) {
  const bool custom =
      op.kind == OpKind::kCustomSingle || op.kind == OpKind::kCustomTwo;
  return {static_cast<int>(op.kind), static_cast<int>(op.axis),
          std::bit_cast<std::uint64_t>(op.fixed_angle),
          custom ? op.custom_index : 0};
}

std::uint32_t u32(std::size_t v) { return static_cast<std::uint32_t>(v); }

}  // namespace

std::shared_ptr<const CompiledCircuit> CompiledCircuit::compile(
    const Circuit& circuit, const CompileOptions& options) {
  std::shared_ptr<CompiledCircuit> plan(new CompiledCircuit());
  plan->num_qubits_ = circuit.num_qubits();
  plan->num_params_ = circuit.num_parameters();
  const std::vector<Operation>& ops = circuit.operations();
  plan->stats_.source_ops = ops.size();
  plan->param_source_op_.assign(plan->num_params_, kNoOperation);
  plan->param_plan_op_.assign(plan->num_params_, kNoIndex32);
  plan->source_matrix_.assign(ops.size(), kNoIndex32);

  std::map<PoolKey, std::uint32_t> pool2_index;
  std::map<PoolKey, std::uint32_t> pool4_index;
  std::map<PoolKey, std::uint32_t> dense_index;
  std::vector<std::uint8_t> param_seen(plan->num_params_, 0);

  // Pending run of adjacent constant single-qubit gates on one qubit.
  std::vector<std::uint32_t> run;
  std::size_t run_qubit = 0;
  std::size_t run_first = 0;

  auto flush_run = [&] {
    if (run.empty()) return;
    PlanOp op;
    op.qubit0 = u32(run_qubit);
    op.source_index = u32(run_first);
    if (run.size() == 1) {
      op.kernel = Kernel::kFixedSingle;
      op.matrix = run[0];
    } else {
      op.kernel = Kernel::kFusedSingle;
      op.fused_begin = u32(plan->fused_.size());
      op.fused_count = u32(run.size());
      plan->fused_.insert(plan->fused_.end(), run.begin(), run.end());
      ++plan->stats_.fused_runs;
      plan->stats_.fused_source_ops += run.size();
    }
    plan->plan_ops_.push_back(op);
    run.clear();
  };

  // Cache the dense matrix of a constant source op for the density-matrix
  // simulator (constant ops ignore the parameter span).
  auto intern_dense = [&](const Operation& op, std::size_t i) {
    auto [it, inserted] = dense_index.try_emplace(
        key_for(op), u32(plan->const_matrices_.size()));
    if (inserted) {
      plan->const_matrices_.push_back(circuit.operation_matrix(i, {}));
    }
    plan->source_matrix_[i] = it->second;
  };

  auto intern2 = [&](const Operation& op, const gates::Mat2& fwd,
                     const gates::Mat2& inv) {
    auto [it, inserted] =
        pool2_index.try_emplace(key_for(op), u32(plan->pool2_.size()));
    if (inserted) {
      plan->pool2_.push_back(fwd);
      plan->pool2_inv_.push_back(inv);
    }
    return it->second;
  };

  auto intern4 = [&](const Operation& op, const ComplexMatrix& fwd,
                     const ComplexMatrix& inv) {
    auto [it, inserted] =
        pool4_index.try_emplace(key_for(op), u32(plan->pool4_.size()));
    if (inserted) {
      plan->pool4_.push_back(fwd);
      plan->pool4_inv_.push_back(inv);
    }
    return it->second;
  };

  // First consumer wins, matching the linear scan's first-match
  // semantics; a parameter consumed twice (not producible by the
  // builders, but cheap to defend against) disables prefix reuse for it.
  auto record_param = [&](std::size_t p, std::size_t source) {
    if (param_seen[p] == 0) {
      param_seen[p] = 1;
      plan->param_source_op_[p] = source;
      plan->param_plan_op_[p] = u32(plan->plan_ops_.size());
    } else {
      plan->param_plan_op_[p] = kNoIndex32;
    }
  };

  // Appends a constant single-qubit gate: extends the pending fused run
  // when it targets the same qubit as the previous constant gate.
  auto push_constant1q = [&](const Operation& op, std::size_t i,
                             std::uint32_t matrix) {
    if (!options.fuse_single_qubit_runs ||
        (!run.empty() && run_qubit != op.qubit0)) {
      flush_run();
    }
    if (run.empty()) {
      run_qubit = op.qubit0;
      run_first = i;
    }
    run.push_back(matrix);
    if (!options.fuse_single_qubit_runs) flush_run();
  };

  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Operation& op = ops[i];
    switch (op.kind) {
      case OpKind::kRotation: {
        flush_run();
        record_param(op.param_index, i);
        PlanOp p;
        p.kernel = Kernel::kRotation;
        p.axis = op.axis;
        p.qubit0 = u32(op.qubit0);
        p.param = u32(op.param_index);
        p.source_index = u32(i);
        plan->plan_ops_.push_back(p);
        ++plan->stats_.rotation_ops;
        break;
      }
      case OpKind::kControlledRotation: {
        flush_run();
        record_param(op.param_index, i);
        PlanOp p;
        p.kernel = Kernel::kControlledRotation;
        p.axis = op.axis;
        p.qubit0 = u32(op.qubit0);
        p.qubit1 = u32(op.qubit1);
        p.param = u32(op.param_index);
        p.source_index = u32(i);
        plan->plan_ops_.push_back(p);
        ++plan->stats_.rotation_ops;
        break;
      }
      case OpKind::kFixedRotation: {
        const gates::Mat2 fwd =
            gates::rotation_entries(op.axis, op.fixed_angle);
        // Interpreted inverse applies rotation(axis, -angle).
        const gates::Mat2 inv =
            gates::rotation_entries(op.axis, -op.fixed_angle);
        push_constant1q(op, i, intern2(op, fwd, inv));
        intern_dense(op, i);
        break;
      }
      case OpKind::kHadamard:
      case OpKind::kPauliX:
      case OpKind::kPauliY:
      case OpKind::kPauliZ: {
        const ComplexMatrix& m = op.kind == OpKind::kHadamard ? gates::hadamard()
                                 : op.kind == OpKind::kPauliX ? gates::pauli_x()
                                 : op.kind == OpKind::kPauliY ? gates::pauli_y()
                                                              : gates::pauli_z();
        const gates::Mat2 fwd = gates::entries_of(m);
        // Involutions: the interpreted inverse re-applies the forward gate.
        push_constant1q(op, i, intern2(op, fwd, fwd));
        intern_dense(op, i);
        break;
      }
      case OpKind::kSGate:
      case OpKind::kTGate: {
        const ComplexMatrix& m =
            op.kind == OpKind::kSGate ? gates::s_gate() : gates::t_gate();
        push_constant1q(
            op, i, intern2(op, gates::entries_of(m),
                           gates::entries_of(adjoint(m))));
        intern_dense(op, i);
        break;
      }
      case OpKind::kCustomSingle: {
        const ComplexMatrix& m = circuit.custom_gate(op).matrix;
        QBARREN_REQUIRE(m.rows() == 2 && m.cols() == 2,
                        "CompiledCircuit: custom single-qubit matrix must "
                        "be 2x2");
        push_constant1q(
            op, i, intern2(op, gates::entries_of(m),
                           gates::entries_of(adjoint(m))));
        intern_dense(op, i);
        break;
      }
      case OpKind::kCz: {
        flush_run();
        PlanOp p;
        p.kernel = Kernel::kCzGate;
        p.qubit0 = u32(op.qubit0);
        p.qubit1 = u32(op.qubit1);
        p.source_index = u32(i);
        plan->plan_ops_.push_back(p);
        intern_dense(op, i);
        break;
      }
      case OpKind::kCnot: {
        flush_run();
        PlanOp p;
        p.kernel = Kernel::kCnot;
        p.qubit0 = u32(op.qubit0);  // control, as in apply_controlled
        p.qubit1 = u32(op.qubit1);
        const gates::Mat2 x = gates::entries_of(gates::pauli_x());
        p.matrix = intern2(op, x, x);
        p.source_index = u32(i);
        plan->plan_ops_.push_back(p);
        intern_dense(op, i);
        break;
      }
      case OpKind::kSwap: {
        flush_run();
        PlanOp p;
        p.kernel = Kernel::kFixedTwo;
        // apply_operation passes (min, max) to apply_two_qubit.
        p.qubit0 = u32(std::min(op.qubit0, op.qubit1));
        p.qubit1 = u32(std::max(op.qubit0, op.qubit1));
        p.matrix = intern4(op, gates::swap(), gates::swap());
        p.source_index = u32(i);
        plan->plan_ops_.push_back(p);
        intern_dense(op, i);
        break;
      }
      case OpKind::kCustomTwo: {
        flush_run();
        const ComplexMatrix& m = circuit.custom_gate(op).matrix;
        QBARREN_REQUIRE(m.rows() == 4 && m.cols() == 4,
                        "CompiledCircuit: custom two-qubit matrix must be "
                        "4x4");
        PlanOp p;
        p.kernel = Kernel::kFixedTwo;
        p.qubit0 = u32(op.qubit0);  // builder guarantees qubit0 < qubit1
        p.qubit1 = u32(op.qubit1);
        p.matrix = intern4(op, m, adjoint(m));
        p.source_index = u32(i);
        plan->plan_ops_.push_back(p);
        intern_dense(op, i);
        break;
      }
    }
  }
  flush_run();

  // Batched dispatch table: parameterized ops get dense angle-table rows
  // in stream order; everything else carries the sentinel.
  plan->rotation_slot_.assign(plan->plan_ops_.size(), kNoBatchSlot);
  std::uint32_t next_slot = 0;
  for (std::size_t k = 0; k < plan->plan_ops_.size(); ++k) {
    const Kernel kernel = plan->plan_ops_[k].kernel;
    if (kernel == Kernel::kRotation || kernel == Kernel::kControlledRotation) {
      plan->rotation_slot_[k] = next_slot++;
    }
  }

  plan->stats_.plan_ops = plan->plan_ops_.size();
  plan->stats_.cached_matrices = plan->pool2_.size() + plan->pool4_.size();
  return plan;
}

void CompiledCircuit::apply_to(StateVector& state,
                               std::span<const double> params) const {
  QBARREN_REQUIRE(state.num_qubits() == num_qubits_,
                  "CompiledCircuit::apply_to: register width mismatch");
  QBARREN_REQUIRE(params.size() == num_params_,
                  "CompiledCircuit::apply_to: parameter count mismatch");
  apply_plan_ops(state, params, 0, plan_ops_.size());
}

std::vector<CompiledCircuit::ParamBinding> CompiledCircuit::param_bindings()
    const {
  std::vector<ParamBinding> bindings(num_params_);
  for (std::size_t p = 0; p < num_params_; ++p) {
    bindings[p].source_op = param_source_op_[p];
    bindings[p].plan_op = plan_op_for_parameter(p);
  }
  return bindings;
}

std::size_t CompiledCircuit::source_op_for_parameter(
    std::size_t param_index) const noexcept {
  if (param_index >= param_source_op_.size()) return kNoOperation;
  return param_source_op_[param_index];
}

StateVector CompiledCircuit::simulate(std::span<const double> params) const {
  StateVector state(num_qubits_);
  apply_to(state, params);
  return state;
}

// --- batched execution -----------------------------------------------------

void CompiledCircuit::apply_to_batch(BatchedStateVector& batch,
                                     std::span<const double> bindings) const {
  QBARREN_REQUIRE(batch.num_qubits() == num_qubits_,
                  "CompiledCircuit::apply_to_batch: register width mismatch");
  const std::size_t lanes = batch.batch_size();
  QBARREN_REQUIRE(bindings.size() == lanes * num_params_,
                  "CompiledCircuit::apply_to_batch: bindings must hold "
                  "batch_size rows of num_parameters angles");
  // Per-op angle table, one row per parameterized op: row r holds the
  // rotation entries of every lane for the r-th parameterized op in stream
  // order (rotation_slot_). Thread-local scratch — deep plans re-dispatch
  // this thousands of times per experiment.
  thread_local std::vector<gates::Mat2> angle_table;
  angle_table.resize(stats_.rotation_ops * lanes);
  for (std::size_t k = 0; k < plan_ops_.size(); ++k) {
    const std::uint32_t slot = rotation_slot_[k];
    if (slot == kNoBatchSlot) continue;
    const PlanOp& op = plan_ops_[k];
    gates::Mat2* row = angle_table.data() + std::size_t{slot} * lanes;
    for (std::size_t b = 0; b < lanes; ++b) {
      row[b] = gates::rotation_entries(op.axis,
                                       bindings[b * num_params_ + op.param]);
    }
  }
  for (std::size_t k = 0; k < plan_ops_.size(); ++k) {
    const std::uint32_t slot = rotation_slot_[k];
    const gates::Mat2* entries =
        slot == kNoBatchSlot
            ? nullptr
            : angle_table.data() + std::size_t{slot} * lanes;
    apply_plan_op_batch(k, batch, lanes, entries);
  }
}

BatchedStateVector CompiledCircuit::simulate_batch(
    std::span<const double> bindings, std::size_t batch_size) const {
  BatchedStateVector batch(num_qubits_, batch_size);
  apply_to_batch(batch, bindings);
  return batch;
}

std::vector<double> CompiledCircuit::expectation_batch(
    const Observable& observable, std::span<const double> bindings,
    std::size_t batch_size) const {
  const BatchedStateVector batch = simulate_batch(bindings, batch_size);
  std::vector<double> values(batch_size);
  StateVector scratch(num_qubits_);
  for (std::size_t b = 0; b < batch_size; ++b) {
    batch.extract_lane(b, scratch);
    values[b] = observable.expectation(scratch);
  }
  return values;
}

void CompiledCircuit::apply_plan_op_batch(std::size_t k,
                                          BatchedStateVector& batch,
                                          std::size_t lanes,
                                          const gates::Mat2* entries) const {
  QBARREN_REQUIRE(k < plan_ops_.size(),
                  "CompiledCircuit::apply_plan_op_batch: index out of range");
  QBARREN_REQUIRE(lanes <= batch.batch_size(),
                  "CompiledCircuit::apply_plan_op_batch: lane count exceeds "
                  "batch");
  const PlanOp& op = plan_ops_[k];
  switch (op.kernel) {
    case Kernel::kRotation:
      QBARREN_REQUIRE(entries != nullptr,
                      "CompiledCircuit::apply_plan_op_batch: parameterized "
                      "op needs per-lane entries");
      batched_apply_rotation_per_lane(batch, lanes, op.axis, entries,
                                      op.qubit0);
      return;
    case Kernel::kControlledRotation:
      QBARREN_REQUIRE(entries != nullptr,
                      "CompiledCircuit::apply_plan_op_batch: parameterized "
                      "op needs per-lane entries");
      batched_apply_controlled_per_lane(batch, lanes, entries, op.qubit0,
                                        op.qubit1);
      return;
    case Kernel::kFixedSingle:
      batched_apply_mat2(batch, lanes, pool2_[op.matrix], op.qubit0);
      return;
    case Kernel::kFusedSingle:
      batched_apply_mat2_run(batch, lanes, pool2_.data(),
                             fused_.data() + op.fused_begin, op.fused_count,
                             /*reverse=*/false, op.qubit0);
      return;
    case Kernel::kCnot:
      batched_apply_controlled_mat2(batch, lanes, pool2_[op.matrix],
                                    op.qubit0, op.qubit1);
      return;
    case Kernel::kCzGate:
      batched_apply_cz(batch, lanes, op.qubit0, op.qubit1);
      return;
    case Kernel::kFixedTwo:
      batched_apply_mat4(batch, lanes, pool4_[op.matrix], op.qubit0,
                         op.qubit1);
      return;
  }
  throw InvalidArgument("CompiledCircuit::apply_plan_op_batch: unknown kernel");
}

void CompiledCircuit::apply_plan_op_batch_pair(std::size_t k,
                                               BatchedStateVector& batch,
                                               std::size_t lanes,
                                               const gates::Mat2& first,
                                               const gates::Mat2& second) const {
  QBARREN_REQUIRE(k + 1 < plan_ops_.size(),
                  "CompiledCircuit::apply_plan_op_batch_pair: index out of "
                  "range");
  QBARREN_REQUIRE(plan_ops_[k].kernel == Kernel::kRotation &&
                      plan_ops_[k + 1].kernel == Kernel::kRotation &&
                      plan_ops_[k].qubit0 == plan_ops_[k + 1].qubit0,
                  "CompiledCircuit::apply_plan_op_batch_pair: ops must be "
                  "same-qubit rotations");
  batched_apply_mat2_pair(batch, lanes, first, second, plan_ops_[k].qubit0);
}

double CompiledCircuit::adjoint_value_and_gradient(
    const Observable& observable, std::span<const double> params,
    std::span<double> gradient) const {
  QBARREN_REQUIRE(params.size() == num_params_,
                  "CompiledCircuit::adjoint_value_and_gradient: parameter "
                  "count mismatch");
  QBARREN_REQUIRE(gradient.size() == num_params_,
                  "CompiledCircuit::adjoint_value_and_gradient: gradient "
                  "span size mismatch");
  const std::size_t n = plan_ops_.size();

  // Rotation-entry table for this parameter binding: one forward and one
  // inverse trig evaluation per parameterized op, reused everywhere below.
  // Thread-local scratch: the tables are large enough (64 bytes per plan
  // op, twice) that reallocating per gradient call shows up in profiles.
  thread_local std::vector<gates::Mat2> fwd;
  thread_local std::vector<gates::Mat2> inv;
  fwd.resize(n);
  inv.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    const PlanOp& op = plan_ops_[k];
    if (op.kernel == Kernel::kRotation ||
        op.kernel == Kernel::kControlledRotation) {
      fwd[k] = gates::rotation_entries(op.axis, params[op.param]);
      inv[k] = gates::rotation_entries(op.axis, -params[op.param]);
    }
  }

  StateVector phi(num_qubits_);
  for (std::size_t k = 0; k < n; ++k) {
    const PlanOp& op = plan_ops_[k];
    if (op.kernel == Kernel::kRotation) {
      // HEA layers put same-qubit rotation pairs back to back (RX then
      // RY); run both in one pass when they are.
      if (k + 1 < n && plan_ops_[k + 1].kernel == Kernel::kRotation &&
          plan_ops_[k + 1].qubit0 == op.qubit0) {
        apply_mat2_pair(phi, fwd[k], fwd[k + 1], op.qubit0);
        ++k;
      } else {
        apply_rotation_mat2(phi, op.axis, fwd[k], op.qubit0);
      }
    } else if (op.kernel == Kernel::kControlledRotation) {
      apply_controlled_mat2(phi, fwd[k], op.qubit0, op.qubit1);
    } else {
      apply_plan_op(k, phi, params);
    }
  }
  StateVector lambda = observable.apply(phi);
  const double value = phi.inner_product(lambda).real();

  StateVector scratch(num_qubits_);
  for (std::size_t k = n; k-- > 0;) {
    const PlanOp& op = plan_ops_[k];
    if (op.kernel == Kernel::kRotation) {
      const gates::Mat2 dr =
          gates::rotation_derivative_entries_from(op.axis, fwd[k]);
      // Combined step: inverse on phi, <lambda| dR |phi_{k-1}>, inverse on
      // lambda — one kernel instead of three passes over the amplitudes.
      gradient[op.param] +=
          2.0 *
          adjoint_rotation_sweep(phi, lambda, op.axis, inv[k], dr, op.qubit0)
              .real();
    } else if (op.kernel == Kernel::kControlledRotation) {
      apply_controlled_mat2(phi, inv[k], op.qubit0, op.qubit1);
      const gates::Mat2 dr =
          gates::rotation_derivative_entries_from(op.axis, fwd[k]);
      // |1><1| (x) dR/dtheta on the control-set subspace, zero elsewhere
      // (matrix bit 0 = control = qubit0), as in the interpreted path.
      Complex m[4][4] = {};
      m[1][1] = dr.m00;
      m[1][3] = dr.m01;
      m[3][1] = dr.m10;
      m[3][3] = dr.m11;
      apply_mat4_from(scratch, phi, m, op.qubit0, op.qubit1);
      gradient[op.param] += 2.0 * lambda.inner_product(scratch).real();
      apply_controlled_mat2(lambda, inv[k], op.qubit0, op.qubit1);
    } else {
      apply_plan_op_inverse_pair(k, phi, lambda, params);
    }
  }
  return value;
}

void CompiledCircuit::apply_plan_ops(StateVector& state,
                                     std::span<const double> params,
                                     std::size_t begin,
                                     std::size_t end) const {
  QBARREN_REQUIRE(begin <= end && end <= plan_ops_.size(),
                  "CompiledCircuit::apply_plan_ops: range out of bounds");
  for (std::size_t k = begin; k < end; ++k) {
    apply_plan_op(k, state, params);
  }
}

void CompiledCircuit::apply_plan_op(std::size_t k, StateVector& state,
                                    std::span<const double> params) const {
  QBARREN_REQUIRE(k < plan_ops_.size(),
                  "CompiledCircuit::apply_plan_op: index out of range");
  const PlanOp& op = plan_ops_[k];
  switch (op.kernel) {
    case Kernel::kRotation:
      apply_rotation(state, op.axis, params[op.param], op.qubit0);
      return;
    case Kernel::kControlledRotation:
      apply_controlled_rotation(state, op.axis, params[op.param], op.qubit0,
                                op.qubit1);
      return;
    case Kernel::kFixedSingle:
      apply_mat2(state, pool2_[op.matrix], op.qubit0);
      return;
    case Kernel::kFusedSingle:
      apply_mat2_run(state, pool2_.data(), fused_.data() + op.fused_begin,
                     op.fused_count, /*reverse=*/false, op.qubit0);
      return;
    case Kernel::kCnot:
      apply_controlled_mat2(state, pool2_[op.matrix], op.qubit0, op.qubit1);
      return;
    case Kernel::kCzGate:
      apply_cz(state, op.qubit0, op.qubit1);
      return;
    case Kernel::kFixedTwo:
      state.apply_two_qubit(pool4_[op.matrix], op.qubit0, op.qubit1);
      return;
  }
  throw InvalidArgument("CompiledCircuit::apply_plan_op: unknown kernel");
}

void CompiledCircuit::apply_plan_op_inverse(
    std::size_t k, StateVector& state, std::span<const double> params) const {
  QBARREN_REQUIRE(k < plan_ops_.size(),
                  "CompiledCircuit::apply_plan_op_inverse: index out of "
                  "range");
  const PlanOp& op = plan_ops_[k];
  switch (op.kernel) {
    case Kernel::kRotation:
      apply_rotation(state, op.axis, -params[op.param], op.qubit0);
      return;
    case Kernel::kControlledRotation:
      apply_controlled_rotation(state, op.axis, -params[op.param], op.qubit0,
                                op.qubit1);
      return;
    case Kernel::kFixedSingle:
      apply_mat2(state, pool2_inv_[op.matrix], op.qubit0);
      return;
    case Kernel::kFusedSingle:
      // Inverse of a product: inverses in reverse order.
      apply_mat2_run(state, pool2_inv_.data(),
                     fused_.data() + op.fused_begin, op.fused_count,
                     /*reverse=*/true, op.qubit0);
      return;
    case Kernel::kCnot:
      apply_controlled_mat2(state, pool2_inv_[op.matrix], op.qubit0,
                            op.qubit1);
      return;
    case Kernel::kCzGate:
      apply_cz(state, op.qubit0, op.qubit1);
      return;
    case Kernel::kFixedTwo:
      state.apply_two_qubit(pool4_inv_[op.matrix], op.qubit0, op.qubit1);
      return;
  }
  throw InvalidArgument(
      "CompiledCircuit::apply_plan_op_inverse: unknown kernel");
}

void CompiledCircuit::apply_plan_op_inverse_pair(
    std::size_t k, StateVector& a, StateVector& b,
    std::span<const double> params) const {
  QBARREN_REQUIRE(k < plan_ops_.size(),
                  "CompiledCircuit::apply_plan_op_inverse_pair: index out "
                  "of range");
  const PlanOp& op = plan_ops_[k];
  // For rotations, compute the (trig-bearing) entries once for both
  // states; everything else applies cached matrices anyway.
  if (op.kernel == Kernel::kRotation) {
    const gates::Mat2 e =
        gates::rotation_entries(op.axis, -params[op.param]);
    apply_mat2(a, e, op.qubit0);
    apply_mat2(b, e, op.qubit0);
    return;
  }
  if (op.kernel == Kernel::kControlledRotation) {
    const gates::Mat2 e =
        gates::rotation_entries(op.axis, -params[op.param]);
    apply_controlled_mat2(a, e, op.qubit0, op.qubit1);
    apply_controlled_mat2(b, e, op.qubit0, op.qubit1);
    return;
  }
  if (op.kernel == Kernel::kCzGate) {
    // Self-inverse, and negation-only: flip both states in one pass.
    apply_cz_pair(a, b, op.qubit0, op.qubit1);
    return;
  }
  apply_plan_op_inverse(k, a, params);
  apply_plan_op_inverse(k, b, params);
}

void CompiledCircuit::apply_plan_op_derivative(
    std::size_t k, const StateVector& src, StateVector& dst,
    std::span<const double> params) const {
  QBARREN_REQUIRE(k < plan_ops_.size(),
                  "CompiledCircuit::apply_plan_op_derivative: index out of "
                  "range");
  QBARREN_REQUIRE(dst.dimension() == src.dimension(),
                  "CompiledCircuit::apply_plan_op_derivative: dimension "
                  "mismatch");
  const PlanOp& op = plan_ops_[k];
  QBARREN_REQUIRE(plan_op_is_parameterized(k),
                  "CompiledCircuit::apply_plan_op_derivative: op is not a "
                  "trainable rotation");
  const gates::Mat2 dr =
      gates::rotation_derivative_entries(op.axis, params[op.param]);
  if (op.kernel == Kernel::kRotation) {
    apply_mat2_from(dst, src, dr, op.qubit0);
    return;
  }
  // Controlled rotation: |1><1| (x) dR/dtheta, zero on the control-clear
  // subspace — the same zero-filled 4x4 the interpreted path applies
  // (matrix bit 0 = control = qubit0).
  Complex m[4][4] = {};
  m[1][1] = dr.m00;
  m[1][3] = dr.m01;
  m[3][1] = dr.m10;
  m[3][3] = dr.m11;
  apply_mat4_from(dst, src, m, op.qubit0, op.qubit1);
}

void CompiledCircuit::apply_plan_op_with_angle(std::size_t k,
                                               StateVector& state,
                                               double theta) const {
  QBARREN_REQUIRE(k < plan_ops_.size(),
                  "CompiledCircuit::apply_plan_op_with_angle: index out of "
                  "range");
  const PlanOp& op = plan_ops_[k];
  QBARREN_REQUIRE(plan_op_is_parameterized(k),
                  "CompiledCircuit::apply_plan_op_with_angle: op is not a "
                  "trainable rotation");
  if (op.kernel == Kernel::kRotation) {
    apply_rotation(state, op.axis, theta, op.qubit0);
    return;
  }
  apply_controlled_rotation(state, op.axis, theta, op.qubit0, op.qubit1);
}

bool CompiledCircuit::plan_op_is_parameterized(std::size_t k) const noexcept {
  if (k >= plan_ops_.size()) return false;
  const Kernel kernel = plan_ops_[k].kernel;
  return kernel == Kernel::kRotation || kernel == Kernel::kControlledRotation;
}

std::size_t CompiledCircuit::plan_op_parameter(std::size_t k) const {
  QBARREN_REQUIRE(plan_op_is_parameterized(k),
                  "CompiledCircuit::plan_op_parameter: op is not "
                  "parameterized");
  return plan_ops_[k].param;
}

std::size_t CompiledCircuit::plan_op_for_parameter(
    std::size_t param_index) const noexcept {
  if (param_index >= param_plan_op_.size() ||
      param_plan_op_[param_index] == kNoIndex32) {
    return kNoOperation;
  }
  return param_plan_op_[param_index];
}

bool CompiledCircuit::source_op_is_constant(std::size_t source_index) const {
  QBARREN_REQUIRE(source_index < source_matrix_.size(),
                  "CompiledCircuit::source_op_is_constant: index out of "
                  "range");
  return source_matrix_[source_index] != kNoIndex32;
}

const ComplexMatrix& CompiledCircuit::source_constant_matrix(
    std::size_t source_index) const {
  QBARREN_REQUIRE(source_op_is_constant(source_index),
                  "CompiledCircuit::source_constant_matrix: op is not "
                  "constant");
  return const_matrices_[source_matrix_[source_index]];
}

// --- plan attachment -------------------------------------------------------

void set_execution_plans_enabled(bool enabled) noexcept {
  g_plans_enabled.store(enabled, std::memory_order_relaxed);
}

bool execution_plans_enabled() noexcept {
  return g_plans_enabled.load(std::memory_order_relaxed);
}

ScopedExecutionPlans::ScopedExecutionPlans(bool enabled)
    : previous_(execution_plans_enabled()) {
  set_execution_plans_enabled(enabled);
}

ScopedExecutionPlans::~ScopedExecutionPlans() {
  set_execution_plans_enabled(previous_);
}

PlanAttachHook set_plan_attach_hook(PlanAttachHook hook) {
  std::shared_ptr<const PlanAttachHook> next =
      hook ? std::make_shared<const PlanAttachHook>(std::move(hook))
           : nullptr;
  const std::lock_guard<std::mutex> lock(g_attach_hook_mutex);
  std::shared_ptr<const PlanAttachHook> previous =
      std::exchange(g_attach_hook, std::move(next));
  return previous ? *previous : PlanAttachHook{};
}

std::shared_ptr<const CompiledCircuit> plan_for(const Circuit& circuit,
                                                const CompileOptions& options) {
  if (!execution_plans_enabled()) return nullptr;
  if (auto attached = std::dynamic_pointer_cast<const CompiledCircuit>(
          circuit.execution_plan())) {
    return attached;
  }
  std::shared_ptr<const CompiledCircuit> plan;
  try {
    plan = CompiledCircuit::compile(circuit, options);
  } catch (const InvalidArgument&) {
    // Unlowerable circuit (malformed custom gate): execution falls back to
    // the interpreted path, which throws its usual error when (and only
    // when) the op is actually applied.
    return nullptr;
  }
  circuit.attach_execution_plan(plan);
  // First attach only: re-requests hit the cache above and do not
  // re-verify. Hook exceptions propagate past the fallback catch — a
  // verification failure must not silently degrade to interpretation.
  if (const auto hook = current_attach_hook()) {
    (*hook)(circuit, *plan);
  }
  return plan;
}

// --- prefix-state reuse ----------------------------------------------------

namespace {
const std::shared_ptr<const CompiledCircuit>& require_plan(
    const std::shared_ptr<const CompiledCircuit>& plan) {
  QBARREN_REQUIRE(plan != nullptr, "PartialEvaluator: plan must not be null");
  return plan;
}
}  // namespace

PartialEvaluator::PartialEvaluator(
    std::shared_ptr<const CompiledCircuit> plan, const Observable& observable,
    std::span<const double> params, std::size_t index)
    : plan_(require_plan(plan)),
      observable_(observable),
      params_(params.begin(), params.end()),
      index_(index),
      prefix_(plan_->num_qubits()),
      work_(plan_->num_qubits()) {
  QBARREN_REQUIRE(index_ < params_.size(),
                  "PartialEvaluator: parameter index out of range");
  plan_op_ = plan_->plan_op_for_parameter(index_);
  if (plan_op_ != ExecutionPlan::kNoOperation) {
    // The ops before the consuming one do not read params[index], so this
    // state is valid for every shifted evaluation.
    plan_->apply_plan_ops(prefix_, params_, 0, plan_op_);
  }
}

double PartialEvaluator::operator()(double delta) {
  if (plan_op_ != ExecutionPlan::kNoOperation) {
    work_ = prefix_;
    plan_->apply_plan_op_with_angle(plan_op_, work_,
                                    params_[index_] + delta);
    plan_->apply_plan_ops(work_, params_, plan_op_ + 1,
                          plan_->num_plan_ops());
  } else {
    // No unique consuming op recorded (shared parameter, defensive):
    // evaluate the whole program on a temporarily shifted vector.
    const double saved = params_[index_];
    params_[index_] = saved + delta;
    work_.reset();
    plan_->apply_plan_ops(work_, params_, 0, plan_->num_plan_ops());
    params_[index_] = saved;
  }
  return observable_.expectation(work_);
}

}  // namespace qbarren::exec
