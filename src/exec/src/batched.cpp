#include "qbarren/exec/batched.hpp"

#include <algorithm>
#include <atomic>

#include "qbarren/common/error.hpp"
#include "qbarren/exec/batched_kernels.hpp"
#include "qbarren/obs/observable.hpp"

namespace qbarren::exec {

namespace {
std::atomic<std::size_t> g_batch_limit{kBatchOff};
}  // namespace

void set_batch_limit(std::size_t limit) noexcept {
  g_batch_limit.store(limit, std::memory_order_relaxed);
}

std::size_t batch_limit() noexcept {
  return g_batch_limit.load(std::memory_order_relaxed);
}

bool batching_enabled() noexcept { return batch_limit() != kBatchOff; }

std::size_t resolve_batch_lanes(std::size_t limit,
                                std::size_t natural) noexcept {
  const std::size_t cap = limit == kBatchAuto ? kAutoBatchLanes : limit;
  return std::max<std::size_t>(1, std::min(cap, natural));
}

ScopedBatchLimit::ScopedBatchLimit(std::size_t limit)
    : previous_(batch_limit()) {
  set_batch_limit(limit);
}

ScopedBatchLimit::~ScopedBatchLimit() { set_batch_limit(previous_); }

namespace {

// Applies plan op `k` to lanes [0, lanes) with the UNSHIFTED parameters:
// rotation entries are computed once per op and shared by every lane (the
// serial suffix re-evaluates the trig per evaluation); per-lane arithmetic
// is the serial apply_plan_op's.
void apply_uniform(const CompiledCircuit& plan, std::size_t k,
                   BatchedStateVector& batch, std::size_t lanes,
                   std::span<const double> params) {
  using Kernel = CompiledCircuit::Kernel;
  const CompiledCircuit::PlanOp& op = plan.plan_ops()[k];
  if (op.kernel == Kernel::kRotation) {
    batched_apply_rotation_mat2(
        batch, lanes, op.axis,
        gates::rotation_entries(op.axis, params[op.param]), op.qubit0);
  } else if (op.kernel == Kernel::kControlledRotation) {
    batched_apply_controlled_mat2(
        batch, lanes, gates::rotation_entries(op.axis, params[op.param]),
        op.qubit0, op.qubit1);
  } else {
    plan.apply_plan_op_batch(k, batch, lanes, nullptr);
  }
}

}  // namespace

std::vector<double> shifted_expectations(const CompiledCircuit& plan,
                                         const Observable& observable,
                                         std::span<const double> params,
                                         std::span<const ShiftSpec> specs) {
  QBARREN_REQUIRE(params.size() == plan.num_parameters(),
                  "shifted_expectations: parameter count mismatch");
  std::vector<double> out(specs.size());
  if (specs.empty()) return out;

  // Group spec indices by parameter (one group per distinct parameter,
  // specs in input order within it); parameters without a unique consuming
  // plan op fall back to the serial whole-program path at the end, as
  // PartialEvaluator does.
  struct Group {
    std::size_t branch = 0;  ///< plan op consuming the parameter
    std::vector<std::size_t> specs;
  };
  std::vector<Group> groups;
  std::vector<std::size_t> fallback;
  {
    const std::size_t num_params = plan.num_parameters();
    std::vector<std::size_t> group_of(num_params, ExecutionPlan::kNoOperation);
    for (std::size_t s = 0; s < specs.size(); ++s) {
      const std::size_t p = specs[s].param;
      QBARREN_REQUIRE(p < num_params,
                      "shifted_expectations: parameter index out of range");
      const std::size_t branch = plan.plan_op_for_parameter(p);
      if (branch == ExecutionPlan::kNoOperation) {
        fallback.push_back(s);
        continue;
      }
      if (group_of[p] == ExecutionPlan::kNoOperation) {
        group_of[p] = groups.size();
        groups.push_back(Group{branch, {}});
      }
      groups[group_of[p]].specs.push_back(s);
    }
  }
  // Distinct parameters have distinct consuming ops, so this order is
  // total: lanes spawn in stream order during the walk.
  std::sort(groups.begin(), groups.end(),
            [](const Group& a, const Group& b) { return a.branch < b.branch; });

  std::size_t total_lanes = 0;
  for (const Group& g : groups) total_lanes += g.specs.size();
  const std::size_t lane_cap = resolve_batch_lanes(batch_limit(), total_lanes);

  const std::size_t num_qubits = plan.num_qubits();
  const std::size_t num_ops = plan.num_plan_ops();
  const std::span<const CompiledCircuit::PlanOp> ops = plan.plan_ops();
  using Kernel = CompiledCircuit::Kernel;

  // One base state advanced monotonically with the unshifted parameters:
  // at each chunk's branch ops it holds exactly the prefix PartialEvaluator
  // would simulate from scratch (same apply_plan_op sequence from |0...0>).
  StateVector base(num_qubits);
  StateVector scratch(num_qubits);
  std::size_t base_pos = 0;

  std::size_t gi = 0;
  while (gi < groups.size()) {
    // Greedy chunk: take whole parameter groups while the lane count fits
    // the cap (never splitting a group, so a 4-term parameter always
    // evaluates in one chunk).
    std::size_t gj = gi;
    std::size_t lanes = 0;
    while (gj < groups.size()) {
      const std::size_t width = groups[gj].specs.size();
      if (gj > gi && lanes + width > lane_cap) break;
      lanes += width;
      ++gj;
    }
    const std::size_t first_branch = groups[gi].branch;
    const std::size_t last_branch = groups[gj - 1].branch;
    plan.apply_plan_ops(base, params, base_pos, first_branch);

    BatchedStateVector lane_states(num_qubits, lanes);
    std::vector<std::size_t> lane_spec(lanes);
    std::size_t spawned = 0;
    std::size_t g = gi;

    std::size_t k = first_branch;
    while (k < num_ops) {
      const std::size_t next_spawn = g < gj ? groups[g].branch : num_ops;
      if (spawned > 0 && k != next_spawn && k + 1 != next_spawn &&
          k + 1 < num_ops && ops[k].kernel == Kernel::kRotation &&
          ops[k + 1].kernel == Kernel::kRotation &&
          ops[k + 1].qubit0 == ops[k].qubit0) {
        // Same-qubit rotation pair with no lane branching at either op:
        // both gates in one pass per lane, entries computed once for the
        // whole batch (bit-identical to two single applications, as the
        // adjoint forward pass's apply_mat2_pair).
        const gates::Mat2 first =
            gates::rotation_entries(ops[k].axis, params[ops[k].param]);
        const gates::Mat2 second =
            gates::rotation_entries(ops[k + 1].axis, params[ops[k + 1].param]);
        plan.apply_plan_op_batch_pair(k, lane_states, spawned, first, second);
        if (k < last_branch) plan.apply_plan_op(k, base, params);
        if (k + 1 < last_branch) plan.apply_plan_op(k + 1, base, params);
        k += 2;
        continue;
      }
      // Lanes spawned at earlier ops take op k with the unshifted angle...
      if (spawned > 0) {
        apply_uniform(plan, k, lane_states, spawned, params);
      }
      // ...then this op's own lanes branch off the base (which still holds
      // ops [0, k)) with the shifted angle, exactly `work_ = prefix_` plus
      // apply_plan_op_with_angle.
      if (k == next_spawn) {
        for (const std::size_t s : groups[g].specs) {
          scratch = base;
          plan.apply_plan_op_with_angle(
              k, scratch, params[specs[s].param] + specs[s].delta);
          lane_states.set_lane(spawned, scratch);
          lane_spec[spawned] = s;
          ++spawned;
        }
        ++g;
      }
      // The base only needs to advance while spawns remain in this chunk;
      // the next chunk continues it from base_pos.
      if (k < last_branch) {
        plan.apply_plan_op(k, base, params);
      }
      ++k;
    }
    base_pos = last_branch;

    for (std::size_t b = 0; b < spawned; ++b) {
      lane_states.extract_lane(b, scratch);
      out[lane_spec[b]] = observable.expectation(scratch);
    }
    gi = gj;
  }

  if (!fallback.empty()) {
    // Shared-parameter fallback, as PartialEvaluator's: whole program on a
    // temporarily shifted vector.
    std::vector<double> shifted(params.begin(), params.end());
    StateVector work(num_qubits);
    for (const std::size_t s : fallback) {
      const double saved = shifted[specs[s].param];
      shifted[specs[s].param] = saved + specs[s].delta;
      work.reset();
      plan.apply_plan_ops(work, shifted, 0, num_ops);
      shifted[specs[s].param] = saved;
      out[s] = observable.expectation(work);
    }
  }
  return out;
}

}  // namespace qbarren::exec
