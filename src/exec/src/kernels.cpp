#include "qbarren/exec/kernels.hpp"

#include <algorithm>

namespace qbarren::exec {

// The loops below intentionally reproduce the StateVector kernels'
// structure (statevector.cpp) so both execution paths perform the same
// floating-point operations in the same order. Bounds are validated once
// at compile (lowering) time, not per application.

void apply_mat2(StateVector& state, const gates::Mat2& u,
                std::size_t target) {
  auto& amps = state.amplitudes();
  // Local copies: `u` may be a pool reference whose Complex members could
  // alias the amplitude array as far as the compiler knows; locals keep
  // the loop reload-free and vectorizable (as in StateVector's kernels).
  const Complex u00 = u.m00;
  const Complex u01 = u.m01;
  const Complex u10 = u.m10;
  const Complex u11 = u.m11;
  const std::size_t bit = std::size_t{1} << target;
  const std::size_t dim = amps.size();
  const std::size_t low_mask = bit - 1;
  for (std::size_t i = 0; i < dim / 2; ++i) {
    const std::size_t i0 = ((i & ~low_mask) << 1) | (i & low_mask);
    const std::size_t i1 = i0 | bit;
    const Complex a0 = amps[i0];
    const Complex a1 = amps[i1];
    amps[i0] = u00 * a0 + u01 * a1;
    amps[i1] = u10 * a0 + u11 * a1;
  }
}

void apply_mat2_pair(StateVector& state, const gates::Mat2& u_first,
                     const gates::Mat2& u_second, std::size_t target) {
  auto& amps = state.amplitudes();
  const Complex f00 = u_first.m00;
  const Complex f01 = u_first.m01;
  const Complex f10 = u_first.m10;
  const Complex f11 = u_first.m11;
  const Complex s00 = u_second.m00;
  const Complex s01 = u_second.m01;
  const Complex s10 = u_second.m10;
  const Complex s11 = u_second.m11;
  const std::size_t bit = std::size_t{1} << target;
  const std::size_t dim = amps.size();
  const std::size_t low_mask = bit - 1;
  for (std::size_t i = 0; i < dim / 2; ++i) {
    const std::size_t i0 = ((i & ~low_mask) << 1) | (i & low_mask);
    const std::size_t i1 = i0 | bit;
    const Complex a0 = amps[i0];
    const Complex a1 = amps[i1];
    const Complex b0 = f00 * a0 + f01 * a1;
    const Complex b1 = f10 * a0 + f11 * a1;
    amps[i0] = s00 * b0 + s01 * b1;
    amps[i1] = s10 * b0 + s11 * b1;
  }
}

void apply_mat2_run(StateVector& state, const gates::Mat2* pool,
                    const std::uint32_t* indices, std::size_t count,
                    bool reverse, std::size_t target) {
  auto& amps = state.amplitudes();
  const std::size_t bit = std::size_t{1} << target;
  const std::size_t dim = amps.size();
  const std::size_t low_mask = bit - 1;
  for (std::size_t i = 0; i < dim / 2; ++i) {
    const std::size_t i0 = ((i & ~low_mask) << 1) | (i & low_mask);
    const std::size_t i1 = i0 | bit;
    Complex a0 = amps[i0];
    Complex a1 = amps[i1];
    for (std::size_t j = 0; j < count; ++j) {
      const gates::Mat2& u = pool[indices[reverse ? count - 1 - j : j]];
      const Complex b0 = u.m00 * a0 + u.m01 * a1;
      const Complex b1 = u.m10 * a0 + u.m11 * a1;
      a0 = b0;
      a1 = b1;
    }
    amps[i0] = a0;
    amps[i1] = a1;
  }
}

void apply_controlled_mat2(StateVector& state, const gates::Mat2& u,
                           std::size_t control, std::size_t target) {
  auto& amps = state.amplitudes();
  const Complex u00 = u.m00;
  const Complex u01 = u.m01;
  const Complex u10 = u.m10;
  const Complex u11 = u.m11;
  const std::size_t cbit = std::size_t{1} << control;
  const std::size_t tbit = std::size_t{1} << target;
  const std::size_t dim = amps.size();
  for (std::size_t i0 = 0; i0 < dim; ++i0) {
    if ((i0 & cbit) == 0 || (i0 & tbit) != 0) continue;
    const std::size_t i1 = i0 | tbit;
    const Complex a0 = amps[i0];
    const Complex a1 = amps[i1];
    amps[i0] = u00 * a0 + u01 * a1;
    amps[i1] = u10 * a0 + u11 * a1;
  }
}

void apply_rotation(StateVector& state, gates::Axis axis, double theta,
                    std::size_t target) {
  apply_rotation_mat2(state, axis, gates::rotation_entries(axis, theta),
                      target);
}

void apply_rotation_mat2(StateVector& state, gates::Axis axis,
                         const gates::Mat2& u, std::size_t target) {
  if (axis == gates::Axis::kZ) {
    // Diagonal phase kernel: RZ's off-diagonal entries are exact zeros, so
    // the skipped products (0 * amplitude) only ever add a signed zero.
    auto& amps = state.amplitudes();
    const Complex u00 = u.m00;
    const Complex u11 = u.m11;
    const std::size_t bit = std::size_t{1} << target;
    const std::size_t dim = amps.size();
    const std::size_t low_mask = bit - 1;
    for (std::size_t i = 0; i < dim / 2; ++i) {
      const std::size_t i0 = ((i & ~low_mask) << 1) | (i & low_mask);
      const std::size_t i1 = i0 | bit;
      amps[i0] = u00 * amps[i0];
      amps[i1] = u11 * amps[i1];
    }
    return;
  }
  apply_mat2(state, u, target);
}

void apply_controlled_rotation(StateVector& state, gates::Axis axis,
                               double theta, std::size_t control,
                               std::size_t target) {
  apply_controlled_mat2(state, gates::rotation_entries(axis, theta), control,
                        target);
}

void apply_mat2_from(StateVector& dst, const StateVector& src,
                     const gates::Mat2& u, std::size_t target) {
  auto& out = dst.amplitudes();
  const auto& in = src.amplitudes();
  const Complex u00 = u.m00;
  const Complex u01 = u.m01;
  const Complex u10 = u.m10;
  const Complex u11 = u.m11;
  const std::size_t bit = std::size_t{1} << target;
  const std::size_t dim = in.size();
  const std::size_t low_mask = bit - 1;
  for (std::size_t i = 0; i < dim / 2; ++i) {
    const std::size_t i0 = ((i & ~low_mask) << 1) | (i & low_mask);
    const std::size_t i1 = i0 | bit;
    const Complex a0 = in[i0];
    const Complex a1 = in[i1];
    out[i0] = u00 * a0 + u01 * a1;
    out[i1] = u10 * a0 + u11 * a1;
  }
}

namespace {
// Ascending enumeration of the basis indices with both qubit bits set:
// expand x (over the quarter-sized subspace) by inserting a bit at the
// lower position, then at the higher, then set both.
inline std::size_t both_set_index(std::size_t x, std::size_t low_mask,
                                  std::size_t high_mask, std::size_t bits) {
  const std::size_t t = ((x & ~low_mask) << 1) | (x & low_mask);
  return (((t & ~high_mask) << 1) | (t & high_mask)) | bits;
}
}  // namespace

void apply_cz(StateVector& state, std::size_t qubit_a, std::size_t qubit_b) {
  auto& amps = state.amplitudes();
  const std::size_t bl = std::size_t{1} << std::min(qubit_a, qubit_b);
  const std::size_t bh = std::size_t{1} << std::max(qubit_a, qubit_b);
  const std::size_t lm = bl - 1;
  const std::size_t hm = bh - 1;
  const std::size_t dim = amps.size();
  for (std::size_t x = 0; x < dim / 4; ++x) {
    const std::size_t i = both_set_index(x, lm, hm, bl | bh);
    amps[i] = -amps[i];
  }
}

void apply_cz_pair(StateVector& s1, StateVector& s2, std::size_t qubit_a,
                   std::size_t qubit_b) {
  auto& a1 = s1.amplitudes();
  auto& a2 = s2.amplitudes();
  const std::size_t bl = std::size_t{1} << std::min(qubit_a, qubit_b);
  const std::size_t bh = std::size_t{1} << std::max(qubit_a, qubit_b);
  const std::size_t lm = bl - 1;
  const std::size_t hm = bh - 1;
  const std::size_t dim = a1.size();
  for (std::size_t x = 0; x < dim / 4; ++x) {
    const std::size_t i = both_set_index(x, lm, hm, bl | bh);
    a1[i] = -a1[i];
    a2[i] = -a2[i];
  }
}

Complex inner_product_mat2(const StateVector& lambda, const StateVector& phi,
                           const gates::Mat2& u, std::size_t target) {
  const auto& l = lambda.amplitudes();
  const auto& in = phi.amplitudes();
  const Complex u00 = u.m00;
  const Complex u01 = u.m01;
  const Complex u10 = u.m10;
  const Complex u11 = u.m11;
  const std::size_t bit = std::size_t{1} << target;
  const std::size_t dim = in.size();
  // inner_product accumulates in ascending index order; within each block
  // of 2*bit indices that order is the bit-clear half followed by the
  // bit-set half, so the two inner loops below reproduce it exactly.
  Complex acc{0.0, 0.0};
  for (std::size_t base = 0; base < dim; base += 2 * bit) {
    for (std::size_t j = 0; j < bit; ++j) {
      const std::size_t i0 = base + j;
      const std::size_t i1 = i0 | bit;
      acc += std::conj(l[i0]) * (u00 * in[i0] + u01 * in[i1]);
    }
    for (std::size_t j = 0; j < bit; ++j) {
      const std::size_t i0 = base + j;
      const std::size_t i1 = i0 | bit;
      acc += std::conj(l[i1]) * (u10 * in[i0] + u11 * in[i1]);
    }
  }
  return acc;
}

Complex adjoint_rotation_sweep(StateVector& phi, StateVector& lambda,
                               gates::Axis axis, const gates::Mat2& inv,
                               const gates::Mat2& dr, std::size_t target) {
  auto& p = phi.amplitudes();
  auto& l = lambda.amplitudes();
  const std::size_t bit = std::size_t{1} << target;
  const std::size_t dim = p.size();
  Complex acc{0.0, 0.0};
  // Block structure as in inner_product_mat2: the bit-clear half of each
  // block precedes the bit-set half in index order, so accumulating the
  // row-0 terms in the first loop and the row-1 terms in the second
  // reproduces inner_product's ascending-index order. lambda's own update
  // happens only after both of its amplitudes fed the accumulator.
  if (axis == gates::Axis::kZ) {
    // Diagonal inverse and diagonal derivative: RZ's off-diagonal entries
    // (and those of (-i/2) Z RZ) are exact zeros; see apply_rotation_mat2.
    const Complex v00 = inv.m00;
    const Complex v11 = inv.m11;
    const Complex d00 = dr.m00;
    const Complex d11 = dr.m11;
    for (std::size_t base = 0; base < dim; base += 2 * bit) {
      for (std::size_t j = 0; j < bit; ++j) {
        const std::size_t i0 = base + j;
        const Complex np0 = v00 * p[i0];
        p[i0] = np0;
        p[i0 | bit] = v11 * p[i0 | bit];
        acc += std::conj(l[i0]) * (d00 * np0);
      }
      for (std::size_t j = 0; j < bit; ++j) {
        const std::size_t i0 = base + j;
        const std::size_t i1 = i0 | bit;
        acc += std::conj(l[i1]) * (d11 * p[i1]);
        l[i0] = v00 * l[i0];
        l[i1] = v11 * l[i1];
      }
    }
    return acc;
  }
  const Complex v00 = inv.m00;
  const Complex v01 = inv.m01;
  const Complex v10 = inv.m10;
  const Complex v11 = inv.m11;
  const Complex d00 = dr.m00;
  const Complex d01 = dr.m01;
  const Complex d10 = dr.m10;
  const Complex d11 = dr.m11;
  for (std::size_t base = 0; base < dim; base += 2 * bit) {
    for (std::size_t j = 0; j < bit; ++j) {
      const std::size_t i0 = base + j;
      const std::size_t i1 = i0 | bit;
      const Complex a0 = p[i0];
      const Complex a1 = p[i1];
      const Complex np0 = v00 * a0 + v01 * a1;
      const Complex np1 = v10 * a0 + v11 * a1;
      p[i0] = np0;
      p[i1] = np1;
      acc += std::conj(l[i0]) * (d00 * np0 + d01 * np1);
    }
    for (std::size_t j = 0; j < bit; ++j) {
      const std::size_t i0 = base + j;
      const std::size_t i1 = i0 | bit;
      acc += std::conj(l[i1]) * (d10 * p[i0] + d11 * p[i1]);
      const Complex b0 = l[i0];
      const Complex b1 = l[i1];
      l[i0] = v00 * b0 + v01 * b1;
      l[i1] = v10 * b0 + v11 * b1;
    }
  }
  return acc;
}

void apply_mat4_from(StateVector& dst, const StateVector& src,
                     const Complex (&m)[4][4], std::size_t q_low,
                     std::size_t q_high) {
  auto& out = dst.amplitudes();
  const auto& in_amps = src.amplitudes();
  const std::size_t bl = std::size_t{1} << q_low;
  const std::size_t bh = std::size_t{1} << q_high;
  const std::size_t dim = in_amps.size();
  for (std::size_t i = 0; i < dim; ++i) {
    if ((i & bl) != 0 || (i & bh) != 0) continue;  // base of each 4-group
    const std::size_t idx[4] = {i, i | bl, i | bh, i | bl | bh};
    Complex in[4];
    for (std::size_t k = 0; k < 4; ++k) {
      in[k] = in_amps[idx[k]];
    }
    for (std::size_t r = 0; r < 4; ++r) {
      Complex acc{0.0, 0.0};
      for (std::size_t c = 0; c < 4; ++c) {
        acc += m[r][c] * in[c];
      }
      out[idx[r]] = acc;
    }
  }
}

}  // namespace qbarren::exec
