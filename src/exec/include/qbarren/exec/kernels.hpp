// Allocation-free state-vector kernels for compiled execution.
//
// Each kernel mirrors the corresponding StateVector member
// (apply_single_qubit / apply_controlled / apply_two_qubit) expression for
// expression: the same pair enumeration and the same complex arithmetic
// per amplitude. That is what makes compiled execution bit-identical to
// the interpreted path — the differences are that the 2x2 entries live on
// the stack (no heap-allocated ComplexMatrix per gate application), that
// fused runs make a single pass over the amplitudes, and that the
// out-of-place variants avoid the full-vector copy the adjoint sweep
// otherwise pays per parameter.
#pragma once

#include <cstdint>

#include "qbarren/qsim/gates.hpp"
#include "qbarren/qsim/statevector.hpp"

namespace qbarren::exec {

/// state <- (U on target) state, with U given as stack entries.
void apply_mat2(StateVector& state, const gates::Mat2& u, std::size_t target);

/// Applies pool[indices[0]], pool[indices[1]], ... (reversed index order
/// when `reverse`) to `target` in one pass over the amplitudes, keeping
/// each amplitude pair in registers between gates. Bit-identical to
/// applying the same matrices one at a time.
void apply_mat2_run(StateVector& state, const gates::Mat2* pool,
                    const std::uint32_t* indices, std::size_t count,
                    bool reverse, std::size_t target);

/// Controlled 2x2 (applied where `control` is |1>), as apply_controlled.
void apply_controlled_mat2(StateVector& state, const gates::Mat2& u,
                           std::size_t control, std::size_t target);

/// Parameterized rotation R_axis(theta) on `target`. RZ takes a diagonal
/// fast path: its off-diagonal entries are exact zeros, so dropping their
/// products cannot change any finite amplitude.
void apply_rotation(StateVector& state, gates::Axis axis, double theta,
                    std::size_t target);

/// Controlled rotation (control, target), as the interpreted path's
/// apply_controlled(rotation(axis, theta), control, target).
void apply_controlled_rotation(StateVector& state, gates::Axis axis,
                               double theta, std::size_t control,
                               std::size_t target);

/// As apply_rotation, but with the rotation entries already computed (the
/// adjoint sweep evaluates them once and applies them several times). RZ
/// entries take the same diagonal fast path.
void apply_rotation_mat2(StateVector& state, gates::Axis axis,
                         const gates::Mat2& u, std::size_t target);

/// Applies u_first then u_second to `target` in one pass, keeping each
/// amplitude pair in registers between the two gates — bit-identical to
/// two apply_mat2 calls, as with apply_mat2_run. HEA layers interleave
/// same-qubit rotation pairs (RX then RY), so the adjoint forward pass
/// hits this constantly.
void apply_mat2_pair(StateVector& state, const gates::Mat2& u_first,
                     const gates::Mat2& u_second, std::size_t target);

/// <lambda | (U on target) | phi> in a single pass. Visits amplitudes in
/// the same ascending-index order as StateVector::inner_product and forms
/// each (U phi)[i] with apply_mat2_from's expression, so the result is the
/// one inner_product would return on a materialized U|phi> — without
/// writing (or re-reading) the intermediate vector.
[[nodiscard]] Complex inner_product_mat2(const StateVector& lambda,
                                         const StateVector& phi,
                                         const gates::Mat2& u,
                                         std::size_t target);

/// CZ on (a, b): negates the quarter of the amplitudes with both qubit
/// bits set, enumerating that subspace directly instead of scanning the
/// whole vector with a branch. Negation is exact, so the result is
/// bit-identical to StateVector::apply_cz.
void apply_cz(StateVector& state, std::size_t qubit_a, std::size_t qubit_b);

/// CZ applied to two states in one pass (the adjoint sweep un-applies
/// every constant gate from both phi and lambda).
void apply_cz_pair(StateVector& s1, StateVector& s2, std::size_t qubit_a,
                   std::size_t qubit_b);

/// dst <- (U on target) src, out of place: every amplitude of dst is
/// written from src, so no prior copy of src into dst is needed.
/// Dimensions must match.
void apply_mat2_from(StateVector& dst, const StateVector& src,
                     const gates::Mat2& u, std::size_t target);

/// Out-of-place 4x4 apply mirroring apply_two_qubit's accumulation order
/// (matrix bit 0 = q_low). Dimensions must match.
void apply_mat4_from(StateVector& dst, const StateVector& src,
                     const Complex (&m)[4][4], std::size_t q_low,
                     std::size_t q_high);

/// One combined adjoint-sweep step for a rotation op: applies `inv` to phi
/// in place, returns <lambda | dr | inv phi> (lambda read before its own
/// update), and applies `inv` to lambda in place — the three passes the
/// sweep otherwise makes per parameter, in two loops over the amplitudes.
/// Per-amplitude expressions and the inner product's ascending-index
/// accumulation order match the separate kernels exactly. RZ takes the
/// diagonal fast path for all three roles.
[[nodiscard]] Complex adjoint_rotation_sweep(StateVector& phi,
                                             StateVector& lambda,
                                             gates::Axis axis,
                                             const gates::Mat2& inv,
                                             const gates::Mat2& dr,
                                             std::size_t target);

}  // namespace qbarren::exec
