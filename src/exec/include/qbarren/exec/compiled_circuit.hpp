// Compiled execution plans: lower a Circuit once, run it many times.
//
// The paper's workloads re-execute the same circuit structure thousands of
// times with different parameter bindings (200 sampled deep HEAs per
// Fig 5a cell; 50 adjoint-gradient iterations over a fixed ansatz for
// Fig 5b/5c). `CompiledCircuit` separates the one-time lowering from the
// repeated execution:
//
//   * the op list is flattened into a stream of kernel ops;
//   * every constant gate matrix is computed once and cached (shared
//     across all applications; see also the function-local statics in
//     qbarren/qsim/gates.hpp);
//   * adjacent constant single-qubit gates on the same qubit are fused
//     into a single one-pass kernel (their matrices are applied
//     sequentially in registers, so the arithmetic — and therefore the
//     result — is identical to applying them one at a time);
//   * parameterized rotations run through allocation-free kernels
//     (qbarren/exec/kernels.hpp) instead of heap-matrix dispatch;
//   * a parameter -> op binding table replaces the linear
//     operation_for_parameter scan.
//
// Results are bit-identical to the interpreted path: same op order, same
// per-op arithmetic. Cached experiment results and checkpoints written
// before this layer existed therefore stay valid.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "qbarren/circuit/circuit.hpp"
#include "qbarren/qsim/batched_statevector.hpp"
#include "qbarren/qsim/gates.hpp"
#include "qbarren/qsim/statevector.hpp"

namespace qbarren {
class Observable;  // qbarren/obs/observable.hpp
}  // namespace qbarren

namespace qbarren::exec {

struct CompileOptions {
  /// Fuse adjacent constant single-qubit gates on the same qubit into one
  /// single-pass kernel.
  bool fuse_single_qubit_runs = true;
};

class CompiledCircuit final : public ExecutionPlan {
 public:
  enum class Kernel : std::uint8_t {
    kRotation,            ///< parameterized R_axis(params[param]) on qubit0
    kControlledRotation,  ///< parameterized controlled-R, qubit0 = control
    kFixedSingle,         ///< cached 2x2 on qubit0
    kFusedSingle,         ///< run of >= 2 cached 2x2s on qubit0, one pass
    kCnot,                ///< cached X on qubit1 controlled on qubit0
    kCzGate,              ///< sign-flip fast path
    kFixedTwo,            ///< cached 4x4 on (qubit0, qubit1)
  };

  struct PlanOp {
    Kernel kernel = Kernel::kFixedSingle;
    gates::Axis axis = gates::Axis::kX;  ///< rotation kernels only
    std::uint32_t qubit0 = 0;
    std::uint32_t qubit1 = 0;
    std::uint32_t param = 0;        ///< rotation kernels: parameter index
    std::uint32_t matrix = 0;       ///< fixed kernels: matrix-pool index
    std::uint32_t fused_begin = 0;  ///< kFusedSingle: offset into run list
    std::uint32_t fused_count = 0;  ///< kFusedSingle: gates in the run
    std::uint32_t source_index = 0;  ///< first source op lowered here
  };

  struct Stats {
    std::size_t source_ops = 0;        ///< operations in the source circuit
    std::size_t plan_ops = 0;          ///< kernel ops after lowering
    std::size_t fused_runs = 0;        ///< kFusedSingle ops emitted
    std::size_t fused_source_ops = 0;  ///< source ops inside fused runs
    std::size_t rotation_ops = 0;      ///< parameterized kernel ops
    std::size_t cached_matrices = 0;   ///< distinct constant matrices cached
  };

  /// Lowers `circuit`. Throws InvalidArgument when a custom gate matrix
  /// has the wrong dimensions for its kind (the interpreted path throws
  /// the equivalent error at execution time; `plan_for` turns this into a
  /// fall-back to interpreted execution so behavior is unchanged).
  [[nodiscard]] static std::shared_ptr<const CompiledCircuit> compile(
      const Circuit& circuit, const CompileOptions& options = {});

  // --- ExecutionPlan -------------------------------------------------------

  void apply_to(StateVector& state,
                std::span<const double> params) const override;
  [[nodiscard]] std::size_t source_op_for_parameter(
      std::size_t param_index) const noexcept override;

  // --- whole-program execution ---------------------------------------------

  /// Runs the lowered program from |0...0>.
  [[nodiscard]] StateVector simulate(std::span<const double> params) const;

  [[nodiscard]] std::size_t num_qubits() const noexcept { return num_qubits_; }
  [[nodiscard]] std::size_t num_parameters() const noexcept {
    return num_params_;
  }
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  // --- batched execution ----------------------------------------------------
  //
  // One dispatch pass over the kernel-op stream executes B parameter
  // bindings at once (qbarren/qsim/batched_statevector.hpp holds the B
  // amplitude lanes). Parameterized ops bind a per-lane angle through a
  // per-op angle table indexed by `batch_rotation_slots()`; constant ops
  // apply their pooled matrix to every lane while it sits in registers.
  // Per-lane arithmetic is the serial kernels' per amplitude, so lane b of
  // simulate_batch is bit-identical to simulate(binding b).

  /// Sentinel slot for plan ops that do not consume a parameter.
  static constexpr std::uint32_t kNoBatchSlot =
      static_cast<std::uint32_t>(-1);

  /// Applies the lowered program to every lane of `batch`; lane b binds
  /// parameter row b of `bindings` (`bindings.size()` must equal
  /// `batch.batch_size() * num_parameters()`, rows stored back to back).
  void apply_to_batch(BatchedStateVector& batch,
                      std::span<const double> bindings) const;

  /// Runs the lowered program from |0...0> on every lane.
  [[nodiscard]] BatchedStateVector simulate_batch(
      std::span<const double> bindings, std::size_t batch_size) const;

  /// Expectation of `observable` per lane of simulate_batch, in lane
  /// order. Each value is bit-identical to
  /// `observable.expectation(simulate(binding b))`.
  [[nodiscard]] std::vector<double> expectation_batch(
      const Observable& observable, std::span<const double> bindings,
      std::size_t batch_size) const;

  /// Applies plan op `k` to lanes [0, lanes) of `batch`. Parameterized
  /// kernels read per-lane rotation entries from `entries` (one Mat2 per
  /// lane, required); constant kernels ignore it.
  void apply_plan_op_batch(std::size_t k, BatchedStateVector& batch,
                           std::size_t lanes,
                           const gates::Mat2* entries) const;

  /// Applies plan ops `k` and `k+1` — which must both be kRotation on the
  /// same qubit — to lanes [0, lanes) in one pass per lane, with uniform
  /// entries for all lanes (the batched shift walk applies unshifted
  /// suffix ops to every lane). Bit-identical to two single applications
  /// per lane, as the serial apply_mat2_pair.
  void apply_plan_op_batch_pair(std::size_t k, BatchedStateVector& batch,
                                std::size_t lanes, const gates::Mat2& first,
                                const gates::Mat2& second) const;

  /// The batched dispatch table: per plan op, the dense rotation slot
  /// (0..rotation_ops-1, assigned in stream order) or kNoBatchSlot for
  /// non-parameterized ops. A batched dispatch builds its per-op angle
  /// table with one row per slot (row r holds lane 0..B-1's entries for
  /// the r-th parameterized op). The plan verifier's QP107 proves this
  /// table covers exactly the same ops and parameter bindings as serial
  /// dispatch.
  [[nodiscard]] std::span<const std::uint32_t> batch_rotation_slots()
      const noexcept {
    return rotation_slot_;
  }

  /// Rows in the per-op angle table (== stats().rotation_ops).
  [[nodiscard]] std::size_t num_batch_slots() const noexcept {
    return stats_.rotation_ops;
  }

  // --- read-only introspection (static analysis, schedulers) ---------------
  //
  // Views into the lowered program. The spans alias plan-owned storage and
  // stay valid for the plan's lifetime. The PlanVerifier (analysis layer)
  // checks these against the source circuit without executing either; a
  // future scheduler can partition the op stream the same way.

  /// The lowered kernel-op stream, in execution order.
  [[nodiscard]] std::span<const PlanOp> plan_ops() const noexcept {
    return plan_ops_;
  }

  /// The deduplicated constant-matrix pool. `single` / `single_inverse`
  /// are indexed by PlanOp::matrix (kFixedSingle, kCnot) and by the
  /// `fused` run list (kFusedSingle); `two` / `two_inverse` by
  /// PlanOp::matrix (kFixedTwo). Forward and inverse entries share one
  /// indexing.
  struct MatrixPool {
    std::span<const gates::Mat2> single;
    std::span<const gates::Mat2> single_inverse;
    std::span<const ComplexMatrix> two;
    std::span<const ComplexMatrix> two_inverse;
    std::span<const std::uint32_t> fused;  ///< pool2 indices of fused runs
  };
  [[nodiscard]] MatrixPool matrix_pool() const noexcept {
    return {pool2_, pool2_inv_, pool4_, pool4_inv_, fused_};
  }

  /// One parameter's lowering: the source op and plan op consuming it.
  /// Both are ExecutionPlan::kNoOperation when nothing consumes the
  /// parameter; plan_op alone is kNoOperation when the parameter is
  /// consumed more than once (prefix reuse disabled for it).
  struct ParamBinding {
    std::size_t source_op = kNoOperation;
    std::size_t plan_op = kNoOperation;
  };

  /// The full binding table, one entry per parameter.
  [[nodiscard]] std::vector<ParamBinding> param_bindings() const;

  /// Full reverse-mode ("adjoint") pass: forward run, value = <phi|H|phi>,
  /// then the inverse double sweep accumulating dC/dtheta into `gradient`
  /// (with +=, so callers pass a zeroed span). Each parameterized op's
  /// forward and inverse rotation entries are computed once per call and
  /// shared by the forward pass, the derivative, and both inverse
  /// applications — the interpreted sweep evaluates that trig four times
  /// per op. The arithmetic applied to the states is otherwise identical,
  /// so value and gradient match the interpreted engine exactly.
  double adjoint_value_and_gradient(const Observable& observable,
                                    std::span<const double> params,
                                    std::span<double> gradient) const;

  // --- per-op execution (gradient engines) ---------------------------------

  [[nodiscard]] std::size_t num_plan_ops() const noexcept {
    return plan_ops_.size();
  }

  /// Applies plan ops [begin, end) in order.
  void apply_plan_ops(StateVector& state, std::span<const double> params,
                      std::size_t begin, std::size_t end) const;

  void apply_plan_op(std::size_t k, StateVector& state,
                     std::span<const double> params) const;

  void apply_plan_op_inverse(std::size_t k, StateVector& state,
                             std::span<const double> params) const;

  /// Applies the inverse of plan op `k` to both states, computing any
  /// angle-dependent entries once (the adjoint double sweep walks two
  /// states through every inverse).
  void apply_plan_op_inverse_pair(std::size_t k, StateVector& a,
                                  StateVector& b,
                                  std::span<const double> params) const;

  /// dst <- dU_k/dtheta |src> (out of place; `k` must be parameterized).
  void apply_plan_op_derivative(std::size_t k, const StateVector& src,
                                StateVector& dst,
                                std::span<const double> params) const;

  /// Applies parameterized plan op `k` with an explicitly bound angle
  /// (parameter-shift evaluations bind params[param] + shift).
  void apply_plan_op_with_angle(std::size_t k, StateVector& state,
                                double theta) const;

  [[nodiscard]] bool plan_op_is_parameterized(std::size_t k) const noexcept;

  /// Parameter index consumed by plan op `k` (parameterized ops only).
  [[nodiscard]] std::size_t plan_op_parameter(std::size_t k) const;

  /// Plan op consuming `param_index`, or ExecutionPlan::kNoOperation.
  [[nodiscard]] std::size_t plan_op_for_parameter(
      std::size_t param_index) const noexcept;

  // --- per-source-op constant matrices (density-matrix simulator) ----------

  /// True when the source op at `source_index` is constant (its dense
  /// matrix does not depend on the parameter vector).
  [[nodiscard]] bool source_op_is_constant(std::size_t source_index) const;

  /// Cached dense matrix of a constant source op (same values
  /// Circuit::operation_matrix builds, computed once and shared).
  [[nodiscard]] const ComplexMatrix& source_constant_matrix(
      std::size_t source_index) const;

 private:
  CompiledCircuit() = default;

  // Test-only corruption hook (qbarren/exec/plan_testing.hpp): the
  // PlanVerifier's negative-path tests seed plan corruptions through it.
  friend class PlanMutationHook;

  std::size_t num_qubits_ = 0;
  std::size_t num_params_ = 0;
  std::vector<PlanOp> plan_ops_;
  std::vector<gates::Mat2> pool2_;      ///< cached 2x2 entries (forward)
  std::vector<gates::Mat2> pool2_inv_;  ///< their inverses, same indexing
  std::vector<ComplexMatrix> pool4_;    ///< cached 4x4 matrices (forward)
  std::vector<ComplexMatrix> pool4_inv_;
  std::vector<std::uint32_t> fused_;  ///< pool2 indices of fused runs
  std::vector<ComplexMatrix> const_matrices_;  ///< dense matrices, deduped
  std::vector<std::uint32_t> source_matrix_;   ///< source op -> dense index
  std::vector<std::size_t> param_source_op_;   ///< param -> source op
  std::vector<std::uint32_t> param_plan_op_;   ///< param -> plan op
  std::vector<std::uint32_t> rotation_slot_;   ///< plan op -> angle-table row
  Stats stats_;
};

// --- plan attachment -------------------------------------------------------

/// Process-wide switch (default on). When off, plan_for() returns nullptr
/// and every consumer falls back to interpreted execution — tests use this
/// to obtain reference results, benchmarks to time both paths.
void set_execution_plans_enabled(bool enabled) noexcept;
[[nodiscard]] bool execution_plans_enabled() noexcept;

/// RAII guard: sets the process-wide switch, restores the prior value.
class ScopedExecutionPlans {
 public:
  explicit ScopedExecutionPlans(bool enabled);
  ~ScopedExecutionPlans();
  ScopedExecutionPlans(const ScopedExecutionPlans&) = delete;
  ScopedExecutionPlans& operator=(const ScopedExecutionPlans&) = delete;

 private:
  bool previous_;
};

/// Debug/verification hook fired by plan_for() right after a freshly
/// compiled plan is attached (cache hits — circuits that already carry a
/// plan — do not re-fire). Installed by the analysis layer's
/// ScopedPlanVerification so every lowering in a run is statically checked
/// exactly once. Returns the previously installed hook so scopes can
/// restore it. Thread-safe; pass nullptr to clear. The hook may throw —
/// plan_for() propagates the exception to its caller (the plan stays
/// attached, so a non-throwing retry does not re-fire the hook).
using PlanAttachHook =
    std::function<void(const Circuit&, const CompiledCircuit&)>;
PlanAttachHook set_plan_attach_hook(PlanAttachHook hook);

/// The plan attached to `circuit`, compiling and attaching one on first
/// use. Returns nullptr when plans are disabled or the circuit cannot be
/// lowered (malformed custom gate — execution then takes the interpreted
/// path and throws its usual InvalidArgument).
[[nodiscard]] std::shared_ptr<const CompiledCircuit> plan_for(
    const Circuit& circuit, const CompileOptions& options = {});

// --- prefix-state reuse for single-parameter partials ----------------------

/// Evaluates the cost at parameter vectors that differ from a base vector
/// only in one entry. The state before the (unique) op consuming that
/// parameter is simulated once at construction; each evaluation re-runs
/// only that op and the suffix. For the Fig 5a hot path — the partial with
/// respect to the LAST parameter — the suffix is (nearly) empty, so each
/// of the two shift evaluations costs one gate instead of a full forward
/// pass.
class PartialEvaluator {
 public:
  PartialEvaluator(std::shared_ptr<const CompiledCircuit> plan,
                   const Observable& observable,
                   std::span<const double> params, std::size_t index);

  /// Cost at params with params[index] replaced by params[index] + delta.
  [[nodiscard]] double operator()(double delta);

 private:
  std::shared_ptr<const CompiledCircuit> plan_;
  const Observable& observable_;
  std::vector<double> params_;
  std::size_t index_;
  std::size_t plan_op_ = ExecutionPlan::kNoOperation;
  StateVector prefix_;
  StateVector work_;
};

}  // namespace qbarren::exec
