// Test-only mutation hook for compiled execution plans.
//
// The PlanVerifier's negative-path tests need plans that are *wrong* in
// precisely one way — a swapped wire, a stale binding, a dropped fusion
// element — which the compiler can never produce. This hook is the single
// sanctioned way to build such plans: copy a correctly compiled plan,
// then corrupt one field through the mutable accessors. Nothing outside
// tests/ may include this header; production code sees CompiledCircuit
// only through shared_ptr<const>.
#pragma once

#include <memory>

#include "qbarren/exec/compiled_circuit.hpp"

namespace qbarren::exec {

class PlanMutationHook {
 public:
  /// A private, mutable copy of a compiled plan. The copy shares no
  /// attachment with any circuit, so corrupting it cannot leak into
  /// production execution paths.
  [[nodiscard]] static std::shared_ptr<CompiledCircuit> mutable_copy(
      const CompiledCircuit& plan) {
    return std::shared_ptr<CompiledCircuit>(new CompiledCircuit(plan));
  }

  static std::vector<CompiledCircuit::PlanOp>& plan_ops(
      CompiledCircuit& plan) {
    return plan.plan_ops_;
  }
  static std::vector<gates::Mat2>& pool2(CompiledCircuit& plan) {
    return plan.pool2_;
  }
  static std::vector<gates::Mat2>& pool2_inverse(CompiledCircuit& plan) {
    return plan.pool2_inv_;
  }
  static std::vector<ComplexMatrix>& pool4(CompiledCircuit& plan) {
    return plan.pool4_;
  }
  static std::vector<ComplexMatrix>& pool4_inverse(CompiledCircuit& plan) {
    return plan.pool4_inv_;
  }
  static std::vector<std::uint32_t>& fused(CompiledCircuit& plan) {
    return plan.fused_;
  }
  static std::vector<std::size_t>& param_source_op(CompiledCircuit& plan) {
    return plan.param_source_op_;
  }
  static std::vector<std::uint32_t>& param_plan_op(CompiledCircuit& plan) {
    return plan.param_plan_op_;
  }
  static std::vector<std::uint32_t>& rotation_slots(CompiledCircuit& plan) {
    return plan.rotation_slot_;
  }
  static std::size_t& num_qubits(CompiledCircuit& plan) {
    return plan.num_qubits_;
  }
  static std::size_t& num_params(CompiledCircuit& plan) {
    return plan.num_params_;
  }
};

}  // namespace qbarren::exec
