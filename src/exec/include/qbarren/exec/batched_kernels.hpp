// Batched state-vector kernels: one gate, many amplitude lanes.
//
// Each kernel applies a gate to lanes [0, lanes) of a BatchedStateVector,
// running the corresponding serial kernel's loop body (qbarren/exec/
// kernels.hpp) per lane: the same pair enumeration and the same complex
// arithmetic per amplitude, with the matrix entries held in locals across
// all lanes. Per-lane results are therefore bit-identical to applying the
// serial kernel to each lane in its own StateVector — batching changes
// how often the matrix is fetched and the trig is evaluated, never the
// per-amplitude expressions.
//
// The `_per_lane` variants take one Mat2 per lane (entries[b] applies to
// lane b): parameterized ops in a batched dispatch bind a different angle
// per lane, supplied via the plan's per-op angle table.
#pragma once

#include <cstdint>

#include "qbarren/qsim/batched_statevector.hpp"
#include "qbarren/qsim/gates.hpp"

namespace qbarren::exec {

/// Uniform 2x2 on `target` of every lane in [0, lanes).
void batched_apply_mat2(BatchedStateVector& batch, std::size_t lanes,
                        const gates::Mat2& u, std::size_t target);

/// Per-lane 2x2: entries[b] on lane b.
void batched_apply_mat2_per_lane(BatchedStateVector& batch, std::size_t lanes,
                                 const gates::Mat2* entries,
                                 std::size_t target);

/// Uniform rotation with precomputed entries; RZ takes the serial kernel's
/// diagonal fast path per lane.
void batched_apply_rotation_mat2(BatchedStateVector& batch, std::size_t lanes,
                                 gates::Axis axis, const gates::Mat2& u,
                                 std::size_t target);

/// Per-lane rotation entries (batched bindings differ per lane); RZ takes
/// the diagonal fast path per lane.
void batched_apply_rotation_per_lane(BatchedStateVector& batch,
                                     std::size_t lanes, gates::Axis axis,
                                     const gates::Mat2* entries,
                                     std::size_t target);

/// u_first then u_second on `target` of every lane in one pass, keeping
/// each amplitude pair in registers between the gates — bit-identical to
/// two batched_apply_mat2 calls, exactly as the serial apply_mat2_pair.
void batched_apply_mat2_pair(BatchedStateVector& batch, std::size_t lanes,
                             const gates::Mat2& u_first,
                             const gates::Mat2& u_second, std::size_t target);

/// Fused constant run (kFusedSingle): pool[indices[...]] applied in order
/// (reversed when `reverse`) in one pass per lane, as apply_mat2_run.
void batched_apply_mat2_run(BatchedStateVector& batch, std::size_t lanes,
                            const gates::Mat2* pool,
                            const std::uint32_t* indices, std::size_t count,
                            bool reverse, std::size_t target);

/// Uniform controlled 2x2, as apply_controlled_mat2 per lane.
void batched_apply_controlled_mat2(BatchedStateVector& batch,
                                   std::size_t lanes, const gates::Mat2& u,
                                   std::size_t control, std::size_t target);

/// Per-lane controlled entries (controlled rotations with batched angles).
void batched_apply_controlled_per_lane(BatchedStateVector& batch,
                                       std::size_t lanes,
                                       const gates::Mat2* entries,
                                       std::size_t control,
                                       std::size_t target);

/// CZ on (a, b) of every lane, as the serial apply_cz fast path.
void batched_apply_cz(BatchedStateVector& batch, std::size_t lanes,
                      std::size_t qubit_a, std::size_t qubit_b);

/// Generic 4x4 on (q_low, q_high) of every lane, mirroring
/// StateVector::apply_two_qubit (matrix copied into locals once, same
/// 4-group enumeration and row-accumulation order).
void batched_apply_mat4(BatchedStateVector& batch, std::size_t lanes,
                        const ComplexMatrix& u, std::size_t q_low,
                        std::size_t q_high);

}  // namespace qbarren::exec
