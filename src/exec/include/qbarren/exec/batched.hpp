// Batched execution policy and the batched shift evaluator.
//
// Batching never changes results — every batched path is byte-identical
// to its serial counterpart — so the batch width is a process-wide
// execution knob (like set_execution_plans_enabled), NOT a field of the
// experiment option structs: it stays out of the determinism fingerprints
// and the serve wire format by construction, exactly as
// VarianceExperimentOptions deliberately excludes keep_samples.
//
// Semantics of the limit:
//   1  — batching off (the default; every consumer takes its serial path)
//   0  — auto: each consumer picks a width from its workload shape
//        (parameter-shift gradients chunk 2P shifted bindings,
//        landscape rows batch a grid row, SPSA batches its +/- pair)
//   B>=2 — batch at most B lanes per dispatch
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "qbarren/exec/compiled_circuit.hpp"

namespace qbarren::exec {

/// Batching off: every consumer stays on its serial path.
inline constexpr std::size_t kBatchOff = 1;
/// Auto: consumers derive the width from their workload shape.
inline constexpr std::size_t kBatchAuto = 0;
/// Lane cap consumers use when resolving kBatchAuto: wide enough to
/// amortize matrix fetch and trig, small enough that a batch of deep-HEA
/// lanes stays cache-resident.
inline constexpr std::size_t kAutoBatchLanes = 32;

/// Sets the process-wide batch limit (see the semantics above).
void set_batch_limit(std::size_t limit) noexcept;
[[nodiscard]] std::size_t batch_limit() noexcept;

/// True when the limit is not kBatchOff — consumers route through the
/// batched path (which still degrades to serial when a circuit has no
/// attached plan, e.g. the malformed-custom-gate fallback).
[[nodiscard]] bool batching_enabled() noexcept;

/// Lane count a consumer should use for a workload that naturally has
/// `natural` independent bindings: min(natural, kAutoBatchLanes) under
/// kBatchAuto, min(natural, limit) otherwise; at least 1.
[[nodiscard]] std::size_t resolve_batch_lanes(std::size_t limit,
                                              std::size_t natural) noexcept;

/// RAII guard: sets the process-wide batch limit, restores the prior
/// value. The CLI's --batch flag and the tests scope batching with this.
class ScopedBatchLimit {
 public:
  explicit ScopedBatchLimit(std::size_t limit);
  ~ScopedBatchLimit();
  ScopedBatchLimit(const ScopedBatchLimit&) = delete;
  ScopedBatchLimit& operator=(const ScopedBatchLimit&) = delete;

 private:
  std::size_t previous_;
};

/// One shifted evaluation: the cost at `params` with
/// params[param] += delta.
struct ShiftSpec {
  std::size_t param = 0;
  double delta = 0.0;
};

/// Evaluates every spec's shifted cost in batched chunks, byte-identical
/// to evaluating each spec through a PartialEvaluator: one base state is
/// advanced through the op stream with the unshifted parameters; at each
/// spec's consuming op a lane is branched off (copy of the base, shifted
/// op applied), and every subsequent op is applied to all live lanes with
/// its rotation entries computed once per op instead of once per lane.
/// Specs are chunked so at most resolve_batch_lanes(batch_limit(),
/// specs.size()) lanes are live at a time (a single parameter's specs are
/// never split). Parameters without a unique consuming op (shared
/// parameters, defensive) are evaluated serially, exactly as
/// PartialEvaluator's fallback. Results are returned in spec order.
[[nodiscard]] std::vector<double> shifted_expectations(
    const CompiledCircuit& plan, const Observable& observable,
    std::span<const double> params, std::span<const ShiftSpec> specs);

}  // namespace qbarren::exec
