// Analytic barren-plateau predictor: a closed-form gradient-variance
// model that answers "is this configuration barren?" with zero simulation.
//
// The Monte-Carlo pipeline (bp/variance.hpp) estimates Var[dC/dtheta_k] by
// running thousands of state-vector simulations. This module computes the
// same quantity statically, per parameter, from four structural inputs:
//
//   * the **initializer family**: each supported strategy maps to a
//     closed-form angle law (AngleModel) — a per-angle variance sigma^2
//     derived from the same fan convention the initializers use
//     (init/fan.hpp). Random U[0,2*pi) has sigma^2 = pi^2/3; the
//     Gaussian/uniform fan families shrink as 1/fan; zeros is the exact
//     identity.
//   * the **cost locality**: a global projector (Eq 4) pays the full
//     2^(-2w) Haar-average suppression (McClean et al. 2018), a Pauli
//     observable pays 2^(-w), and a Cerezo-style averaged local projector
//     sits between with a 1/n prefactor (Cerezo et al. 2021).
//   * the **effective light-cone width** w: the number of qubits the
//     observable's support has spread to at the parameter's operation
//     (CircuitDataflow::backward_light_cone) — the width whose Hilbert
//     space the gradient actually sees. Structurally dead parameters
//     predict exactly 0.
//   * the **scrambling depth**: how many random rotations per qubit
//     separate the parameter from a product state. Small-angle circuits
//     stay near the identity (Grant et al. 2019) where the gradient is
//     set by first-order perturbation theory, V ~ rho * sigma^2; deep
//     wide-angle circuits approach a 2-design where V ~ c0 * G(O, w).
//     In between, the model interpolates in log space with a mixing
//     fraction M = min(1, (sigma^2 * depth / K)^p) — the depth/width
//     transition regime of Park et al. 2024.
//
// The model is calibrated once against this repo's own Monte-Carlo
// Fig 5a pipeline (constants in PredictorModel; conformance bands in
// default_conformance_bands) and `predict_conformance` re-checks the
// agreement on every CI run. It deliberately *refuses* to produce a
// number when its assumptions fail — custom (non-2-design-family) gate
// blocks or non-zero-mean angle laws — reporting an info diagnostic
// instead of a wrong estimate.
//
// The same engine also bounds what Monte-Carlo could even measure: the
// compiled plan's accumulated floating-point rounding error sets a
// variance floor (~(ops * eps)^2) below which a simulated gradient is
// numerically indistinguishable from noise. QN120 fires when the
// predicted variance sinks under that floor.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "qbarren/analysis/dataflow.hpp"
#include "qbarren/analysis/diagnostic.hpp"
#include "qbarren/bp/cost_kind.hpp"
#include "qbarren/bp/variance.hpp"
#include "qbarren/circuit/circuit.hpp"
#include "qbarren/common/run.hpp"
#include "qbarren/common/stats.hpp"
#include "qbarren/common/table.hpp"
#include "qbarren/init/fan.hpp"

namespace qbarren {

// --- angle models -----------------------------------------------------------

/// Closed-form law of one initializer family's per-angle distribution,
/// evaluated for a concrete circuit (the fan pair depends on its layer
/// shape). The model only needs the second moment and whether the law is
/// exactly zero (identity circuit).
struct AngleModel {
  std::string initializer;  ///< registry name the law models
  double variance = 0.0;    ///< Var[theta] of one angle
  std::string law;          ///< human-readable law, e.g. "N(0, 2/(n+L))"
};

/// Builds the angle law for a registry initializer name on `circuit`.
/// Returns nullopt for families the predictor cannot model: unknown
/// names, and "beta" (non-zero-mean angles break the near-identity
/// expansion the model interpolates from).
[[nodiscard]] std::optional<AngleModel> angle_model_for(
    const std::string& initializer, const Circuit& circuit,
    FanMode mode = FanMode::kLayerTensor);

/// True when angle_model_for would succeed for this name.
[[nodiscard]] bool angle_model_supported(const std::string& initializer);

// --- cost geometry ----------------------------------------------------------

/// The observable geometries the 2-design limit distinguishes (through
/// the Tr(O^2)-style factor of the Haar variance formula).
enum class PredictedCost {
  kGlobalProjector,  ///< |0..0><0..0| on the whole register: V ~ 2^(-2w)
  kLocalProjector,   ///< averaged one-qubit projectors: V ~ 2^(-w) / n
  kPauli,            ///< few-qubit Pauli word: V ~ 2^(-w)
};

[[nodiscard]] std::string predicted_cost_name(PredictedCost cost);

/// Maps the bp experiment cost kinds onto the model's geometries.
[[nodiscard]] PredictedCost predicted_cost_for(CostKind kind);

// --- the predictor ----------------------------------------------------------

/// Which regime the model places a parameter in (by mixing fraction M).
enum class VarianceRegime {
  kDead,          ///< structurally zero gradient (outside the light cone)
  kNearIdentity,  ///< M < 0.15: Grant-style perturbative regime
  kTransition,    ///< Park-style depth/width crossover
  kTwoDesign,     ///< M > 0.85: McClean Haar-average regime
};

[[nodiscard]] std::string variance_regime_name(VarianceRegime regime);

/// Calibration constants of the closed-form model. The defaults are
/// fitted once against this repo's Monte-Carlo Fig 5a pipeline (paper
/// grid: q = 2..10, 50 layers, CZ-ladder HEA) and pinned by the
/// conformance tests; override only to re-fit.
struct PredictorModel {
  /// Prefactor of the 2-design limit V_2d = c0 * G(O, w).
  double two_design_constant = 0.3;
  /// Scrambling scale K: mixing reaches 1 when sigma^2 * depth ~ K.
  double mixing_scale = 7.5;
  /// Mixing exponent p of M = min(1, (sigma^2 * depth / K)^p).
  double mixing_exponent = 1.0;
  /// Deep-circuit saturation of the Pauli geometry: a traceless local
  /// observable keeps an O(1) residual commutator weight under deep
  /// scrambling (Park et al. 2024 — no decay at any depth), so
  /// V_2d = c0 * (2^(-w) + plateau) instead of the naive exponential.
  double pauli_plateau = 0.01;
  /// Second-order prefactor for Z-axis rotations (first-order-null at
  /// the identity, every cost here being diagonal in Z).
  double z_axis_suppression = 1.0;
  /// Average flops per plan op per amplitude feeding the rounding-error
  /// bound delta = noise_flops_per_op * plan_ops * machine_epsilon.
  double noise_flops_per_op = 8.0;
};

/// One parameter's closed-form prediction.
struct ParameterPrediction {
  std::size_t parameter = 0;
  bool alive = false;            ///< false: structurally dead, variance 0
  std::size_t cone_width = 0;    ///< effective register width w
  VarianceRegime regime = VarianceRegime::kDead;
  double mixing = 0.0;           ///< M in [0, 1]
  double variance = 0.0;         ///< predicted Var[dC/dtheta_k]
};

/// A full-circuit prediction under one (angle law, cost) pair.
struct VariancePrediction {
  AngleModel angles;
  PredictedCost cost = PredictedCost::kGlobalProjector;
  std::vector<ParameterPrediction> parameters;
  /// Variance floor implied by the compiled plan's accumulated rounding
  /// error: a Monte-Carlo estimate below this is numerically
  /// untrustworthy (QN120's threshold).
  double noise_floor = 0.0;
  std::size_t plan_ops = 0;  ///< op count behind the noise model
  /// The modeling assumptions the numbers rest on, for reports.
  std::vector<std::string> assumptions;

  /// Smallest predicted variance over alive parameters; 0 when none are
  /// alive.
  [[nodiscard]] double min_alive_variance() const;
  /// Per-parameter report table (parameter, width, regime, variance);
  /// capped at max_rows with an overflow summary row.
  [[nodiscard]] Table table(std::size_t max_rows = 16) const;
};

/// The closed-form engine. Construction builds the dataflow graphs and
/// checks model applicability; predict() walks the light cone per
/// parameter. Never simulates.
class VariancePredictor {
 public:
  explicit VariancePredictor(const Circuit& circuit,
                             PredictorModel model = {});

  /// Empty when the model applies to this circuit; otherwise info
  /// diagnostics (code QB011) explaining the refusal — e.g. custom gate
  /// blocks are not drawn from the rotation/Clifford family the
  /// 2-design average is taken over.
  [[nodiscard]] const Diagnostics& applicability() const noexcept {
    return applicability_;
  }
  [[nodiscard]] bool applicable() const noexcept {
    return applicability_.empty();
  }

  /// Predicts every parameter's gradient variance under `angles` for an
  /// observable with the given support. Throws InvalidArgument when
  /// !applicable() or the support is empty/out of range.
  [[nodiscard]] VariancePrediction predict(
      const AngleModel& angles,
      const std::vector<std::size_t>& observable_qubits,
      PredictedCost cost) const;

  [[nodiscard]] const PredictorModel& model() const noexcept {
    return model_;
  }

 private:
  const Circuit* circuit_;
  PredictorModel model_;
  CircuitDataflow flow_;
  Diagnostics applicability_;
  double noise_floor_ = 0.0;
  std::size_t plan_ops_ = 0;
};

// --- experiment-level prediction (the static Fig 5a) ------------------------

/// Prediction for one (qubit count, initializer) Monte-Carlo cell: the
/// ensemble mean of per-structure predictions over the *same* circuit
/// structures compute_variance_cell samples (identical RNG child-stream
/// derivation), with zero simulation.
struct CellPrediction {
  std::size_t qubits = 0;
  double variance = 0.0;          ///< ensemble-mean predicted variance
  double noise_floor = 0.0;       ///< max plan-noise floor over structures
  std::size_t structures = 0;     ///< ensemble size used
  std::size_t dead_structures = 0;  ///< structures whose sampled
                                    ///< parameter is structurally dead
};

/// Predicts one cell of the Fig 5a grid. `structures` caps the ensemble
/// (0 = options.circuits_per_point; prediction is cheap but builds one
/// dataflow per structure). Throws NotFound for unsupported initializer
/// families — callers gate on angle_model_supported.
[[nodiscard]] CellPrediction predict_variance_cell(
    const VarianceExperimentOptions& options, std::size_t qubit_index,
    const std::string& initializer, const PredictorModel& model = {},
    std::size_t structures = 0);

/// One initializer's predicted curve across the qubit grid.
struct PredictionSeries {
  std::string initializer;
  std::vector<CellPrediction> cells;
  LinearFit decay_fit;  ///< ln(variance) vs qubit count
};

/// The static dual of VarianceResult: the whole Fig 5a grid predicted in
/// milliseconds.
struct PredictionGrid {
  std::vector<PredictionSeries> series;
  VarianceExperimentOptions options;

  /// Rows = qubit counts, columns = initializers, cells = predicted
  /// variance (mirrors VarianceResult::variance_table).
  [[nodiscard]] Table variance_table() const;
  /// Initializer, predicted decay slope, and improvement vs "random".
  [[nodiscard]] Table decay_table() const;
  [[nodiscard]] const PredictionSeries& find(
      const std::string& initializer) const;
};

[[nodiscard]] PredictionGrid predict_variance_grid(
    const VarianceExperimentOptions& options,
    const std::vector<std::string>& initializers,
    const PredictorModel& model = {}, std::size_t structures = 0);

/// JSON mirror of the grid (schema qbarren.predict.grid.v1): per-series
/// cells plus fitted decay slopes, for `qbarren predict --json`.
[[nodiscard]] JsonValue to_json(const PredictionGrid& grid);

// --- conformance harness ----------------------------------------------------

/// Per-initializer tolerance on |log10(predicted / measured)| per cell.
struct ConformanceBand {
  std::string initializer;
  double log10_tolerance = 1.0;
};

/// The bands the repo commits to (documented in TUTORIAL §18): the model
/// is an order-of-magnitude instrument, so bands are in decades.
[[nodiscard]] const std::vector<ConformanceBand>& default_conformance_bands();

/// One (initializer, qubit count) comparison.
struct ConformanceCell {
  std::string initializer;
  std::size_t qubits = 0;
  double predicted = 0.0;
  double measured = 0.0;
  double log10_error = 0.0;  ///< log10(predicted / measured); 0 when both 0
  double tolerance = 0.0;
  bool within = false;
};

/// Fitted decay slopes of both instruments for one initializer.
struct ConformanceFit {
  std::string initializer;
  double predicted_slope = 0.0;
  double measured_slope = 0.0;
};

struct ConformanceReport {
  std::vector<ConformanceCell> cells;
  std::vector<ConformanceFit> fits;
  /// Fig 5a ordering reproduced: "random" decays steepest and a Xavier
  /// family stays flattest, in both instruments, and every non-random
  /// initializer improves on random in both.
  bool ordering_ok = false;
  bool all_within = false;  ///< every cell inside its band
  [[nodiscard]] bool ok() const noexcept { return ordering_ok && all_within; }

  [[nodiscard]] Table table() const;      ///< per-cell comparison
  [[nodiscard]] Table slope_table() const;  ///< per-init slope comparison
  [[nodiscard]] JsonValue to_json() const;
};

/// Replays the Fig 5a grid with the Monte-Carlo pipeline and compares
/// against the closed-form prediction cell by cell. `initializers` must
/// all be model-supported registry names ("random" should be included —
/// the ordering check needs the baseline). Honors RunControl for
/// cancellation/checkpointing of the Monte-Carlo half.
[[nodiscard]] ConformanceReport predict_conformance(
    const VarianceExperimentOptions& options,
    const std::vector<std::string>& initializers,
    const std::vector<ConformanceBand>& bands = default_conformance_bands(),
    const PredictorModel& model = {}, const RunControl& control = {});

}  // namespace qbarren
