// Admission control: the lint preflight as a yes/no gate for the serve
// layer.
//
// A multi-tenant service must refuse provably broken requests *before*
// dispatching them to workers — a variance spec whose sampled parameter is
// structurally dead (QB001) would burn a worker pool for hours measuring
// exactly zero. admission_check wraps the PR 3 preflight linters
// (preflight.hpp) into a decision object: admitted = no error-severity
// findings, and the full findings list rides along so the service can
// stream the existing QB/QP diagnostic JSON back to the client instead of
// a bare rejection.
#pragma once

#include "qbarren/analysis/preflight.hpp"

namespace qbarren {

/// Verdict of an admission preflight. `findings` carries every
/// diagnostic (warnings included), serializable via to_json(Diagnostics);
/// `admitted` is false exactly when an error-severity finding exists.
struct AdmissionDecision {
  bool admitted = true;
  Diagnostics findings;

  [[nodiscard]] JsonValue findings_json() const { return to_json(findings); }
};

[[nodiscard]] AdmissionDecision admission_check(
    const VarianceExperimentOptions& options,
    const LintOptions& lint_options = {});

[[nodiscard]] AdmissionDecision admission_check(
    const TrainingExperimentOptions& options,
    const LintOptions& lint_options = {});

[[nodiscard]] AdmissionDecision admission_check(
    const TrainingSweepOptions& options, const LintOptions& lint_options = {});

}  // namespace qbarren
