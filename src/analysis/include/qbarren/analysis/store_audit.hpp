// Static checkpoint/result-cache store auditor — the engine of
// `qbarren fsck`.
//
// A checkpoint store is only trustworthy if a resume restores exactly the
// cells the interrupted run computed, under exactly the options it used.
// The runtime defends this dynamically (strict fingerprint validation,
// open_salvaging quarantine); this auditor proves it statically for a file
// at rest, without mutating anything: it scans the store with the same
// grammar the loader uses (scan_checkpoint_file) and reports every way the
// file could lie to a resuming or cache-reading run:
//
//   QD110  error    not a readable qbarren checkpoint: missing file,
//                   foreign magic, unreadable header.
//   QD111  error    format version skew: written by an incompatible build.
//   QD112  error    torn or malformed record: truncated cell framing, bad
//                   payload line, wrong/missing end marker, trailing
//                   bytes — anything open_salvaging would quarantine.
//   QD113  error    duplicate cell record: strict loading silently keeps
//                   the last one, shadowing earlier data.
//   QD114  error    foreign fingerprint: the store was written under
//                   different options than the audited spec — a strict
//                   load would (rightly) refuse it.
//   QD115  warning  orphan cell: a record no cell of the spec's
//                   enumeration would ever read — dead weight, or a sign
//                   the enumeration changed under the store.
//
// Verdict contract with the runtime (pinned by tests/test_store_audit.cpp):
// every corruption `open_salvaging` would quarantine produces at least one
// QD error finding here, and a store freshly written by flush() audits
// clean. The auditor is deliberately *stricter* than strict loading in two
// places the loader tolerates silently: duplicate cell records (last-wins
// shadowing, QD113) and trailing bytes after the end marker (QD112).
#pragma once

#include <string>
#include <vector>

#include "qbarren/analysis/lint.hpp"
#include "qbarren/common/checkpoint.hpp"

namespace qbarren {

/// What the audited store is *supposed* to contain. All fields optional:
/// an empty expectation audits pure file structure (QD110-QD113).
struct StoreAuditOptions {
  /// When non-empty, the store's fingerprint must match (QD114).
  std::string expected_fingerprint;
  /// When non-empty, cell keys outside this enumeration are orphans
  /// (QD115). Ignored for keys outside `cell_namespace` (below).
  std::vector<std::string> expected_cells;
  /// For shared stores (the serve result cache holds cells of many
  /// fingerprints under "<fingerprint>|<cell>" keys): only keys starting
  /// with this prefix are checked against expected_cells; foreign-prefix
  /// keys belong to other requests and are left alone. Empty = every key
  /// is in scope.
  std::string cell_namespace;
  LintOptions lint;
};

/// Audits the store file at `path` against the expectations. Read-only;
/// never throws on file content.
[[nodiscard]] Diagnostics audit_store(const std::string& path,
                                      const StoreAuditOptions& options = {});

/// The scan the audit was derived from, for callers that want both the
/// findings and the structural layout (the CLI's table header).
[[nodiscard]] Diagnostics audit_store_scan(const CheckpointScan& scan,
                                           const std::string& path,
                                           const StoreAuditOptions& options = {});

}  // namespace qbarren
