// Static RNG stream-derivation graph: the determinism auditor's model.
//
// Every Monte-Carlo estimate in the paper reproduction (Fig 5a variance
// points, Fig 5b/c training curves, sweep error bars) is scientifically
// valid only if the RNG streams feeding its cells are independent — the
// property Kashif & Shafique 2024 show is easy to silently violate, and
// the one PRs 2 and 7 claim to preserve at any shard count and crash
// schedule. Those claims are enforced by runtime tests; this header proves
// them *statically*: given an experiment's options, it enumerates every
// `Rng::child` derivation the run will perform (root seed → per-cell
// streams → per-circuit structure/parameter leaves, through
// derive_child_seed — the exact arithmetic Rng::child uses) and checks the
// resulting graph against the QD100-series determinism rules:
//
//   QD100  error    stream collision: two leaf streams that must be
//                   independent derive the same seed (same child-index
//                   path, or a genuine hash collision). The deliberate
//                   exception is the variance experiment's structure
//                   stream, shared across initializers by design so every
//                   strategy sees the same sampled circuits.
//   QD101  error    cross-run seed aliasing: two runs presented as
//                   independent (sweep repetitions, distinct requests)
//                   share a root seed — identical fingerprints mean the
//                   very same computation counted twice (error);
//                   different fingerprints drawing from one root stream
//                   are correlated estimates (warning). Generalizes
//                   QB007 beyond a single run, keyed by fingerprints.
//   QD102  error    fingerprint insensitivity: perturbing a
//                   result-affecting option field does not move the
//                   canonical options fingerprint, so a stale checkpoint
//                   or cache entry computed under different options would
//                   be restored as if it matched. (Deliberately
//                   non-result-affecting fields — keep_samples,
//                   deadline_seconds — moving the fingerprint is the dual
//                   defect, reported as a warning: every cache entry
//                   would be needlessly invalidated.)
//   QD103  error    cache-key coverage: a cell key fails to cover a
//                   result-affecting input of its cell — duplicate cell
//                   keys over distinct stream leaves within one run
//                   (checkpoint resume restores the wrong cell), or, at
//                   the serve layer (serve/audit.hpp), a field the
//                   `fingerprint|cell` cache key distinguishes but the
//                   worker-visible options encoding drops (workers would
//                   compute defaults and poison the cache namespace).
//
// The store-auditor rules QD110+ (store_audit.hpp) share the registry
// below; `qbarren audit --rules` prints the whole family.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "qbarren/analysis/lint.hpp"
#include "qbarren/bp/training.hpp"
#include "qbarren/bp/variance.hpp"

namespace qbarren {

/// What a leaf stream is consumed for.
enum class StreamRole {
  kStructure,  ///< circuit structure draws (rotation axes)
  kParam,      ///< parameter draws (initializer input)
};

/// "structure" / "param".
[[nodiscard]] const char* stream_role_name(StreamRole role) noexcept;

/// One leaf of the derivation tree: a stream some code path actually draws
/// from, identified by the child-index path from the run's root seed.
struct StreamLeaf {
  StreamRole role = StreamRole::kParam;
  /// Cell key the leaf belongs to ("q=8/init=he"); structure streams,
  /// shared across every initializer of their qubit count by design, carry
  /// the wildcard form "q=8/init=*".
  std::string cell;
  /// Child indices from the root, in derivation order.
  std::vector<std::uint64_t> path;
  /// The Rng seed at the end of the path (derive_child_seed folded along
  /// it) — the identity QD100 checks for collisions.
  std::uint64_t seed = 0;
  /// True for the variance structure streams: sharing them across
  /// initializers is the experiment's design ("every strategy sees the
  /// same 200 circuits"), not a collision.
  bool shared_by_design = false;
};

/// The complete stream derivation of one run, plus the metadata the
/// cross-run rules need (fingerprint, cell enumeration, engine ladder).
struct StreamGraph {
  std::string label;        ///< "variance", "rep=3", a request id, ...
  std::string fingerprint;  ///< canonical options fingerprint of the run
  std::uint64_t root_seed = 0;
  /// Cell keys in the runner's deterministic enumeration order,
  /// duplicates preserved (QD103 flags them).
  std::vector<std::string> cells;
  std::vector<StreamLeaf> leaves;
  /// Gradient engine selected per non-finite retry attempt (attempt 0 =
  /// the configured engine, attempt > 0 = the parameter-shift fallback).
  /// Retries replay the *same* leaf streams — the ladder is cell metadata,
  /// never a new derivation, which is exactly why a redispatched cell is
  /// bit-identical.
  std::vector<std::string> engine_ladder;
};

/// Derivation graph of a variance run: per qubit index qi and sampled
/// circuit i, structure leaf root.child(qi).child(2i).child(0) shared
/// across initializers, and per initializer t the parameter leaf
/// root.child(qi).child(2i).child(1 + t) — mirroring
/// compute_variance_cell. Cells follow run_paper_set's enumeration.
[[nodiscard]] StreamGraph variance_stream_graph(
    const VarianceExperimentOptions& options,
    const std::string& label = "variance");

/// Derivation graph of a training run: per initializer t the parameter
/// leaf root.child(t), cell "init=<name>" — mirroring run_training_cell.
[[nodiscard]] StreamGraph training_stream_graph(
    const TrainingExperimentOptions& options,
    const std::string& label = "training");

/// One graph per sweep repetition, labelled "rep=<r>", with root seed
/// splitmix64(base.seed ^ (rep + 1)) — the exact derivation
/// run_training_sweep uses. This enumerator also backs lint's QB007
/// preflight, so the sweep runner, the linter, and the auditor can never
/// disagree about which seeds a sweep draws.
[[nodiscard]] std::vector<StreamGraph> sweep_stream_graphs(
    const TrainingSweepOptions& options);

/// QD100 + QD103 over one run's graph.
[[nodiscard]] Diagnostics audit_stream_graph(const StreamGraph& graph,
                                             const LintOptions& options = {});

/// Per-graph QD100/QD103 plus QD101 across the collection (runs presented
/// as independent of each other: sweep repetitions, distinct requests).
[[nodiscard]] Diagnostics audit_stream_graphs(
    const std::vector<StreamGraph>& graphs, const LintOptions& options = {});

// --- fingerprint soundness (QD102/QD103 probes) --------------------------

/// One perturbed copy of an options object: `field` names the option that
/// differs from the baseline, `result_affecting` says whether the
/// experiment's samples depend on it (false for keep_samples /
/// deadline_seconds, which fingerprints deliberately exclude).
struct VariancePerturbation {
  std::string field;
  bool result_affecting = true;
  VarianceExperimentOptions options;
};
struct TrainingPerturbation {
  std::string field;
  bool result_affecting = true;
  TrainingExperimentOptions options;
};

/// Every single-field perturbation of the options, one per field.
[[nodiscard]] std::vector<VariancePerturbation> variance_perturbations(
    const VarianceExperimentOptions& options);
[[nodiscard]] std::vector<TrainingPerturbation> training_perturbations(
    const TrainingExperimentOptions& options);

/// One fingerprint-soundness probe: the canonical fingerprint before and
/// after a single-field perturbation, plus (serve only) the worker-visible
/// options encoding before/after and the fingerprint recovered by encoding
/// the perturbed options to the wire and parsing them back. The wire
/// fields stay empty for in-process runs, where cells never cross an
/// options re-encoding.
struct FingerprintProbe {
  std::string field;
  bool expect_move = true;  ///< result-affecting fields must move the print
  std::string base;         ///< fingerprint of the unperturbed options
  std::string perturbed;    ///< fingerprint after the perturbation
  std::string wire_base;       ///< worker-visible encoding before ("" = n/a)
  std::string wire_perturbed;  ///< worker-visible encoding after
  std::string wire_roundtrip;  ///< fingerprint(decode(encode(perturbed)))
};

/// QD102 (and, when wire fields are present, QD103) over a probe set.
/// `label` names the audited artifact in finding locations.
[[nodiscard]] Diagnostics audit_fingerprint_probes(
    const std::vector<FingerprintProbe>& probes, const std::string& label,
    const LintOptions& options = {});

/// Probe sets for the in-process fingerprints (no wire fields).
[[nodiscard]] std::vector<FingerprintProbe> variance_fingerprint_probes(
    const VarianceExperimentOptions& options);
[[nodiscard]] std::vector<FingerprintProbe> training_fingerprint_probes(
    const TrainingExperimentOptions& options);
[[nodiscard]] std::vector<FingerprintProbe> sweep_fingerprint_probes(
    const TrainingSweepOptions& options);

// --- one-stop audits ------------------------------------------------------

/// Stream-graph rules + fingerprint soundness for one experiment. These
/// are what `qbarren audit --kind ...` and serve admission run.
[[nodiscard]] Diagnostics audit_variance_options(
    const VarianceExperimentOptions& options, const LintOptions& lint = {});
[[nodiscard]] Diagnostics audit_training_options(
    const TrainingExperimentOptions& options, const LintOptions& lint = {});
/// Includes QD101 across the sweep's repetition graphs.
[[nodiscard]] Diagnostics audit_sweep_options(
    const TrainingSweepOptions& options, const LintOptions& lint = {});

/// The QD rule registry (stream rules QD100-QD103 and store-auditor rules
/// QD110-QD115), ordered by code; drives docs and `audit --rules`.
[[nodiscard]] const std::vector<LintRuleInfo>& determinism_rules();

/// Registry as a table: code, severity, what it predicts, source.
[[nodiscard]] Table determinism_rule_table();

}  // namespace qbarren
