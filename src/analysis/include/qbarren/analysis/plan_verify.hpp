// Static verification of compiled execution plans.
//
// PR 4 routed every consumer — simulate, all four gradient engines, the
// trainer, the landscape scan, the noisy simulator — through
// `CompiledCircuit`, so a silent miscompile in lowering or fusion would
// corrupt every paper figure at once. The PlanVerifier is the classic
// graph-compiler answer: check the lowered program against its source IR
// *statically*, without executing either. All checks are structural or
// small dense-matrix algebra (2x2 / 4x4), so verification costs microseconds
// per plan — negligible next to compilation, let alone simulation.
//
// Checks (stable codes, QP1xx; severities are the defaults emitted):
//   QP100  error    shape mismatch: plan's qubit / parameter / source-op
//                   counts disagree with the source circuit
//   QP101  error    matrix-pool entry is not unitary within tolerance
//                   (warning when only custom gates reference it — the
//                   interpreted path applies those verbatim too, QB006
//                   already reports the modeling problem)
//   QP102  error    forward/inverse pool pairing broken: pool sizes
//                   disagree, or an inverse entry is not the inverse
//                   (adjoint, for custom gates) of its forward entry
//   QP103  error    illegal fusion: a fused run's indices are out of
//                   range, too short, or its pooled-matrix product does
//                   not equal the product of the source ops' matrices
//   QP104  error    binding-table mismatch: a parameter's recorded source
//                   op / plan op disagrees with the circuit's actual
//                   consumers (completeness and bijectivity)
//   QP105  error    kernel-op coverage broken: the plan's source ranges do
//                   not tile the op list exactly once in order, or a plan
//                   op's kernel / wires / axis / parameter / pooled matrix
//                   does not match the source op it claims to lower
//   QP106  error    a plan exists over a custom gate whose matrix has the
//                   wrong dimensions — compilation must refuse such
//                   circuits so execution reaches the interpreted
//                   fallback's error path
//                   (info: the circuit cannot be lowered and execution
//                   will use the interpreted fallback — emitted by
//                   verify_circuit_lowering, never by verify_plan)
//   QP107  error    batched-dispatch table broken: the rotation-slot table
//                   does not assign dense, in-stream-order angle-table rows
//                   to exactly the parameterized plan ops (every batched
//                   dispatch must cover the same ops and bindings the
//                   serial walk does)
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>

#include "qbarren/analysis/diagnostic.hpp"
#include "qbarren/circuit/circuit.hpp"
#include "qbarren/common/error.hpp"
#include "qbarren/exec/compiled_circuit.hpp"

namespace qbarren {

struct PlanVerifyOptions {
  /// QP101: max elementwise |u^H u - I| tolerated before an entry is
  /// flagged non-unitary (matches LintOptions::unitarity_tolerance).
  double unitarity_tolerance = 1e-9;

  /// QP105 (and QP102's adjoint check): max elementwise deviation between
  /// a pooled matrix and the one recomputed from the source op. Both sides
  /// run the same arithmetic, so the default is near machine precision.
  double match_tolerance = 1e-12;

  /// QP102/QP103: max elementwise deviation for matrix *products*
  /// (forward x inverse vs identity; fused run vs source-op product),
  /// which accumulate rounding the elementwise checks do not.
  double product_tolerance = 1e-9;

  /// Per-code cap on repeated findings; the overflow is folded into one
  /// summary finding (same policy as LintOptions::max_findings_per_rule).
  std::size_t max_findings_per_code = 8;
};

/// Statically checks `plan` against `circuit`; returns all findings,
/// ordered by code then position. Empty means the lowering is proven
/// consistent under the checks above.
[[nodiscard]] Diagnostics verify_plan(const Circuit& circuit,
                                      const exec::CompiledCircuit& plan,
                                      const PlanVerifyOptions& options = {});

/// Compiles `circuit` (without attaching the plan) and verifies the
/// result. When the circuit cannot be lowered, returns a single
/// info-severity QP106 finding naming the interpreted fallback instead —
/// that is the designed behavior, not a defect.
[[nodiscard]] Diagnostics verify_circuit_lowering(
    const Circuit& circuit, const PlanVerifyOptions& options = {});

// --- static resource estimate (QB010, bench) -------------------------------

/// Statically estimated execution cost of one pass of the lowered program
/// over `batch` 2^num_qubits state-vector lanes, from a simple per-kernel
/// cost model (complex mul = 6 flops, complex add = 2; bytes = amplitudes
/// read + written at 16 bytes each). `flops` and `bytes` scale linearly
/// with the batch; `shared_bytes` is the per-op matrix traffic fetched
/// once per dispatch regardless of lane count (2x2 entries 64 bytes, 4x4
/// 256, fused runs 64 per element, CZ none) — the amortization batching
/// buys. Deterministic and exact for the model — used for plan-to-plan
/// comparisons (QB010, bench JSON), not wall-time prediction. batch = 1
/// reproduces the serial estimate.
struct PlanResourceEstimate {
  double flops = 0.0;
  double bytes = 0.0;
  /// Matrix bytes fetched once per dispatch, independent of the batch.
  double shared_bytes = 0.0;
  std::size_t plan_ops = 0;
  std::size_t fused_runs = 0;
  /// Lane count the estimate is scaled for.
  std::size_t batch = 1;
};

[[nodiscard]] PlanResourceEstimate estimate_plan_resources(
    const exec::CompiledCircuit& plan, std::size_t batch = 1);

// --- run-wide verification hook --------------------------------------------

/// Thrown by the ScopedPlanVerification hook when a freshly attached plan
/// fails verification with error-severity findings. Carries the findings
/// so callers can render them.
class PlanVerificationError : public Error {
 public:
  PlanVerificationError(const std::string& context, Diagnostics diagnostics);

  [[nodiscard]] const Diagnostics& diagnostics() const noexcept {
    return diagnostics_;
  }

 private:
  Diagnostics diagnostics_;
};

/// RAII guard behind the CLI's --verify-plans flag: while alive, every
/// plan freshly compiled and attached by exec::plan_for() is verified
/// against its source circuit; error findings throw PlanVerificationError
/// out of plan_for's caller. Verification changes no execution arithmetic,
/// so verified runs are byte-identical to unverified ones. Restores the
/// previously installed attach hook on destruction. The counters are
/// shared with the hook and thread-safe (plan_for runs under the parallel
/// executor).
class ScopedPlanVerification {
 public:
  explicit ScopedPlanVerification(PlanVerifyOptions options = {});
  ~ScopedPlanVerification();
  ScopedPlanVerification(const ScopedPlanVerification&) = delete;
  ScopedPlanVerification& operator=(const ScopedPlanVerification&) = delete;

  /// Plans verified (clean or with warnings) since construction.
  [[nodiscard]] std::size_t plans_verified() const noexcept;

  /// Warning-severity findings accumulated across verified plans.
  [[nodiscard]] std::size_t warnings() const noexcept;

 private:
  struct Counters {
    std::atomic<std::size_t> plans{0};
    std::atomic<std::size_t> warnings{0};
  };
  std::shared_ptr<Counters> counters_;
  exec::PlanAttachHook previous_;
};

}  // namespace qbarren
