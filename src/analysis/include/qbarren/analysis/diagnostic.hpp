// Diagnostic model for qbarren's static analyzers.
//
// A Diagnostic is one finding of the circuit/experiment linter (lint.hpp):
// a severity, a stable rule code ("QB001"...), a human message, and a
// location string anchoring the finding in the analyzed artifact
// ("param 99", "op 12", "q[3]", "options"). Findings render as a pretty
// table (terminals, CI logs) or JSON (tooling; `qbarren lint
// --format=json`), and the JSON round-trips through parse_json.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "qbarren/common/json.hpp"
#include "qbarren/common/table.hpp"

namespace qbarren {

/// Finding severity, ordered: kInfo < kWarning < kError. Error-severity
/// findings predict a structurally broken or provably doomed run and make
/// `qbarren lint` (and the runners' --lint=error preflight) fail.
enum class Severity {
  kInfo,
  kWarning,
  kError,
};

/// Human-readable severity name ("info" / "warning" / "error").
[[nodiscard]] std::string severity_name(Severity severity);

/// Parses "info" / "warning" / "error"; throws NotFound otherwise.
[[nodiscard]] Severity severity_from_name(const std::string& name);

struct Diagnostic {
  Severity severity = Severity::kWarning;
  std::string code;      ///< stable rule code, e.g. "QB001"
  std::string message;   ///< what the rule found and what it predicts
  std::string location;  ///< anchor in the analyzed artifact, "" = whole
};

using Diagnostics = std::vector<Diagnostic>;

/// True when any finding has Severity::kError.
[[nodiscard]] bool has_errors(const Diagnostics& diagnostics);

/// Number of findings at exactly the given severity.
[[nodiscard]] std::size_t count_severity(const Diagnostics& diagnostics,
                                         Severity severity);

/// Findings as an aligned table: severity, code, location, message.
[[nodiscard]] Table diagnostics_table(const Diagnostics& diagnostics);

/// One finding as a JSON object {severity, code, message, location}.
[[nodiscard]] JsonValue to_json(const Diagnostic& diagnostic);

/// A full report: {schema, counts{info,warning,error}, diagnostics:[...]}.
[[nodiscard]] JsonValue to_json(const Diagnostics& diagnostics);

/// Inverse of to_json(const Diagnostic&); throws on missing/mistyped
/// fields. Used by tests to prove the JSON rendering round-trips.
[[nodiscard]] Diagnostic diagnostic_from_json(const JsonValue& value);

/// Inverse of to_json(const Diagnostics&): extracts and validates the
/// "diagnostics" array of a report object.
[[nodiscard]] Diagnostics diagnostics_from_json(const JsonValue& value);

}  // namespace qbarren
