// Circuit dataflow framework: the shared substrate for data-driven lint
// rules and static plan analysis.
//
// A circuit is a straight-line program over qubit "wires"; almost every
// static question about it — which gates are adjacent up to commutation,
// which parameter a gradient engine differentiates through, how far an
// observable's support reaches backward — is a query over the same three
// structures:
//
//   * the **wire graph**: per-qubit def-use chains linking each operation
//     to its predecessor and successor on every wire it touches. Two
//     operations adjacent on all shared wires are adjacent *up to
//     commutation*: everything between them in program order acts on
//     disjoint qubits and therefore commutes past both.
//   * the **parameter dependence graph**: which operation consumes each
//     trainable parameter (the builders produce exactly one consumer;
//     hand-built circuits may produce zero or several, which the graph
//     records faithfully).
//   * the **backward light cone**: the observable's support propagated
//     backward through the circuit as a fixpoint of the conservative
//     transfer function "a two-qubit gate touching the support merges
//     both of its qubits into it". For a straight-line program one
//     reverse sweep reaches the fixpoint; the pass iterates until the
//     per-op supports are stable, so the invariant is checked, not
//     assumed.
//
// Rules QB001/QB004/QB008/QB009 run entirely on these structures instead
// of re-scanning the operation list with rule-specific loops, and tests
// cross-check the cone against bp/lightcone.hpp's single-pass analysis.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "qbarren/circuit/circuit.hpp"

namespace qbarren {

class CircuitDataflow {
 public:
  /// Sentinel: no operation (start/end of a wire chain, unconsumed
  /// parameter).
  static constexpr std::size_t kNoOp = static_cast<std::size_t>(-1);

  /// Builds the wire graph and parameter dependence graph in one pass
  /// over the operation list. The circuit must outlive the dataflow.
  explicit CircuitDataflow(const Circuit& circuit);

  [[nodiscard]] const Circuit& circuit() const noexcept { return *circuit_; }
  [[nodiscard]] std::size_t num_ops() const noexcept { return ops_size_; }

  // --- wire graph ----------------------------------------------------------

  /// Operations touching qubit `q`, in program order.
  [[nodiscard]] const std::vector<std::size_t>& ops_on_qubit(
      std::size_t q) const;

  /// The previous / next operation on wire `qubit` before / after
  /// operation `op`; kNoOp at the ends of the chain. `qubit` must be a
  /// wire of `op`.
  [[nodiscard]] std::size_t prev_on_wire(std::size_t op,
                                         std::size_t qubit) const;
  [[nodiscard]] std::size_t next_on_wire(std::size_t op,
                                         std::size_t qubit) const;

  /// The wires of operation `op`: {qubit0} for single-qubit kinds,
  /// {qubit0, qubit1} for two-qubit kinds.
  [[nodiscard]] std::array<std::size_t, 2> wires(std::size_t op) const;
  [[nodiscard]] std::size_t wire_count(std::size_t op) const;

  /// True when some two-qubit operation touches qubit `q` (the negation
  /// is QB004's "product subsystem" condition).
  [[nodiscard]] bool entangled(std::size_t q) const;

  // --- parameter dependence graph ------------------------------------------

  /// The first operation consuming parameter `p`; kNoOp when none does.
  [[nodiscard]] std::size_t op_for_parameter(std::size_t p) const;

  /// Number of operations consuming parameter `p` (builders produce
  /// exactly 1; 0 and >= 2 indicate hand-built inconsistencies).
  [[nodiscard]] std::size_t parameter_use_count(std::size_t p) const;

  // --- backward light cone -------------------------------------------------

  struct LightCone {
    /// alive[p]: parameter p's gradient is not structurally zero under
    /// the analyzed observable support (same semantics as
    /// bp::analyze_light_cone).
    std::vector<bool> alive;

    /// cone_width[p]: number of qubits the observable's support has
    /// spread to at parameter p's operation — the width of the effective
    /// register its gradient actually sees. 0 for dead or unconsumed
    /// parameters.
    std::vector<std::size_t> cone_width;

    /// support_width[k]: |support| as seen by operation k (conjugated
    /// through every operation after k).
    std::vector<std::size_t> support_width;

    std::size_t dead_count = 0;
    std::size_t sweeps = 0;  ///< reverse sweeps until the fixpoint held
  };

  /// Propagates the observable's support backward to a fixpoint. Throws
  /// InvalidArgument on an empty support or an out-of-range qubit.
  [[nodiscard]] LightCone backward_light_cone(
      const std::vector<std::size_t>& observable_qubits) const;

 private:
  const Circuit* circuit_;
  std::size_t ops_size_ = 0;
  std::vector<std::vector<std::size_t>> by_qubit_;  ///< ops per wire
  // prev_/next_ are indexed [wire slot][op]: slot 0 = qubit0, slot 1 =
  // qubit1 (two-qubit kinds only).
  std::array<std::vector<std::size_t>, 2> prev_;
  std::array<std::vector<std::size_t>, 2> next_;
  std::vector<bool> entangled_;
  std::vector<std::size_t> param_op_;         ///< first consumer per param
  std::vector<std::size_t> param_use_count_;  ///< consumers per param
};

}  // namespace qbarren
