// Pre-run lint gates for the bp experiment runners.
//
// Each experiment's options fully determine the circuits it will build and
// the observable it will measure, so the linter can analyze a run *before*
// any cell executes: build one representative circuit per configuration,
// derive the observable support from the cost kind, and hand both to
// lint_circuit. The runners (and the CLI's --lint flag) call these to
// refuse provably broken configurations — e.g. a variance run whose
// sampled parameter is outside the cost observable's light cone would
// spend hours measuring exactly zero.
#pragma once

#include <string>

#include "qbarren/analysis/lint.hpp"
#include "qbarren/bp/training.hpp"
#include "qbarren/bp/variance.hpp"
#include "qbarren/common/error.hpp"

namespace qbarren {

/// How preflight findings gate a run.
enum class LintMode {
  kOff,    ///< skip preflight entirely
  kWarn,   ///< print findings, always launch (the default)
  kError,  ///< print findings; refuse to launch on any error finding
};

/// Parses "off" / "warn" / "error"; throws NotFound otherwise.
[[nodiscard]] LintMode lint_mode_from_name(const std::string& name);

[[nodiscard]] std::string lint_mode_name(LintMode mode);

/// Thrown by enforce_preflight when LintMode::kError meets error-severity
/// findings. Carries the findings so callers can render them once more.
class LintError : public Error {
 public:
  LintError(std::string context, Diagnostics diagnostics);

  [[nodiscard]] const Diagnostics& diagnostics() const noexcept {
    return diagnostics_;
  }

 private:
  Diagnostics diagnostics_;
};

/// Lints a variance experiment: one Eq-2 circuit at the largest requested
/// qubit count (axes drawn from the run's own seed, entangler/topology as
/// configured), observable support from the cost kind, and the sampled
/// parameter (which_parameter) as the differentiated parameter — the
/// configuration under which a dead sampled parameter is an error.
[[nodiscard]] Diagnostics lint_variance_options(
    const VarianceExperimentOptions& options,
    const LintOptions& lint_options = {});

/// Lints a training experiment: the Eq-3 circuit at the configured width
/// and depth, observable support and global-cost flag from the cost kind
/// (the paper's global cost at n = 10, L = 5 triggers QB002).
[[nodiscard]] Diagnostics lint_training_options(
    const TrainingExperimentOptions& options,
    const LintOptions& lint_options = {});

/// Lints a training sweep: the base experiment's findings plus QB007 over
/// the per-repetition derived seeds (and a direct check that no derived
/// seed collides with another repetition's).
[[nodiscard]] Diagnostics lint_sweep_options(
    const TrainingSweepOptions& options,
    const LintOptions& lint_options = {});

/// Applies a lint mode to findings: under kOff does nothing; under kWarn
/// and kError prints non-empty findings as a table to stderr (prefixed
/// with `context`); under kError additionally throws LintError when any
/// finding is error-severity. Returns true when the run may proceed
/// (always, unless it throws).
bool enforce_preflight(const Diagnostics& diagnostics, LintMode mode,
                       const std::string& context);

}  // namespace qbarren
