// Rule-based static analysis of circuits and experiment configurations.
//
// The paper's central lesson is that barren plateaus are largely
// *predictable from circuit structure before any simulation runs*: a
// global cost on a deep hardware-efficient ansatz implies exponential
// gradient-variance decay (McClean et al. 2018; paper Eq 2/Eq 4), and
// light-cone analysis proves some parameter gradients are identically
// zero for local observables (bp/lightcone.hpp). The linter encodes those
// closed-form predictions — plus common configuration mistakes — as static
// rules that run in microseconds, so a misconfigured 200-circuit sweep is
// rejected at parse/build time instead of after hours of simulation.
//
// Rules (stable codes; severities are the defaults emitted):
//   QB001  error    structurally dead parameter(s): the observable's
//                   backward light cone misses the rotation, so its
//                   gradient is identically zero (the sampled-parameter
//                   variant is an error; a general dead-parameter census
//                   is a warning)
//   QB002  warning  global cost on a deep, wide HEA: predicted
//                   exponential variance decay (barren plateau)
//   QB003  warning  redundant adjacent same-axis rotations on one qubit
//                   (R_a(x)R_a(y) = R_a(x+y); same adjacency notion as
//                   circuit/optimize.hpp)
//   QB004  warning  qubit untouched by any entangling gate (product
//                   subsystem; the "HEA" is not entangling it)
//   QB005  warning  layer-shape metadata does not tile the parameter
//                   vector, so fan-based initializers (init/fan.hpp)
//                   compute fans from a wrong tensor shape
//                   (info: metadata absent, single-layer fallback)
//   QB006  error    custom gate matrix is dimension-inconsistent or
//                   non-unitary (linalg/checks.hpp)
//   QB007  warning  RNG seed reused across experiment cells: their
//                   samples are identical draws, not independent
//   QB008  warning  adjacent (up to commutation) constant gate pair
//                   composes to the identity: the pair cancels and only
//                   adds depth (adjacency from the dataflow wire graph,
//                   cancellation by a 2x2/4x4 matrix product check)
//   QB009  info     per-parameter backward light-cone width report: the
//                   effective register width each gradient sees, which
//                   predicts its variance scaling (dataflow fixpoint pass)
//   QB010  info     statically estimated flops/bytes per application of
//                   the circuit's compiled plan (plan_verify.hpp cost
//                   model; also recorded in the bench JSON)
//   QB011  info     closed-form per-parameter predicted gradient variance
//                   (predict.hpp, random baseline law) with regime
//                   classification; escalates to an **error** when the
//                   differentiated parameter is provably barren
//                   (predicted variance < bp_variance_floor). When the
//                   model refuses (custom gates), the refusal itself is
//                   the info finding — never a wrong number
//   QN120  error    predicted gradient variance below the compiled plan's
//                   accumulated FP rounding-error bound: a Monte-Carlo
//                   sample would be numerically indistinguishable from
//                   noise (predict.hpp noise-floor model)
//
// QB001/QB004/QB008/QB009 run on the shared dataflow framework
// (dataflow.hpp) rather than rule-private scans; QB002/QB011/QN120 share
// one VariancePredictor (predict.hpp) per lint pass.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "qbarren/analysis/diagnostic.hpp"
#include "qbarren/circuit/circuit.hpp"

namespace qbarren {

/// Tuning knobs shared by every lint entry point. Defaults match the
/// paper's regimes (QB002 fires from 6 qubits / depth 16 up, which covers
/// the paper's n = 6..10 deep-circuit configurations but not toy widths).
struct LintOptions {
  /// Rule codes to suppress entirely (e.g. {"QB003"}).
  std::vector<std::string> disabled_codes;

  /// QB002 fires when a global cost meets a circuit at least this wide...
  std::size_t bp_min_qubits = 6;

  /// ...and at least this deep (Circuit::depth(), entanglers included).
  std::size_t bp_min_depth = 16;

  /// Per-rule cap on repeated per-site findings; the overflow is folded
  /// into one summary finding so reports stay readable on 10k-op circuits.
  std::size_t max_findings_per_rule = 8;

  /// Unitarity tolerance for QB006 (max elementwise |u^H u - I|).
  double unitarity_tolerance = 1e-9;

  /// QB011 escalates to an error when the differentiated parameter's
  /// predicted gradient variance (closed-form model, random baseline law)
  /// falls below this floor: the run is provably barren before any
  /// simulation. The default sits between the model's q = 8 (~4.6e-6) and
  /// q = 10 (~2.9e-7) predictions for the paper's 50-layer global-cost
  /// grid, so the widths the paper trains cleanly are admitted and the
  /// provably-flat tail is refused. Raise, lower, or disable ("QB011")
  /// deliberately per run.
  double bp_variance_floor = 1e-6;

  [[nodiscard]] bool rule_enabled(const std::string& code) const;
};

/// What the linter knows about how a circuit will be *used*. All fields
/// optional: with none set only the usage-independent rules (QB003-QB006)
/// run.
struct CircuitLintContext {
  /// Support of the measured observable (e.g. {0, 1} for Z0 Z1, every
  /// qubit for the Eq 4 global cost). Empty = unknown; QB001/QB002 skip.
  std::vector<std::size_t> observable_qubits;

  /// True when the cost measures a joint property of all qubits at once
  /// (global projector, Eq 4) — the BP-prone case QB002 encodes. A local
  /// cost whose support happens to cover every qubit should leave this
  /// false (Cerezo et al. 2021: local costs decay polynomially).
  bool global_cost = false;

  /// The single parameter index an experiment differentiates (the
  /// variance experiment samples exactly one). When set and structurally
  /// dead, QB001 escalates to an error: every sample measures exactly 0.
  std::optional<std::size_t> differentiated_parameter;
};

/// Runs every applicable rule over one circuit. Findings are ordered by
/// rule code, then program position.
[[nodiscard]] Diagnostics lint_circuit(const Circuit& circuit,
                                       const CircuitLintContext& context = {},
                                       const LintOptions& options = {});

/// QB007 over labelled experiment cells: flags seeds assigned to more
/// than one cell (their "independent" samples would be identical draws).
[[nodiscard]] Diagnostics lint_seed_assignments(
    const std::vector<std::pair<std::string, std::uint64_t>>& cells,
    const LintOptions& options = {});

/// One row of the static rule registry (drives docs and `lint --rules`).
struct LintRuleInfo {
  const char* code;
  Severity severity;       ///< default severity of the rule's findings
  const char* summary;     ///< what the rule predicts
  const char* reference;   ///< paper section / related work it encodes
};

/// The registry of all rules, ordered by code.
[[nodiscard]] const std::vector<LintRuleInfo>& lint_rules();

/// Registry as a table: code, severity, what it predicts, source.
[[nodiscard]] Table lint_rule_table();

}  // namespace qbarren
