#include "qbarren/analysis/stream_graph.hpp"

#include <map>
#include <set>
#include <utility>

#include "qbarren/common/rng.hpp"
#include "qbarren/init/registry.hpp"

namespace qbarren {

namespace {

/// Per-rule finding collector with the linter's overflow-folding behavior
/// (same shape as lint.cpp's RuleSink, local to this pass).
class RuleSink {
 public:
  RuleSink(Diagnostics& out, const LintOptions& options, Severity severity,
           std::string code)
      : out_(out),
        enabled_(options.rule_enabled(code)),
        cap_(options.max_findings_per_rule),
        severity_(severity),
        code_(std::move(code)) {}

  void add(std::string message, std::string location) {
    if (!enabled_) return;
    ++total_;
    if (total_ <= cap_) {
      out_.push_back(
          {severity_, code_, std::move(message), std::move(location)});
    }
  }

  void add(Severity severity, std::string message, std::string location) {
    if (!enabled_) return;
    ++total_;
    if (total_ <= cap_) {
      out_.push_back(
          {severity, code_, std::move(message), std::move(location)});
    }
  }

  ~RuleSink() {
    if (total_ > cap_) {
      std::string message = "... and ";
      message += std::to_string(total_ - cap_);
      message += " more ";
      message += code_;
      message += " finding(s) suppressed (max_findings_per_rule = ";
      message += std::to_string(cap_);
      message += ")";
      out_.push_back({severity_, code_, std::move(message), ""});
    }
  }

  RuleSink(const RuleSink&) = delete;
  RuleSink& operator=(const RuleSink&) = delete;

 private:
  Diagnostics& out_;
  bool enabled_;
  std::size_t cap_;
  std::size_t total_ = 0;
  Severity severity_;
  std::string code_;
};

std::uint64_t seed_along(std::uint64_t root,
                         const std::vector<std::uint64_t>& path) {
  std::uint64_t seed = root;
  for (const std::uint64_t index : path) {
    seed = derive_child_seed(seed, index);
  }
  return seed;
}

StreamLeaf make_leaf(StreamRole role, std::string cell, std::uint64_t root,
                     std::vector<std::uint64_t> path, bool shared) {
  StreamLeaf leaf;
  leaf.role = role;
  leaf.cell = std::move(cell);
  leaf.seed = seed_along(root, path);
  leaf.path = std::move(path);
  leaf.shared_by_design = shared;
  return leaf;
}

std::vector<std::string> paper_init_names() {
  std::vector<std::string> names;
  for (const auto& init : paper_initializers(FanMode::kLayerTensor)) {
    names.push_back(init->name());
  }
  return names;
}

std::string path_string(const std::vector<std::uint64_t>& path) {
  std::string out = "root";
  for (const std::uint64_t index : path) {
    out += "/" + std::to_string(index);
  }
  return out;
}

/// Training derivation under an arbitrary cell-key prefix; backs both the
/// plain training graph ("init=<name>") and the sweep's per-repetition
/// graphs ("rep=<r>/init=<name>").
StreamGraph training_graph_with_prefix(
    const TrainingExperimentOptions& options, const std::string& label,
    const std::string& cell_prefix) {
  StreamGraph graph;
  graph.label = label;
  graph.fingerprint = options_fingerprint(options);
  graph.root_seed = options.seed;
  graph.engine_ladder = {options.gradient_engine, "parameter-shift"};
  const std::vector<std::string> names = paper_init_names();
  for (std::size_t t = 0; t < names.size(); ++t) {
    const std::string cell = cell_prefix + "init=" + names[t];
    graph.cells.push_back(cell);
    // run_training_cell: param_rng = Rng(options.seed).child(t).
    graph.leaves.push_back(
        make_leaf(StreamRole::kParam, cell, options.seed, {t}, false));
  }
  return graph;
}

}  // namespace

const char* stream_role_name(StreamRole role) noexcept {
  switch (role) {
    case StreamRole::kStructure: return "structure";
    case StreamRole::kParam: return "param";
  }
  return "param";
}

StreamGraph variance_stream_graph(const VarianceExperimentOptions& options,
                                  const std::string& label) {
  StreamGraph graph;
  graph.label = label;
  graph.fingerprint = options_fingerprint(options);
  graph.root_seed = options.seed;
  graph.engine_ladder = {options.gradient_engine, "parameter-shift"};
  const std::vector<std::string> names = paper_init_names();
  for (std::size_t qi = 0; qi < options.qubit_counts.size(); ++qi) {
    const std::string q = std::to_string(options.qubit_counts[qi]);
    for (std::size_t t = 0; t < names.size(); ++t) {
      graph.cells.push_back("q=" + q + "/init=" + names[t]);
    }
    // compute_variance_cell: q_stream = root.child(qi); per sampled
    // circuit i, circuit_stream = q_stream.child(2i); the structure
    // stream circuit_stream.child(0) is shared across initializers by
    // design (every strategy sees the same circuits); the parameter
    // stream is circuit_stream.child(1 + t).
    for (std::size_t i = 0; i < options.circuits_per_point; ++i) {
      graph.leaves.push_back(make_leaf(StreamRole::kStructure,
                                       "q=" + q + "/init=*", options.seed,
                                       {qi, 2 * i, 0}, true));
      for (std::size_t t = 0; t < names.size(); ++t) {
        graph.leaves.push_back(make_leaf(StreamRole::kParam,
                                         "q=" + q + "/init=" + names[t],
                                         options.seed, {qi, 2 * i, 1 + t},
                                         false));
      }
    }
  }
  return graph;
}

StreamGraph training_stream_graph(const TrainingExperimentOptions& options,
                                  const std::string& label) {
  return training_graph_with_prefix(options, label, "");
}

std::vector<StreamGraph> sweep_stream_graphs(
    const TrainingSweepOptions& options) {
  std::vector<StreamGraph> graphs;
  graphs.reserve(options.repetitions);
  for (std::size_t rep = 0; rep < options.repetitions; ++rep) {
    // run_training_sweep: rep_options.seed = splitmix64(base.seed ^ (rep+1)).
    TrainingExperimentOptions rep_options = options.base;
    rep_options.seed = splitmix64(options.base.seed ^ (rep + 1));
    const std::string rep_label = "rep=" + std::to_string(rep);
    graphs.push_back(training_graph_with_prefix(rep_options, rep_label,
                                                rep_label + "/"));
  }
  return graphs;
}

Diagnostics audit_stream_graph(const StreamGraph& graph,
                               const LintOptions& options) {
  Diagnostics out;
  {
    // QD100: every leaf seed must be unique — each leaf is one distinct
    // derivation path, and the structure streams' intentional sharing is
    // already folded into a single wildcard leaf per sampled circuit.
    RuleSink qd100(out, options, Severity::kError, "QD100");
    std::map<std::uint64_t, const StreamLeaf*> first;
    for (const StreamLeaf& leaf : graph.leaves) {
      const auto [it, inserted] = first.emplace(leaf.seed, &leaf);
      if (inserted) continue;
      const StreamLeaf& other = *it->second;
      qd100.add("stream collision: " +
                    std::string(stream_role_name(other.role)) + " stream of " +
                    other.cell + " (" + path_string(other.path) + ") and " +
                    stream_role_name(leaf.role) + " stream of " + leaf.cell +
                    " (" + path_string(leaf.path) +
                    ") derive the same seed — their \"independent\" samples "
                    "would be identical draws",
                "run " + graph.label);
    }
  }
  {
    // QD103 (key coverage): a cell key appearing twice in one enumeration
    // means the key omits a result-affecting input (e.g. duplicated
    // qubit_counts entries: distinct RNG streams, one checkpoint/cache
    // key) — resume or cache restore would serve one cell's results as
    // the other's.
    RuleSink qd103(out, options, Severity::kError, "QD103");
    std::map<std::string, std::size_t> seen;
    for (std::size_t c = 0; c < graph.cells.size(); ++c) {
      const auto [it, inserted] = seen.emplace(graph.cells[c], c);
      if (inserted) continue;
      qd103.add("cell key '" + graph.cells[c] +
                    "' enumerated twice (cells " + std::to_string(it->second) +
                    " and " + std::to_string(c) +
                    "): the key does not cover every result-affecting input, "
                    "so checkpoint resume / cache restore would alias two "
                    "distinct cells",
                "run " + graph.label);
    }
  }
  return out;
}

Diagnostics audit_stream_graphs(const std::vector<StreamGraph>& graphs,
                                const LintOptions& options) {
  Diagnostics out;
  for (const StreamGraph& graph : graphs) {
    Diagnostics per = audit_stream_graph(graph, options);
    out.insert(out.end(), std::make_move_iterator(per.begin()),
               std::make_move_iterator(per.end()));
  }
  // QD101: runs presented as independent must not share root seeds.
  // Identical fingerprints are the degenerate case — byte-identical
  // computations counted as separate evidence; distinct fingerprints
  // sharing a root stream still correlate every draw the runs have in
  // common.
  RuleSink qd101(out, options, Severity::kError, "QD101");
  std::map<std::uint64_t, std::vector<const StreamGraph*>> by_root;
  for (const StreamGraph& graph : graphs) {
    by_root[graph.root_seed].push_back(&graph);
  }
  for (const auto& [root, group] : by_root) {
    for (std::size_t a = 0; a < group.size(); ++a) {
      for (std::size_t b = a + 1; b < group.size(); ++b) {
        const bool identical = group[a]->fingerprint == group[b]->fingerprint;
        qd101.add(
            identical ? Severity::kError : Severity::kWarning,
            "seed aliasing across runs: '" + group[a]->label + "' and '" +
                group[b]->label + "' share root seed " + std::to_string(root) +
                (identical
                     ? " with identical fingerprints — they are the same "
                       "computation presented as independent repetitions"
                     : " under different fingerprints — their overlapping "
                       "derivations are correlated draws, not independent "
                       "estimates"),
            "runs " + group[a]->label + ", " + group[b]->label);
      }
    }
  }
  return out;
}

// --- fingerprint soundness probes ----------------------------------------

std::vector<VariancePerturbation> variance_perturbations(
    const VarianceExperimentOptions& base) {
  std::vector<VariancePerturbation> out;
  const auto add = [&](const char* field, bool affecting,
                       auto&& mutate) {
    VariancePerturbation p;
    p.field = field;
    p.result_affecting = affecting;
    p.options = base;
    mutate(p.options);
    out.push_back(std::move(p));
  };
  add("qubit_counts", true, [](VarianceExperimentOptions& o) {
    o.qubit_counts.push_back(o.qubit_counts.empty()
                                 ? 2
                                 : o.qubit_counts.back() + 1);
  });
  add("circuits_per_point", true,
      [](VarianceExperimentOptions& o) { ++o.circuits_per_point; });
  add("layers", true, [](VarianceExperimentOptions& o) { ++o.layers; });
  add("cost", true, [](VarianceExperimentOptions& o) {
    o.cost = o.cost == CostKind::kGlobalZero ? CostKind::kLocalZero
                                             : CostKind::kGlobalZero;
  });
  add("seed", true, [](VarianceExperimentOptions& o) { ++o.seed; });
  add("entangle", true,
      [](VarianceExperimentOptions& o) { o.entangle = !o.entangle; });
  add("gradient_engine", true, [](VarianceExperimentOptions& o) {
    o.gradient_engine =
        o.gradient_engine == "adjoint" ? "parameter-shift" : "adjoint";
  });
  add("which_parameter", true, [](VarianceExperimentOptions& o) {
    o.which_parameter = o.which_parameter == GradientParameter::kFirst
                            ? GradientParameter::kLast
                            : GradientParameter::kFirst;
  });
  add("entangler", true, [](VarianceExperimentOptions& o) {
    o.entangler = o.entangler == EntanglerGate::kCz ? EntanglerGate::kCnot
                                                    : EntanglerGate::kCz;
  });
  add("topology", true, [](VarianceExperimentOptions& o) {
    o.topology = o.topology == EntanglerTopology::kLinear
                     ? EntanglerTopology::kRing
                     : EntanglerTopology::kLinear;
  });
  // keep_samples selects what the result retains, not what is sampled;
  // the fingerprint deliberately excludes it so checkpoints stay valid
  // across the flag.
  add("keep_samples", false,
      [](VarianceExperimentOptions& o) { o.keep_samples = !o.keep_samples; });
  return out;
}

std::vector<TrainingPerturbation> training_perturbations(
    const TrainingExperimentOptions& base) {
  std::vector<TrainingPerturbation> out;
  const auto add = [&](const char* field, bool affecting, auto&& mutate) {
    TrainingPerturbation p;
    p.field = field;
    p.result_affecting = affecting;
    p.options = base;
    mutate(p.options);
    out.push_back(std::move(p));
  };
  add("qubits", true, [](TrainingExperimentOptions& o) { ++o.qubits; });
  add("layers", true, [](TrainingExperimentOptions& o) { ++o.layers; });
  add("iterations", true,
      [](TrainingExperimentOptions& o) { ++o.iterations; });
  add("learning_rate", true,
      [](TrainingExperimentOptions& o) { o.learning_rate += 0.125; });
  add("optimizer", true, [](TrainingExperimentOptions& o) {
    o.optimizer = o.optimizer == "adam" ? "gradient-descent" : "adam";
  });
  add("gradient_engine", true, [](TrainingExperimentOptions& o) {
    o.gradient_engine =
        o.gradient_engine == "adjoint" ? "parameter-shift" : "adjoint";
  });
  add("cost", true, [](TrainingExperimentOptions& o) {
    o.cost = o.cost == CostKind::kGlobalZero ? CostKind::kLocalZero
                                             : CostKind::kGlobalZero;
  });
  add("seed", true, [](TrainingExperimentOptions& o) { ++o.seed; });
  add("non_finite_policy", true, [](TrainingExperimentOptions& o) {
    o.non_finite_policy = o.non_finite_policy == NonFinitePolicy::kThrow
                              ? NonFinitePolicy::kAbortSeries
                              : NonFinitePolicy::kThrow;
  });
  // The deadline bounds wall-clock, not results: an undisturbed run under
  // any deadline computes the same series, so the fingerprint excludes it.
  add("deadline_seconds", false, [](TrainingExperimentOptions& o) {
    o.deadline_seconds = 123.0;
  });
  return out;
}

Diagnostics audit_fingerprint_probes(
    const std::vector<FingerprintProbe>& probes, const std::string& label,
    const LintOptions& options) {
  Diagnostics out;
  RuleSink qd102(out, options, Severity::kError, "QD102");
  RuleSink qd103(out, options, Severity::kError, "QD103");
  for (const FingerprintProbe& probe : probes) {
    const bool moved = probe.perturbed != probe.base;
    if (probe.expect_move && !moved) {
      qd102.add("fingerprint is blind to result-affecting option '" +
                    probe.field +
                    "': two runs differing only in it share checkpoint/"
                    "cache namespaces, so one run's cells restore as the "
                    "other's",
                label + " option " + probe.field);
    }
    if (!probe.expect_move && moved) {
      qd102.add(Severity::kWarning,
                "non-result-affecting option '" + probe.field +
                    "' moves the fingerprint: checkpoints and cache entries "
                    "are needlessly invalidated across a cosmetic flag",
                label + " option " + probe.field);
    }
    // Wire coverage (serve only): what the worker sees must carry every
    // field the cache key distinguishes, and vice versa.
    if (!probe.expect_move || probe.wire_base.empty()) continue;
    if (moved && probe.wire_perturbed == probe.wire_base) {
      qd103.add("worker-visible options do not carry '" + probe.field +
                    "': workers would compute with the default value while "
                    "the cache files the results under the perturbed "
                    "fingerprint — a poisoned namespace",
                label + " option " + probe.field);
    } else if (!probe.wire_roundtrip.empty() &&
               probe.wire_roundtrip != probe.perturbed) {
      qd103.add("worker-visible options encoding drops or garbles '" +
                    probe.field +
                    "': re-decoding the wire form yields fingerprint " +
                    probe.wire_roundtrip + " instead of " + probe.perturbed,
                label + " option " + probe.field);
    }
    if (!moved && probe.wire_perturbed != probe.wire_base) {
      qd103.add("cache key does not cover '" + probe.field +
                    "': two requests computing different cells share the "
                    "fingerprint|cell namespace — cache poisoning",
                label + " option " + probe.field);
    }
  }
  return out;
}

std::vector<FingerprintProbe> variance_fingerprint_probes(
    const VarianceExperimentOptions& options) {
  const std::string base = options_fingerprint(options);
  std::vector<FingerprintProbe> probes;
  for (const VariancePerturbation& p : variance_perturbations(options)) {
    FingerprintProbe probe;
    probe.field = p.field;
    probe.expect_move = p.result_affecting;
    probe.base = base;
    probe.perturbed = options_fingerprint(p.options);
    probes.push_back(std::move(probe));
  }
  return probes;
}

std::vector<FingerprintProbe> training_fingerprint_probes(
    const TrainingExperimentOptions& options) {
  const std::string base = options_fingerprint(options);
  std::vector<FingerprintProbe> probes;
  for (const TrainingPerturbation& p : training_perturbations(options)) {
    FingerprintProbe probe;
    probe.field = p.field;
    probe.expect_move = p.result_affecting;
    probe.base = base;
    probe.perturbed = options_fingerprint(p.options);
    probes.push_back(std::move(probe));
  }
  return probes;
}

std::vector<FingerprintProbe> sweep_fingerprint_probes(
    const TrainingSweepOptions& options) {
  const std::string base = options_fingerprint(options);
  std::vector<FingerprintProbe> probes;
  for (const TrainingPerturbation& p : training_perturbations(options.base)) {
    TrainingSweepOptions perturbed = options;
    perturbed.base = p.options;
    FingerprintProbe probe;
    probe.field = "base." + p.field;
    probe.expect_move = p.result_affecting;
    probe.base = base;
    probe.perturbed = options_fingerprint(perturbed);
    probes.push_back(std::move(probe));
  }
  {
    TrainingSweepOptions perturbed = options;
    ++perturbed.repetitions;
    FingerprintProbe probe;
    probe.field = "repetitions";
    probe.base = base;
    probe.perturbed = options_fingerprint(perturbed);
    probes.push_back(std::move(probe));
  }
  return probes;
}

// --- one-stop audits ------------------------------------------------------

namespace {

void append(Diagnostics& out, Diagnostics more) {
  out.insert(out.end(), std::make_move_iterator(more.begin()),
             std::make_move_iterator(more.end()));
}

}  // namespace

Diagnostics audit_variance_options(const VarianceExperimentOptions& options,
                                   const LintOptions& lint) {
  Diagnostics out = audit_stream_graph(variance_stream_graph(options), lint);
  append(out, audit_fingerprint_probes(variance_fingerprint_probes(options),
                                       "variance", lint));
  return out;
}

Diagnostics audit_training_options(const TrainingExperimentOptions& options,
                                   const LintOptions& lint) {
  Diagnostics out = audit_stream_graph(training_stream_graph(options), lint);
  append(out, audit_fingerprint_probes(training_fingerprint_probes(options),
                                       "training", lint));
  return out;
}

Diagnostics audit_sweep_options(const TrainingSweepOptions& options,
                                const LintOptions& lint) {
  Diagnostics out = audit_stream_graphs(sweep_stream_graphs(options), lint);
  append(out, audit_fingerprint_probes(sweep_fingerprint_probes(options),
                                       "sweep", lint));
  return out;
}

// --- rule registry --------------------------------------------------------

const std::vector<LintRuleInfo>& determinism_rules() {
  static const std::vector<LintRuleInfo> rules = {
      {"QD100", Severity::kError,
       "stream collision: two cells derive the same (seed, child-index "
       "path), so their \"independent\" samples are identical draws",
       "Kashif & Shafique 2024; PR 2 per-cell child streams"},
      {"QD101", Severity::kError,
       "cross-run seed aliasing: runs presented as independent repetitions "
       "share a root seed (identical fingerprints = error, correlated "
       "overlap = warning)",
       "generalizes QB007 across runs/requests"},
      {"QD102", Severity::kError,
       "fingerprint insensitivity: a result-affecting option field does "
       "not move the canonical fingerprint (stale checkpoints restore as "
       "fresh); cosmetic fields moving it is the warning dual",
       "checkpoint.hpp staleness key; PR 1"},
      {"QD103", Severity::kError,
       "cache-key coverage: the fingerprint|cell key fails to cover a "
       "result-affecting input (duplicate cell keys, or worker-visible "
       "options dropping a fingerprinted field)",
       "serve result cache; PR 7"},
      {"QD110", Severity::kError,
       "store is not a readable qbarren checkpoint (missing file, foreign "
       "magic, unreadable header)",
       "checkpoint format v1"},
      {"QD111", Severity::kError,
       "store format version skew: written by an incompatible build",
       "Checkpoint::kFormatVersion"},
      {"QD112", Severity::kError,
       "torn or malformed record: truncated cell framing, bad payload "
       "line, wrong or missing end marker, trailing bytes",
       "open_salvaging quarantine conditions"},
      {"QD113", Severity::kError,
       "duplicate cell record: a later record silently shadows an earlier "
       "one under strict loading",
       "Checkpoint::load last-wins semantics"},
      {"QD114", Severity::kError,
       "foreign fingerprint: the store was written under different options "
       "than the audited spec",
       "checkpoint staleness rejection; PR 1"},
      {"QD115", Severity::kWarning,
       "orphan cell: a record outside the spec's cell enumeration — "
       "unreachable by the run that owns the store",
       "enumerate_cells / run_paper_set keys"},
  };
  return rules;
}

Table determinism_rule_table() {
  Table table({"code", "severity", "predicts", "source"});
  for (const LintRuleInfo& rule : determinism_rules()) {
    table.add_row({rule.code, severity_name(rule.severity), rule.summary,
                   rule.reference});
  }
  return table;
}

}  // namespace qbarren
