#include "qbarren/analysis/diagnostic.hpp"

#include "qbarren/common/error.hpp"

namespace qbarren {

std::string severity_name(Severity severity) {
  switch (severity) {
    case Severity::kInfo:
      return "info";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

Severity severity_from_name(const std::string& name) {
  if (name == "info") return Severity::kInfo;
  if (name == "warning") return Severity::kWarning;
  if (name == "error") return Severity::kError;
  throw NotFound("severity_from_name: unknown severity '" + name + "'");
}

bool has_errors(const Diagnostics& diagnostics) {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) return true;
  }
  return false;
}

std::size_t count_severity(const Diagnostics& diagnostics,
                           Severity severity) {
  std::size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == severity) ++n;
  }
  return n;
}

Table diagnostics_table(const Diagnostics& diagnostics) {
  Table table({"severity", "code", "location", "message"});
  for (const Diagnostic& d : diagnostics) {
    table.begin_row();
    table.push(severity_name(d.severity));
    table.push(d.code);
    table.push(d.location.empty() ? "-" : d.location);
    table.push(d.message);
  }
  return table;
}

JsonValue to_json(const Diagnostic& diagnostic) {
  JsonValue obj = JsonValue::object();
  obj.set("severity", severity_name(diagnostic.severity));
  obj.set("code", diagnostic.code);
  obj.set("message", diagnostic.message);
  obj.set("location", diagnostic.location);
  return obj;
}

JsonValue to_json(const Diagnostics& diagnostics) {
  JsonValue report = JsonValue::object();
  report.set("schema", "qbarren.diagnostics.v1");
  JsonValue counts = JsonValue::object();
  counts.set("info", count_severity(diagnostics, Severity::kInfo));
  counts.set("warning", count_severity(diagnostics, Severity::kWarning));
  counts.set("error", count_severity(diagnostics, Severity::kError));
  report.set("counts", std::move(counts));
  JsonValue list = JsonValue::array();
  for (const Diagnostic& d : diagnostics) {
    list.push_back(to_json(d));
  }
  report.set("diagnostics", std::move(list));
  return report;
}

Diagnostic diagnostic_from_json(const JsonValue& value) {
  QBARREN_REQUIRE(value.is_object(),
                  "diagnostic_from_json: expected an object");
  Diagnostic d;
  d.severity = severity_from_name(value.at("severity").as_string());
  d.code = value.at("code").as_string();
  d.message = value.at("message").as_string();
  d.location = value.at("location").as_string();
  return d;
}

Diagnostics diagnostics_from_json(const JsonValue& value) {
  QBARREN_REQUIRE(value.is_object() && value.contains("diagnostics"),
                  "diagnostics_from_json: expected a report object with a "
                  "'diagnostics' array");
  const JsonValue& list = value.at("diagnostics");
  QBARREN_REQUIRE(list.is_array(),
                  "diagnostics_from_json: 'diagnostics' must be an array");
  Diagnostics out;
  out.reserve(list.size());
  for (std::size_t i = 0; i < list.size(); ++i) {
    out.push_back(diagnostic_from_json(list.at(i)));
  }
  return out;
}

}  // namespace qbarren
