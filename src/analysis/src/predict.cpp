#include "qbarren/analysis/predict.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "qbarren/analysis/plan_verify.hpp"
#include "qbarren/bp/variance.hpp"
#include "qbarren/circuit/ansatz.hpp"
#include "qbarren/common/error.hpp"
#include "qbarren/common/rng.hpp"
#include "qbarren/exec/compiled_circuit.hpp"
#include "qbarren/init/registry.hpp"

namespace qbarren {

namespace {

constexpr double kPi = 3.14159265358979323846;
/// Regime thresholds on the mixing fraction M.
constexpr double kNearIdentityCeiling = 0.15;
constexpr double kTwoDesignFloor = 0.85;

std::string sigma2_string(double variance) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3g", variance);
  return buf;
}

}  // namespace

// --- angle models -----------------------------------------------------------

std::optional<AngleModel> angle_model_for(const std::string& initializer,
                                          const Circuit& circuit,
                                          FanMode mode) {
  const FanPair fans = compute_fans(circuit, mode);
  const double fi = static_cast<double>(fans.fan_in);
  const double fo = static_cast<double>(fans.fan_out);
  AngleModel model;
  model.initializer = initializer;
  if (initializer == "random") {
    model.variance = kPi * kPi / 3.0;  // U[0, 2*pi): (2*pi)^2 / 12
    model.law = "U[0, 2*pi)";
  } else if (initializer == "xavier-normal") {
    model.variance = 2.0 / (fi + fo);
    model.law = "N(0, 2/(fan_in+fan_out))";
  } else if (initializer == "xavier-uniform") {
    // U(-l, l), l = sqrt(6/(fi+fo)): variance l^2/3 = 2/(fi+fo).
    model.variance = 2.0 / (fi + fo);
    model.law = "U(-sqrt(6/(fan_in+fan_out)), +)";
  } else if (initializer == "he") {
    model.variance = 2.0 / fi;
    model.law = "N(0, 2/fan_in)";
  } else if (initializer == "he-uniform") {
    model.variance = 2.0 / fi;
    model.law = "U(-sqrt(6/fan_in), +)";
  } else if (initializer == "lecun") {
    model.variance = 1.0 / fi;
    model.law = "N(0, 1/fan_in)";
  } else if (initializer == "lecun-uniform") {
    model.variance = 1.0 / (3.0 * fi);
    model.law = "U(-1/sqrt(fan_in), +)";
  } else if (initializer == "orthogonal") {
    // Rows of fan_in x fan_in Haar orthogonal blocks: entry variance
    // exactly 1/fan_in.
    model.variance = 1.0 / fi;
    model.law = "Haar orthogonal rows (per-layer blocks)";
  } else if (initializer == "orthogonal-full") {
    model.variance = 1.0 / std::max(fi, fo);
    model.law = "Haar semi-orthogonal (full tensor)";
  } else if (initializer == "zeros") {
    model.variance = 0.0;
    model.law = "theta = 0 (exact identity)";
  } else if (initializer == "small-normal") {
    model.variance = 0.01;  // registry default sigma = 0.1
    model.law = "N(0, 0.1^2)";
  } else {
    // "beta" (mean pi/2 breaks the zero-mean near-identity expansion)
    // and anything unknown.
    return std::nullopt;
  }
  return model;
}

bool angle_model_supported(const std::string& initializer) {
  Circuit probe(1);
  (void)probe.add_rotation(gates::Axis::kX, 0);
  return angle_model_for(initializer, probe).has_value();
}

// --- cost geometry ----------------------------------------------------------

std::string predicted_cost_name(PredictedCost cost) {
  switch (cost) {
    case PredictedCost::kGlobalProjector:
      return "global-projector";
    case PredictedCost::kLocalProjector:
      return "local-projector";
    case PredictedCost::kPauli:
      return "pauli";
  }
  throw InvalidArgument("predicted_cost_name: unknown cost");
}

PredictedCost predicted_cost_for(CostKind kind) {
  switch (kind) {
    case CostKind::kGlobalZero:
      return PredictedCost::kGlobalProjector;
    case CostKind::kLocalZero:
      return PredictedCost::kLocalProjector;
    case CostKind::kPauliZZ:
      return PredictedCost::kPauli;
  }
  throw InvalidArgument("predicted_cost_for: unknown cost kind");
}

std::string variance_regime_name(VarianceRegime regime) {
  switch (regime) {
    case VarianceRegime::kDead:
      return "dead";
    case VarianceRegime::kNearIdentity:
      return "near-identity";
    case VarianceRegime::kTransition:
      return "transition";
    case VarianceRegime::kTwoDesign:
      return "2-design";
  }
  throw InvalidArgument("variance_regime_name: unknown regime");
}

// --- VariancePrediction -----------------------------------------------------

double VariancePrediction::min_alive_variance() const {
  double min_v = std::numeric_limits<double>::infinity();
  bool any = false;
  for (const ParameterPrediction& p : parameters) {
    if (!p.alive) continue;
    any = true;
    min_v = std::min(min_v, p.variance);
  }
  return any ? min_v : 0.0;
}

Table VariancePrediction::table(std::size_t max_rows) const {
  Table table({"param", "width", "regime", "mixing", "Var[dC/dtheta]"});
  std::size_t shown = 0;
  for (const ParameterPrediction& p : parameters) {
    if (shown == max_rows) break;
    table.begin_row();
    table.push(p.parameter);
    table.push(p.cone_width);
    table.push(variance_regime_name(p.regime));
    table.push(p.mixing, 3);
    table.push_sci(p.variance);
    ++shown;
  }
  if (parameters.size() > shown) {
    table.begin_row();
    table.push("...");
    table.push(std::string());
    table.push(std::string());
    table.push(std::string());
    table.push("(+" + std::to_string(parameters.size() - shown) +
               " more parameters)");
  }
  return table;
}

// --- VariancePredictor ------------------------------------------------------

VariancePredictor::VariancePredictor(const Circuit& circuit,
                                     PredictorModel model)
    : circuit_(&circuit), model_(model), flow_(circuit) {
  if (!circuit.custom_gates().empty()) {
    applicability_.push_back(Diagnostic{
        Severity::kInfo, "QB011",
        "variance model refuses: circuit uses " +
            std::to_string(circuit.custom_gates().size()) +
            " custom gate block(s), which are not drawn from the "
            "rotation/Clifford family the 2-design average is taken over; "
            "no closed-form estimate is produced (run the Monte-Carlo "
            "pipeline instead)",
        "custom gates"});
  }
  if (circuit.num_parameters() == 0) {
    applicability_.push_back(
        Diagnostic{Severity::kInfo, "QB011",
                   "variance model refuses: circuit has no trainable "
                   "parameters, so there is no gradient to predict",
                   "parameters"});
  }
  // FP-noise-floor model: each amplitude accumulates ~flops_per_op * eps
  // relative error per plan op, so an expectation value carries an error
  // bound delta ~ k * ops * eps and a parameter-shift gradient (the
  // difference of two such values) has a variance floor ~ delta^2.
  plan_ops_ = circuit.num_operations();
  if (applicability_.empty()) {
    try {
      const auto plan = exec::CompiledCircuit::compile(circuit);
      plan_ops_ = estimate_plan_resources(*plan).plan_ops;
    } catch (const Error&) {
      // Fall back to the raw op count; the floor is a bound either way.
    }
  }
  const double delta = model_.noise_flops_per_op *
                       static_cast<double>(plan_ops_) *
                       std::numeric_limits<double>::epsilon();
  noise_floor_ = delta * delta;
}

VariancePrediction VariancePredictor::predict(
    const AngleModel& angles,
    const std::vector<std::size_t>& observable_qubits,
    PredictedCost cost) const {
  QBARREN_REQUIRE(applicable(),
                  "VariancePredictor::predict: model not applicable to this "
                  "circuit (see applicability())");
  const Circuit& circuit = *circuit_;
  const std::size_t n = circuit.num_qubits();
  const auto cone = flow_.backward_light_cone(observable_qubits);

  // Scrambling depth D: alive parameterized rotations per qubit — how many
  // random rotations separate a parameter from a product state. For the
  // Eq-2 variance ansatz D equals the layer count.
  std::size_t alive_rotations = 0;
  for (std::size_t p = 0; p < circuit.num_parameters(); ++p) {
    if (flow_.op_for_parameter(p) != CircuitDataflow::kNoOp && cone.alive[p]) {
      ++alive_rotations;
    }
  }
  const double depth = std::max(
      1.0, static_cast<double>(alive_rotations) / static_cast<double>(n));

  const double sigma2 = angles.variance;
  const double scramble = sigma2 * depth;  // total per-qubit angle budget
  const double mixing =
      sigma2 > 0.0 ? std::min(1.0, std::pow(scramble / model_.mixing_scale,
                                            model_.mixing_exponent))
                   : 0.0;

  VariancePrediction out;
  out.angles = angles;
  out.cost = cost;
  out.noise_floor = noise_floor_;
  out.plan_ops = plan_ops_;
  out.parameters.reserve(circuit.num_parameters());

  const double ln2 = std::log(2.0);
  const double ln_c0 = std::log(model_.two_design_constant);

  for (std::size_t p = 0; p < circuit.num_parameters(); ++p) {
    ParameterPrediction pp;
    pp.parameter = p;
    const std::size_t op_index = flow_.op_for_parameter(p);
    if (op_index == CircuitDataflow::kNoOp || !cone.alive[p]) {
      out.parameters.push_back(pp);  // dead: variance 0
      continue;
    }
    pp.alive = true;
    pp.cone_width = std::max<std::size_t>(1, cone.cone_width[p]);
    pp.mixing = mixing;
    const double w = static_cast<double>(pp.cone_width);

    // 2-design limit: ln V_2d = ln c0 + ln G(O, w), with the trace factor
    // G of the Haar variance formula per cost geometry.
    double ln_v2d = ln_c0;
    switch (cost) {
      case PredictedCost::kGlobalProjector:
        ln_v2d += -2.0 * w * ln2;  // Tr(O^2) = 1 on a 2^w space
        break;
      case PredictedCost::kPauli:
        // Tr(P^2) = 2^w decay until the Park-style deep-circuit
        // saturation takes over (validated against the Monte-Carlo up to
        // q = 10; the plateau dominates from w ~ 7).
        ln_v2d += std::log(std::exp2(-w) + model_.pauli_plateau);
        break;
      case PredictedCost::kLocalProjector:
        // Averaged one-qubit projectors: Pauli-like decay with the 1/(4n)
        // prefactor of the (1/n) sum of (I+Z_i)/2 terms.
        ln_v2d += -w * ln2 - std::log(4.0 * static_cast<double>(n));
        break;
    }

    if (sigma2 <= 0.0) {
      // Exact identity circuit: the cost sits at its stationary point, the
      // gradient is identically 0 (and the Monte-Carlo agrees exactly).
      pp.regime = VarianceRegime::kNearIdentity;
      pp.variance = 0.0;
      out.parameters.push_back(pp);
      continue;
    }

    // Near-identity limit (Grant et al.): first-order perturbation theory
    // around U = I. rho is the squared first-order cost response.
    const Operation& op = circuit.operations()[op_index];
    const bool controlled = op.kind == OpKind::kControlledRotation;
    bool on_support = true;
    if (cost == PredictedCost::kPauli) {
      on_support = false;
      for (std::size_t q : observable_qubits) {
        if (op.qubit0 == q || (controlled && op.qubit1 == q)) {
          on_support = true;
          break;
        }
      }
    }
    double rho = 1.0;
    switch (cost) {
      case PredictedCost::kGlobalProjector:
        rho = 0.25;  // d(1 - cos^2(t/2))/dt ~ t/2
        break;
      case PredictedCost::kLocalProjector:
        rho = 0.25 / (static_cast<double>(n) * static_cast<double>(n));
        break;
      case PredictedCost::kPauli:
        rho = 1.0;  // d<Z>/dt ~ -t for an on-support X/Y rotation
        break;
    }
    // Z-axis rotations (and controlled rotations, whose control is |0> at
    // the identity) commute with the |0..0> start state: their first-order
    // response vanishes and the signal is second order, ~sigma^4. The
    // (1 + S) factor carries the second-order growth of the response with
    // the accumulated angle budget S of the other rotations (fitted
    // against the Monte-Carlo pipeline; exact at S -> 0).
    const bool first_order_null =
        controlled || op.axis == gates::Axis::kZ ||
        (cost == PredictedCost::kPauli && !on_support);
    const double v_ni = (first_order_null
                             ? rho * model_.z_axis_suppression * sigma2 *
                                   sigma2 / 4.0
                             : rho * sigma2) *
                        (1.0 + scramble);
    const double ln_vni = std::log(v_ni);

    // Log-space interpolation between the two limits by the mixing
    // fraction (Park-style depth/width transition).
    const double ln_v =
        mixing >= 1.0 ? ln_v2d : (1.0 - mixing) * ln_vni + mixing * ln_v2d;
    pp.variance = std::exp(ln_v);
    pp.regime = mixing < kNearIdentityCeiling ? VarianceRegime::kNearIdentity
                : mixing > kTwoDesignFloor    ? VarianceRegime::kTwoDesign
                                              : VarianceRegime::kTransition;
    out.parameters.push_back(pp);
  }

  out.assumptions = {
      "angle law " + angles.law + " with sigma^2 = " +
          sigma2_string(angles.variance) + " per angle",
      "cost geometry " + predicted_cost_name(cost) +
          " sets the 2-design trace factor (global 2^(-2w), pauli 2^(-w), "
          "local 2^(-w)/4n)",
      "2-design mixing M = min(1, (sigma^2*D/K)^p) with D = " +
          sigma2_string(depth) + " alive rotations/qubit, K = " +
          sigma2_string(model_.mixing_scale) + ", p = " +
          sigma2_string(model_.mixing_exponent),
      "light-cone widths from the dataflow fixpoint; dead parameters "
      "predict exactly 0",
      "noise floor (" + sigma2_string(model_.noise_flops_per_op) + "*ops*eps)^2 with ops = " +
          std::to_string(plan_ops_),
  };
  return out;
}

// --- experiment-level prediction --------------------------------------------

namespace {

/// Index of the parameter the experiment differentiates, mirroring
/// compute_variance_cell's selection.
std::size_t sampled_parameter_index(const Circuit& circuit,
                                    GradientParameter which) {
  std::size_t index = circuit.num_parameters() - 1;
  switch (which) {
    case GradientParameter::kLast:
      break;
    case GradientParameter::kMiddle:
      index = circuit.num_parameters() / 2;
      break;
    case GradientParameter::kFirst:
      index = 0;
      break;
  }
  return index;
}

}  // namespace

CellPrediction predict_variance_cell(const VarianceExperimentOptions& options,
                                     std::size_t qubit_index,
                                     const std::string& initializer,
                                     const PredictorModel& model,
                                     std::size_t structures) {
  QBARREN_REQUIRE(qubit_index < options.qubit_counts.size(),
                  "predict_variance_cell: qubit_index out of range");
  if (!angle_model_supported(initializer)) {
    throw NotFound("predict_variance_cell: no closed-form angle model for "
                   "initializer '" +
                   initializer + "'");
  }
  const std::size_t q = options.qubit_counts[qubit_index];
  const auto observable_qubits = cost_observable_qubits(options.cost, q);
  const PredictedCost cost = predicted_cost_for(options.cost);
  const std::size_t count =
      structures == 0
          ? options.circuits_per_point
          : std::min(structures, options.circuits_per_point);
  QBARREN_REQUIRE(count > 0, "predict_variance_cell: empty ensemble");

  // The exact structure ensemble compute_variance_cell samples: same seed
  // tree, same ansatz builder — only the simulation is skipped.
  const Rng q_stream = Rng(options.seed).child(qubit_index);
  CellPrediction out;
  out.qubits = q;
  out.structures = count;
  double sum = 0.0;
  for (std::size_t i = 0; i < count; ++i) {
    const Rng circuit_stream = q_stream.child(2 * i);
    Rng structure_rng = circuit_stream.child(0);
    VarianceAnsatzOptions ansatz_options;
    ansatz_options.layers = options.layers;
    ansatz_options.entangle = options.entangle;
    ansatz_options.entangler = options.entangler;
    ansatz_options.topology = options.topology;
    const Circuit circuit = variance_ansatz(q, structure_rng, ansatz_options);
    const auto angles = angle_model_for(initializer, circuit);
    QBARREN_REQUIRE(angles.has_value(),
                    "predict_variance_cell: angle model vanished");
    const VariancePredictor predictor(circuit, model);
    const VariancePrediction prediction =
        predictor.predict(*angles, observable_qubits, cost);
    const std::size_t which =
        sampled_parameter_index(circuit, options.which_parameter);
    const ParameterPrediction& pp = prediction.parameters.at(which);
    if (!pp.alive) ++out.dead_structures;
    sum += pp.variance;
    out.noise_floor = std::max(out.noise_floor, prediction.noise_floor);
  }
  out.variance = sum / static_cast<double>(count);
  return out;
}

PredictionGrid predict_variance_grid(const VarianceExperimentOptions& options,
                                     const std::vector<std::string>& initializers,
                                     const PredictorModel& model,
                                     std::size_t structures) {
  PredictionGrid grid;
  grid.options = options;
  for (const std::string& name : initializers) {
    PredictionSeries series;
    series.initializer = name;
    for (std::size_t qi = 0; qi < options.qubit_counts.size(); ++qi) {
      series.cells.push_back(
          predict_variance_cell(options, qi, name, model, structures));
    }
    std::vector<double> xs;
    std::vector<double> ys;
    for (const CellPrediction& cell : series.cells) {
      if (cell.variance > 0.0) {
        xs.push_back(static_cast<double>(cell.qubits));
        ys.push_back(std::log(cell.variance));
      }
    }
    series.decay_fit = xs.size() >= 2 ? linear_fit(xs, ys) : LinearFit{};
    grid.series.push_back(std::move(series));
  }
  return grid;
}

const PredictionSeries& PredictionGrid::find(
    const std::string& initializer) const {
  for (const PredictionSeries& s : series) {
    if (s.initializer == initializer) return s;
  }
  throw NotFound("PredictionGrid: no series for initializer '" + initializer +
                 "'");
}

Table PredictionGrid::variance_table() const {
  std::vector<std::string> headers{"qubits"};
  for (const PredictionSeries& s : series) {
    headers.push_back("pred Var[" + s.initializer + "]");
  }
  Table table(std::move(headers));
  if (series.empty()) return table;
  for (std::size_t row = 0; row < series.front().cells.size(); ++row) {
    table.begin_row();
    table.push(series.front().cells[row].qubits);
    for (const PredictionSeries& s : series) {
      table.push_sci(s.cells[row].variance);
    }
  }
  return table;
}

Table PredictionGrid::decay_table() const {
  const auto random_it =
      std::find_if(series.begin(), series.end(), [](const PredictionSeries& s) {
        return s.initializer == "random";
      });
  const bool baseline_ok = random_it != series.end() &&
                           std::isfinite(random_it->decay_fit.slope) &&
                           std::abs(random_it->decay_fit.slope) > 1e-12;
  std::vector<std::string> headers{"initializer",
                                   "predicted slope (ln Var/qubit)"};
  if (random_it != series.end()) {
    headers.push_back("improvement vs random [%]");
  }
  Table table(std::move(headers));
  for (const PredictionSeries& s : series) {
    table.begin_row();
    table.push(s.initializer);
    table.push(s.decay_fit.slope, 4);
    if (random_it != series.end()) {
      if (s.initializer == "random") {
        table.push(std::string("(baseline)"));
      } else if (baseline_ok) {
        const double sr = std::abs(random_it->decay_fit.slope);
        const double si = std::abs(s.decay_fit.slope);
        table.push((sr - si) / sr * 100.0, 1);
      } else {
        table.push(std::string("n/a"));
      }
    }
  }
  return table;
}

JsonValue to_json(const PredictionGrid& grid) {
  JsonValue root = JsonValue::object();
  root.set("schema", "qbarren.predict.grid.v1");
  root.set("layers", grid.options.layers);
  root.set("cost", cost_kind_name(grid.options.cost));
  JsonValue series_array = JsonValue::array();
  for (const PredictionSeries& s : grid.series) {
    JsonValue series = JsonValue::object();
    series.set("initializer", s.initializer);
    series.set("decay_slope", s.decay_fit.slope);
    JsonValue cell_array = JsonValue::array();
    for (const CellPrediction& c : s.cells) {
      JsonValue cell = JsonValue::object();
      cell.set("qubits", c.qubits);
      cell.set("variance", c.variance);
      cell.set("noise_floor", c.noise_floor);
      cell.set("structures", c.structures);
      cell.set("dead_structures", c.dead_structures);
      cell_array.push_back(std::move(cell));
    }
    series.set("cells", std::move(cell_array));
    series_array.push_back(std::move(series));
  }
  root.set("series", std::move(series_array));
  return root;
}

// --- conformance harness ----------------------------------------------------

const std::vector<ConformanceBand>& default_conformance_bands() {
  // Decade bands fitted once against the repo's Monte-Carlo pipeline at
  // the paper grid (q = 2..10, 50 layers) across all three cost
  // geometries; see TUTORIAL §18. The He and orthogonal families get the
  // widest bands: their ~1/n angle laws sit at or near the mixing
  // saturation point, where the hard min(1, S/K) cutoff misestimates the
  // q = 10 tail by up to ~1.5 decades (He under the local cost,
  // orthogonal under the global cost).
  static const std::vector<ConformanceBand> bands = {
      {"random", 1.0},        {"xavier-normal", 1.3}, {"xavier-uniform", 1.3},
      {"he", 1.6},            {"he-uniform", 1.6},    {"lecun", 1.3},
      {"lecun-uniform", 1.3}, {"orthogonal", 1.6},    {"orthogonal-full", 1.5},
      {"zeros", 0.5},         {"small-normal", 1.5},
  };
  return bands;
}

namespace {

double band_for(const std::vector<ConformanceBand>& bands,
                const std::string& initializer) {
  for (const ConformanceBand& b : bands) {
    if (b.initializer == initializer) return b.log10_tolerance;
  }
  return 1.0;
}

}  // namespace

Table ConformanceReport::table() const {
  Table table({"initializer", "qubits", "predicted", "measured", "log10 err",
               "band", "ok"});
  for (const ConformanceCell& c : cells) {
    table.begin_row();
    table.push(c.initializer);
    table.push(c.qubits);
    table.push_sci(c.predicted);
    table.push_sci(c.measured);
    table.push(c.log10_error, 2);
    table.push(c.tolerance, 2);
    table.push(std::string(c.within ? "yes" : "NO"));
  }
  return table;
}

Table ConformanceReport::slope_table() const {
  Table table({"initializer", "predicted slope", "measured slope"});
  for (const ConformanceFit& f : fits) {
    table.begin_row();
    table.push(f.initializer);
    table.push(f.predicted_slope, 4);
    table.push(f.measured_slope, 4);
  }
  return table;
}

JsonValue ConformanceReport::to_json() const {
  JsonValue root = JsonValue::object();
  root.set("schema", "qbarren.predict.conformance.v1");
  root.set("ok", ok());
  root.set("ordering_ok", ordering_ok);
  root.set("all_within", all_within);
  JsonValue cell_array = JsonValue::array();
  for (const ConformanceCell& c : cells) {
    JsonValue cell = JsonValue::object();
    cell.set("initializer", c.initializer);
    cell.set("qubits", c.qubits);
    cell.set("predicted", c.predicted);
    cell.set("measured", c.measured);
    cell.set("log10_error", c.log10_error);
    cell.set("tolerance", c.tolerance);
    cell.set("within", c.within);
    cell_array.push_back(std::move(cell));
  }
  root.set("cells", std::move(cell_array));
  JsonValue fit_array = JsonValue::array();
  for (const ConformanceFit& f : fits) {
    JsonValue fit = JsonValue::object();
    fit.set("initializer", f.initializer);
    fit.set("predicted_slope", f.predicted_slope);
    fit.set("measured_slope", f.measured_slope);
    fit_array.push_back(std::move(fit));
  }
  root.set("slopes", std::move(fit_array));
  return root;
}

ConformanceReport predict_conformance(
    const VarianceExperimentOptions& options,
    const std::vector<std::string>& initializers,
    const std::vector<ConformanceBand>& bands, const PredictorModel& model,
    const RunControl& control) {
  QBARREN_REQUIRE(!initializers.empty(),
                  "predict_conformance: need at least one initializer");
  for (const std::string& name : initializers) {
    if (!angle_model_supported(name)) {
      throw NotFound("predict_conformance: initializer '" + name +
                     "' has no closed-form angle model");
    }
  }

  // Static half: the full grid, zero simulation.
  const PredictionGrid grid =
      predict_variance_grid(options, initializers, model);

  // Monte-Carlo half: the exact Fig 5a pipeline.
  std::vector<std::unique_ptr<Initializer>> owned;
  std::vector<const Initializer*> ptrs;
  owned.reserve(initializers.size());
  for (const std::string& name : initializers) {
    owned.push_back(make_initializer(name));
    ptrs.push_back(owned.back().get());
  }
  const VarianceExperiment experiment(options);
  const VarianceResult measured = experiment.run(ptrs, control);

  ConformanceReport report;
  report.all_within = true;
  for (const std::string& name : initializers) {
    const PredictionSeries& pred = grid.find(name);
    const VarianceSeries& meas = measured.find(name);
    report.fits.push_back(
        ConformanceFit{name, pred.decay_fit.slope, meas.decay_fit.slope});
    for (std::size_t qi = 0; qi < options.qubit_counts.size(); ++qi) {
      ConformanceCell cell;
      cell.initializer = name;
      cell.qubits = options.qubit_counts[qi];
      cell.predicted = pred.cells[qi].variance;
      cell.measured = meas.points[qi].variance;
      cell.tolerance = band_for(bands, name);
      const double floor = pred.cells[qi].noise_floor;
      if (cell.predicted <= floor && cell.measured <= floor) {
        // Both instruments agree the signal is exactly/numerically zero
        // (dead parameter, identity circuit, or below the FP floor).
        cell.log10_error = 0.0;
        cell.within = true;
      } else if (cell.predicted <= 0.0 || cell.measured <= 0.0) {
        cell.log10_error = std::numeric_limits<double>::infinity();
        cell.within = false;
      } else {
        cell.log10_error = std::log10(cell.predicted / cell.measured);
        cell.within = std::abs(cell.log10_error) <= cell.tolerance;
      }
      report.all_within = report.all_within && cell.within;
      report.cells.push_back(std::move(cell));
    }
  }

  // Fig 5a ordering: random decays steepest, a Xavier family stays
  // flattest, and every alternative improves on random — in both
  // instruments.
  const auto find_fit = [&](const std::string& name) -> const ConformanceFit* {
    for (const ConformanceFit& f : report.fits) {
      if (f.initializer == name) return &f;
    }
    return nullptr;
  };
  const ConformanceFit* random_fit = find_fit("random");
  if (report.fits.size() < 2) {
    report.ordering_ok = true;  // nothing to order
  } else if (random_fit == nullptr) {
    report.ordering_ok = false;  // no baseline to order against
  } else {
    bool ok = true;
    for (const ConformanceFit& f : report.fits) {
      if (f.initializer == "random") continue;
      // Non-strict: a fully mixed strategy (M = 1, e.g. He at 50 layers)
      // legitimately ties the random baseline's predicted slope.
      ok = ok && std::abs(f.predicted_slope) <=
                     std::abs(random_fit->predicted_slope) + 1e-9;
      ok = ok && std::abs(f.measured_slope) <=
                     std::abs(random_fit->measured_slope) + 1e-9;
    }
    // The flattest-curve claim is Fig 5a's: among the *paper's* six
    // strategies, a Xavier family decays slowest. Registry extras
    // (small-normal's near-zero angles, orthogonal-full's max-fan law)
    // are legitimately flatter and sit out this comparison. The 0.1
    // slope tolerance absorbs the fit noise of a 50-circuit Monte-Carlo
    // ensemble — decisive under the global cost, where the curves are
    // decades apart, while not failing the Pauli geometry whose slopes
    // all sit at the Park-style plateau (statistically zero).
    static const char* kFigStrategies[] = {"random", "xavier-normal",
                                           "xavier-uniform", "he",
                                           "lecun", "orthogonal"};
    const auto in_figure = [&](const std::string& name) {
      for (const char* s : kFigStrategies) {
        if (name == s) return true;
      }
      return false;
    };
    constexpr double kSlopeTolerance = 0.1;
    const ConformanceFit* flattest_pred = random_fit;
    const ConformanceFit* flattest_meas = random_fit;
    const ConformanceFit* xavier_pred = nullptr;
    const ConformanceFit* xavier_meas = nullptr;
    for (const ConformanceFit& f : report.fits) {
      if (!in_figure(f.initializer)) continue;
      if (std::abs(f.predicted_slope) <
          std::abs(flattest_pred->predicted_slope)) {
        flattest_pred = &f;
      }
      if (std::abs(f.measured_slope) <
          std::abs(flattest_meas->measured_slope)) {
        flattest_meas = &f;
      }
      if (f.initializer.rfind("xavier", 0) != 0) continue;
      if (xavier_pred == nullptr || std::abs(f.predicted_slope) <
                                        std::abs(xavier_pred->predicted_slope)) {
        xavier_pred = &f;
      }
      if (xavier_meas == nullptr || std::abs(f.measured_slope) <
                                        std::abs(xavier_meas->measured_slope)) {
        xavier_meas = &f;
      }
    }
    if (xavier_pred != nullptr) {
      ok = ok && std::abs(xavier_pred->predicted_slope) <=
                     std::abs(flattest_pred->predicted_slope) + kSlopeTolerance;
      ok = ok && std::abs(xavier_meas->measured_slope) <=
                     std::abs(flattest_meas->measured_slope) + kSlopeTolerance;
    }
    report.ordering_ok = ok;
  }
  return report;
}

}  // namespace qbarren
