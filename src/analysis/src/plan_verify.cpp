#include "qbarren/analysis/plan_verify.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <sstream>
#include <utility>
#include <vector>

#include "qbarren/linalg/checks.hpp"

namespace qbarren {
namespace {

using exec::CompiledCircuit;
using Kernel = CompiledCircuit::Kernel;
using PlanOp = CompiledCircuit::PlanOp;

constexpr std::size_t kNoOp = ExecutionPlan::kNoOperation;

ComplexMatrix to_matrix(const gates::Mat2& m) {
  ComplexMatrix out(2, 2);
  out(0, 0) = m.m00;
  out(0, 1) = m.m01;
  out(1, 0) = m.m10;
  out(1, 1) = m.m11;
  return out;
}

std::string pool_location(const char* pool, std::size_t index) {
  std::ostringstream loc;
  loc << pool << "[" << index << "]";
  return loc.str();
}

std::string plan_op_location(std::size_t index) {
  return "plan op " + std::to_string(index);
}

const char* kernel_name(Kernel kernel) {
  switch (kernel) {
    case Kernel::kRotation: return "kRotation";
    case Kernel::kControlledRotation: return "kControlledRotation";
    case Kernel::kFixedSingle: return "kFixedSingle";
    case Kernel::kFusedSingle: return "kFusedSingle";
    case Kernel::kCnot: return "kCnot";
    case Kernel::kCzGate: return "kCzGate";
    case Kernel::kFixedTwo: return "kFixedTwo";
  }
  return "<unknown kernel>";
}

const char* op_kind_name(OpKind kind) {
  switch (kind) {
    case OpKind::kRotation: return "kRotation";
    case OpKind::kFixedRotation: return "kFixedRotation";
    case OpKind::kControlledRotation: return "kControlledRotation";
    case OpKind::kHadamard: return "kHadamard";
    case OpKind::kPauliX: return "kPauliX";
    case OpKind::kPauliY: return "kPauliY";
    case OpKind::kPauliZ: return "kPauliZ";
    case OpKind::kSGate: return "kSGate";
    case OpKind::kTGate: return "kTGate";
    case OpKind::kCz: return "kCz";
    case OpKind::kCnot: return "kCnot";
    case OpKind::kSwap: return "kSwap";
    case OpKind::kCustomSingle: return "kCustomSingle";
    case OpKind::kCustomTwo: return "kCustomTwo";
  }
  return "<unknown kind>";
}

/// True for source kinds the compiler lowers to kFixedSingle / a fused run:
/// constant gates on one qubit.
bool is_constant_single(OpKind kind) {
  switch (kind) {
    case OpKind::kFixedRotation:
    case OpKind::kHadamard:
    case OpKind::kPauliX:
    case OpKind::kPauliY:
    case OpKind::kPauliZ:
    case OpKind::kSGate:
    case OpKind::kTGate:
    case OpKind::kCustomSingle:
      return true;
    default:
      return false;
  }
}

bool is_custom(OpKind kind) {
  return kind == OpKind::kCustomSingle || kind == OpKind::kCustomTwo;
}

/// A custom op whose stored matrix has the wrong dimensions for its kind.
/// compile() refuses such circuits, so any plan claiming to cover one is
/// itself the defect (QP106); every other check skips the op.
bool custom_matrix_malformed(const Circuit& circuit, const Operation& op) {
  if (!is_custom(op.kind)) return false;
  const std::size_t dim = op.kind == OpKind::kCustomSingle ? 2 : 4;
  const ComplexMatrix& m = circuit.custom_gate(op).matrix;
  return m.rows() != dim || m.cols() != dim;
}

/// Same per-code capping policy as lint.cpp's RuleSink.
class CodeSink {
 public:
  CodeSink(Diagnostics& out, const PlanVerifyOptions& options,
           Severity severity, std::string code)
      : out_(out),
        cap_(options.max_findings_per_code),
        severity_(severity),
        code_(std::move(code)) {}

  void add(std::string message, std::string location,
           std::optional<Severity> severity = std::nullopt) {
    ++total_;
    if (total_ <= cap_) {
      out_.push_back({severity.value_or(severity_), code_, std::move(message),
                      std::move(location)});
    }
  }

  ~CodeSink() {
    if (total_ > cap_) {
      std::string message = "... and ";
      message += std::to_string(total_ - cap_);
      message += " more ";
      message += code_;
      message += " finding(s) suppressed (max_findings_per_code = ";
      message += std::to_string(cap_);
      message += ")";
      out_.push_back({severity_, code_, std::move(message), ""});
    }
  }

  CodeSink(const CodeSink&) = delete;
  CodeSink& operator=(const CodeSink&) = delete;

 private:
  Diagnostics& out_;
  std::size_t cap_;
  std::size_t total_ = 0;
  Severity severity_;
  std::string code_;
};

/// Which source kinds reference each pool entry. Valid plans intern one
/// (kind, axis, angle, custom-gate) combination per entry, so the two
/// flags are mutually exclusive there; a corrupted plan may set both.
struct PoolReferences {
  std::vector<bool> builtin2, custom2;
  std::vector<bool> builtin4, custom4;
};

PoolReferences collect_pool_references(const Circuit& circuit,
                                       const CompiledCircuit& plan) {
  const auto pool = plan.matrix_pool();
  const auto& ops = circuit.operations();
  PoolReferences refs;
  refs.builtin2.assign(pool.single.size(), false);
  refs.custom2.assign(pool.single.size(), false);
  refs.builtin4.assign(pool.two.size(), false);
  refs.custom4.assign(pool.two.size(), false);

  auto mark2 = [&](std::size_t index, std::size_t source) {
    if (index >= refs.builtin2.size()) return;  // range errors: QP103/QP105
    const bool custom = source < ops.size() && is_custom(ops[source].kind);
    (custom ? refs.custom2 : refs.builtin2)[index] = true;
  };
  auto mark4 = [&](std::size_t index, std::size_t source) {
    if (index >= refs.builtin4.size()) return;
    const bool custom = source < ops.size() && is_custom(ops[source].kind);
    (custom ? refs.custom4 : refs.builtin4)[index] = true;
  };

  for (const PlanOp& op : plan.plan_ops()) {
    switch (op.kernel) {
      case Kernel::kFixedSingle:
      case Kernel::kCnot:
        mark2(op.matrix, op.source_index);
        break;
      case Kernel::kFusedSingle:
        for (std::size_t j = 0; j < op.fused_count; ++j) {
          const std::size_t slot = op.fused_begin + j;
          if (slot >= pool.fused.size()) break;
          mark2(pool.fused[slot], op.source_index + j);
        }
        break;
      case Kernel::kFixedTwo:
        mark4(op.matrix, op.source_index);
        break;
      case Kernel::kRotation:
      case Kernel::kControlledRotation:
      case Kernel::kCzGate:
        break;  // no pooled matrix
    }
  }
  return refs;
}

// --- QP100: shape agreement -------------------------------------------------

void check_shapes(const Circuit& circuit, const CompiledCircuit& plan,
                  const PlanVerifyOptions& options, Diagnostics& out) {
  CodeSink sink(out, options, Severity::kError, "QP100");
  if (plan.num_qubits() != circuit.num_qubits()) {
    std::ostringstream msg;
    msg << "plan is lowered for " << plan.num_qubits()
        << " qubit(s) but the circuit has " << circuit.num_qubits();
    sink.add(msg.str(), "num_qubits");
  }
  if (plan.num_parameters() != circuit.num_parameters()) {
    std::ostringstream msg;
    msg << "plan binds " << plan.num_parameters()
        << " parameter(s) but the circuit has " << circuit.num_parameters();
    sink.add(msg.str(), "num_parameters");
  }
  if (plan.stats().source_ops != circuit.num_operations()) {
    std::ostringstream msg;
    msg << "plan records " << plan.stats().source_ops
        << " source op(s) but the circuit has " << circuit.num_operations();
    sink.add(msg.str(), "source_ops");
  }
}

// --- QP101: matrix-pool unitarity -------------------------------------------

void check_pool_unitarity(const Circuit& circuit, const CompiledCircuit& plan,
                          const PoolReferences& refs,
                          const PlanVerifyOptions& options, Diagnostics& out) {
  (void)circuit;
  const auto pool = plan.matrix_pool();
  CodeSink sink(out, options, Severity::kError, "QP101");
  auto report = [&](const char* name, std::size_t i, bool builtin_ref) {
    std::ostringstream msg;
    msg << name << "[" << i << "] is not unitary (max |u^H u - I| exceeds "
        << options.unitarity_tolerance << ")";
    if (!builtin_ref) {
      msg << "; only custom gates (applied verbatim by both execution "
          << "paths) reference it — see QB006 for the modeling problem";
    }
    sink.add(msg.str(), pool_location(name, i),
             builtin_ref ? Severity::kError : Severity::kWarning);
  };
  for (std::size_t i = 0; i < pool.single.size(); ++i) {
    if (!is_unitary(to_matrix(pool.single[i]), options.unitarity_tolerance)) {
      report("pool2", i, refs.builtin2[i]);
    }
  }
  for (std::size_t i = 0; i < pool.two.size(); ++i) {
    const ComplexMatrix& m = pool.two[i];
    if (m.rows() != 4 || m.cols() != 4 ||
        !is_unitary(m, options.unitarity_tolerance)) {
      report("pool4", i, refs.builtin4[i]);
    }
  }
}

// --- QP102: forward / inverse pairing ---------------------------------------

void check_pool_inverses(const Circuit& circuit, const CompiledCircuit& plan,
                         const PoolReferences& refs,
                         const PlanVerifyOptions& options, Diagnostics& out) {
  (void)circuit;
  const auto pool = plan.matrix_pool();
  CodeSink sink(out, options, Severity::kError, "QP102");
  if (pool.single.size() != pool.single_inverse.size()) {
    std::ostringstream msg;
    msg << "forward/inverse 2x2 pools have different sizes ("
        << pool.single.size() << " vs " << pool.single_inverse.size() << ")";
    sink.add(msg.str(), "pool2");
  }
  if (pool.two.size() != pool.two_inverse.size()) {
    std::ostringstream msg;
    msg << "forward/inverse 4x4 pools have different sizes ("
        << pool.two.size() << " vs " << pool.two_inverse.size() << ")";
    sink.add(msg.str(), "pool4");
  }

  // Custom gates: the interpreted inverse path applies adjoint(m), which
  // is the inverse only when m is unitary — the pairing contract is
  // "matches interpretation", so the check is the adjoint itself.
  // Everything else: forward x inverse must be the identity.
  const ComplexMatrix identity2 = ComplexMatrix::identity(2);
  const std::size_t n2 = std::min(pool.single.size(),
                                  pool.single_inverse.size());
  for (std::size_t i = 0; i < n2; ++i) {
    const bool referenced = refs.builtin2[i] || refs.custom2[i];
    if (!referenced) continue;  // cannot affect execution
    const ComplexMatrix fwd = to_matrix(pool.single[i]);
    const ComplexMatrix inv = to_matrix(pool.single_inverse[i]);
    if (refs.custom2[i]) {
      if (max_abs_diff(inv, adjoint(fwd)) > options.match_tolerance) {
        sink.add(
            "inverse entry is not the adjoint of its forward entry "
            "(custom gates invert by adjoint, as interpretation does)",
            pool_location("pool2", i));
      }
    } else if (max_abs_diff(fwd * inv, identity2) >
               options.product_tolerance) {
      sink.add("forward x inverse deviates from the identity",
               pool_location("pool2", i));
    }
  }
  const ComplexMatrix identity4 = ComplexMatrix::identity(4);
  const std::size_t n4 = std::min(pool.two.size(), pool.two_inverse.size());
  for (std::size_t i = 0; i < n4; ++i) {
    const bool referenced = refs.builtin4[i] || refs.custom4[i];
    if (!referenced) continue;
    const ComplexMatrix& fwd = pool.two[i];
    const ComplexMatrix& inv = pool.two_inverse[i];
    if (fwd.rows() != 4 || fwd.cols() != 4 || inv.rows() != 4 ||
        inv.cols() != 4) {
      sink.add("pool entry is not 4x4", pool_location("pool4", i));
      continue;
    }
    if (refs.custom4[i]) {
      if (max_abs_diff(inv, adjoint(fwd)) > options.match_tolerance) {
        sink.add(
            "inverse entry is not the adjoint of its forward entry "
            "(custom gates invert by adjoint, as interpretation does)",
            pool_location("pool4", i));
      }
    } else if (max_abs_diff(fwd * inv, identity4) >
               options.product_tolerance) {
      sink.add("forward x inverse deviates from the identity",
               pool_location("pool4", i));
    }
  }
}

// --- QP103: fusion legality -------------------------------------------------

void check_fusion(const Circuit& circuit, const CompiledCircuit& plan,
                  const PlanVerifyOptions& options, Diagnostics& out) {
  const auto pool = plan.matrix_pool();
  const auto& ops = circuit.operations();
  const auto plan_ops = plan.plan_ops();
  CodeSink sink(out, options, Severity::kError, "QP103");
  for (std::size_t k = 0; k < plan_ops.size(); ++k) {
    const PlanOp& op = plan_ops[k];
    if (op.kernel != Kernel::kFusedSingle) continue;
    if (op.fused_count < 2) {
      std::ostringstream msg;
      msg << "fused run has " << op.fused_count
          << " element(s); runs of fewer than 2 must lower to kFixedSingle";
      sink.add(msg.str(), plan_op_location(k));
      continue;
    }
    if (op.fused_begin + op.fused_count > pool.fused.size()) {
      std::ostringstream msg;
      msg << "fused run [" << op.fused_begin << ", "
          << op.fused_begin + op.fused_count
          << ") exceeds the run list (size " << pool.fused.size() << ")";
      sink.add(msg.str(), plan_op_location(k));
      continue;
    }

    // Pool side: the run applies pool2[fused[begin]], then the next, ...,
    // so the effective matrix is the reversed-order product.
    bool pool_ok = true;
    ComplexMatrix pool_product = ComplexMatrix::identity(2);
    for (std::size_t j = 0; j < op.fused_count; ++j) {
      const std::uint32_t index = pool.fused[op.fused_begin + j];
      if (index >= pool.single.size()) {
        std::ostringstream msg;
        msg << "fused element " << j << " references pool2[" << index
            << "] out of range (pool size " << pool.single.size() << ")";
        sink.add(msg.str(), plan_op_location(k));
        pool_ok = false;
        break;
      }
      pool_product = to_matrix(pool.single[index]) * pool_product;
    }
    if (!pool_ok) continue;

    // Source side: the covered ops must all be constant single-qubit
    // gates (QP105 reports wire/kind mismatches in detail).
    if (op.source_index + op.fused_count > ops.size()) continue;  // QP105
    bool source_ok = true;
    ComplexMatrix source_product = ComplexMatrix::identity(2);
    for (std::size_t j = 0; j < op.fused_count; ++j) {
      const std::size_t i = op.source_index + j;
      if (!is_constant_single(ops[i].kind) ||
          custom_matrix_malformed(circuit, ops[i])) {
        std::ostringstream msg;
        msg << "fused run covers source op " << i << " ("
            << op_kind_name(ops[i].kind)
            << "), which is not a fusable constant single-qubit gate";
        sink.add(msg.str(), plan_op_location(k));
        source_ok = false;
        break;
      }
      source_product = circuit.operation_matrix(i, {}) * source_product;
    }
    if (!source_ok) continue;

    const double deviation = max_abs_diff(pool_product, source_product);
    if (deviation > options.product_tolerance) {
      std::ostringstream msg;
      msg << "fused run product deviates from the source ops' product by "
          << deviation << " (source ops [" << op.source_index << ", "
          << op.source_index + op.fused_count << "))";
      sink.add(msg.str(), plan_op_location(k));
    }
  }
}

// --- QP104: binding-table completeness / bijectivity ------------------------

void check_bindings(const Circuit& circuit, const CompiledCircuit& plan,
                    const PlanVerifyOptions& options, Diagnostics& out) {
  const auto& ops = circuit.operations();
  const auto plan_ops = plan.plan_ops();
  const std::size_t num_params =
      std::min(circuit.num_parameters(), plan.num_parameters());

  std::vector<std::size_t> source_first(num_params, kNoOp);
  std::vector<std::size_t> source_uses(num_params, 0);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (!is_parameterized(ops[i].kind)) continue;
    const std::size_t p = ops[i].param_index;
    if (p >= num_params) continue;  // QP100/QP105 report the shape problem
    if (source_first[p] == kNoOp) source_first[p] = i;
    ++source_uses[p];
  }
  std::vector<std::size_t> plan_first(num_params, kNoOp);
  std::vector<std::size_t> plan_uses(num_params, 0);
  for (std::size_t k = 0; k < plan_ops.size(); ++k) {
    const Kernel kernel = plan_ops[k].kernel;
    if (kernel != Kernel::kRotation && kernel != Kernel::kControlledRotation) {
      continue;
    }
    const std::size_t p = plan_ops[k].param;
    if (p >= num_params) continue;
    if (plan_first[p] == kNoOp) plan_first[p] = k;
    ++plan_uses[p];
  }

  const std::vector<CompiledCircuit::ParamBinding> bindings =
      plan.param_bindings();
  CodeSink sink(out, options, Severity::kError, "QP104");
  for (std::size_t p = 0; p < num_params; ++p) {
    const std::string location = "param " + std::to_string(p);
    if (plan_uses[p] != source_uses[p]) {
      std::ostringstream msg;
      msg << "parameter " << p << " is consumed by " << source_uses[p]
          << " source op(s) but " << plan_uses[p]
          << " parameterized plan op(s)";
      sink.add(msg.str(), location);
    }
    if (p >= bindings.size()) continue;
    if (bindings[p].source_op != source_first[p]) {
      std::ostringstream msg;
      msg << "binding table maps parameter " << p << " to source op ";
      if (bindings[p].source_op == kNoOp) {
        msg << "<none>";
      } else {
        msg << bindings[p].source_op;
      }
      msg << " but its first consumer is ";
      if (source_first[p] == kNoOp) {
        msg << "<none>";
      } else {
        msg << "op " << source_first[p];
      }
      sink.add(msg.str(), location);
    }
    // plan_op is recorded only for uniquely consumed parameters (a second
    // consumer disables prefix reuse, matching compile()'s record_param).
    const std::size_t expected_plan_op =
        (source_uses[p] == 1 && plan_uses[p] == 1) ? plan_first[p] : kNoOp;
    if (bindings[p].plan_op != expected_plan_op) {
      std::ostringstream msg;
      msg << "binding table maps parameter " << p << " to plan op ";
      if (bindings[p].plan_op == kNoOp) {
        msg << "<none>";
      } else {
        msg << bindings[p].plan_op;
      }
      msg << " but its consuming plan op is ";
      if (expected_plan_op == kNoOp) {
        msg << "<none>";
      } else {
        msg << expected_plan_op;
      }
      sink.add(msg.str(), location);
    }
  }
}

// --- QP105: kernel-op coverage ----------------------------------------------

void mismatch(CodeSink& sink, std::size_t k, const PlanOp& plan_op,
              std::size_t i, const Operation& source, const char* what) {
  std::ostringstream msg;
  msg << kernel_name(plan_op.kernel) << " plan op lowering source op " << i
      << " (" << op_kind_name(source.kind) << "): " << what;
  sink.add(msg.str(), plan_op_location(k));
}

/// Checks one (plan op, covered source op) pair: kernel choice, wires,
/// axis, parameter, and the pooled matrix the kernel will actually apply.
void check_op_pair(const Circuit& circuit, const CompiledCircuit& plan,
                   const PlanVerifyOptions& options, CodeSink& sink,
                   std::size_t k, const PlanOp& plan_op, std::size_t j,
                   std::size_t i) {
  const Operation& source = circuit.operations()[i];
  const auto pool = plan.matrix_pool();

  switch (source.kind) {
    case OpKind::kRotation:
      if (plan_op.kernel != Kernel::kRotation) {
        mismatch(sink, k, plan_op, i, source, "wrong kernel");
        return;
      }
      if (plan_op.qubit0 != source.qubit0) {
        mismatch(sink, k, plan_op, i, source, "wrong target qubit");
      }
      if (plan_op.axis != source.axis) {
        mismatch(sink, k, plan_op, i, source, "wrong rotation axis");
      }
      if (plan_op.param != source.param_index) {
        mismatch(sink, k, plan_op, i, source, "wrong parameter index");
      }
      return;

    case OpKind::kControlledRotation:
      if (plan_op.kernel != Kernel::kControlledRotation) {
        mismatch(sink, k, plan_op, i, source, "wrong kernel");
        return;
      }
      if (plan_op.qubit0 != source.qubit0 || plan_op.qubit1 != source.qubit1) {
        mismatch(sink, k, plan_op, i, source,
                 "wrong control/target qubits (qubit0 must be the control)");
      }
      if (plan_op.axis != source.axis) {
        mismatch(sink, k, plan_op, i, source, "wrong rotation axis");
      }
      if (plan_op.param != source.param_index) {
        mismatch(sink, k, plan_op, i, source, "wrong parameter index");
      }
      return;

    case OpKind::kCz:
      if (plan_op.kernel != Kernel::kCzGate) {
        mismatch(sink, k, plan_op, i, source, "wrong kernel");
        return;
      }
      // CZ is symmetric; either qubit order applies the same gate.
      if (std::min(plan_op.qubit0, plan_op.qubit1) !=
              std::min(source.qubit0, source.qubit1) ||
          std::max(plan_op.qubit0, plan_op.qubit1) !=
              std::max(source.qubit0, source.qubit1)) {
        mismatch(sink, k, plan_op, i, source, "wrong qubit pair");
      }
      return;

    case OpKind::kCnot: {
      if (plan_op.kernel != Kernel::kCnot) {
        mismatch(sink, k, plan_op, i, source, "wrong kernel");
        return;
      }
      if (plan_op.qubit0 != source.qubit0 || plan_op.qubit1 != source.qubit1) {
        mismatch(sink, k, plan_op, i, source,
                 "wrong control/target qubits (qubit0 must be the control)");
      }
      if (plan_op.matrix >= pool.single.size()) {
        mismatch(sink, k, plan_op, i, source, "pool2 index out of range");
        return;
      }
      const ComplexMatrix x = to_matrix(pool.single[plan_op.matrix]);
      if (max_abs_diff(x, gates::pauli_x()) > options.match_tolerance) {
        mismatch(sink, k, plan_op, i, source,
                 "pooled matrix is not Pauli-X");
      }
      return;
    }

    case OpKind::kSwap: {
      if (plan_op.kernel != Kernel::kFixedTwo) {
        mismatch(sink, k, plan_op, i, source, "wrong kernel");
        return;
      }
      const auto expected = std::minmax(source.qubit0, source.qubit1);
      if (plan_op.qubit0 != expected.first ||
          plan_op.qubit1 != expected.second) {
        mismatch(sink, k, plan_op, i, source,
                 "wrong qubit pair (must be lowered as (min, max))");
      }
      if (plan_op.matrix >= pool.two.size()) {
        mismatch(sink, k, plan_op, i, source, "pool4 index out of range");
        return;
      }
      const ComplexMatrix& m = pool.two[plan_op.matrix];
      if (m.rows() != 4 || m.cols() != 4 ||
          max_abs_diff(m, gates::swap()) > options.match_tolerance) {
        mismatch(sink, k, plan_op, i, source, "pooled matrix is not SWAP");
      }
      return;
    }

    case OpKind::kCustomTwo: {
      if (custom_matrix_malformed(circuit, source)) return;  // QP106
      if (plan_op.kernel != Kernel::kFixedTwo) {
        mismatch(sink, k, plan_op, i, source, "wrong kernel");
        return;
      }
      if (plan_op.qubit0 != source.qubit0 || plan_op.qubit1 != source.qubit1) {
        mismatch(sink, k, plan_op, i, source, "wrong qubit pair");
      }
      if (plan_op.matrix >= pool.two.size()) {
        mismatch(sink, k, plan_op, i, source, "pool4 index out of range");
        return;
      }
      const ComplexMatrix& m = pool.two[plan_op.matrix];
      if (m.rows() != 4 || m.cols() != 4 ||
          max_abs_diff(m, circuit.custom_gate(source).matrix) >
              options.match_tolerance) {
        mismatch(sink, k, plan_op, i, source,
                 "pooled matrix differs from the custom gate's matrix");
      }
      return;
    }

    default:
      break;  // constant single-qubit kinds, below
  }

  // Constant single-qubit source op: lowered either standalone
  // (kFixedSingle) or as element j of a fused run.
  if (custom_matrix_malformed(circuit, source)) return;  // QP106
  std::size_t pool_index = 0;
  if (plan_op.kernel == Kernel::kFixedSingle) {
    pool_index = plan_op.matrix;
  } else if (plan_op.kernel == Kernel::kFusedSingle) {
    const std::size_t slot = plan_op.fused_begin + j;
    if (slot >= pool.fused.size()) return;  // QP103
    pool_index = pool.fused[slot];
  } else {
    mismatch(sink, k, plan_op, i, source, "wrong kernel");
    return;
  }
  if (plan_op.qubit0 != source.qubit0) {
    mismatch(sink, k, plan_op, i, source, "wrong target qubit");
  }
  if (pool_index >= pool.single.size()) {
    mismatch(sink, k, plan_op, i, source, "pool2 index out of range");
    return;
  }
  const ComplexMatrix pooled = to_matrix(pool.single[pool_index]);
  const ComplexMatrix expected = circuit.operation_matrix(i, {});
  if (max_abs_diff(pooled, expected) > options.match_tolerance) {
    mismatch(sink, k, plan_op, i, source,
             "pooled matrix differs from the source op's matrix");
  }
}

void check_coverage(const Circuit& circuit, const CompiledCircuit& plan,
                    const PlanVerifyOptions& options, Diagnostics& out) {
  const auto& ops = circuit.operations();
  const auto plan_ops = plan.plan_ops();
  CodeSink sink(out, options, Severity::kError, "QP105");
  std::size_t next_source = 0;
  for (std::size_t k = 0; k < plan_ops.size(); ++k) {
    const PlanOp& op = plan_ops[k];
    const std::size_t count =
        op.kernel == Kernel::kFusedSingle ? op.fused_count : 1;
    const std::size_t begin = op.source_index;
    const std::size_t end = begin + count;
    if (begin != next_source) {
      std::ostringstream msg;
      msg << "plan op covers source ops [" << begin << ", " << end
          << ") but coverage should resume at op " << next_source
          << " (every source op must be lowered exactly once, in order)";
      sink.add(msg.str(), plan_op_location(k));
    }
    next_source = std::max(next_source, end);
    if (end > ops.size()) {
      std::ostringstream msg;
      msg << "plan op covers source ops [" << begin << ", " << end
          << ") past the end of the circuit (" << ops.size()
          << " source ops)";
      sink.add(msg.str(), plan_op_location(k));
      continue;
    }
    for (std::size_t j = 0; j < count; ++j) {
      check_op_pair(circuit, plan, options, sink, k, op, j, begin + j);
    }
  }
  if (next_source != ops.size()) {
    std::ostringstream msg;
    msg << "plan covers source ops [0, " << next_source << ") of "
        << ops.size() << "; the remaining op(s) would never execute";
    sink.add(msg.str(), "plan");
  }
}

// --- QP106: custom-gate fallback reachability -------------------------------

void check_custom_fallback(const Circuit& circuit, const CompiledCircuit& plan,
                           const PlanVerifyOptions& options,
                           Diagnostics& out) {
  (void)plan;
  const auto& ops = circuit.operations();
  CodeSink sink(out, options, Severity::kError, "QP106");
  for (std::size_t i = 0; i < ops.size(); ++i) {
    if (!custom_matrix_malformed(circuit, ops[i])) continue;
    const CustomGate& gate = circuit.custom_gate(ops[i]);
    const std::size_t dim = ops[i].kind == OpKind::kCustomSingle ? 2 : 4;
    std::ostringstream msg;
    msg << "a compiled plan exists although custom gate '" << gate.name
        << "' is " << gate.matrix.rows() << "x" << gate.matrix.cols()
        << " (needs " << dim << "x" << dim
        << "): compile() must refuse such circuits so execution reaches "
        << "the interpreted fallback's error path";
    sink.add(msg.str(), "op " + std::to_string(i));
  }
}

// --- QP107: batched-dispatch slot table -------------------------------------

void check_batch_slots(const Circuit& circuit, const CompiledCircuit& plan,
                       const PlanVerifyOptions& options, Diagnostics& out) {
  (void)circuit;
  const auto plan_ops = plan.plan_ops();
  const auto slots = plan.batch_rotation_slots();
  CodeSink sink(out, options, Severity::kError, "QP107");
  if (slots.size() != plan_ops.size()) {
    std::ostringstream msg;
    msg << "rotation-slot table has " << slots.size() << " entries for "
        << plan_ops.size() << " plan op(s)";
    sink.add(msg.str(), "rotation_slots");
    return;
  }
  std::uint32_t next_slot = 0;
  for (std::size_t k = 0; k < plan_ops.size(); ++k) {
    const Kernel kernel = plan_ops[k].kernel;
    const bool parameterized =
        kernel == Kernel::kRotation || kernel == Kernel::kControlledRotation;
    if (parameterized) {
      if (slots[k] != next_slot) {
        std::ostringstream msg;
        msg << kernel_name(kernel) << " plan op must batch through "
            << "angle-table row " << next_slot << " but the table assigns ";
        if (slots[k] == CompiledCircuit::kNoBatchSlot) {
          msg << "<none> — the op's per-lane angles would never be applied";
        } else {
          msg << "row " << slots[k]
              << " (rows must be dense, in stream order)";
        }
        sink.add(msg.str(), plan_op_location(k));
      }
      ++next_slot;
    } else if (slots[k] != CompiledCircuit::kNoBatchSlot) {
      std::ostringstream msg;
      msg << kernel_name(kernel) << " plan op takes no per-lane angle but "
          << "the table assigns angle-table row " << slots[k];
      sink.add(msg.str(), plan_op_location(k));
    }
  }
  if (next_slot != plan.num_batch_slots()) {
    std::ostringstream msg;
    msg << "plan reserves " << plan.num_batch_slots()
        << " angle-table row(s) but " << next_slot
        << " parameterized plan op(s) need one";
    sink.add(msg.str(), "rotation_slots");
  }
}

}  // namespace

Diagnostics verify_plan(const Circuit& circuit,
                        const exec::CompiledCircuit& plan,
                        const PlanVerifyOptions& options) {
  Diagnostics out;
  const PoolReferences refs = collect_pool_references(circuit, plan);
  check_shapes(circuit, plan, options, out);
  check_pool_unitarity(circuit, plan, refs, options, out);
  check_pool_inverses(circuit, plan, refs, options, out);
  check_fusion(circuit, plan, options, out);
  check_bindings(circuit, plan, options, out);
  check_coverage(circuit, plan, options, out);
  check_custom_fallback(circuit, plan, options, out);
  check_batch_slots(circuit, plan, options, out);
  return out;
}

Diagnostics verify_circuit_lowering(const Circuit& circuit,
                                    const PlanVerifyOptions& options) {
  std::shared_ptr<const exec::CompiledCircuit> plan;
  try {
    plan = exec::CompiledCircuit::compile(circuit);
  } catch (const InvalidArgument& error) {
    std::string message = "circuit cannot be lowered (";
    message += error.what();
    message += "); execution uses the interpreted fallback path";
    return {{Severity::kInfo, "QP106", std::move(message), ""}};
  }
  return verify_plan(circuit, *plan, options);
}

PlanResourceEstimate estimate_plan_resources(
    const exec::CompiledCircuit& plan, std::size_t batch) {
  QBARREN_REQUIRE(batch >= 1,
                  "estimate_plan_resources: batch must be at least 1");
  // Cost model: a complex multiply is 6 flops, a complex add 2, an
  // amplitude 16 bytes. A 2x2 applied to an amplitude pair is 4 mul +
  // 2 add = 28 flops; a 4x4 applied to a quadruple is 16 mul + 12 add
  // = 120 flops. Controlled kernels touch only the control-set half of
  // the register; CZ negates the quarter with both bits set. Batched
  // dispatch repeats the amplitude work per lane but fetches each op's
  // matrix once (shared_bytes), which is why states/second grows with B.
  constexpr double kMat2Flops = 28.0;
  constexpr double kMat4Flops = 120.0;
  constexpr double kAmpBytes = 16.0;
  constexpr double kMat2Bytes = 4.0 * 16.0;
  constexpr double kMat4Bytes = 16.0 * 16.0;
  const double amps =
      std::ldexp(1.0, static_cast<int>(plan.num_qubits()));
  const double pairs = amps / 2.0;
  const double quads = amps / 4.0;

  PlanResourceEstimate estimate;
  estimate.plan_ops = plan.num_plan_ops();
  estimate.fused_runs = plan.stats().fused_runs;
  estimate.batch = batch;
  for (const PlanOp& op : plan.plan_ops()) {
    switch (op.kernel) {
      case Kernel::kRotation:
      case Kernel::kFixedSingle:
        estimate.flops += kMat2Flops * pairs;
        estimate.bytes += 2.0 * amps * kAmpBytes;
        estimate.shared_bytes += kMat2Bytes;
        break;
      case Kernel::kFusedSingle:
        // One pass over the register regardless of run length — the whole
        // point of fusion: flops scale with the run, bytes do not.
        estimate.flops += static_cast<double>(op.fused_count) * kMat2Flops *
                          pairs;
        estimate.bytes += 2.0 * amps * kAmpBytes;
        estimate.shared_bytes += static_cast<double>(op.fused_count) *
                                 kMat2Bytes;
        break;
      case Kernel::kControlledRotation:
      case Kernel::kCnot:
        estimate.flops += kMat2Flops * quads;
        estimate.bytes += 2.0 * (amps / 2.0) * kAmpBytes;
        estimate.shared_bytes += kMat2Bytes;
        break;
      case Kernel::kCzGate:
        estimate.flops += 2.0 * quads;
        estimate.bytes += 2.0 * quads * kAmpBytes;
        break;
      case Kernel::kFixedTwo:
        estimate.flops += kMat4Flops * quads;
        estimate.bytes += 2.0 * amps * kAmpBytes;
        estimate.shared_bytes += kMat4Bytes;
        break;
    }
  }
  const double lanes = static_cast<double>(batch);
  estimate.flops *= lanes;
  estimate.bytes *= lanes;
  return estimate;
}

PlanVerificationError::PlanVerificationError(const std::string& context,
                                             Diagnostics diagnostics)
    : Error(context + ": " +
            std::to_string(count_severity(diagnostics, Severity::kError)) +
            " error-severity plan-verification finding(s)"),
      diagnostics_(std::move(diagnostics)) {}

ScopedPlanVerification::ScopedPlanVerification(PlanVerifyOptions options)
    : counters_(std::make_shared<Counters>()) {
  const std::shared_ptr<Counters> counters = counters_;
  previous_ = exec::set_plan_attach_hook(
      [counters, options](const Circuit& circuit,
                          const exec::CompiledCircuit& plan) {
        Diagnostics diagnostics = verify_plan(circuit, plan, options);
        counters->plans.fetch_add(1, std::memory_order_relaxed);
        counters->warnings.fetch_add(
            count_severity(diagnostics, Severity::kWarning),
            std::memory_order_relaxed);
        if (has_errors(diagnostics)) {
          throw PlanVerificationError("compiled plan failed verification",
                                      std::move(diagnostics));
        }
      });
}

ScopedPlanVerification::~ScopedPlanVerification() {
  exec::set_plan_attach_hook(std::move(previous_));
}

std::size_t ScopedPlanVerification::plans_verified() const noexcept {
  return counters_->plans.load(std::memory_order_relaxed);
}

std::size_t ScopedPlanVerification::warnings() const noexcept {
  return counters_->warnings.load(std::memory_order_relaxed);
}

}  // namespace qbarren
