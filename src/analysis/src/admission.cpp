#include "qbarren/analysis/admission.hpp"

namespace qbarren {

namespace {

AdmissionDecision decide(Diagnostics findings) {
  AdmissionDecision decision;
  decision.admitted = !has_errors(findings);
  decision.findings = std::move(findings);
  return decision;
}

}  // namespace

AdmissionDecision admission_check(const VarianceExperimentOptions& options,
                                  const LintOptions& lint_options) {
  return decide(lint_variance_options(options, lint_options));
}

AdmissionDecision admission_check(const TrainingExperimentOptions& options,
                                  const LintOptions& lint_options) {
  return decide(lint_training_options(options, lint_options));
}

AdmissionDecision admission_check(const TrainingSweepOptions& options,
                                  const LintOptions& lint_options) {
  return decide(lint_sweep_options(options, lint_options));
}

}  // namespace qbarren
