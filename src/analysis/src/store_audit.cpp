#include "qbarren/analysis/store_audit.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace qbarren {

namespace {

std::string line_location(const std::string& path, std::size_t line) {
  if (line == 0) return path;
  return path + ":" + std::to_string(line);
}

}  // namespace

Diagnostics audit_store_scan(const CheckpointScan& scan,
                             const std::string& path,
                             const StoreAuditOptions& options) {
  Diagnostics out;
  const LintOptions& lint = options.lint;
  const auto emit = [&](Severity severity, const char* code,
                        std::string message, std::size_t line) {
    if (!lint.rule_enabled(code)) return;
    out.push_back({severity, code, std::move(message),
                   line_location(path, line)});
  };

  if (!scan.exists || !scan.header_ok) {
    std::string why = !scan.exists
                          ? "store cannot be opened"
                          : "first line is not 'qbarren-checkpoint <version>'";
    for (const CheckpointScanIssue& issue : scan.issues) {
      why += "; " + issue.message;
    }
    emit(Severity::kError, "QD110",
         "not a readable qbarren checkpoint: " + why, 0);
    // Nothing below the header is trustworthy — stop here, matching the
    // scanner, which parses no further either.
    return out;
  }

  if (!scan.version_ok) {
    emit(Severity::kError, "QD111",
         "format version skew: store declares version " +
             std::to_string(scan.version) + ", this build reads version " +
             std::to_string(Checkpoint::kFormatVersion),
         1);
  }

  if (!scan.has_fingerprint) {
    emit(Severity::kError, "QD112",
         "missing fingerprint line: the store cannot be matched to any "
         "run's options",
         2);
  } else if (!options.expected_fingerprint.empty() &&
             scan.fingerprint != options.expected_fingerprint) {
    emit(Severity::kError, "QD114",
         "foreign fingerprint: store was written under '" +
             scan.fingerprint + "', audited spec fingerprints as '" +
             options.expected_fingerprint +
             "' — a resume would (rightly) refuse this file; it belongs to "
             "a different run",
         2);
  }

  // Every structural scan issue is a way strict loading would fail and
  // open_salvaging would quarantine: surface each at its line.
  std::size_t qd112 = 0;
  for (const CheckpointScanIssue& issue : scan.issues) {
    if (!lint.rule_enabled("QD112")) break;
    if (++qd112 > lint.max_findings_per_rule) continue;
    emit(Severity::kError, "QD112",
         "torn or malformed record: " + issue.message, issue.line);
  }
  if (qd112 > lint.max_findings_per_rule) {
    emit(Severity::kError, "QD112",
         "... and " +
             std::to_string(qd112 - lint.max_findings_per_rule) +
             " more QD112 finding(s) suppressed (max_findings_per_rule = " +
             std::to_string(lint.max_findings_per_rule) + ")",
         0);
  }
  if (!scan.saw_end &&
      std::none_of(scan.issues.begin(), scan.issues.end(),
                   [](const CheckpointScanIssue& issue) {
                     return issue.message.find("end marker") !=
                            std::string::npos;
                   })) {
    emit(Severity::kError, "QD112",
         "torn or malformed record: file ends without an end marker", 0);
  }

  // Duplicate records: strict load's std::map silently keeps the last one.
  {
    std::map<std::string, std::size_t> first_line;
    std::size_t qd113 = 0;
    for (const CheckpointScan::Record& record : scan.records) {
      const auto [it, inserted] =
          first_line.emplace(record.key, record.line);
      if (inserted) continue;
      if (!lint.rule_enabled("QD113")) continue;
      if (++qd113 > lint.max_findings_per_rule) continue;
      emit(Severity::kError, "QD113",
           "duplicate cell record '" + record.key + "' (first at line " +
               std::to_string(it->second) +
               "): strict loading silently keeps the last record, "
               "shadowing the earlier data",
           record.line);
    }
    if (qd113 > lint.max_findings_per_rule) {
      emit(Severity::kError, "QD113",
           "... and " +
               std::to_string(qd113 - lint.max_findings_per_rule) +
               " more QD113 finding(s) suppressed (max_findings_per_rule "
               "= " +
               std::to_string(lint.max_findings_per_rule) + ")",
           0);
    }
  }

  // Orphans: complete records the audited spec's enumeration never reads.
  if (!options.expected_cells.empty()) {
    const std::set<std::string> expected(options.expected_cells.begin(),
                                         options.expected_cells.end());
    std::size_t qd115 = 0;
    for (const CheckpointScan::Record& record : scan.records) {
      std::string key = record.key;
      if (!options.cell_namespace.empty()) {
        if (key.rfind(options.cell_namespace, 0) != 0) continue;
        key.erase(0, options.cell_namespace.size());
      }
      if (expected.count(key) != 0) continue;
      if (!lint.rule_enabled("QD115")) continue;
      if (++qd115 > lint.max_findings_per_rule) continue;
      emit(Severity::kWarning, "QD115",
           "orphan cell '" + record.key +
               "': no cell of the audited spec's enumeration reads this "
               "key — the enumeration changed under the store, or the "
               "record is dead weight",
           record.line);
    }
    if (qd115 > lint.max_findings_per_rule) {
      emit(Severity::kWarning, "QD115",
           "... and " +
               std::to_string(qd115 - lint.max_findings_per_rule) +
               " more QD115 finding(s) suppressed (max_findings_per_rule "
               "= " +
               std::to_string(lint.max_findings_per_rule) + ")",
           0);
    }
  }

  return out;
}

Diagnostics audit_store(const std::string& path,
                        const StoreAuditOptions& options) {
  return audit_store_scan(scan_checkpoint_file(path), path, options);
}

}  // namespace qbarren
