#include "qbarren/analysis/lint.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "qbarren/analysis/dataflow.hpp"
#include "qbarren/analysis/plan_verify.hpp"
#include "qbarren/analysis/predict.hpp"
#include "qbarren/common/error.hpp"
#include "qbarren/linalg/checks.hpp"

namespace qbarren {
namespace {

std::string param_location(std::size_t index) {
  std::string loc = "param ";
  loc += std::to_string(index);
  return loc;
}

std::string op_location(std::size_t index) {
  std::string loc = "op ";
  loc += std::to_string(index);
  return loc;
}

std::string qubit_location(std::size_t q) {
  std::string loc = "q[";
  loc += std::to_string(q);
  loc += "]";
  return loc;
}

/// Collects per-site findings for one rule, folding everything past
/// `max_findings_per_rule` into a single "... and N more" summary so a
/// pathological circuit cannot flood the report.
class RuleSink {
 public:
  RuleSink(Diagnostics& out, const LintOptions& options, Severity severity,
           std::string code)
      : out_(out),
        cap_(options.max_findings_per_rule),
        severity_(severity),
        code_(std::move(code)) {}

  void add(std::string message, std::string location) {
    ++total_;
    if (total_ <= cap_) {
      out_.push_back(
          {severity_, code_, std::move(message), std::move(location)});
    }
  }

  ~RuleSink() {
    if (total_ > cap_) {
      std::string message = "... and ";
      message += std::to_string(total_ - cap_);
      message += " more ";
      message += code_;
      message += " finding(s) suppressed (max_findings_per_rule = ";
      message += std::to_string(cap_);
      message += ")";
      out_.push_back({severity_, code_, std::move(message), ""});
    }
  }

  RuleSink(const RuleSink&) = delete;
  RuleSink& operator=(const RuleSink&) = delete;

 private:
  Diagnostics& out_;
  std::size_t cap_;
  std::size_t total_ = 0;
  Severity severity_;
  std::string code_;
};

// --- QB001: structurally dead parameters -----------------------------------

void rule_dead_parameters(const Circuit& circuit, const CircuitDataflow& flow,
                          const CircuitLintContext& context,
                          const LintOptions& options, Diagnostics& out) {
  if (context.observable_qubits.empty() || circuit.num_parameters() == 0) {
    return;
  }
  const CircuitDataflow::LightCone report =
      flow.backward_light_cone(context.observable_qubits);
  if (report.dead_count == 0) return;

  // The parameter the experiment actually differentiates being dead is the
  // worst case: every gradient sample the run would collect is exactly 0,
  // so the measured "variance" is an artifact, not a barren-plateau signal.
  if (context.differentiated_parameter.has_value()) {
    const std::size_t k = *context.differentiated_parameter;
    if (k < report.alive.size() && !report.alive[k]) {
      const Operation& op = circuit.operation_for_parameter(k);
      std::ostringstream msg;
      msg << "differentiated parameter " << k << " (rotation on q["
          << op.qubit0 << "]) is outside the observable's backward light "
          << "cone: its gradient is identically zero, so every sample of "
          << "this experiment measures exactly 0";
      out.push_back({Severity::kError, "QB001", msg.str(), param_location(k)});
    }
  }

  RuleSink sink(out, options, Severity::kWarning, "QB001");
  for (std::size_t k = 0; k < report.alive.size(); ++k) {
    if (report.alive[k]) continue;
    if (context.differentiated_parameter == k) continue;  // reported above
    const Operation& op = circuit.operation_for_parameter(k);
    std::ostringstream msg;
    msg << "parameter " << k << " (rotation on q[" << op.qubit0
        << "]) has a structurally zero gradient for this observable "
        << "(dead: " << report.dead_count << "/" << report.alive.size()
        << " parameters)";
    sink.add(msg.str(), param_location(k));
  }
}

// --- QB002: barren-plateau risk (global cost x deep HEA) --------------------

/// The observable support the variance model analyzes: the declared
/// support, or (for a global cost with no explicit support) the full
/// register, which is what "global" means.
std::vector<std::size_t> model_support(const Circuit& circuit,
                                       const CircuitLintContext& context) {
  if (!context.observable_qubits.empty()) return context.observable_qubits;
  std::vector<std::size_t> all(circuit.num_qubits());
  for (std::size_t q = 0; q < all.size(); ++q) all[q] = q;
  return all;
}

/// Baseline prediction shared by QB002/QB011/QN120: the closed-form model
/// evaluated under the random U[0, 2*pi) law — the BP benchmark every
/// experiment's improvement statistic is measured against. nullopt when
/// the model refuses (the caller reports applicability() instead).
std::optional<VariancePrediction> baseline_prediction(
    const Circuit& circuit, const VariancePredictor& predictor,
    const CircuitLintContext& context) {
  if (!predictor.applicable()) return std::nullopt;
  const auto angles = angle_model_for("random", circuit);
  if (!angles.has_value()) return std::nullopt;
  const PredictedCost cost = context.global_cost
                                 ? PredictedCost::kGlobalProjector
                                 : (context.observable_qubits.size() <= 2
                                        ? PredictedCost::kPauli
                                        : PredictedCost::kLocalProjector);
  return predictor.predict(*angles, model_support(circuit, context), cost);
}

void rule_bp_risk(const Circuit& circuit, const CircuitLintContext& context,
                  const LintOptions& options,
                  const VariancePredictor* predictor,
                  const std::optional<VariancePrediction>& baseline,
                  Diagnostics& out) {
  if (!context.global_cost) return;
  const std::size_t n = circuit.num_qubits();
  const std::size_t depth = circuit.depth();
  if (n < options.bp_min_qubits || depth < options.bp_min_depth) return;

  std::ostringstream msg;
  msg << "global cost on a " << n << "-qubit, depth-" << depth
      << " hardware-efficient circuit: ";
  if (baseline.has_value()) {
    // Closed-form 2-design model (predict.hpp), random-baseline law: the
    // same estimate `qbarren predict` reports, conformance-checked against
    // the Monte-Carlo pipeline in CI.
    const VariancePrediction& p = *baseline;
    double worst = 0.0;
    std::size_t worst_width = 0;
    bool any = false;
    for (const ParameterPrediction& pp : p.parameters) {
      if (!pp.alive) continue;
      if (!any || pp.variance < worst) {
        worst = pp.variance;
        worst_width = pp.cone_width;
        any = true;
      }
    }
    msg << "closed-form 2-design model predicts gradient variance ~" << worst
        << " for the deepest parameter (light-cone width " << worst_width
        << ", Haar limit c0*2^(-2w) under the " << p.angles.law
        << " baseline law; exponential decay with width, McClean et al. "
        << "2018)";
  } else {
    msg << "the circuit approximates a 2-design whose gradient variance "
        << "decays exponentially with width (McClean et al. 2018)";
    if (predictor != nullptr && !predictor->applicable()) {
      msg << "; the closed-form model refuses a numeric estimate here (see "
          << "QB011)";
    }
  }
  msg << ". Consider a local cost (Cerezo et al. 2021) or a "
      << "variance-preserving initializer";
  out.push_back({Severity::kWarning, "QB002", msg.str(), "cost"});
}

// --- QB003: redundant adjacent same-axis rotations --------------------------

bool is_rotation_kind(OpKind kind) {
  return kind == OpKind::kRotation || kind == OpKind::kFixedRotation;
}

void rule_redundant_rotations(const Circuit& circuit,
                              const LintOptions& options, Diagnostics& out) {
  RuleSink sink(out, options, Severity::kWarning, "QB003");
  // prev_rot[q] = index of the last op touching q, if it was a single-qubit
  // rotation; any intervening op on q (of any kind) resets the slot. This
  // is the same adjacency notion fuse_rotations() in circuit/optimize.hpp
  // uses, so every finding is mechanically fixable by that pass.
  std::vector<std::optional<std::size_t>> prev_rot(circuit.num_qubits());
  const std::vector<Operation>& ops = circuit.operations();
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Operation& op = ops[i];
    if (is_two_qubit(op.kind) || op.kind == OpKind::kControlledRotation) {
      prev_rot[op.qubit0].reset();
      prev_rot[op.qubit1].reset();
      continue;
    }
    if (!is_rotation_kind(op.kind)) {
      prev_rot[op.qubit0].reset();
      continue;
    }
    if (prev_rot[op.qubit0].has_value()) {
      const Operation& prev = ops[*prev_rot[op.qubit0]];
      if (prev.axis == op.axis) {
        std::ostringstream msg;
        msg << "adjacent " << gates::axis_name(op.axis) << " rotations on q["
            << op.qubit0 << "] (ops " << *prev_rot[op.qubit0] << ", " << i
            << ") compose to one rotation; the pair adds depth and an "
            << "over-parameterized direction (fuse_rotations() merges them)";
        sink.add(msg.str(), op_location(i));
      }
    }
    prev_rot[op.qubit0] = i;
  }
}

// --- QB004: qubits no entangler touches -------------------------------------

void rule_unentangled_qubits(const Circuit& circuit,
                             const CircuitDataflow& flow,
                             const LintOptions& options, Diagnostics& out) {
  if (circuit.num_qubits() < 2) return;  // nothing to entangle with
  RuleSink sink(out, options, Severity::kWarning, "QB004");
  for (std::size_t q = 0; q < circuit.num_qubits(); ++q) {
    if (flow.entangled(q)) continue;
    std::ostringstream msg;
    msg << "q[" << q << "] is never touched by an entangling gate: the "
        << "state stays a product across this cut, so the circuit cannot "
        << "be the hardware-efficient ansatz the experiment assumes";
    sink.add(msg.str(), qubit_location(q));
  }
}

// --- QB005: layer-shape / parameter-count mismatch --------------------------

void rule_layer_shape(const Circuit& circuit, Diagnostics& out) {
  const std::optional<LayerShape>& shape = circuit.layer_shape();
  if (!shape.has_value()) {
    if (circuit.num_parameters() > 0) {
      out.push_back(
          {Severity::kInfo, "QB005",
           "circuit carries no layer-shape metadata; fan-based "
           "initializers fall back to a single (1 x num_parameters) layer",
           "layer_shape"});
    }
    return;
  }
  const std::size_t product = shape->layers * shape->params_per_layer;
  if (product == circuit.num_parameters() && product > 0) return;
  std::ostringstream msg;
  msg << "layer shape (" << shape->layers << " x " << shape->params_per_layer
      << " = " << product << ") does not tile the parameter vector ("
      << circuit.num_parameters() << " parameters): fan-based initializers "
      << "(init/fan.hpp) would compute fan-in/fan-out from a wrong tensor "
      << "shape";
  out.push_back({Severity::kWarning, "QB005", msg.str(), "layer_shape"});
}

// --- QB006: malformed custom gates ------------------------------------------

void rule_custom_gates(const Circuit& circuit, const LintOptions& options,
                       Diagnostics& out) {
  if (circuit.custom_gates().empty()) return;
  RuleSink sink(out, options, Severity::kError, "QB006");
  const std::vector<Operation>& ops = circuit.operations();
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Operation& op = ops[i];
    if (op.kind != OpKind::kCustomSingle && op.kind != OpKind::kCustomTwo) {
      continue;
    }
    const CustomGate& gate = circuit.custom_gate(op);
    const std::size_t dim = op.kind == OpKind::kCustomSingle ? 2 : 4;
    if (gate.matrix.rows() != dim || gate.matrix.cols() != dim) {
      std::ostringstream msg;
      msg << "custom gate '" << gate.name << "' is " << gate.matrix.rows()
          << "x" << gate.matrix.cols() << " but its "
          << (dim == 2 ? "single" : "two") << "-qubit use needs " << dim << "x"
          << dim << "; apply() would throw at execution";
      sink.add(msg.str(), op_location(i));
      continue;
    }
    if (!is_unitary(gate.matrix, options.unitarity_tolerance)) {
      std::ostringstream msg;
      msg << "custom gate '" << gate.name << "' is not unitary (max |u^H u"
          << " - I| exceeds " << options.unitarity_tolerance
          << "): simulation would silently denormalize the state";
      sink.add(msg.str(), op_location(i));
    }
  }
}

// --- QB008: adjacent cancelling gate pairs ----------------------------------

/// True when the (constant) op's matrix is available for the cancellation
/// product: non-parameterized, and for custom gates, correctly sized.
bool has_constant_matrix(const Circuit& circuit, const Operation& op) {
  if (is_parameterized(op.kind)) return false;
  if (op.kind == OpKind::kCustomSingle || op.kind == OpKind::kCustomTwo) {
    const std::size_t dim = op.kind == OpKind::kCustomSingle ? 2 : 4;
    const ComplexMatrix& m = circuit.custom_gate(op).matrix;
    return m.rows() == dim && m.cols() == dim;
  }
  return true;
}

/// True when m ≈ c * I with |c| = 1 (a global phase, physically the
/// identity).
bool is_scalar_identity(const ComplexMatrix& m, double tol) {
  const Complex c = m(0, 0);
  if (std::abs(std::abs(c) - 1.0) > tol) return false;
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t col = 0; col < m.cols(); ++col) {
      const Complex expected = r == col ? c : Complex{};
      if (std::abs(m(r, col) - expected) > tol) return false;
    }
  }
  return true;
}

void rule_cancelling_pairs(const Circuit& circuit, const CircuitDataflow& flow,
                           const LintOptions& options, Diagnostics& out) {
  RuleSink sink(out, options, Severity::kWarning, "QB008");
  const std::vector<Operation>& ops = circuit.operations();
  const double tol = options.unitarity_tolerance;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Operation& op = ops[i];
    if (!has_constant_matrix(circuit, op)) continue;

    if (!is_two_qubit(op.kind)) {
      // Wire-graph successor = next op touching this qubit; everything in
      // between acts on other qubits and commutes past both.
      const std::size_t j = flow.next_on_wire(i, op.qubit0);
      if (j == CircuitDataflow::kNoOp) continue;
      const Operation& next = ops[j];
      if (is_two_qubit(next.kind) || !has_constant_matrix(circuit, next)) {
        continue;
      }
      const ComplexMatrix product =
          circuit.operation_matrix(j, {}) * circuit.operation_matrix(i, {});
      if (!is_scalar_identity(product, tol)) continue;
      std::ostringstream msg;
      msg << "ops " << i << " and " << j << " on q[" << op.qubit0
          << "] are adjacent up to commutation and compose to the identity "
          << "(up to global phase): the pair cancels and only adds depth";
      sink.add(msg.str(), op_location(i));
      continue;
    }

    // Two-qubit pair: the next op on BOTH wires must be the same op, i.e.
    // nothing in between touches either qubit.
    const std::size_t j = flow.next_on_wire(i, op.qubit0);
    if (j == CircuitDataflow::kNoOp ||
        j != flow.next_on_wire(i, op.qubit1)) {
      continue;
    }
    const Operation& next = ops[j];
    if (!is_two_qubit(next.kind) || !has_constant_matrix(circuit, next)) {
      continue;
    }
    ComplexMatrix next_matrix = circuit.operation_matrix(j, {});
    if (next.qubit0 == op.qubit1 && next.qubit1 == op.qubit0) {
      // Same pair in the opposite order: express next's matrix in op's
      // qubit order by conjugating with SWAP.
      next_matrix = gates::swap() * next_matrix * gates::swap();
    } else if (next.qubit0 != op.qubit0 || next.qubit1 != op.qubit1) {
      continue;  // unreachable: sharing both wires means the same pair
    }
    const ComplexMatrix product =
        next_matrix * circuit.operation_matrix(i, {});
    if (!is_scalar_identity(product, tol)) continue;
    std::ostringstream msg;
    msg << "ops " << i << " and " << j << " on (q[" << op.qubit0 << "], q["
        << op.qubit1 << "]) are adjacent up to commutation and compose to "
        << "the identity (up to global phase): the pair cancels and only "
        << "adds depth";
    sink.add(msg.str(), op_location(i));
  }
}

// --- QB009: per-parameter light-cone width report ---------------------------

void rule_cone_widths(const Circuit& circuit, const CircuitDataflow& flow,
                      const CircuitLintContext& context, Diagnostics& out) {
  if (context.observable_qubits.empty() || circuit.num_parameters() == 0) {
    return;
  }
  const CircuitDataflow::LightCone cone =
      flow.backward_light_cone(context.observable_qubits);
  std::vector<std::size_t> widths;
  widths.reserve(cone.alive.size());
  for (std::size_t p = 0; p < cone.alive.size(); ++p) {
    if (cone.alive[p]) widths.push_back(cone.cone_width[p]);
  }
  if (widths.empty()) return;  // all dead: QB001 already reports that
  std::sort(widths.begin(), widths.end());
  std::ostringstream msg;
  msg << "backward light-cone widths across " << cone.alive.size()
      << " parameter(s): min " << widths.front() << ", median "
      << widths[widths.size() / 2] << ", max " << widths.back() << " of "
      << circuit.num_qubits() << " qubit(s)";
  if (cone.dead_count > 0) {
    msg << " (" << cone.dead_count << " structurally dead)";
  }
  msg << "; a gradient's variance scales with the effective register its "
      << "parameter sees, not the full width (McClean et al. 2018)";
  out.push_back({Severity::kInfo, "QB009", msg.str(), "light-cone"});

  if (context.differentiated_parameter.has_value()) {
    const std::size_t k = *context.differentiated_parameter;
    if (k < cone.alive.size() && cone.alive[k]) {
      std::ostringstream detail;
      detail << "differentiated parameter " << k
             << " sees a backward light cone of " << cone.cone_width[k]
             << " of " << circuit.num_qubits() << " qubit(s)";
      out.push_back(
          {Severity::kInfo, "QB009", detail.str(), param_location(k)});
    }
  }
}

// --- QB010: static plan cost estimate ---------------------------------------

void rule_plan_cost(const Circuit& circuit, Diagnostics& out) {
  std::shared_ptr<const exec::CompiledCircuit> plan;
  try {
    plan = exec::CompiledCircuit::compile(circuit);
  } catch (const InvalidArgument&) {
    return;  // unlowerable (malformed custom gate): QB006 reports the cause
  }
  const PlanResourceEstimate estimate = estimate_plan_resources(*plan);
  std::ostringstream msg;
  msg << "compiled plan: " << estimate.plan_ops << " kernel op(s) ("
      << estimate.fused_runs << " fused run(s)) on " << circuit.num_qubits()
      << " qubit(s); estimated " << estimate.flops << " flops and "
      << estimate.bytes << " bytes moved per application";
  out.push_back({Severity::kInfo, "QB010", msg.str(), "plan"});
}

// --- QB011: closed-form predicted gradient variance -------------------------

void rule_predicted_variance(const Circuit& circuit,
                             const CircuitLintContext& context,
                             const LintOptions& options,
                             const VariancePredictor& predictor,
                             const std::optional<VariancePrediction>& baseline,
                             Diagnostics& out) {
  if (!predictor.applicable()) {
    // The model refuses (custom gates, no parameters): surface its own
    // info diagnostics instead of a wrong number.
    for (const Diagnostic& d : predictor.applicability()) {
      out.push_back(d);
    }
    return;
  }
  if (!baseline.has_value()) return;
  const VariancePrediction& p = *baseline;

  std::vector<double> alive;
  std::size_t near_identity = 0;
  std::size_t transition = 0;
  std::size_t two_design = 0;
  for (const ParameterPrediction& pp : p.parameters) {
    if (!pp.alive) continue;
    alive.push_back(pp.variance);
    switch (pp.regime) {
      case VarianceRegime::kNearIdentity:
        ++near_identity;
        break;
      case VarianceRegime::kTransition:
        ++transition;
        break;
      case VarianceRegime::kTwoDesign:
        ++two_design;
        break;
      case VarianceRegime::kDead:
        break;
    }
  }
  if (alive.empty()) return;  // all dead: QB001 reports that
  std::sort(alive.begin(), alive.end());
  std::ostringstream msg;
  msg << "closed-form 2-design variance model (random-baseline law "
      << p.angles.law << "): predicted Var[dC/dtheta] min " << alive.front()
      << ", median " << alive[alive.size() / 2] << ", max " << alive.back()
      << " across " << alive.size() << " alive parameter(s); regimes: "
      << near_identity << " near-identity, " << transition << " transition, "
      << two_design << " 2-design; assumptions: " << p.assumptions.back()
      << "; validated against the Monte-Carlo Fig 5a pipeline "
      << "(predict_conformance)";
  out.push_back({Severity::kInfo, "QB011", msg.str(), "variance-model"});

  if (!context.differentiated_parameter.has_value()) return;
  const std::size_t k = *context.differentiated_parameter;
  if (k >= p.parameters.size() || !p.parameters[k].alive) return;
  const ParameterPrediction& pk = p.parameters[k];
  {
    std::ostringstream detail;
    detail << "differentiated parameter " << k << ": predicted variance "
           << pk.variance << " (" << variance_regime_name(pk.regime)
           << " regime, light-cone width " << pk.cone_width << ")";
    out.push_back({Severity::kInfo, "QB011", detail.str(), param_location(k)});
  }
  if (pk.variance < options.bp_variance_floor) {
    std::ostringstream err;
    err << "differentiated parameter " << k
        << " is provably barren under the random baseline: predicted "
        << "gradient variance " << pk.variance << " < floor "
        << options.bp_variance_floor
        << " (bp_variance_floor), so the improvement-vs-random statistic "
        << "this experiment exists to compute would be dominated by "
        << "sampling noise. Use fewer qubits or a local cost, or raise "
        << "bp_variance_floor / disable QB011 to force the run";
    out.push_back({Severity::kError, "QB011", err.str(), param_location(k)});
  }
}

// --- QN120: predicted variance below the FP noise floor ---------------------

void rule_noise_floor(const CircuitLintContext& context,
                      const std::optional<VariancePrediction>& baseline,
                      Diagnostics& out) {
  if (!baseline.has_value()) return;
  if (!context.differentiated_parameter.has_value()) return;
  const VariancePrediction& p = *baseline;
  const std::size_t k = *context.differentiated_parameter;
  if (k >= p.parameters.size() || !p.parameters[k].alive) return;
  const ParameterPrediction& pk = p.parameters[k];
  if (pk.variance >= p.noise_floor) return;
  std::ostringstream msg;
  msg << "predicted gradient variance " << pk.variance
      << " of differentiated parameter " << k
      << " sits below the compiled plan's accumulated rounding-error bound "
      << "(noise floor " << p.noise_floor << " from " << p.plan_ops
      << " kernel op(s)): a simulated gradient sample at this scale is "
      << "numerically indistinguishable from floating-point noise, so the "
      << "Monte-Carlo result would be untrustworthy";
  out.push_back({Severity::kError, "QN120", msg.str(), param_location(k)});
}

}  // namespace

bool LintOptions::rule_enabled(const std::string& code) const {
  return std::find(disabled_codes.begin(), disabled_codes.end(), code) ==
         disabled_codes.end();
}

Diagnostics lint_circuit(const Circuit& circuit,
                         const CircuitLintContext& context,
                         const LintOptions& options) {
  for (std::size_t q : context.observable_qubits) {
    QBARREN_REQUIRE(q < circuit.num_qubits(),
                    "lint_circuit: observable qubit out of range");
  }
  if (context.differentiated_parameter.has_value()) {
    QBARREN_REQUIRE(*context.differentiated_parameter <
                        circuit.num_parameters(),
                    "lint_circuit: differentiated_parameter out of range");
  }
  // One dataflow build (wire graph + parameter dependence) shared by every
  // structural rule.
  const CircuitDataflow flow(circuit);

  // One predictor build (its own dataflow + plan-noise model) shared by the
  // variance-model rules; constructed only when some rule will consume it.
  const bool want_model =
      circuit.num_parameters() > 0 &&
      (!context.observable_qubits.empty() || context.global_cost) &&
      (options.rule_enabled("QB002") || options.rule_enabled("QB011") ||
       options.rule_enabled("QN120"));
  std::optional<VariancePredictor> predictor;
  std::optional<VariancePrediction> baseline;
  if (want_model) {
    predictor.emplace(circuit);
    baseline = baseline_prediction(circuit, *predictor, context);
  }

  Diagnostics out;
  if (options.rule_enabled("QB001")) {
    rule_dead_parameters(circuit, flow, context, options, out);
  }
  if (options.rule_enabled("QB002")) {
    rule_bp_risk(circuit, context, options,
                 predictor.has_value() ? &*predictor : nullptr, baseline, out);
  }
  if (options.rule_enabled("QB003")) {
    rule_redundant_rotations(circuit, options, out);
  }
  if (options.rule_enabled("QB004")) {
    rule_unentangled_qubits(circuit, flow, options, out);
  }
  if (options.rule_enabled("QB005")) {
    rule_layer_shape(circuit, out);
  }
  if (options.rule_enabled("QB006")) {
    rule_custom_gates(circuit, options, out);
  }
  if (options.rule_enabled("QB008")) {
    rule_cancelling_pairs(circuit, flow, options, out);
  }
  if (options.rule_enabled("QB009")) {
    rule_cone_widths(circuit, flow, context, out);
  }
  if (options.rule_enabled("QB010")) {
    rule_plan_cost(circuit, out);
  }
  if (options.rule_enabled("QB011") && predictor.has_value()) {
    rule_predicted_variance(circuit, context, options, *predictor, baseline,
                            out);
  }
  if (options.rule_enabled("QN120")) {
    rule_noise_floor(context, baseline, out);
  }
  return out;
}

Diagnostics lint_seed_assignments(
    const std::vector<std::pair<std::string, std::uint64_t>>& cells,
    const LintOptions& options) {
  Diagnostics out;
  if (!options.rule_enabled("QB007")) return out;
  std::map<std::uint64_t, std::vector<const std::string*>> by_seed;
  for (const auto& [label, seed] : cells) {
    by_seed[seed].push_back(&label);
  }
  RuleSink sink(out, options, Severity::kWarning, "QB007");
  for (const auto& [seed, labels] : by_seed) {
    if (labels.size() < 2) continue;
    std::ostringstream msg;
    msg << "seed " << seed << " is assigned to " << labels.size()
        << " cells (";
    for (std::size_t i = 0; i < labels.size(); ++i) {
      if (i > 0) msg << ", ";
      msg << *labels[i];
    }
    msg << "): their samples are identical draws, not independent "
        << "replicates";
    sink.add(msg.str(), "seed " + std::to_string(seed));
  }
  return out;
}

const std::vector<LintRuleInfo>& lint_rules() {
  static const std::vector<LintRuleInfo> kRules = {
      {"QB001", Severity::kError,
       "structurally dead parameter: the observable's backward light cone "
       "misses its rotation, so the gradient is identically zero",
       "light-cone analysis; paper Sec. 2 (Eq 2 circuit vs local observable)"},
      {"QB002", Severity::kWarning,
       "global cost on a deep, wide hardware-efficient ansatz: the "
       "closed-form 2-design model predicts exponentially decaying "
       "gradient variance (barren plateau)",
       "McClean et al. 2018; Cerezo et al. 2021; paper Eq 4; predict.hpp"},
      {"QB003", Severity::kWarning,
       "adjacent same-axis rotations on one qubit compose to a single "
       "rotation (wasted depth, over-parameterization)",
       "circuit identities; circuit/optimize.hpp fuse_rotations()"},
      {"QB004", Severity::kWarning,
       "qubit untouched by any entangling gate: the register factors into "
       "a product across that cut",
       "hardware-efficient-ansatz structure; paper Sec. 3"},
      {"QB005", Severity::kWarning,
       "layer-shape metadata does not tile the parameter vector, so "
       "fan-based initializers compute fans from a wrong tensor shape",
       "paper Sec. 4 (Xavier/He initialization); init/fan.hpp"},
      {"QB006", Severity::kError,
       "custom gate matrix has wrong dimensions or is non-unitary; "
       "simulation would throw or silently denormalize the state",
       "unitarity of quantum evolution; linalg/checks.hpp"},
      {"QB007", Severity::kWarning,
       "RNG seed reused across experiment cells: their samples are "
       "identical draws, not independent replicates",
       "paper Sec. 5 experimental protocol (independent repetitions)"},
      {"QB008", Severity::kWarning,
       "adjacent (up to commutation) constant gate pair composes to the "
       "identity: the pair cancels and only adds depth",
       "circuit identities; analysis/dataflow.hpp wire graph"},
      {"QB009", Severity::kInfo,
       "per-parameter backward light-cone width: the effective register "
       "each gradient sees, predicting its variance scaling",
       "McClean et al. 2018; Cerezo et al. 2021 cost locality"},
      {"QB010", Severity::kInfo,
       "statically estimated flops/bytes per application of the compiled "
       "execution plan",
       "exec/compiled_circuit.hpp lowering; plan_verify.hpp cost model"},
      {"QB011", Severity::kInfo,
       "closed-form per-parameter predicted gradient variance under the "
       "random baseline law; escalates to an error when the differentiated "
       "parameter is provably barren (below bp_variance_floor)",
       "Grant et al. 2019; Park et al. 2024; predict.hpp, conformance-"
       "checked vs the Monte-Carlo Fig 5a pipeline"},
      {"QN120", Severity::kError,
       "predicted gradient variance below the compiled plan's accumulated "
       "floating-point rounding-error bound: a Monte-Carlo sample would be "
       "numerically indistinguishable from noise",
       "predict.hpp FP-noise-floor model; plan_verify.hpp op counts"},
  };
  return kRules;
}

Table lint_rule_table() {
  Table table({"code", "severity", "predicts", "source"});
  for (const LintRuleInfo& rule : lint_rules()) {
    table.begin_row();
    table.push(rule.code);
    table.push(severity_name(rule.severity));
    table.push(rule.summary);
    table.push(rule.reference);
  }
  return table;
}

}  // namespace qbarren
