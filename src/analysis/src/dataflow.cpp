#include "qbarren/analysis/dataflow.hpp"

#include <algorithm>

#include "qbarren/common/error.hpp"

namespace qbarren {

namespace {

std::size_t popcount(const std::vector<bool>& bits) {
  return static_cast<std::size_t>(std::count(bits.begin(), bits.end(), true));
}

/// Backward transfer function of one operation: conjugating an observable
/// through a two-qubit gate spreads its support to both qubits whenever it
/// touches either; single-qubit gates preserve support.
std::vector<bool> transfer_backward(const Operation& op,
                                    std::vector<bool> support) {
  if (is_two_qubit(op.kind) && (support[op.qubit0] || support[op.qubit1])) {
    support[op.qubit0] = true;
    support[op.qubit1] = true;
  }
  return support;
}

}  // namespace

CircuitDataflow::CircuitDataflow(const Circuit& circuit)
    : circuit_(&circuit), ops_size_(circuit.num_operations()) {
  const auto& ops = circuit.operations();
  by_qubit_.resize(circuit.num_qubits());
  entangled_.assign(circuit.num_qubits(), false);
  for (auto& chain : prev_) chain.assign(ops_size_, kNoOp);
  for (auto& chain : next_) chain.assign(ops_size_, kNoOp);
  param_op_.assign(circuit.num_parameters(), kNoOp);
  param_use_count_.assign(circuit.num_parameters(), 0);

  struct WireTail {
    std::size_t op = kNoOp;
    std::size_t slot = 0;
  };
  std::vector<WireTail> tail(circuit.num_qubits());

  for (std::size_t k = 0; k < ops_size_; ++k) {
    const Operation& op = ops[k];
    const std::size_t wire_slots = is_two_qubit(op.kind) ? 2 : 1;
    for (std::size_t s = 0; s < wire_slots; ++s) {
      const std::size_t w = s == 0 ? op.qubit0 : op.qubit1;
      QBARREN_REQUIRE(w < circuit.num_qubits(),
                      "CircuitDataflow: operation qubit out of range");
      prev_[s][k] = tail[w].op;
      if (tail[w].op != kNoOp) {
        next_[tail[w].slot][tail[w].op] = k;
      }
      tail[w] = {k, s};
      by_qubit_[w].push_back(k);
      if (is_two_qubit(op.kind)) {
        entangled_[w] = true;
      }
    }
    if (is_parameterized(op.kind)) {
      QBARREN_REQUIRE(op.param_index < param_op_.size(),
                      "CircuitDataflow: parameter index out of range");
      if (param_op_[op.param_index] == kNoOp) {
        param_op_[op.param_index] = k;
      }
      ++param_use_count_[op.param_index];
    }
  }
}

const std::vector<std::size_t>& CircuitDataflow::ops_on_qubit(
    std::size_t q) const {
  QBARREN_REQUIRE(q < by_qubit_.size(),
                  "CircuitDataflow::ops_on_qubit: qubit out of range");
  return by_qubit_[q];
}

std::array<std::size_t, 2> CircuitDataflow::wires(std::size_t op) const {
  QBARREN_REQUIRE(op < ops_size_, "CircuitDataflow::wires: op out of range");
  const Operation& o = circuit_->operations()[op];
  return {o.qubit0, o.qubit1};
}

std::size_t CircuitDataflow::wire_count(std::size_t op) const {
  QBARREN_REQUIRE(op < ops_size_,
                  "CircuitDataflow::wire_count: op out of range");
  return is_two_qubit(circuit_->operations()[op].kind) ? 2 : 1;
}

std::size_t CircuitDataflow::prev_on_wire(std::size_t op,
                                          std::size_t qubit) const {
  QBARREN_REQUIRE(op < ops_size_,
                  "CircuitDataflow::prev_on_wire: op out of range");
  const auto w = wires(op);
  for (std::size_t s = 0; s < wire_count(op); ++s) {
    if (w[s] == qubit) return prev_[s][op];
  }
  throw InvalidArgument(
      "CircuitDataflow::prev_on_wire: qubit is not a wire of op");
}

std::size_t CircuitDataflow::next_on_wire(std::size_t op,
                                          std::size_t qubit) const {
  QBARREN_REQUIRE(op < ops_size_,
                  "CircuitDataflow::next_on_wire: op out of range");
  const auto w = wires(op);
  for (std::size_t s = 0; s < wire_count(op); ++s) {
    if (w[s] == qubit) return next_[s][op];
  }
  throw InvalidArgument(
      "CircuitDataflow::next_on_wire: qubit is not a wire of op");
}

bool CircuitDataflow::entangled(std::size_t q) const {
  QBARREN_REQUIRE(q < entangled_.size(),
                  "CircuitDataflow::entangled: qubit out of range");
  return entangled_[q];
}

std::size_t CircuitDataflow::op_for_parameter(std::size_t p) const {
  QBARREN_REQUIRE(p < param_op_.size(),
                  "CircuitDataflow::op_for_parameter: parameter out of range");
  return param_op_[p];
}

std::size_t CircuitDataflow::parameter_use_count(std::size_t p) const {
  QBARREN_REQUIRE(p < param_use_count_.size(),
                  "CircuitDataflow::parameter_use_count: parameter out of "
                  "range");
  return param_use_count_[p];
}

CircuitDataflow::LightCone CircuitDataflow::backward_light_cone(
    const std::vector<std::size_t>& observable_qubits) const {
  QBARREN_REQUIRE(!observable_qubits.empty(),
                  "backward_light_cone: empty observable support");
  std::vector<bool> boundary(circuit_->num_qubits(), false);
  for (const std::size_t q : observable_qubits) {
    QBARREN_REQUIRE(q < circuit_->num_qubits(),
                    "backward_light_cone: observable qubit out of range");
    boundary[q] = true;
  }

  const auto& ops = circuit_->operations();

  // seen[k] = support of the observable conjugated through every
  // operation AFTER k — what operation k "sees" on the backward walk.
  // Solve seen[k] = transfer(op[k+1], seen[k+1]) (seen[last] = boundary)
  // by iterating reverse sweeps to a fixpoint. One sweep suffices for a
  // straight-line program; the extra confirming sweep checks that rather
  // than assuming it.
  std::vector<std::vector<bool>> seen(ops_size_);
  LightCone cone;
  cone.support_width.assign(ops_size_, 0);
  bool changed = ops_size_ > 0;
  while (changed) {
    changed = false;
    ++cone.sweeps;
    for (std::size_t k = ops_size_; k-- > 0;) {
      std::vector<bool> value = (k + 1 == ops_size_)
                                    ? boundary
                                    : transfer_backward(ops[k + 1], seen[k + 1]);
      if (value != seen[k]) {
        seen[k] = std::move(value);
        changed = true;
      }
    }
  }

  cone.alive.assign(circuit_->num_parameters(), false);
  cone.cone_width.assign(circuit_->num_parameters(), 0);
  for (std::size_t k = 0; k < ops_size_; ++k) {
    const Operation& op = ops[k];
    cone.support_width[k] = popcount(seen[k]);
    if (!is_parameterized(op.kind)) continue;
    const bool alive = is_two_qubit(op.kind)
                           ? (seen[k][op.qubit0] || seen[k][op.qubit1])
                           : seen[k][op.qubit0];
    if (alive && !cone.alive[op.param_index]) {
      cone.alive[op.param_index] = true;
      cone.cone_width[op.param_index] = cone.support_width[k];
    }
  }
  for (const bool alive : cone.alive) {
    if (!alive) ++cone.dead_count;
  }
  return cone;
}

}  // namespace qbarren
