#include "qbarren/analysis/preflight.hpp"

#include <algorithm>
#include <iostream>
#include <utility>

#include "qbarren/analysis/stream_graph.hpp"
#include "qbarren/circuit/ansatz.hpp"
#include "qbarren/common/rng.hpp"

namespace qbarren {
namespace {

/// The sampled-parameter index of a variance run, mirroring the experiment
/// loop in bp/variance.cpp (kLast is the paper's choice).
std::size_t sampled_parameter(const Circuit& circuit,
                              GradientParameter which) {
  switch (which) {
    case GradientParameter::kLast:
      return circuit.num_parameters() - 1;
    case GradientParameter::kMiddle:
      return circuit.num_parameters() / 2;
    case GradientParameter::kFirst:
      return 0;
  }
  return circuit.num_parameters() - 1;
}

}  // namespace

LintMode lint_mode_from_name(const std::string& name) {
  if (name == "off") return LintMode::kOff;
  if (name == "warn") return LintMode::kWarn;
  if (name == "error") return LintMode::kError;
  throw NotFound("lint_mode_from_name: unknown lint mode '" + name +
                 "' (expected off, warn, or error)");
}

std::string lint_mode_name(LintMode mode) {
  switch (mode) {
    case LintMode::kOff:
      return "off";
    case LintMode::kWarn:
      return "warn";
    case LintMode::kError:
      return "error";
  }
  return "?";
}

LintError::LintError(std::string context, Diagnostics diagnostics)
    : Error(std::move(context) + ": " +
            std::to_string(count_severity(diagnostics, Severity::kError)) +
            " error-severity lint finding(s); run with --lint=warn to "
            "launch anyway"),
      diagnostics_(std::move(diagnostics)) {}

Diagnostics lint_variance_options(const VarianceExperimentOptions& options,
                                  const LintOptions& lint_options) {
  QBARREN_REQUIRE(!options.qubit_counts.empty(),
                  "lint_variance_options: qubit_counts must be non-empty");
  // Lint the widest requested configuration — the BP-relevant one — using
  // the exact circuit the run itself would sample first at that width
  // (same root/child RNG stream derivation as VarianceExperiment::run), so
  // findings refer to a circuit the experiment will really execute.
  const auto max_it =
      std::max_element(options.qubit_counts.begin(), options.qubit_counts.end());
  const std::size_t qi =
      static_cast<std::size_t>(max_it - options.qubit_counts.begin());
  const std::size_t q = *max_it;

  const Rng root(options.seed);
  Rng structure_rng = root.child(qi).child(0).child(0);
  VarianceAnsatzOptions ansatz_options;
  ansatz_options.layers = options.layers;
  ansatz_options.entangle = options.entangle;
  ansatz_options.entangler = options.entangler;
  ansatz_options.topology = options.topology;
  const Circuit circuit = variance_ansatz(q, structure_rng, ansatz_options);

  CircuitLintContext context;
  context.observable_qubits = cost_observable_qubits(options.cost, q);
  context.global_cost = is_global_cost(options.cost);
  if (circuit.num_parameters() > 0) {
    context.differentiated_parameter =
        sampled_parameter(circuit, options.which_parameter);
  }
  return lint_circuit(circuit, context, lint_options);
}

Diagnostics lint_training_options(const TrainingExperimentOptions& options,
                                  const LintOptions& lint_options) {
  TrainingAnsatzOptions ansatz_options;
  ansatz_options.layers = options.layers;
  const Circuit circuit = training_ansatz(options.qubits, ansatz_options);

  CircuitLintContext context;
  context.observable_qubits =
      cost_observable_qubits(options.cost, options.qubits);
  context.global_cost = is_global_cost(options.cost);
  // Training differentiates every parameter, so no single parameter is
  // escalated; dead parameters still surface as QB001 warnings.
  return lint_circuit(circuit, context, lint_options);
}

Diagnostics lint_sweep_options(const TrainingSweepOptions& options,
                               const LintOptions& lint_options) {
  Diagnostics out = lint_training_options(options.base, lint_options);
  // QB007 over the sweep's derived per-repetition seeds. The (label, seed)
  // pairs come from the stream-graph enumerator — the single model of the
  // derivation run_training_sweep performs — so this preflight, the
  // runner, and `qbarren audit` can never disagree about which root seeds
  // a sweep draws. splitmix64 makes collisions practically impossible for
  // distinct reps, but a hand-rolled TrainingSweepOptions patched to reuse
  // seeds (or a future derivation bug) is caught here before any cell
  // trains.
  std::vector<std::pair<std::string, std::uint64_t>> cells;
  for (const StreamGraph& graph : sweep_stream_graphs(options)) {
    cells.emplace_back(graph.label, graph.root_seed);
  }
  Diagnostics seed_findings = lint_seed_assignments(cells, lint_options);
  out.insert(out.end(), std::make_move_iterator(seed_findings.begin()),
             std::make_move_iterator(seed_findings.end()));
  return out;
}

bool enforce_preflight(const Diagnostics& diagnostics, LintMode mode,
                       const std::string& context) {
  if (mode == LintMode::kOff || diagnostics.empty()) return true;
  std::cerr << context << ": " << diagnostics.size()
            << " lint finding(s) before launch\n"
            << diagnostics_table(diagnostics).to_ascii();
  if (mode == LintMode::kError && has_errors(diagnostics)) {
    throw LintError(context, diagnostics);
  }
  return true;
}

}  // namespace qbarren
