#include "qbarren/init/fan.hpp"

namespace qbarren {

FanPair compute_fans(const Circuit& circuit, FanMode mode) {
  switch (mode) {
    case FanMode::kLayerTensor: {
      if (const auto& shape = circuit.layer_shape(); shape.has_value()) {
        return FanPair{shape->params_per_layer, shape->layers};
      }
      // No metadata: whole vector as a single layer.
      return FanPair{std::max<std::size_t>(1, circuit.num_parameters()), 1};
    }
    case FanMode::kQubitSquare:
      return FanPair{circuit.num_qubits(), circuit.num_qubits()};
  }
  throw InvalidArgument("compute_fans: unknown fan mode");
}

std::string fan_mode_name(FanMode mode) {
  switch (mode) {
    case FanMode::kLayerTensor:
      return "layer-tensor";
    case FanMode::kQubitSquare:
      return "qubit-square";
  }
  return "?";
}

}  // namespace qbarren
