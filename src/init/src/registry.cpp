#include "qbarren/init/registry.hpp"

namespace qbarren {

std::unique_ptr<Initializer> make_initializer(const std::string& name,
                                              FanMode mode) {
  if (name == "random") return std::make_unique<RandomInitializer>();
  if (name == "xavier-normal")
    return std::make_unique<XavierNormalInitializer>(mode);
  if (name == "xavier-uniform")
    return std::make_unique<XavierUniformInitializer>(mode);
  if (name == "he") return std::make_unique<HeInitializer>(mode);
  if (name == "he-uniform")
    return std::make_unique<HeUniformInitializer>(mode);
  if (name == "lecun") return std::make_unique<LeCunNormalInitializer>(mode);
  if (name == "lecun-uniform")
    return std::make_unique<LeCunUniformInitializer>(mode);
  if (name == "orthogonal")
    return std::make_unique<OrthogonalInitializer>(mode);
  if (name == "orthogonal-full")
    return std::make_unique<OrthogonalInitializer>(
        mode, 1.0, OrthogonalBlockMode::kFullTensor);
  if (name == "beta") return std::make_unique<BetaInitializer>();
  if (name == "zeros") return std::make_unique<ZerosInitializer>();
  if (name == "small-normal")
    return std::make_unique<SmallNormalInitializer>();
  throw NotFound("make_initializer: unknown initializer '" + name + "'");
}

std::vector<std::string> initializer_names() {
  return {"random",          "xavier-normal", "xavier-uniform",
          "he",              "he-uniform",    "lecun",
          "lecun-uniform",   "orthogonal",    "orthogonal-full",
          "beta",            "zeros",         "small-normal"};
}

std::vector<std::unique_ptr<Initializer>> paper_initializers(FanMode mode) {
  std::vector<std::unique_ptr<Initializer>> out;
  out.push_back(std::make_unique<RandomInitializer>());
  out.push_back(std::make_unique<XavierNormalInitializer>(mode));
  out.push_back(std::make_unique<XavierUniformInitializer>(mode));
  out.push_back(std::make_unique<HeInitializer>(mode));
  out.push_back(std::make_unique<LeCunNormalInitializer>(mode));
  out.push_back(std::make_unique<OrthogonalInitializer>(mode));
  return out;
}

}  // namespace qbarren
