#include "qbarren/init/initializers.hpp"

#include <cmath>

#include "qbarren/linalg/qr.hpp"

namespace qbarren {

RandomInitializer::RandomInitializer(double lo, double hi) : lo_(lo), hi_(hi) {
  QBARREN_REQUIRE(lo < hi, "RandomInitializer: lo must be < hi");
}

std::vector<double> RandomInitializer::initialize(const Circuit& circuit,
                                                  Rng& rng) const {
  return rng.uniform_vector(circuit.num_parameters(), lo_, hi_);
}

namespace {

std::vector<double> gaussian_with_variance(std::size_t n, double variance,
                                           Rng& rng) {
  const double sigma = std::sqrt(variance);
  std::vector<double> out(n);
  for (auto& v : out) {
    v = rng.normal(0.0, sigma);
  }
  return out;
}

std::vector<double> uniform_with_limit(std::size_t n, double limit, Rng& rng) {
  if (limit <= 0.0) {
    return std::vector<double>(n, 0.0);
  }
  return rng.uniform_vector(n, -limit, limit);
}

}  // namespace

XavierNormalInitializer::XavierNormalInitializer(FanMode mode, double gain)
    : mode_(mode), gain_(gain) {
  QBARREN_REQUIRE(gain > 0.0, "XavierNormalInitializer: gain must be > 0");
}

std::vector<double> XavierNormalInitializer::initialize(const Circuit& circuit,
                                                        Rng& rng) const {
  const FanPair fans = compute_fans(circuit, mode_);
  const double variance =
      gain_ * gain_ * 2.0 /
      static_cast<double>(fans.fan_in + fans.fan_out);
  return gaussian_with_variance(circuit.num_parameters(), variance, rng);
}

XavierUniformInitializer::XavierUniformInitializer(FanMode mode, double gain)
    : mode_(mode), gain_(gain) {
  QBARREN_REQUIRE(gain > 0.0, "XavierUniformInitializer: gain must be > 0");
}

std::vector<double> XavierUniformInitializer::initialize(
    const Circuit& circuit, Rng& rng) const {
  const FanPair fans = compute_fans(circuit, mode_);
  const double limit =
      gain_ * std::sqrt(6.0 / static_cast<double>(fans.fan_in + fans.fan_out));
  return uniform_with_limit(circuit.num_parameters(), limit, rng);
}

HeInitializer::HeInitializer(FanMode mode) : mode_(mode) {}

std::vector<double> HeInitializer::initialize(const Circuit& circuit,
                                              Rng& rng) const {
  const FanPair fans = compute_fans(circuit, mode_);
  const double variance = 2.0 / static_cast<double>(fans.fan_in);
  return gaussian_with_variance(circuit.num_parameters(), variance, rng);
}

HeUniformInitializer::HeUniformInitializer(FanMode mode) : mode_(mode) {}

std::vector<double> HeUniformInitializer::initialize(const Circuit& circuit,
                                                     Rng& rng) const {
  const FanPair fans = compute_fans(circuit, mode_);
  const double limit = std::sqrt(6.0 / static_cast<double>(fans.fan_in));
  return uniform_with_limit(circuit.num_parameters(), limit, rng);
}

LeCunNormalInitializer::LeCunNormalInitializer(FanMode mode) : mode_(mode) {}

std::vector<double> LeCunNormalInitializer::initialize(const Circuit& circuit,
                                                       Rng& rng) const {
  const FanPair fans = compute_fans(circuit, mode_);
  const double variance = 1.0 / static_cast<double>(fans.fan_in);
  return gaussian_with_variance(circuit.num_parameters(), variance, rng);
}

LeCunUniformInitializer::LeCunUniformInitializer(FanMode mode)
    : mode_(mode) {}

std::vector<double> LeCunUniformInitializer::initialize(const Circuit& circuit,
                                                        Rng& rng) const {
  const FanPair fans = compute_fans(circuit, mode_);
  const double limit = 1.0 / std::sqrt(static_cast<double>(fans.fan_in));
  return uniform_with_limit(circuit.num_parameters(), limit, rng);
}

OrthogonalInitializer::OrthogonalInitializer(FanMode mode, double gain,
                                             OrthogonalBlockMode block_mode)
    : mode_(mode), gain_(gain), block_mode_(block_mode) {
  QBARREN_REQUIRE(gain > 0.0, "OrthogonalInitializer: gain must be > 0");
}

std::vector<double> OrthogonalInitializer::initialize(const Circuit& circuit,
                                                      Rng& rng) const {
  const std::size_t num_params = circuit.num_parameters();
  if (num_params == 0) {
    return {};
  }
  const FanPair fans = compute_fans(circuit, mode_);
  const std::size_t cols = std::max<std::size_t>(1, fans.fan_in);
  // Enough rows to cover every parameter even when the circuit's parameter
  // count is not layers * params_per_layer (e.g. hand-built circuits).
  const std::size_t rows =
      std::max<std::size_t>(fans.fan_out, (num_params + cols - 1) / cols);

  std::vector<double> out(num_params);

  if (block_mode_ == OrthogonalBlockMode::kPerLayerSquare) {
    // Stacked cols x cols Haar blocks; row r of the stack is the parameter
    // row of layer r.
    std::size_t row = 0;
    while (row < rows) {
      const RealMatrix q = random_orthogonal(cols, cols, rng);
      for (std::size_t br = 0; br < cols && row < rows; ++br, ++row) {
        for (std::size_t c = 0; c < cols; ++c) {
          const std::size_t idx = row * cols + c;
          if (idx < num_params) {
            out[idx] = gain_ * q.at_unchecked(br, c);
          }
        }
      }
    }
    return out;
  }

  // kFullTensor: one semi-orthogonal (rows x cols) matrix. random_orthogonal
  // needs rows >= cols; generate in the tall orientation and transpose back
  // if the tensor is wide.
  RealMatrix q(1, 1);
  if (rows >= cols) {
    q = random_orthogonal(rows, cols, rng);
  } else {
    q = random_orthogonal(cols, rows, rng).transpose();
  }
  for (std::size_t i = 0; i < num_params; ++i) {
    out[i] = gain_ * q.at_unchecked(i / cols, i % cols);
  }
  return out;
}

BetaInitializer::BetaInitializer(double alpha, double beta, double scale)
    : alpha_(alpha), beta_(beta), scale_(scale) {
  QBARREN_REQUIRE(alpha > 0.0 && beta > 0.0,
                  "BetaInitializer: shape parameters must be positive");
  QBARREN_REQUIRE(scale > 0.0, "BetaInitializer: scale must be positive");
}

std::vector<double> BetaInitializer::initialize(const Circuit& circuit,
                                                Rng& rng) const {
  std::vector<double> out(circuit.num_parameters());
  for (auto& v : out) {
    v = scale_ * rng.beta(alpha_, beta_);
  }
  return out;
}

std::vector<double> ZerosInitializer::initialize(const Circuit& circuit,
                                                 Rng& /*rng*/) const {
  return std::vector<double>(circuit.num_parameters(), 0.0);
}

SmallNormalInitializer::SmallNormalInitializer(double sigma) : sigma_(sigma) {
  QBARREN_REQUIRE(sigma >= 0.0,
                  "SmallNormalInitializer: sigma must be non-negative");
}

std::vector<double> SmallNormalInitializer::initialize(const Circuit& circuit,
                                                       Rng& rng) const {
  std::vector<double> out(circuit.num_parameters());
  for (auto& v : out) {
    v = rng.normal(0.0, sigma_);
  }
  return out;
}

}  // namespace qbarren
