// Fan-in / fan-out conventions for quantum parameter tensors.
//
// Classical initializers are defined in terms of a weight matrix's fan-in
// and fan-out. A PQC parameter vector has no canonical matrix shape; the
// paper (which calls PyTorch initializers on its parameter tensors) never
// states the convention, so we expose it as an explicit policy:
//
//   * kLayerTensor (default) — the parameter vector is the (layers x
//     params-per-layer) tensor recorded by the ansatz builder; PyTorch
//     convention for a 2-D tensor is fan_in = size of dim 1 (params per
//     layer) and fan_out = size of dim 0 (layers). For the paper's deep
//     variance circuits this makes fan_out (100 layers) dominate the Xavier
//     denominator, which is what separates Xavier from LeCun/He and
//     reproduces the paper's ordering.
//   * kQubitSquare — fan_in = fan_out = qubit count, a common alternative
//     in QNN codebases; ablated in bench_ablation_fanmode.
//
// Circuits without layer-shape metadata fall back to treating the whole
// parameter vector as a single layer.
#pragma once

#include "qbarren/circuit/circuit.hpp"

namespace qbarren {

enum class FanMode {
  kLayerTensor,
  kQubitSquare,
};

struct FanPair {
  std::size_t fan_in = 1;
  std::size_t fan_out = 1;
};

/// Computes the (fan_in, fan_out) pair for a circuit under a policy.
[[nodiscard]] FanPair compute_fans(const Circuit& circuit, FanMode mode);

/// Human-readable policy name ("layer-tensor" / "qubit-square").
[[nodiscard]] std::string fan_mode_name(FanMode mode);

}  // namespace qbarren
