// Parameter initialization strategies (paper §III).
//
// Each strategy maps a circuit (whose parameter vector is conceptually a
// layers x params-per-layer tensor, see fan.hpp) and an Rng to a concrete
// parameter vector. The six strategies the paper evaluates:
//
//   Random          theta ~ U[0, 2*pi)                (BP benchmark)
//   Xavier normal   theta ~ N(0, 2 / (fan_in + fan_out))
//   Xavier uniform  theta ~ U(-l, l), l = sqrt(6 / (fan_in + fan_out))
//   He              theta ~ N(0, 2 / fan_in)
//   LeCun (normal)  theta ~ N(0, 1 / fan_in)
//   Orthogonal      rows of a Haar orthogonal matrix (QR of a Gaussian)
//
// Extensions beyond the paper (used in ablation benches):
//   LeCun uniform   theta ~ U(-1/sqrt(fan_in), 1/sqrt(fan_in)) (§III-B alt)
//   He uniform      theta ~ U(-l, l), l = sqrt(6 / fan_in)
//   Beta            theta ~ scale * Beta(alpha, beta)  (BeInit-style, §II-e)
//   Zeros           theta = 0 (exact identity circuit; sanity baseline)
//   Small normal    theta ~ N(0, sigma^2) with fixed sigma (Grant-style
//                   near-identity start)
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "qbarren/circuit/circuit.hpp"
#include "qbarren/common/rng.hpp"
#include "qbarren/init/fan.hpp"

namespace qbarren {

class Initializer {
 public:
  virtual ~Initializer() = default;

  /// Canonical name used by the registry and in result tables.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Draws a parameter vector of size circuit.num_parameters().
  [[nodiscard]] virtual std::vector<double> initialize(const Circuit& circuit,
                                                       Rng& rng) const = 0;
};

/// theta_i ~ U[lo, hi); defaults to the standard [0, 2*pi) BP benchmark.
class RandomInitializer final : public Initializer {
 public:
  explicit RandomInitializer(double lo = 0.0, double hi = 2.0 * M_PI);
  [[nodiscard]] std::string name() const override { return "random"; }
  [[nodiscard]] std::vector<double> initialize(const Circuit& circuit,
                                               Rng& rng) const override;

 private:
  double lo_;
  double hi_;
};

/// Gaussian with variance gain^2 * 2 / (fan_in + fan_out).
class XavierNormalInitializer final : public Initializer {
 public:
  explicit XavierNormalInitializer(FanMode mode = FanMode::kLayerTensor,
                                   double gain = 1.0);
  [[nodiscard]] std::string name() const override { return "xavier-normal"; }
  [[nodiscard]] std::vector<double> initialize(const Circuit& circuit,
                                               Rng& rng) const override;

 private:
  FanMode mode_;
  double gain_;
};

/// Uniform on (-l, l) with l = gain * sqrt(6 / (fan_in + fan_out)).
class XavierUniformInitializer final : public Initializer {
 public:
  explicit XavierUniformInitializer(FanMode mode = FanMode::kLayerTensor,
                                    double gain = 1.0);
  [[nodiscard]] std::string name() const override { return "xavier-uniform"; }
  [[nodiscard]] std::vector<double> initialize(const Circuit& circuit,
                                               Rng& rng) const override;

 private:
  FanMode mode_;
  double gain_;
};

/// Gaussian with variance 2 / fan_in (He normal).
class HeInitializer final : public Initializer {
 public:
  explicit HeInitializer(FanMode mode = FanMode::kLayerTensor);
  [[nodiscard]] std::string name() const override { return "he"; }
  [[nodiscard]] std::vector<double> initialize(const Circuit& circuit,
                                               Rng& rng) const override;

 private:
  FanMode mode_;
};

/// Uniform on (-l, l) with l = sqrt(6 / fan_in) (He uniform; extension).
class HeUniformInitializer final : public Initializer {
 public:
  explicit HeUniformInitializer(FanMode mode = FanMode::kLayerTensor);
  [[nodiscard]] std::string name() const override { return "he-uniform"; }
  [[nodiscard]] std::vector<double> initialize(const Circuit& circuit,
                                               Rng& rng) const override;

 private:
  FanMode mode_;
};

/// Gaussian with variance 1 / fan_in (LeCun normal — the paper's LeCun).
class LeCunNormalInitializer final : public Initializer {
 public:
  explicit LeCunNormalInitializer(FanMode mode = FanMode::kLayerTensor);
  [[nodiscard]] std::string name() const override { return "lecun"; }
  [[nodiscard]] std::vector<double> initialize(const Circuit& circuit,
                                               Rng& rng) const override;

 private:
  FanMode mode_;
};

/// Uniform on (-1/sqrt(fan_in), 1/sqrt(fan_in)) (§III-B alternative).
class LeCunUniformInitializer final : public Initializer {
 public:
  explicit LeCunUniformInitializer(FanMode mode = FanMode::kLayerTensor);
  [[nodiscard]] std::string name() const override { return "lecun-uniform"; }
  [[nodiscard]] std::vector<double> initialize(const Circuit& circuit,
                                               Rng& rng) const override;

 private:
  FanMode mode_;
};

/// How the orthogonal matrix is shaped relative to the parameter tensor.
enum class OrthogonalBlockMode {
  /// Stacked fan_in x fan_in Haar orthogonal blocks: each layer's
  /// parameter row is a row of an orthogonal matrix, so consecutive layers
  /// are mutually orthogonal and entries have variance 1/fan_in. This is
  /// the variant whose decay improvement clusters with He/LeCun as the
  /// paper reports (§VI-A), so it is the default.
  kPerLayerSquare,
  /// One (fan_out x fan_in) semi-orthogonal matrix over the whole tensor
  /// (PyTorch `orthogonal_` semantics). For deep circuits fan_out >>
  /// fan_in and the entry variance drops to 1/fan_out, which makes this
  /// variant *stronger* than Xavier — ablated in
  /// bench_ablation_extra_inits.
  kFullTensor,
};

/// Entries of Haar-random orthogonal matrices scaled by `gain`; see
/// OrthogonalBlockMode for the two shaping conventions.
class OrthogonalInitializer final : public Initializer {
 public:
  explicit OrthogonalInitializer(
      FanMode mode = FanMode::kLayerTensor, double gain = 1.0,
      OrthogonalBlockMode block_mode = OrthogonalBlockMode::kPerLayerSquare);
  [[nodiscard]] std::string name() const override {
    return block_mode_ == OrthogonalBlockMode::kPerLayerSquare
               ? "orthogonal"
               : "orthogonal-full";
  }
  [[nodiscard]] std::vector<double> initialize(const Circuit& circuit,
                                               Rng& rng) const override;

 private:
  FanMode mode_;
  double gain_;
  OrthogonalBlockMode block_mode_;
};

/// theta ~ scale * Beta(alpha, beta) (BeInit-inspired; extension).
class BetaInitializer final : public Initializer {
 public:
  explicit BetaInitializer(double alpha = 2.0, double beta = 2.0,
                           double scale = M_PI);
  [[nodiscard]] std::string name() const override { return "beta"; }
  [[nodiscard]] std::vector<double> initialize(const Circuit& circuit,
                                               Rng& rng) const override;

 private:
  double alpha_;
  double beta_;
  double scale_;
};

/// All-zero parameters: the circuit is exactly the identity (every
/// rotation at angle 0), giving the best-case gradient signal for the
/// identity-learning task. Deterministic sanity baseline.
class ZerosInitializer final : public Initializer {
 public:
  [[nodiscard]] std::string name() const override { return "zeros"; }
  [[nodiscard]] std::vector<double> initialize(const Circuit& circuit,
                                               Rng& rng) const override;
};

/// theta ~ N(0, sigma^2) with a fixed, width-independent sigma
/// (Grant-et-al-style near-identity start; extension).
class SmallNormalInitializer final : public Initializer {
 public:
  explicit SmallNormalInitializer(double sigma = 0.1);
  [[nodiscard]] std::string name() const override { return "small-normal"; }
  [[nodiscard]] std::vector<double> initialize(const Circuit& circuit,
                                               Rng& rng) const override;

 private:
  double sigma_;
};

}  // namespace qbarren
