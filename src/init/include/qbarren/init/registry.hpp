// Name-based initializer construction and the paper's strategy set.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "qbarren/init/initializers.hpp"

namespace qbarren {

/// Builds an initializer by canonical name:
///   "random", "xavier-normal", "xavier-uniform", "he", "he-uniform",
///   "lecun", "lecun-uniform", "orthogonal", "orthogonal-full", "beta",
///   "zeros", "small-normal".
/// Throws NotFound for anything else.
[[nodiscard]] std::unique_ptr<Initializer> make_initializer(
    const std::string& name, FanMode mode = FanMode::kLayerTensor);

/// All canonical names accepted by make_initializer.
[[nodiscard]] std::vector<std::string> initializer_names();

/// The paper's evaluated set T = {Random, X-Normal, X-Uniform, He, LeCun,
/// Orthogonal}, in the paper's order. Random first — it is the baseline
/// the improvement percentages are computed against.
[[nodiscard]] std::vector<std::unique_ptr<Initializer>> paper_initializers(
    FanMode mode = FanMode::kLayerTensor);

}  // namespace qbarren
