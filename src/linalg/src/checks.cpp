#include "qbarren/linalg/checks.hpp"

#include <cmath>

namespace qbarren {

namespace {

template <typename T>
double max_abs_diff_impl(const DenseMatrix<T>& a, const DenseMatrix<T>& b) {
  QBARREN_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
                  "max_abs_diff: shape mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    const double d = std::abs(std::complex<double>(a.data()[i] - b.data()[i]));
    worst = std::max(worst, d);
  }
  return worst;
}

}  // namespace

bool is_unitary(const ComplexMatrix& u, double tol) {
  if (!u.is_square()) return false;
  const ComplexMatrix prod = adjoint(u) * u;
  return max_abs_diff_impl(prod, ComplexMatrix::identity(u.rows())) <= tol;
}

bool is_hermitian(const ComplexMatrix& m, double tol) {
  if (!m.is_square()) return false;
  return max_abs_diff_impl(m, adjoint(m)) <= tol;
}

bool has_orthonormal_columns(const RealMatrix& q, double tol) {
  const RealMatrix prod = q.transpose() * q;
  return max_abs_diff_impl(prod, RealMatrix::identity(q.cols())) <= tol;
}

double max_abs_diff(const ComplexMatrix& a, const ComplexMatrix& b) {
  return max_abs_diff_impl(a, b);
}

double max_abs_diff(const RealMatrix& a, const RealMatrix& b) {
  return max_abs_diff_impl(a, b);
}

}  // namespace qbarren
