#include "qbarren/linalg/qr.hpp"

#include <cmath>

#include "qbarren/common/rng.hpp"

namespace qbarren {

QrResult qr_decompose(const RealMatrix& a) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  const std::size_t k = std::min(m, n);

  // Work on a copy that we reduce to R in place; accumulate Q explicitly as
  // the product of Householder reflectors applied to the m x m identity.
  RealMatrix r_work = a;
  RealMatrix q_full = RealMatrix::identity(m);

  std::vector<double> v(m);
  for (std::size_t col = 0; col < k; ++col) {
    // Build the Householder vector for column `col` below the diagonal.
    double norm_x = 0.0;
    for (std::size_t i = col; i < m; ++i) {
      norm_x += r_work.at_unchecked(i, col) * r_work.at_unchecked(i, col);
    }
    norm_x = std::sqrt(norm_x);
    if (norm_x == 0.0) {
      continue;  // column already zero below (and at) the diagonal
    }

    const double x0 = r_work.at_unchecked(col, col);
    const double alpha = (x0 >= 0.0) ? -norm_x : norm_x;

    double vnorm2 = 0.0;
    for (std::size_t i = col; i < m; ++i) {
      v[i] = r_work.at_unchecked(i, col);
    }
    v[col] -= alpha;
    for (std::size_t i = col; i < m; ++i) {
      vnorm2 += v[i] * v[i];
    }
    if (vnorm2 == 0.0) {
      continue;  // column is already e_col * alpha
    }
    const double beta = 2.0 / vnorm2;

    // r_work <- (I - beta v vᵀ) r_work, only columns col..n-1 change.
    for (std::size_t c = col; c < n; ++c) {
      double dot = 0.0;
      for (std::size_t i = col; i < m; ++i) {
        dot += v[i] * r_work.at_unchecked(i, c);
      }
      const double f = beta * dot;
      for (std::size_t i = col; i < m; ++i) {
        r_work.at_unchecked(i, c) -= f * v[i];
      }
    }

    // q_full <- q_full (I - beta v vᵀ).
    for (std::size_t rr = 0; rr < m; ++rr) {
      double dot = 0.0;
      for (std::size_t i = col; i < m; ++i) {
        dot += q_full.at_unchecked(rr, i) * v[i];
      }
      const double f = beta * dot;
      for (std::size_t i = col; i < m; ++i) {
        q_full.at_unchecked(rr, i) -= f * v[i];
      }
    }
  }

  // Thin factors with the sign convention diag(R) >= 0.
  QrResult out{RealMatrix(m, k), RealMatrix(k, n)};
  for (std::size_t j = 0; j < k; ++j) {
    const double sign = (r_work.at_unchecked(j, j) < 0.0) ? -1.0 : 1.0;
    for (std::size_t i = 0; i < m; ++i) {
      out.q.at_unchecked(i, j) = sign * q_full.at_unchecked(i, j);
    }
    for (std::size_t c = 0; c < n; ++c) {
      out.r.at_unchecked(j, c) =
          (c >= j ? sign * r_work.at_unchecked(j, c) : 0.0);
    }
  }
  return out;
}

RealMatrix random_orthogonal(std::size_t rows, std::size_t cols, Rng& rng) {
  QBARREN_REQUIRE(rows >= cols,
                  "random_orthogonal: need rows >= cols for orthonormal "
                  "columns");
  RealMatrix g(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      g.at_unchecked(r, c) = rng.normal();
    }
  }
  return qr_decompose(g).q;
}

}  // namespace qbarren
