#include "qbarren/linalg/solve.hpp"

#include <cmath>

namespace qbarren {

RealMatrix cholesky(const RealMatrix& a) {
  QBARREN_REQUIRE(a.is_square(), "cholesky: matrix must be square");
  const std::size_t n = a.rows();
  RealMatrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = a.at_unchecked(i, j);
      for (std::size_t k = 0; k < j; ++k) {
        sum -= l.at_unchecked(i, k) * l.at_unchecked(j, k);
      }
      if (i == j) {
        if (sum <= 0.0) {
          throw NumericalError("cholesky: matrix is not positive definite");
        }
        l.at_unchecked(i, j) = std::sqrt(sum);
      } else {
        l.at_unchecked(i, j) = sum / l.at_unchecked(j, j);
      }
    }
  }
  return l;
}

std::vector<double> solve_spd(const RealMatrix& a,
                              const std::vector<double>& b) {
  QBARREN_REQUIRE(a.rows() == b.size(), "solve_spd: dimension mismatch");
  const RealMatrix l = cholesky(a);
  const std::size_t n = b.size();

  // Forward substitution L y = b.
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) {
      sum -= l.at_unchecked(i, k) * y[k];
    }
    y[i] = sum / l.at_unchecked(i, i);
  }

  // Back substitution Lᵀ x = y.
  std::vector<double> x(n);
  for (std::size_t i = n; i-- > 0;) {
    double sum = y[i];
    for (std::size_t k = i + 1; k < n; ++k) {
      sum -= l.at_unchecked(k, i) * x[k];
    }
    x[i] = sum / l.at_unchecked(i, i);
  }
  return x;
}

std::vector<double> solve_regularized(const RealMatrix& a,
                                      const std::vector<double>& b,
                                      double lambda) {
  QBARREN_REQUIRE(lambda >= 0.0,
                  "solve_regularized: lambda must be non-negative");
  QBARREN_REQUIRE(a.is_square(), "solve_regularized: matrix must be square");
  RealMatrix reg = a;
  for (std::size_t i = 0; i < reg.rows(); ++i) {
    reg.at_unchecked(i, i) += lambda;
  }
  return solve_spd(reg, b);
}

std::vector<double> solve_lu(const RealMatrix& a,
                             const std::vector<double>& b) {
  QBARREN_REQUIRE(a.is_square(), "solve_lu: matrix must be square");
  QBARREN_REQUIRE(a.rows() == b.size(), "solve_lu: dimension mismatch");
  const std::size_t n = a.rows();
  RealMatrix lu = a;
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) {
    perm[i] = i;
  }

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    double best = std::abs(lu.at_unchecked(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::abs(lu.at_unchecked(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-14) {
      throw NumericalError("solve_lu: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(lu.at_unchecked(col, c), lu.at_unchecked(pivot, c));
      }
      std::swap(perm[col], perm[pivot]);
    }
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = lu.at_unchecked(r, col) / lu.at_unchecked(col, col);
      lu.at_unchecked(r, col) = f;
      for (std::size_t c = col + 1; c < n; ++c) {
        lu.at_unchecked(r, c) -= f * lu.at_unchecked(col, c);
      }
    }
  }

  // Apply permutation to b, then forward/back substitution.
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[perm[i]];
    for (std::size_t k = 0; k < i; ++k) {
      sum -= lu.at_unchecked(i, k) * y[k];
    }
    y[i] = sum;
  }
  std::vector<double> x(n);
  for (std::size_t i = n; i-- > 0;) {
    double sum = y[i];
    for (std::size_t k = i + 1; k < n; ++k) {
      sum -= lu.at_unchecked(i, k) * x[k];
    }
    x[i] = sum / lu.at_unchecked(i, i);
  }
  return x;
}

}  // namespace qbarren
