// Linear solvers for small dense systems.
//
// Quantum natural gradient needs x = (F + lambda I)^{-1} g with F the
// (symmetric positive-semidefinite) Fubini-Study metric; a Cholesky
// factorization of the regularized matrix is the right tool. A plain
// LU-with-partial-pivoting solver is provided for general square systems.
#pragma once

#include <vector>

#include "qbarren/linalg/matrix.hpp"

namespace qbarren {

/// Cholesky factorization A = L Lᵀ of a symmetric positive-definite
/// matrix; returns the lower factor. Throws NumericalError when A is not
/// (numerically) positive definite.
[[nodiscard]] RealMatrix cholesky(const RealMatrix& a);

/// Solves A x = b for symmetric positive-definite A via Cholesky.
[[nodiscard]] std::vector<double> solve_spd(const RealMatrix& a,
                                            const std::vector<double>& b);

/// Solves (A + lambda I) x = b — the Tikhonov-regularized SPD solve used
/// by natural gradient. Requires lambda >= 0; A square and symmetric.
[[nodiscard]] std::vector<double> solve_regularized(
    const RealMatrix& a, const std::vector<double>& b, double lambda);

/// Solves A x = b for general square A by LU with partial pivoting.
/// Throws NumericalError for (numerically) singular A.
[[nodiscard]] std::vector<double> solve_lu(const RealMatrix& a,
                                           const std::vector<double>& b);

}  // namespace qbarren
