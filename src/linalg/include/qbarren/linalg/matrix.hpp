// Dense row-major matrices over double or complex<double>.
//
// qbarren needs only small dense matrices: 2x2 / 4x4 gate unitaries, the
// reference (slow-path) full-circuit unitaries used by tests, and the
// Gaussian matrices fed to QR for orthogonal initialization. The class is
// deliberately simple — no expression templates, no views — and validates
// dimensions at every public operation.
#pragma once

#include <complex>
#include <vector>

#include "qbarren/common/error.hpp"

namespace qbarren {

template <typename T>
class DenseMatrix {
 public:
  DenseMatrix() = default;

  /// rows x cols matrix, zero-initialized.
  DenseMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, T{}) {
    QBARREN_REQUIRE(rows > 0 && cols > 0,
                    "DenseMatrix: dimensions must be positive");
  }

  /// rows x cols matrix from row-major data.
  DenseMatrix(std::size_t rows, std::size_t cols, std::vector<T> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    QBARREN_REQUIRE(rows > 0 && cols > 0,
                    "DenseMatrix: dimensions must be positive");
    QBARREN_REQUIRE(data_.size() == rows * cols,
                    "DenseMatrix: data size does not match dimensions");
  }

  [[nodiscard]] static DenseMatrix identity(std::size_t n) {
    DenseMatrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      m(i, i) = T{1};
    }
    return m;
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }
  [[nodiscard]] bool is_square() const noexcept { return rows_ == cols_; }

  [[nodiscard]] T& operator()(std::size_t r, std::size_t c) {
    QBARREN_REQUIRE(r < rows_ && c < cols_, "DenseMatrix: index out of range");
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const T& operator()(std::size_t r, std::size_t c) const {
    QBARREN_REQUIRE(r < rows_ && c < cols_, "DenseMatrix: index out of range");
    return data_[r * cols_ + c];
  }

  /// Unchecked element access for inner loops.
  [[nodiscard]] T& at_unchecked(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] const T& at_unchecked(std::size_t r,
                                      std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] const std::vector<T>& data() const noexcept { return data_; }
  [[nodiscard]] std::vector<T>& data() noexcept { return data_; }

  [[nodiscard]] DenseMatrix transpose() const {
    DenseMatrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
      for (std::size_t c = 0; c < cols_; ++c) {
        out.at_unchecked(c, r) = at_unchecked(r, c);
      }
    }
    return out;
  }

  friend DenseMatrix operator*(const DenseMatrix& a, const DenseMatrix& b) {
    QBARREN_REQUIRE(a.cols_ == b.rows_, "DenseMatrix: multiply shape mismatch");
    DenseMatrix out(a.rows_, b.cols_);
    for (std::size_t r = 0; r < a.rows_; ++r) {
      for (std::size_t k = 0; k < a.cols_; ++k) {
        const T av = a.at_unchecked(r, k);
        if (av == T{}) continue;
        for (std::size_t c = 0; c < b.cols_; ++c) {
          out.at_unchecked(r, c) += av * b.at_unchecked(k, c);
        }
      }
    }
    return out;
  }

  friend DenseMatrix operator+(const DenseMatrix& a, const DenseMatrix& b) {
    QBARREN_REQUIRE(a.rows_ == b.rows_ && a.cols_ == b.cols_,
                    "DenseMatrix: add shape mismatch");
    DenseMatrix out = a;
    for (std::size_t i = 0; i < out.data_.size(); ++i) {
      out.data_[i] += b.data_[i];
    }
    return out;
  }

  friend DenseMatrix operator-(const DenseMatrix& a, const DenseMatrix& b) {
    QBARREN_REQUIRE(a.rows_ == b.rows_ && a.cols_ == b.cols_,
                    "DenseMatrix: subtract shape mismatch");
    DenseMatrix out = a;
    for (std::size_t i = 0; i < out.data_.size(); ++i) {
      out.data_[i] -= b.data_[i];
    }
    return out;
  }

  friend DenseMatrix operator*(T scalar, const DenseMatrix& m) {
    DenseMatrix out = m;
    for (auto& v : out.data_) {
      v *= scalar;
    }
    return out;
  }

  /// Matrix-vector product. Requires v.size() == cols().
  [[nodiscard]] std::vector<T> apply(const std::vector<T>& v) const {
    QBARREN_REQUIRE(v.size() == cols_, "DenseMatrix: apply shape mismatch");
    std::vector<T> out(rows_, T{});
    for (std::size_t r = 0; r < rows_; ++r) {
      T acc{};
      for (std::size_t c = 0; c < cols_; ++c) {
        acc += at_unchecked(r, c) * v[c];
      }
      out[r] = acc;
    }
    return out;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using RealMatrix = DenseMatrix<double>;
using ComplexMatrix = DenseMatrix<std::complex<double>>;
using Complex = std::complex<double>;

/// Conjugate transpose of a complex matrix.
[[nodiscard]] inline ComplexMatrix adjoint(const ComplexMatrix& m) {
  ComplexMatrix out(m.cols(), m.rows());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      out.at_unchecked(c, r) = std::conj(m.at_unchecked(r, c));
    }
  }
  return out;
}

/// Kronecker (tensor) product a (x) b.
template <typename T>
[[nodiscard]] DenseMatrix<T> kron(const DenseMatrix<T>& a,
                                  const DenseMatrix<T>& b) {
  DenseMatrix<T> out(a.rows() * b.rows(), a.cols() * b.cols());
  for (std::size_t ar = 0; ar < a.rows(); ++ar) {
    for (std::size_t ac = 0; ac < a.cols(); ++ac) {
      const T av = a.at_unchecked(ar, ac);
      if (av == T{}) continue;
      for (std::size_t br = 0; br < b.rows(); ++br) {
        for (std::size_t bc = 0; bc < b.cols(); ++bc) {
          out.at_unchecked(ar * b.rows() + br, ac * b.cols() + bc) =
              av * b.at_unchecked(br, bc);
        }
      }
    }
  }
  return out;
}

/// Frobenius norm of the elementwise difference.
template <typename T>
[[nodiscard]] double frobenius_distance(const DenseMatrix<T>& a,
                                        const DenseMatrix<T>& b) {
  QBARREN_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
                  "frobenius_distance: shape mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    const auto d = a.data()[i] - b.data()[i];
    acc += std::norm(std::complex<double>(d));
  }
  return std::sqrt(acc);
}

}  // namespace qbarren
