// Householder QR decomposition of real matrices.
//
// Orthogonal parameter initialization (Hu, Xiao & Pennington 2020; §III-E of
// the paper) draws a Gaussian matrix and orthogonalizes it. We reproduce the
// NumPy/PyTorch recipe: thin QR with the sign of each R diagonal folded into
// Q, so the resulting distribution is Haar-uniform over orthogonal matrices.
#pragma once

#include "qbarren/linalg/matrix.hpp"

namespace qbarren {

struct QrResult {
  RealMatrix q;  ///< m x k with orthonormal columns (k = min(m, n))
  RealMatrix r;  ///< k x n upper triangular with non-negative diagonal
};

/// Thin Householder QR of an m x n matrix. Requires m >= 1, n >= 1.
/// The factorization satisfies a = q * r with qᵀq = I and the diagonal of r
/// non-negative (making the factorization unique for full-rank input and
/// the Q distribution Haar when `a` is i.i.d. Gaussian).
[[nodiscard]] QrResult qr_decompose(const RealMatrix& a);

/// Haar-distributed orthogonal-column matrix of shape rows x cols
/// (rows >= cols) obtained by QR of an i.i.d. standard Gaussian matrix.
class Rng;  // fwd (qbarren/common/rng.hpp)
[[nodiscard]] RealMatrix random_orthogonal(std::size_t rows, std::size_t cols,
                                           Rng& rng);

}  // namespace qbarren
