// Structural predicates on matrices, used by tests and debug assertions.
#pragma once

#include "qbarren/linalg/matrix.hpp"

namespace qbarren {

/// True when uᴴu ≈ I within `tol` (max elementwise deviation).
[[nodiscard]] bool is_unitary(const ComplexMatrix& u, double tol = 1e-10);

/// True when m ≈ mᴴ within `tol`.
[[nodiscard]] bool is_hermitian(const ComplexMatrix& m, double tol = 1e-10);

/// True when qᵀq ≈ I within `tol` (columns orthonormal; q may be thin).
[[nodiscard]] bool has_orthonormal_columns(const RealMatrix& q,
                                           double tol = 1e-10);

/// Max elementwise |a - b|; shapes must match.
[[nodiscard]] double max_abs_diff(const ComplexMatrix& a,
                                  const ComplexMatrix& b);
[[nodiscard]] double max_abs_diff(const RealMatrix& a, const RealMatrix& b);

}  // namespace qbarren
