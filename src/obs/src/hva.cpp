#include "qbarren/obs/hva.hpp"

#include "qbarren/circuit/pauli_rotation.hpp"

namespace qbarren {

Circuit hva_ansatz(const PauliSumObservable& hamiltonian,
                   const HvaOptions& options) {
  QBARREN_REQUIRE(options.layers >= 1, "hva_ansatz: need >= 1 layer");

  std::vector<std::string> strings;
  for (const PauliTerm& term : hamiltonian.terms()) {
    if (term.paulis.find_first_not_of('I') != std::string::npos) {
      strings.push_back(term.paulis);
    }
  }
  QBARREN_REQUIRE(!strings.empty(),
                  "hva_ansatz: Hamiltonian has no non-identity terms");

  Circuit circuit(hamiltonian.num_qubits());
  if (options.hadamard_start) {
    for (std::size_t q = 0; q < circuit.num_qubits(); ++q) {
      circuit.add_hadamard(q);
    }
  }
  for (std::size_t layer = 0; layer < options.layers; ++layer) {
    for (const std::string& paulis : strings) {
      add_pauli_rotation(circuit, paulis);
    }
  }
  circuit.set_layer_shape(LayerShape{options.layers, strings.size()});
  return circuit;
}

}  // namespace qbarren
