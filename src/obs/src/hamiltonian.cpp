#include "qbarren/obs/hamiltonian.hpp"

#include <cmath>

namespace qbarren {

PauliSumObservable::PauliSumObservable(std::vector<PauliTerm> terms)
    : terms_(std::move(terms)) {
  QBARREN_REQUIRE(!terms_.empty(), "PauliSumObservable: no terms");
  width_ = terms_.front().paulis.size();
  QBARREN_REQUIRE(width_ >= 1, "PauliSumObservable: empty Pauli string");
  for (const PauliTerm& term : terms_) {
    QBARREN_REQUIRE(term.paulis.size() == width_,
                    "PauliSumObservable: inconsistent term widths");
    for (char ch : term.paulis) {
      QBARREN_REQUIRE(ch == 'I' || ch == 'X' || ch == 'Y' || ch == 'Z',
                      "PauliSumObservable: characters must be I/X/Y/Z");
    }
  }
}

StateVector PauliSumObservable::apply(const StateVector& state) const {
  QBARREN_REQUIRE(state.num_qubits() == width_,
                  "PauliSumObservable: width mismatch");
  StateVector acc(width_,
                  std::vector<Complex>(state.dimension(), Complex{0.0, 0.0}));
  for (const PauliTerm& term : terms_) {
    const PauliStringObservable pauli(term.paulis);
    const StateVector applied = pauli.apply(state);
    auto& out = acc.amplitudes();
    const auto& in = applied.amplitudes();
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] += term.coefficient * in[i];
    }
  }
  return acc;
}

double PauliSumObservable::expectation(const StateVector& state) const {
  QBARREN_REQUIRE(state.num_qubits() == width_,
                  "PauliSumObservable: width mismatch");
  double acc = 0.0;
  for (const PauliTerm& term : terms_) {
    const PauliStringObservable pauli(term.paulis);
    acc += term.coefficient * pauli.expectation(state);
  }
  return acc;
}

std::string PauliSumObservable::name() const {
  return "pauli-sum[" + std::to_string(terms_.size()) + " terms, " +
         std::to_string(width_) + " qubits]";
}

double PauliSumObservable::one_norm() const {
  double acc = 0.0;
  for (const PauliTerm& term : terms_) {
    acc += std::abs(term.coefficient);
  }
  return acc;
}

PauliSumObservable transverse_field_ising(std::size_t num_qubits,
                                          double coupling_j, double field_h) {
  QBARREN_REQUIRE(num_qubits >= 2, "transverse_field_ising: need >= 2 qubits");
  std::vector<PauliTerm> terms;
  for (std::size_t i = 0; i + 1 < num_qubits; ++i) {
    std::string zz(num_qubits, 'I');
    zz[i] = 'Z';
    zz[i + 1] = 'Z';
    terms.push_back(PauliTerm{-coupling_j, std::move(zz)});
  }
  for (std::size_t i = 0; i < num_qubits; ++i) {
    std::string x(num_qubits, 'I');
    x[i] = 'X';
    terms.push_back(PauliTerm{-field_h, std::move(x)});
  }
  return PauliSumObservable(std::move(terms));
}

PauliSumObservable heisenberg_xxz(std::size_t num_qubits, double coupling_jxy,
                                  double coupling_jz, double field_h) {
  QBARREN_REQUIRE(num_qubits >= 2, "heisenberg_xxz: need >= 2 qubits");
  std::vector<PauliTerm> terms;
  for (std::size_t i = 0; i + 1 < num_qubits; ++i) {
    std::string xx(num_qubits, 'I');
    xx[i] = 'X';
    xx[i + 1] = 'X';
    terms.push_back(PauliTerm{coupling_jxy, std::move(xx)});
    std::string yy(num_qubits, 'I');
    yy[i] = 'Y';
    yy[i + 1] = 'Y';
    terms.push_back(PauliTerm{coupling_jxy, std::move(yy)});
    std::string zz(num_qubits, 'I');
    zz[i] = 'Z';
    zz[i + 1] = 'Z';
    terms.push_back(PauliTerm{coupling_jz, std::move(zz)});
  }
  if (field_h != 0.0) {
    for (std::size_t i = 0; i < num_qubits; ++i) {
      std::string z(num_qubits, 'I');
      z[i] = 'Z';
      terms.push_back(PauliTerm{field_h, std::move(z)});
    }
  }
  return PauliSumObservable(std::move(terms));
}

double ground_state_energy(const PauliSumObservable& hamiltonian,
                           std::size_t max_iterations, double tolerance) {
  // Power iteration on M = shift*I - H: M's dominant eigenvector is H's
  // ground state when shift >= max eigenvalue of H; one_norm() is such a
  // bound. Deterministic start vector with non-uniform amplitudes to avoid
  // landing on a symmetry-orthogonal subspace.
  const std::size_t n = hamiltonian.num_qubits();
  QBARREN_REQUIRE(n <= 12, "ground_state_energy: limited to 12 qubits");
  const double shift = hamiltonian.one_norm() + 1.0;

  const std::size_t dim = std::size_t{1} << n;
  std::vector<Complex> v0(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    v0[i] = Complex{1.0 + 0.37 * std::sin(static_cast<double>(i) + 0.5),
                    0.11 * std::cos(1.7 * static_cast<double>(i))};
  }
  StateVector state(n, std::move(v0));
  state.normalize();

  double energy = hamiltonian.expectation(state);
  for (std::size_t it = 0; it < max_iterations; ++it) {
    // state <- normalize(shift * state - H state).
    const StateVector h_state = hamiltonian.apply(state);
    auto& amps = state.amplitudes();
    const auto& h_amps = h_state.amplitudes();
    for (std::size_t i = 0; i < dim; ++i) {
      amps[i] = shift * amps[i] - h_amps[i];
    }
    state.normalize();
    const double next = hamiltonian.expectation(state);
    if (std::abs(next - energy) < tolerance) {
      return next;
    }
    energy = next;
  }
  return energy;
}

}  // namespace qbarren
