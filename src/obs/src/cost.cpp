#include "qbarren/obs/cost.hpp"

namespace qbarren {

CostFunction::CostFunction(std::shared_ptr<const Circuit> circuit,
                           std::shared_ptr<const Observable> observable)
    : circuit_(std::move(circuit)), observable_(std::move(observable)) {
  QBARREN_REQUIRE(circuit_ != nullptr, "CostFunction: null circuit");
  QBARREN_REQUIRE(observable_ != nullptr, "CostFunction: null observable");
  QBARREN_REQUIRE(circuit_->num_qubits() == observable_->num_qubits(),
                  "CostFunction: circuit/observable width mismatch");
}

double CostFunction::value(std::span<const double> params) const {
  const StateVector state = circuit_->simulate(params);
  return observable_->expectation(state);
}

CostFunction make_identity_cost(std::shared_ptr<const Circuit> circuit) {
  QBARREN_REQUIRE(circuit != nullptr, "make_identity_cost: null circuit");
  auto obs = std::make_shared<GlobalZeroObservable>(circuit->num_qubits());
  return CostFunction(std::move(circuit), std::move(obs));
}

CostFunction make_local_identity_cost(
    std::shared_ptr<const Circuit> circuit) {
  QBARREN_REQUIRE(circuit != nullptr,
                  "make_local_identity_cost: null circuit");
  auto obs = std::make_shared<LocalZeroObservable>(circuit->num_qubits());
  return CostFunction(std::move(circuit), std::move(obs));
}

}  // namespace qbarren
