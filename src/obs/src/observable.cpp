#include "qbarren/obs/observable.hpp"

#include <bit>
#include <cmath>

#include "qbarren/qsim/gates.hpp"

namespace qbarren {

double Observable::expectation(const StateVector& state) const {
  return state.inner_product(apply(state)).real();
}

GlobalZeroObservable::GlobalZeroObservable(std::size_t num_qubits)
    : n_(num_qubits) {
  QBARREN_REQUIRE(num_qubits >= 1, "GlobalZeroObservable: need >= 1 qubit");
}

double GlobalZeroObservable::expectation(const StateVector& state) const {
  QBARREN_REQUIRE(state.num_qubits() == n_,
                  "GlobalZeroObservable: width mismatch");
  return 1.0 - state.probability(0);
}

StateVector GlobalZeroObservable::apply(const StateVector& state) const {
  QBARREN_REQUIRE(state.num_qubits() == n_,
                  "GlobalZeroObservable: width mismatch");
  StateVector out = state;
  // (I - |0><0|) psi zeroes the |0...0> amplitude.
  out.amplitudes()[0] = Complex{0.0, 0.0};
  return out;
}

LocalZeroObservable::LocalZeroObservable(std::size_t num_qubits)
    : n_(num_qubits) {
  QBARREN_REQUIRE(num_qubits >= 1, "LocalZeroObservable: need >= 1 qubit");
}

double LocalZeroObservable::expectation(const StateVector& state) const {
  QBARREN_REQUIRE(state.num_qubits() == n_,
                  "LocalZeroObservable: width mismatch");
  // 1 - (1/n) sum_j p(qubit j = 0).
  double acc = 0.0;
  for (std::size_t q = 0; q < n_; ++q) {
    acc += 1.0 - state.probability_one(q);
  }
  return 1.0 - acc / static_cast<double>(n_);
}

StateVector LocalZeroObservable::apply(const StateVector& state) const {
  QBARREN_REQUIRE(state.num_qubits() == n_,
                  "LocalZeroObservable: width mismatch");
  // Diagonal operator: coefficient of basis index i is
  // 1 - (zero-bit count of i) / n.
  StateVector out = state;
  const double inv_n = 1.0 / static_cast<double>(n_);
  auto& amps = out.amplitudes();
  for (std::size_t i = 0; i < amps.size(); ++i) {
    const auto ones = static_cast<std::size_t>(std::popcount(i));
    const double zeros = static_cast<double>(n_ - ones);
    amps[i] *= 1.0 - zeros * inv_n;
  }
  return out;
}

PauliStringObservable::PauliStringObservable(std::string paulis)
    : paulis_(std::move(paulis)) {
  QBARREN_REQUIRE(!paulis_.empty(),
                  "PauliStringObservable: empty Pauli string");
  for (char ch : paulis_) {
    QBARREN_REQUIRE(ch == 'I' || ch == 'X' || ch == 'Y' || ch == 'Z',
                    "PauliStringObservable: characters must be I/X/Y/Z");
  }
}

StateVector PauliStringObservable::apply(const StateVector& state) const {
  QBARREN_REQUIRE(state.num_qubits() == paulis_.size(),
                  "PauliStringObservable: width mismatch");
  StateVector out = state;
  for (std::size_t q = 0; q < paulis_.size(); ++q) {
    switch (paulis_[q]) {
      case 'I':
        break;
      case 'X':
        out.apply_single_qubit(gates::pauli_x(), q);
        break;
      case 'Y':
        out.apply_single_qubit(gates::pauli_y(), q);
        break;
      case 'Z':
        out.apply_single_qubit(gates::pauli_z(), q);
        break;
      default:
        throw InvalidArgument("PauliStringObservable: corrupt string");
    }
  }
  return out;
}

double PauliStringObservable::expectation(const StateVector& state) const {
  return state.inner_product(apply(state)).real();
}

std::unique_ptr<PauliStringObservable> make_z_observable(
    std::size_t qubit, std::size_t num_qubits) {
  QBARREN_REQUIRE(qubit < num_qubits, "make_z_observable: qubit out of range");
  std::string s(num_qubits, 'I');
  s[qubit] = 'Z';
  return std::make_unique<PauliStringObservable>(std::move(s));
}

}  // namespace qbarren
