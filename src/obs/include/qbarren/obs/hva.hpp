// Hamiltonian variational ansatz (HVA).
//
// One trainable Pauli rotation exp(-i theta/2 P_k) per Hamiltonian term
// per layer — a problem-aware alternative to the hardware-efficient
// ansatz. The BP literature reports HVA landscapes to be milder than
// HEA's for matched parameter counts; bench_ablation_hva compares both on
// the transverse-field Ising VQE.
#pragma once

#include "qbarren/circuit/circuit.hpp"
#include "qbarren/obs/hamiltonian.hpp"

namespace qbarren {

struct HvaOptions {
  std::size_t layers = 2;
  /// Start from |+...+> via a Hadamard wall (the standard HVA reference
  /// state for transverse-field models).
  bool hadamard_start = true;
};

/// Builds the HVA for `hamiltonian`; identity-only terms are skipped.
/// Records LayerShape{layers, non-identity terms}.
[[nodiscard]] Circuit hva_ansatz(const PauliSumObservable& hamiltonian,
                                 const HvaOptions& options = {});

}  // namespace qbarren
