// Hermitian observables.
//
// Every cost function in the paper is an expectation value <psi|H|psi> of a
// Hermitian operator H. The `Observable` interface exposes two primitives:
//   * expectation(state)  — the scalar <psi|H|psi>, and
//   * apply(state)        — the (generally non-normalized) vector H|psi>,
//     which adjoint-mode differentiation needs to seed its backward pass.
//
// Concrete observables:
//   * GlobalZeroObservable — H = I - |0...0><0...0| (paper Eq 4): the
//     "global" identity-learning cost whose landscape exhibits the worst
//     barren plateaus.
//   * LocalZeroObservable  — H = I - (1/n) sum_j |0><0|_j (Cerezo et al.
//     local cost), used by the cost-locality ablation.
//   * PauliStringObservable — tensor products of {I, X, Y, Z}, the standard
//     BP benchmark observable family (McClean et al. use Z0 Z1).
#pragma once

#include <memory>
#include <string>

#include "qbarren/qsim/statevector.hpp"

namespace qbarren {

class Observable {
 public:
  virtual ~Observable() = default;

  /// <psi|H|psi>. Default implementation: Re <psi | apply(psi)>.
  [[nodiscard]] virtual double expectation(const StateVector& state) const;

  /// H |psi> (not normalized).
  [[nodiscard]] virtual StateVector apply(const StateVector& state) const = 0;

  /// Human-readable label for reports.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Register width this observable acts on.
  [[nodiscard]] virtual std::size_t num_qubits() const = 0;
};

/// H = I - |0...0><0...0|; expectation = 1 - p(|0...0>) in [0, 1] (Eq 4).
class GlobalZeroObservable final : public Observable {
 public:
  explicit GlobalZeroObservable(std::size_t num_qubits);

  [[nodiscard]] double expectation(const StateVector& state) const override;
  [[nodiscard]] StateVector apply(const StateVector& state) const override;
  [[nodiscard]] std::string name() const override { return "global-zero"; }
  [[nodiscard]] std::size_t num_qubits() const override { return n_; }

 private:
  std::size_t n_;
};

/// H = I - (1/n) sum_j |0><0|_j tensor I_rest; expectation in [0, 1].
class LocalZeroObservable final : public Observable {
 public:
  explicit LocalZeroObservable(std::size_t num_qubits);

  [[nodiscard]] double expectation(const StateVector& state) const override;
  [[nodiscard]] StateVector apply(const StateVector& state) const override;
  [[nodiscard]] std::string name() const override { return "local-zero"; }
  [[nodiscard]] std::size_t num_qubits() const override { return n_; }

 private:
  std::size_t n_;
};

/// Tensor product of single-qubit Paulis described by a string over
/// {'I','X','Y','Z'}; character k addresses qubit k (low bit first).
class PauliStringObservable final : public Observable {
 public:
  /// E.g. "ZZ" on 2 qubits, "IZI" for Z on qubit 1 of 3. Length fixes the
  /// register width; throws InvalidArgument on other characters.
  explicit PauliStringObservable(std::string paulis);

  [[nodiscard]] double expectation(const StateVector& state) const override;
  [[nodiscard]] StateVector apply(const StateVector& state) const override;
  [[nodiscard]] std::string name() const override {
    return "pauli:" + paulis_;
  }
  [[nodiscard]] std::size_t num_qubits() const override {
    return paulis_.size();
  }

  [[nodiscard]] const std::string& pauli_string() const noexcept {
    return paulis_;
  }

 private:
  std::string paulis_;
};

/// Convenience factory: Z on `qubit`, identity elsewhere.
[[nodiscard]] std::unique_ptr<PauliStringObservable> make_z_observable(
    std::size_t qubit, std::size_t num_qubits);

}  // namespace qbarren
