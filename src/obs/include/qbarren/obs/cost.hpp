// Cost-function binding: circuit + observable -> scalar loss.
//
// `CostFunction` pairs a Circuit with an Observable and evaluates
// C(theta) = <0| U(theta)^dagger H U(theta) |0>. For the paper's Eq 4 cost
// use `make_identity_cost`, which binds the global |0...0> projector.
#pragma once

#include <memory>
#include <span>

#include "qbarren/circuit/circuit.hpp"
#include "qbarren/obs/observable.hpp"

namespace qbarren {

class CostFunction {
 public:
  /// Both pointers must be non-null and widths must agree.
  CostFunction(std::shared_ptr<const Circuit> circuit,
               std::shared_ptr<const Observable> observable);

  /// C(theta): simulate from |0...0> and take the expectation.
  [[nodiscard]] double value(std::span<const double> params) const;

  [[nodiscard]] const Circuit& circuit() const noexcept { return *circuit_; }
  [[nodiscard]] const Observable& observable() const noexcept {
    return *observable_;
  }
  [[nodiscard]] std::shared_ptr<const Circuit> circuit_ptr() const noexcept {
    return circuit_;
  }
  [[nodiscard]] std::shared_ptr<const Observable> observable_ptr()
      const noexcept {
    return observable_;
  }

  [[nodiscard]] std::size_t num_parameters() const noexcept {
    return circuit_->num_parameters();
  }

 private:
  std::shared_ptr<const Circuit> circuit_;
  std::shared_ptr<const Observable> observable_;
};

/// The paper's Eq 4 identity-learning cost: C = 1 - p(|0...0>).
[[nodiscard]] CostFunction make_identity_cost(
    std::shared_ptr<const Circuit> circuit);

/// Local variant (Cerezo-style) for the cost-locality ablation.
[[nodiscard]] CostFunction make_local_identity_cost(
    std::shared_ptr<const Circuit> circuit);

}  // namespace qbarren
