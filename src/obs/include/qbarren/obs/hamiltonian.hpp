// Weighted Pauli-sum Hamiltonians.
//
// PQCs' motivating applications (paper §I: chemistry, optimization)
// minimize <psi(theta)| H |psi(theta)> for H = sum_k c_k P_k with Pauli
// strings P_k. `PauliSumObservable` implements the Observable interface so
// Hamiltonians plug into every gradient engine, optimizer, and experiment
// in the library. A transverse-field Ising factory provides a standard
// benchmark instance, and a power-iteration ground-state solver gives the
// exact reference energy for small systems.
#pragma once

#include <utility>
#include <vector>

#include "qbarren/obs/observable.hpp"

namespace qbarren {

struct PauliTerm {
  double coefficient = 0.0;
  std::string paulis;  ///< one of I/X/Y/Z per qubit, low qubit first
};

class PauliSumObservable final : public Observable {
 public:
  /// All terms must be non-empty and share one width.
  explicit PauliSumObservable(std::vector<PauliTerm> terms);

  [[nodiscard]] double expectation(const StateVector& state) const override;
  [[nodiscard]] StateVector apply(const StateVector& state) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::size_t num_qubits() const override { return width_; }

  [[nodiscard]] const std::vector<PauliTerm>& terms() const noexcept {
    return terms_;
  }

  /// Sum of |coefficients| — an upper bound on |<H>| (triangle
  /// inequality), used for normalization and sanity checks.
  [[nodiscard]] double one_norm() const;

 private:
  std::vector<PauliTerm> terms_;
  std::size_t width_ = 0;
};

/// Transverse-field Ising chain with open boundaries:
///   H = -J sum_i Z_i Z_{i+1} - h sum_i X_i.
[[nodiscard]] PauliSumObservable transverse_field_ising(std::size_t num_qubits,
                                                        double coupling_j,
                                                        double field_h);

/// XXZ Heisenberg chain with open boundaries and a longitudinal field:
///   H = J_xy sum_i (X_i X_{i+1} + Y_i Y_{i+1}) + J_z sum_i Z_i Z_{i+1}
///       + h sum_i Z_i.
[[nodiscard]] PauliSumObservable heisenberg_xxz(std::size_t num_qubits,
                                                double coupling_jxy,
                                                double coupling_jz,
                                                double field_h = 0.0);

/// Smallest eigenvalue of H by inverse-shifted power iteration on
/// (one_norm * I - H), exact up to `tolerance` (spectral gap permitting).
/// Dense in the state dimension — intended for num_qubits <= 12.
[[nodiscard]] double ground_state_energy(const PauliSumObservable& hamiltonian,
                                         std::size_t max_iterations = 2000,
                                         double tolerance = 1e-10);

}  // namespace qbarren
