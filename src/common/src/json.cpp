#include "qbarren/common/json.hpp"

#include <cmath>
#include <cstring>
#include <sstream>

#include "qbarren/common/error.hpp"
#include "qbarren/common/run.hpp"

namespace qbarren {

JsonValue JsonValue::null() { return JsonValue(); }

JsonValue JsonValue::boolean(bool value) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::number(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::integer(std::int64_t value) {
  JsonValue v;
  v.kind_ = Kind::kInteger;
  v.integer_ = value;
  return v;
}

JsonValue JsonValue::string(std::string value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

void JsonValue::push_back(JsonValue element) {
  QBARREN_REQUIRE(kind_ == Kind::kArray,
                  "JsonValue::push_back: not an array");
  array_.push_back(std::move(element));
}

void JsonValue::set(const std::string& key, JsonValue value) {
  QBARREN_REQUIRE(kind_ == Kind::kObject, "JsonValue::set: not an object");
  object_[key] = std::move(value);
}

void JsonValue::set(const std::string& key, double value) {
  set(key, number(value));
}
void JsonValue::set(const std::string& key, std::int64_t value) {
  set(key, integer(value));
}
void JsonValue::set(const std::string& key, std::size_t value) {
  set(key, integer(static_cast<std::int64_t>(value)));
}
void JsonValue::set(const std::string& key, const std::string& value) {
  set(key, string(value));
}
void JsonValue::set(const std::string& key, const char* value) {
  set(key, string(value));
}
void JsonValue::set(const std::string& key, bool value) {
  set(key, boolean(value));
}

bool JsonValue::as_bool() const {
  QBARREN_REQUIRE(kind_ == Kind::kBool, "JsonValue::as_bool: not a boolean");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ == Kind::kInteger) {
    return static_cast<double>(integer_);
  }
  QBARREN_REQUIRE(kind_ == Kind::kNumber,
                  "JsonValue::as_number: not a number");
  return number_;
}

std::int64_t JsonValue::as_integer() const {
  QBARREN_REQUIRE(kind_ == Kind::kInteger,
                  "JsonValue::as_integer: not an integer");
  return integer_;
}

const std::string& JsonValue::as_string() const {
  QBARREN_REQUIRE(kind_ == Kind::kString,
                  "JsonValue::as_string: not a string");
  return string_;
}

std::size_t JsonValue::size() const {
  if (kind_ == Kind::kArray) return array_.size();
  QBARREN_REQUIRE(kind_ == Kind::kObject,
                  "JsonValue::size: not an array or object");
  return object_.size();
}

const JsonValue& JsonValue::at(std::size_t index) const {
  QBARREN_REQUIRE(kind_ == Kind::kArray, "JsonValue::at: not an array");
  QBARREN_REQUIRE(index < array_.size(),
                  "JsonValue::at: array index out of range");
  return array_[index];
}

const JsonValue& JsonValue::at(const std::string& key) const {
  QBARREN_REQUIRE(kind_ == Kind::kObject, "JsonValue::at: not an object");
  const auto it = object_.find(key);
  if (it == object_.end()) {
    throw NotFound("JsonValue::at: no member named '" + key + "'");
  }
  return it->second;
}

bool JsonValue::contains(const std::string& key) const noexcept {
  return kind_ == Kind::kObject && object_.count(key) > 0;
}

std::vector<std::string> JsonValue::keys() const {
  QBARREN_REQUIRE(kind_ == Kind::kObject, "JsonValue::keys: not an object");
  std::vector<std::string> out;
  out.reserve(object_.size());
  for (const auto& [key, value] : object_) {
    (void)value;
    out.push_back(key);
  }
  return out;
}

JsonValue JsonValue::number_array(const std::vector<double>& values) {
  JsonValue arr = array();
  for (const double v : values) {
    arr.push_back(number(v));
  }
  return arr;
}

namespace {

void escape_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(ch));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";  // RFC 8259 has no NaN/Inf
    return;
  }
  std::ostringstream oss;
  oss.precision(17);
  oss << v;
  out += oss.str();
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) *
                 static_cast<std::size_t>(depth),
             ' ');
}

}  // namespace

void JsonValue::dump_impl(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      return;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::kNumber:
      append_number(out, number_);
      return;
    case Kind::kInteger:
      out += std::to_string(integer_);
      return;
    case Kind::kString:
      escape_string(out, string_);
      return;
    case Kind::kArray: {
      if (array_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i != 0) out += ',';
        newline_indent(out, indent, depth + 1);
        array_[i].dump_impl(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += ']';
      return;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out += ',';
        first = false;
        newline_indent(out, indent, depth + 1);
        escape_string(out, key);
        out += indent > 0 ? ": " : ":";
        value.dump_impl(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_impl(out, indent, 0);
  return out;
}

void write_json_file(const JsonValue& value, const std::string& path,
                     int indent) {
  // Atomic (temp + fsync + rename): a killed process never leaves a
  // truncated or corrupt results file behind.
  write_file_atomic(path, value.dump(indent) + '\n');
}

namespace {

/// Recursive-descent RFC 8259 parser over a byte range.
class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) {
      fail("trailing characters after JSON value");
    }
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw InvalidArgument("parse_json: " + what + " at byte " +
                          std::to_string(pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    const std::size_t len = std::strlen(literal);
    if (text_.compare(pos_, len, literal) != 0) return false;
    pos_ += len;
    return true;
  }

  JsonValue parse_value() {
    skip_whitespace();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return JsonValue::string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        return JsonValue::boolean(true);
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        return JsonValue::boolean(false);
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        return JsonValue::null();
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue obj = JsonValue::object();
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_whitespace();
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      obj.set(key, parse_value());
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue arr = JsonValue::array();
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push_back(parse_value());
      skip_whitespace();
      const char c = peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  void append_utf8(std::string& out, unsigned code_point) {
    if (code_point < 0x80) {
      out += static_cast<char>(code_point);
    } else if (code_point < 0x800) {
      out += static_cast<char>(0xC0 | (code_point >> 6));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    } else if (code_point < 0x10000) {
      out += static_cast<char>(0xE0 | (code_point >> 12));
      out += static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code_point >> 18));
      out += static_cast<char>(0x80 | ((code_point >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code_point & 0x3F));
    }
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape digit");
      }
    }
    return value;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code_point = parse_hex4();
          if (code_point >= 0xD800 && code_point <= 0xDBFF) {
            // High surrogate: must be followed by \uDC00..\uDFFF.
            if (peek() != '\\') fail("unpaired UTF-16 surrogate");
            ++pos_;
            if (peek() != 'u') fail("unpaired UTF-16 surrogate");
            ++pos_;
            const unsigned low = parse_hex4();
            if (low < 0xDC00 || low > 0xDFFF) {
              fail("invalid UTF-16 low surrogate");
            }
            code_point =
                0x10000 + ((code_point - 0xD800) << 10) + (low - 0xDC00);
          } else if (code_point >= 0xDC00 && code_point <= 0xDFFF) {
            fail("unpaired UTF-16 surrogate");
          }
          append_utf8(out, code_point);
          break;
        }
        default:
          fail("invalid escape sequence");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    bool is_integral = true;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") fail("invalid number");
    errno = 0;
    char* end = nullptr;
    if (is_integral) {
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        return JsonValue::integer(static_cast<std::int64_t>(v));
      }
      errno = 0;  // out of int64 range: fall through to double
    }
    const double d = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      pos_ = start;
      fail("invalid number");
    }
    return JsonValue::number(d);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text) {
  return JsonParser(text).parse_document();
}

}  // namespace qbarren
