#include "qbarren/common/json.hpp"

#include <cmath>
#include <sstream>

#include "qbarren/common/error.hpp"
#include "qbarren/common/run.hpp"

namespace qbarren {

JsonValue JsonValue::null() { return JsonValue(); }

JsonValue JsonValue::boolean(bool value) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::number(double value) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::integer(std::int64_t value) {
  JsonValue v;
  v.kind_ = Kind::kInteger;
  v.integer_ = value;
  return v;
}

JsonValue JsonValue::string(std::string value) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

void JsonValue::push_back(JsonValue element) {
  QBARREN_REQUIRE(kind_ == Kind::kArray,
                  "JsonValue::push_back: not an array");
  array_.push_back(std::move(element));
}

void JsonValue::set(const std::string& key, JsonValue value) {
  QBARREN_REQUIRE(kind_ == Kind::kObject, "JsonValue::set: not an object");
  object_[key] = std::move(value);
}

void JsonValue::set(const std::string& key, double value) {
  set(key, number(value));
}
void JsonValue::set(const std::string& key, std::int64_t value) {
  set(key, integer(value));
}
void JsonValue::set(const std::string& key, std::size_t value) {
  set(key, integer(static_cast<std::int64_t>(value)));
}
void JsonValue::set(const std::string& key, const std::string& value) {
  set(key, string(value));
}
void JsonValue::set(const std::string& key, const char* value) {
  set(key, string(value));
}
void JsonValue::set(const std::string& key, bool value) {
  set(key, boolean(value));
}

JsonValue JsonValue::number_array(const std::vector<double>& values) {
  JsonValue arr = array();
  for (const double v : values) {
    arr.push_back(number(v));
  }
  return arr;
}

namespace {

void escape_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char ch : s) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(ch));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";  // RFC 8259 has no NaN/Inf
    return;
  }
  std::ostringstream oss;
  oss.precision(17);
  oss << v;
  out += oss.str();
}

void newline_indent(std::string& out, int indent, int depth) {
  if (indent <= 0) return;
  out += '\n';
  out.append(static_cast<std::size_t>(indent) *
                 static_cast<std::size_t>(depth),
             ' ');
}

}  // namespace

void JsonValue::dump_impl(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      return;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::kNumber:
      append_number(out, number_);
      return;
    case Kind::kInteger:
      out += std::to_string(integer_);
      return;
    case Kind::kString:
      escape_string(out, string_);
      return;
    case Kind::kArray: {
      if (array_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i != 0) out += ',';
        newline_indent(out, indent, depth + 1);
        array_[i].dump_impl(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += ']';
      return;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      bool first = true;
      for (const auto& [key, value] : object_) {
        if (!first) out += ',';
        first = false;
        newline_indent(out, indent, depth + 1);
        escape_string(out, key);
        out += indent > 0 ? ": " : ":";
        value.dump_impl(out, indent, depth + 1);
      }
      newline_indent(out, indent, depth);
      out += '}';
      return;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_impl(out, indent, 0);
  return out;
}

void write_json_file(const JsonValue& value, const std::string& path,
                     int indent) {
  // Atomic (temp + fsync + rename): a killed process never leaves a
  // truncated or corrupt results file behind.
  write_file_atomic(path, value.dump(indent) + '\n');
}

}  // namespace qbarren
