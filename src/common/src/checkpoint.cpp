#include "qbarren/common/checkpoint.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>

#include "qbarren/common/run.hpp"

namespace qbarren {

namespace {

[[noreturn]] void corrupt(const std::string& path, const std::string& why) {
  throw CheckpointError("checkpoint " + path + ": " + why);
}

bool is_identifier(const std::string& s) {
  if (s.empty()) return false;
  for (const char ch : s) {
    const bool ok = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                    (ch >= '0' && ch <= '9') || ch == '_';
    if (!ok) return false;
  }
  return true;
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);  // hexfloat: exact round trip
  out += buf;
}

/// Parses one double token with strtod (iostream hexfloat extraction is
/// unreliable); `where` names the field for error messages.
double parse_double(std::istringstream& line, const std::string& path,
                    const std::string& where) {
  std::string token;
  if (!(line >> token)) {
    corrupt(path, "missing value in " + where);
  }
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0') {
    corrupt(path, "bad numeric token '" + token + "' in " + where);
  }
  return v;
}

/// Parses one "scalar ..." / "vector ..." body line into `cell`. Returns
/// false when `tag` is not a payload tag (caller decides what that
/// means); throws CheckpointError (via corrupt) on a malformed payload
/// line.
bool parse_payload_line(const std::string& tag, std::istringstream& fields,
                        const std::string& path, CheckpointCell& cell) {
  if (tag == "scalar") {
    std::string name;
    if (!(fields >> name) || !is_identifier(name)) {
      corrupt(path, "bad scalar name");
    }
    cell.scalars[name] = parse_double(fields, path, "scalar " + name);
    return true;
  }
  if (tag == "vector") {
    std::string name;
    std::size_t count = 0;
    if (!(fields >> name >> count) || !is_identifier(name)) {
      corrupt(path, "bad vector header");
    }
    std::vector<double>& values = cell.vectors[name];
    values.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      values[i] = parse_double(fields, path, "vector " + name);
    }
    return true;
  }
  return false;
}

void append_cell_payload(std::string& out, const CheckpointCell& cell) {
  for (const auto& [name, value] : cell.scalars) {
    out += "scalar " + name + " ";
    append_double(out, value);
    out += '\n';
  }
  for (const auto& [name, values] : cell.vectors) {
    out += "vector " + name + " " + std::to_string(values.size());
    for (const double v : values) {
      out += ' ';
      append_double(out, v);
    }
    out += '\n';
  }
}

}  // namespace

double CheckpointCell::scalar(const std::string& name) const {
  const auto it = scalars.find(name);
  if (it == scalars.end()) {
    throw CheckpointError("checkpoint cell: missing scalar '" + name + "'");
  }
  return it->second;
}

const std::vector<double>& CheckpointCell::vector(
    const std::string& name) const {
  const auto it = vectors.find(name);
  if (it == vectors.end()) {
    throw CheckpointError("checkpoint cell: missing vector '" + name + "'");
  }
  return it->second;
}

Checkpoint::Checkpoint(std::string path, std::string fingerprint)
    : path_(std::move(path)), fingerprint_(std::move(fingerprint)) {
  QBARREN_REQUIRE(!fingerprint_.empty(), "Checkpoint: empty fingerprint");
  QBARREN_REQUIRE(fingerprint_.find('\n') == std::string::npos,
                  "Checkpoint: fingerprint must be a single line");
}

Checkpoint Checkpoint::load(const std::string& path,
                            const std::string& expected_fingerprint) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw CheckpointError("checkpoint " + path + ": cannot open");
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::istringstream stream(buffer.str());

  std::string line;
  if (!std::getline(stream, line)) {
    corrupt(path, "empty file");
  }
  {
    std::istringstream header(line);
    std::string magic;
    int version = -1;
    if (!(header >> magic >> version) || magic != "qbarren-checkpoint") {
      corrupt(path, "not a qbarren checkpoint");
    }
    if (version != kFormatVersion) {
      corrupt(path, "format version " + std::to_string(version) +
                        " (this build reads version " +
                        std::to_string(kFormatVersion) + ")");
    }
  }
  if (!std::getline(stream, line) || line.rfind("fingerprint ", 0) != 0) {
    corrupt(path, "missing fingerprint line");
  }
  const std::string stored = line.substr(std::string("fingerprint ").size());
  if (stored != expected_fingerprint) {
    throw CheckpointError(
        "checkpoint " + path +
        ": stale — it was written by a run with different options\n"
        "  stored:   " + stored + "\n  expected: " + expected_fingerprint);
  }

  Checkpoint ckpt(path, stored);
  std::string current_key;
  bool in_cell = false;
  CheckpointCell current;
  bool saw_end = false;
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "cell") {
      if (in_cell) corrupt(path, "cell without endcell");
      std::string rest;
      std::getline(fields, rest);
      if (rest.size() < 2 || rest[0] != ' ') corrupt(path, "bad cell line");
      current_key = rest.substr(1);
      current = CheckpointCell{};
      in_cell = true;
    } else if (tag == "scalar" || tag == "vector") {
      if (!in_cell) corrupt(path, tag + " outside cell");
      parse_payload_line(tag, fields, path, current);
    } else if (tag == "endcell") {
      if (!in_cell) corrupt(path, "endcell outside cell");
      ckpt.cells_[current_key] = std::move(current);
      current = CheckpointCell{};
      in_cell = false;
    } else if (tag == "end") {
      std::size_t count = 0;
      if (!(fields >> count) || count != ckpt.cells_.size()) {
        corrupt(path, "cell count mismatch (truncated file?)");
      }
      saw_end = true;
      break;
    } else {
      corrupt(path, "unknown line tag '" + tag + "'");
    }
  }
  if (in_cell) corrupt(path, "cell without endcell at EOF");
  if (!saw_end) corrupt(path, "missing end marker (truncated file?)");
  return ckpt;
}

Checkpoint Checkpoint::open(const std::string& path,
                            const std::string& fingerprint, bool resume) {
  if (resume && std::ifstream(path).good()) {
    return load(path, fingerprint);
  }
  return Checkpoint(path, fingerprint);
}

Checkpoint Checkpoint::open_salvaging(const std::string& path,
                                      const std::string& fingerprint,
                                      CheckpointSalvage* salvage) {
  CheckpointSalvage report;
  if (!std::ifstream(path).good()) {
    if (salvage != nullptr) *salvage = report;
    return Checkpoint(path, fingerprint);
  }
  try {
    Checkpoint loaded = load(path, fingerprint);
    if (salvage != nullptr) *salvage = report;
    return loaded;
  } catch (const CheckpointError& error) {
    report.reason = error.what();
  }

  // Tolerant reparse: keep every cell completed before the first damaged
  // line. A wrong header, version, or fingerprint keeps nothing — bytes
  // written under other options must never leak into this store.
  Checkpoint ckpt(path, fingerprint);
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::istringstream stream(buffer.str());
  std::string line;
  bool header_ok = false;
  if (std::getline(stream, line)) {
    std::istringstream header(line);
    std::string magic;
    int version = -1;
    header_ok = static_cast<bool>(header >> magic >> version) &&
                magic == "qbarren-checkpoint" && version == kFormatVersion;
  }
  if (header_ok && std::getline(stream, line) &&
      line == "fingerprint " + fingerprint) {
    std::string current_key;
    CheckpointCell current;
    bool in_cell = false;
    try {
      while (std::getline(stream, line)) {
        if (line.empty()) continue;
        std::istringstream fields(line);
        std::string tag;
        fields >> tag;
        if (tag == "cell") {
          if (in_cell) break;  // damaged framing; stop at last good cell
          std::string rest;
          std::getline(fields, rest);
          if (rest.size() < 2 || rest[0] != ' ') break;
          current_key = rest.substr(1);
          current = CheckpointCell{};
          in_cell = true;
        } else if (tag == "scalar" || tag == "vector") {
          if (!in_cell) break;
          parse_payload_line(tag, fields, path, current);
        } else if (tag == "endcell") {
          if (!in_cell) break;
          ckpt.cells_[current_key] = std::move(current);
          current = CheckpointCell{};
          in_cell = false;
        } else {
          break;  // "end" (count already known wrong) or unknown tag
        }
      }
    } catch (const CheckpointError&) {
      // Malformed payload line: everything before it is already kept.
    }
  }
  report.salvaged_cells = ckpt.cells_.size();

  // Move the damaged file aside so the evidence survives and the next
  // flush starts from a clean slate. A failed rename is not fatal — the
  // next flush overwrites the damaged file atomically anyway.
  report.quarantine_path = path + ".corrupt";
  report.quarantined =
      std::rename(path.c_str(), report.quarantine_path.c_str()) == 0;
  if (salvage != nullptr) *salvage = report;
  return ckpt;
}

bool Checkpoint::has_cell(const std::string& key) const {
  std::lock_guard<std::mutex> lock(*mutex_);
  return cells_.find(key) != cells_.end();
}

const CheckpointCell* Checkpoint::find_cell(const std::string& key) const {
  // The returned pointer stays valid under concurrent record_cell of
  // *other* keys (std::map never invalidates on insert); callers restore
  // cells before spawning producers, so no lifetime hazard in practice.
  std::lock_guard<std::mutex> lock(*mutex_);
  const auto it = cells_.find(key);
  return it == cells_.end() ? nullptr : &it->second;
}

std::size_t Checkpoint::cell_count() const noexcept {
  std::lock_guard<std::mutex> lock(*mutex_);
  return cells_.size();
}

void Checkpoint::put_cell_locked(const std::string& key,
                                 CheckpointCell cell) {
  QBARREN_REQUIRE(!key.empty() && key.find('\n') == std::string::npos,
                  "Checkpoint::put_cell: key must be a non-empty single line");
  for (const auto& [name, unused] : cell.scalars) {
    QBARREN_REQUIRE(is_identifier(name),
                    "Checkpoint::put_cell: scalar names must be identifiers");
  }
  for (const auto& [name, unused] : cell.vectors) {
    QBARREN_REQUIRE(is_identifier(name),
                    "Checkpoint::put_cell: vector names must be identifiers");
  }
  cells_[key] = std::move(cell);
}

void Checkpoint::put_cell(const std::string& key, CheckpointCell cell) {
  std::lock_guard<std::mutex> lock(*mutex_);
  put_cell_locked(key, std::move(cell));
}

void Checkpoint::record_cell(const std::string& key, CheckpointCell cell) {
  std::lock_guard<std::mutex> lock(*mutex_);
  put_cell_locked(key, std::move(cell));
  if (!path_.empty()) {
    write_file_atomic(path_, serialize_locked());
  }
}

std::string Checkpoint::serialize_locked() const {
  std::string out;
  out += "qbarren-checkpoint " + std::to_string(kFormatVersion) + "\n";
  out += "fingerprint " + fingerprint_ + "\n";
  for (const auto& [key, cell] : cells_) {
    out += "cell " + key + "\n";
    append_cell_payload(out, cell);
    out += "endcell\n";
  }
  out += "end " + std::to_string(cells_.size()) + "\n";
  return out;
}

std::string Checkpoint::serialize() const {
  std::lock_guard<std::mutex> lock(*mutex_);
  return serialize_locked();
}

void Checkpoint::flush() const {
  if (path_.empty()) return;
  std::lock_guard<std::mutex> lock(*mutex_);
  write_file_atomic(path_, serialize_locked());
}

bool CheckpointScan::structurally_clean() const {
  if (!exists || !header_ok || !version_ok || !has_fingerprint ||
      !saw_end || !issues.empty()) {
    return false;
  }
  for (const Record& record : records) {
    if (!record.complete) return false;
  }
  return true;
}

CheckpointScan scan_checkpoint_file(const std::string& path) {
  CheckpointScan scan;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    scan.issues.push_back({0, "cannot open file"});
    return scan;
  }
  scan.exists = true;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::istringstream stream(buffer.str());

  std::string line;
  std::size_t line_no = 0;
  if (!std::getline(stream, line)) {
    scan.issues.push_back({0, "empty file"});
    return scan;
  }
  ++line_no;
  {
    std::istringstream header(line);
    std::string magic;
    int version = -1;
    if (!(header >> magic >> version) || magic != "qbarren-checkpoint") {
      scan.issues.push_back({line_no, "not a qbarren checkpoint"});
      return scan;  // nothing past a foreign header is trustworthy
    }
    scan.header_ok = true;
    scan.version = version;
    scan.version_ok = version == Checkpoint::kFormatVersion;
    if (!scan.version_ok) {
      scan.issues.push_back(
          {line_no, "format version " + std::to_string(version) +
                        " (this build reads version " +
                        std::to_string(Checkpoint::kFormatVersion) + ")"});
    }
  }
  if (!std::getline(stream, line)) {
    scan.issues.push_back({line_no, "missing fingerprint line"});
    return scan;
  }
  ++line_no;
  if (line.rfind("fingerprint ", 0) != 0) {
    scan.issues.push_back({line_no, "missing fingerprint line"});
    return scan;
  }
  scan.has_fingerprint = true;
  scan.fingerprint = line.substr(std::string("fingerprint ").size());

  // Body: the strict loader's grammar, but every violation is recorded
  // with its line number and the walk continues — fsck reports all the
  // damage in one pass instead of the first byte of it.
  bool in_cell = false;
  bool damaged = false;  // current record had a bad payload/unknown line
  std::set<std::string> complete_keys;
  const auto close_record = [&](bool complete) {
    if (!scan.records.empty()) {
      scan.records.back().complete = complete && !damaged;
      if (scan.records.back().complete) {
        complete_keys.insert(scan.records.back().key);
      }
    }
    in_cell = false;
    damaged = false;
  };
  while (std::getline(stream, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (scan.saw_end) {
      scan.issues.push_back({line_no, "trailing data after end marker"});
      break;
    }
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (tag == "cell") {
      if (in_cell) {
        scan.issues.push_back({line_no, "cell without endcell"});
        close_record(false);
      }
      std::string rest;
      std::getline(fields, rest);
      if (rest.size() < 2 || rest[0] != ' ') {
        scan.issues.push_back({line_no, "bad cell line"});
        continue;
      }
      scan.records.push_back({rest.substr(1), line_no, false});
      in_cell = true;
      damaged = false;
    } else if (tag == "scalar" || tag == "vector") {
      if (!in_cell) {
        scan.issues.push_back({line_no, tag + " outside cell"});
        continue;
      }
      try {
        CheckpointCell sink;
        parse_payload_line(tag, fields, path, sink);
      } catch (const CheckpointError& error) {
        scan.issues.push_back({line_no, error.what()});
        damaged = true;
      }
    } else if (tag == "endcell") {
      if (!in_cell) {
        scan.issues.push_back({line_no, "endcell outside cell"});
        continue;
      }
      close_record(true);
    } else if (tag == "end") {
      if (in_cell) {
        scan.issues.push_back({line_no, "end marker inside cell"});
        close_record(false);
      }
      std::size_t count = 0;
      if (!(fields >> count)) {
        scan.issues.push_back({line_no, "bad end marker"});
      } else {
        scan.declared_cells = count;
        if (count != complete_keys.size()) {
          scan.issues.push_back(
              {line_no, "cell count mismatch (truncated file?): declares " +
                            std::to_string(count) + ", file holds " +
                            std::to_string(complete_keys.size())});
        }
      }
      scan.saw_end = true;
    } else {
      scan.issues.push_back({line_no, "unknown line tag '" + tag + "'"});
      if (in_cell) damaged = true;
    }
  }
  if (in_cell) {
    scan.issues.push_back({line_no, "cell without endcell at EOF"});
    close_record(false);
  }
  if (!scan.saw_end) {
    scan.issues.push_back({line_no, "missing end marker (truncated file?)"});
  }
  return scan;
}

std::string serialize_cell_payload(const CheckpointCell& cell) {
  std::string out;
  append_cell_payload(out, cell);
  return out;
}

CheckpointCell parse_cell_payload(const std::string& text) {
  static const std::string where = "<cell payload>";
  CheckpointCell cell;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.empty()) continue;
    std::istringstream fields(line);
    std::string tag;
    fields >> tag;
    if (!parse_payload_line(tag, fields, where, cell)) {
      corrupt(where, "unknown payload tag '" + tag + "'");
    }
  }
  return cell;
}

}  // namespace qbarren
