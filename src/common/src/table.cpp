#include "qbarren/common/table.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "qbarren/common/error.hpp"

namespace qbarren {

std::string format_fixed(double value, int precision) {
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(precision);
  oss << value;
  return oss.str();
}

std::string format_sci(double value, int precision) {
  std::ostringstream oss;
  oss.setf(std::ios::scientific);
  oss.precision(precision);
  oss << value;
  return oss.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  QBARREN_REQUIRE(!headers_.empty(), "Table: need at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  QBARREN_REQUIRE(cells.size() == headers_.size(),
                  "Table::add_row: cell count does not match column count");
  QBARREN_REQUIRE(!row_open_, "Table::add_row: a begin_row() row is open");
  rows_.push_back(std::move(cells));
}

void Table::begin_row() {
  QBARREN_REQUIRE(!row_open_, "Table::begin_row: previous row not finished");
  pending_.clear();
  row_open_ = true;
}

void Table::finish_pending_row_if_full() {
  if (row_open_ && pending_.size() == headers_.size()) {
    rows_.push_back(std::move(pending_));
    pending_ = {};
    row_open_ = false;
  }
}

void Table::push(std::string cell) {
  QBARREN_REQUIRE(row_open_, "Table::push: call begin_row() first");
  QBARREN_REQUIRE(pending_.size() < headers_.size(),
                  "Table::push: row already full");
  pending_.push_back(std::move(cell));
  finish_pending_row_if_full();
}

void Table::push(double value, int precision) {
  push(format_fixed(value, precision));
}

void Table::push(std::size_t value) { push(std::to_string(value)); }

void Table::push(long long value) { push(std::to_string(value)); }

void Table::push_sci(double value, int precision) {
  push(format_sci(value, precision));
}

std::string Table::to_ascii() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto emit_row = [&](std::ostringstream& oss,
                      const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      oss << (c == 0 ? "| " : " | ");
      oss << cells[c];
      oss << std::string(widths[c] - cells[c].size(), ' ');
    }
    oss << " |\n";
  };

  std::ostringstream oss;
  emit_row(oss, headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    oss << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  oss << "-|\n";
  for (const auto& row : rows_) {
    emit_row(oss, row);
  }
  return oss.str();
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) {
    return cell;
  }
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') {
      out += "\"\"";
    } else {
      out += ch;
    }
  }
  out += '"';
  return out;
}

}  // namespace

std::string Table::to_csv() const {
  std::ostringstream oss;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c != 0) oss << ',';
    oss << csv_escape(headers_[c]);
  }
  oss << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) oss << ',';
      oss << csv_escape(row[c]);
    }
    oss << '\n';
  }
  return oss.str();
}

std::string Table::to_markdown() const {
  std::ostringstream oss;
  oss << '|';
  for (const auto& h : headers_) {
    oss << ' ' << h << " |";
  }
  oss << "\n|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    oss << "---|";
  }
  oss << '\n';
  for (const auto& row : rows_) {
    oss << '|';
    for (const auto& cell : row) {
      oss << ' ' << cell << " |";
    }
    oss << '\n';
  }
  return oss.str();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw Error("Table::write_csv: cannot open " + path);
  }
  out << to_csv();
  if (!out) {
    throw Error("Table::write_csv: write failed for " + path);
  }
}

}  // namespace qbarren
