#include "qbarren/common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "qbarren/common/error.hpp"

namespace qbarren {

double mean(std::span<const double> xs) {
  QBARREN_REQUIRE(!xs.empty(), "mean: empty sample");
  double acc = 0.0;
  for (double x : xs) {
    acc += x;
  }
  return acc / static_cast<double>(xs.size());
}

namespace {

// Two-pass variance: numerically stable for the magnitudes we see
// (gradient samples spanning ~1e-8 .. 1e0).
double variance_impl(std::span<const double> xs, double denom) {
  const double mu = mean(xs);
  double acc = 0.0;
  for (double x : xs) {
    const double d = x - mu;
    acc += d * d;
  }
  return acc / denom;
}

}  // namespace

double sample_variance(std::span<const double> xs) {
  QBARREN_REQUIRE(xs.size() >= 2, "sample_variance: need at least 2 samples");
  return variance_impl(xs, static_cast<double>(xs.size() - 1));
}

double population_variance(std::span<const double> xs) {
  QBARREN_REQUIRE(!xs.empty(), "population_variance: empty sample");
  return variance_impl(xs, static_cast<double>(xs.size()));
}

double sample_stddev(std::span<const double> xs) {
  return std::sqrt(sample_variance(xs));
}

double median(std::span<const double> xs) {
  QBARREN_REQUIRE(!xs.empty(), "median: empty sample");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  if (n % 2 == 1) {
    return sorted[n / 2];
  }
  return 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

Summary summarize(std::span<const double> xs) {
  QBARREN_REQUIRE(!xs.empty(), "summarize: empty sample");
  Summary s;
  s.count = xs.size();
  s.mean = mean(xs);
  s.variance = xs.size() >= 2 ? sample_variance(xs) : 0.0;
  s.stddev = std::sqrt(s.variance);
  const auto [mn, mx] = std::minmax_element(xs.begin(), xs.end());
  s.min = *mn;
  s.max = *mx;
  s.median = median(xs);
  return s;
}

LinearFit linear_fit(std::span<const double> xs, std::span<const double> ys) {
  QBARREN_REQUIRE(xs.size() == ys.size(), "linear_fit: size mismatch");
  QBARREN_REQUIRE(xs.size() >= 2, "linear_fit: need at least 2 points");
  const auto n = static_cast<double>(xs.size());
  const double mx = mean(xs);
  const double my = mean(ys);

  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0.0) {
    throw NumericalError("linear_fit: all x values identical");
  }

  LinearFit fit;
  fit.n = xs.size();
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;

  // Residual sum of squares and derived diagnostics.
  double ss_res = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double pred = fit.slope * xs[i] + fit.intercept;
    const double r = ys[i] - pred;
    ss_res += r * r;
  }
  fit.r_squared = (syy > 0.0) ? 1.0 - ss_res / syy : 1.0;
  if (xs.size() > 2) {
    const double sigma2 = ss_res / (n - 2.0);
    fit.slope_stderr = std::sqrt(sigma2 / sxx);
  }
  return fit;
}

std::vector<double> log_transform(std::span<const double> xs) {
  std::vector<double> out;
  out.reserve(xs.size());
  for (double x : xs) {
    if (!(x > 0.0)) {
      throw NumericalError("log_transform: non-positive value");
    }
    out.push_back(std::log(x));
  }
  return out;
}

double pearson_correlation(std::span<const double> xs,
                           std::span<const double> ys) {
  QBARREN_REQUIRE(xs.size() == ys.size(), "pearson: size mismatch");
  QBARREN_REQUIRE(xs.size() >= 2, "pearson: need at least 2 points");
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxx = 0.0;
  double syy = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxx += dx * dx;
    syy += dy * dy;
    sxy += dx * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) {
    throw NumericalError("pearson: constant input");
  }
  return sxy / std::sqrt(sxx * syy);
}

namespace {

// Central moment of order k (population normalization).
double central_moment(std::span<const double> xs, int order) {
  const double mu = mean(xs);
  double acc = 0.0;
  for (const double x : xs) {
    acc += std::pow(x - mu, order);
  }
  return acc / static_cast<double>(xs.size());
}

}  // namespace

double sample_skewness(std::span<const double> xs) {
  QBARREN_REQUIRE(xs.size() >= 2, "sample_skewness: need >= 2 samples");
  const double m2 = central_moment(xs, 2);
  if (m2 <= 0.0) {
    throw NumericalError("sample_skewness: constant sample");
  }
  return central_moment(xs, 3) / std::pow(m2, 1.5);
}

double sample_excess_kurtosis(std::span<const double> xs) {
  QBARREN_REQUIRE(xs.size() >= 2,
                  "sample_excess_kurtosis: need >= 2 samples");
  const double m2 = central_moment(xs, 2);
  if (m2 <= 0.0) {
    throw NumericalError("sample_excess_kurtosis: constant sample");
  }
  return central_moment(xs, 4) / (m2 * m2) - 3.0;
}

}  // namespace qbarren
