#include "qbarren/common/run.hpp"

#include <csignal>
#include <cstdio>

#if defined(_WIN32)
#include <fstream>
#else
#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#endif

namespace qbarren {

namespace {

#if !defined(_WIN32)
[[noreturn]] void throw_io_error(const std::string& what,
                                 const std::string& path) {
  throw Error("write_file_atomic: " + what + " for " + path + ": " +
              std::strerror(errno));
}
#endif

}  // namespace

void write_file_atomic(const std::string& path, std::string_view content) {
  QBARREN_REQUIRE(!path.empty(), "write_file_atomic: empty path");
#if defined(_WIN32)
  // Portability fallback: plain truncating write (no fsync/rename
  // guarantees outside POSIX).
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw Error("write_file_atomic: cannot open " + path);
  }
  out.write(content.data(),
            static_cast<std::streamsize>(content.size()));
  out.flush();
  if (!out) {
    throw Error("write_file_atomic: write failed for " + path);
  }
#else
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw_io_error("cannot open temporary", tmp);
  }
  std::size_t written = 0;
  while (written < content.size()) {
    const ::ssize_t n =
        ::write(fd, content.data() + written, content.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      throw_io_error("write failed", tmp);
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw_io_error("fsync failed", tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    throw_io_error("close failed", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw_io_error("rename failed", path);
  }
  // Durability of the rename itself requires fsync on the directory;
  // best-effort (some filesystems refuse directory fsync).
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash + 1);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY);
  if (dir_fd >= 0) {
    (void)::fsync(dir_fd);
    ::close(dir_fd);
  }
#endif
}

void CancellationToken::throw_if_cancelled(const std::string& context) const {
  if (cancelled()) {
    throw Cancelled("cancelled: " + context);
  }
}

namespace {

// The token the installed handlers forward to. A plain atomic pointer so
// the handler body is async-signal-safe.
std::atomic<CancellationToken*> g_signal_token{nullptr};

void forward_signal_to_token(int /*signum*/) {
  CancellationToken* token = g_signal_token.load(std::memory_order_relaxed);
  if (token != nullptr) {
    token->request_cancel();
  }
}

}  // namespace

// Main-thread-only by contract (see the header): std::signal changes the
// process-wide disposition, so installation must happen before worker
// threads start and restoration after they join. The compare-exchange on
// g_signal_token enforces single-instance, and the handler + worker polls
// touch only lock-free atomics, so no data race is possible once workers
// are running.
ScopedSignalCancellation::ScopedSignalCancellation(CancellationToken& token) {
  CancellationToken* expected = nullptr;
  QBARREN_REQUIRE(
      g_signal_token.compare_exchange_strong(expected, &token),
      "ScopedSignalCancellation: another instance is already active");
  old_int_ = std::signal(SIGINT, &forward_signal_to_token);
  old_term_ = std::signal(SIGTERM, &forward_signal_to_token);
}

ScopedSignalCancellation::~ScopedSignalCancellation() {
  std::signal(SIGINT, old_int_ == SIG_ERR ? SIG_DFL : old_int_);
  std::signal(SIGTERM, old_term_ == SIG_ERR ? SIG_DFL : old_term_);
  g_signal_token.store(nullptr, std::memory_order_relaxed);
}

}  // namespace qbarren
