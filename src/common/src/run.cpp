#include "qbarren/common/run.hpp"

#include <csignal>
#include <cstdio>

#if defined(_WIN32)
#include <fstream>
#else
#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <string>
#include <system_error>
#endif

namespace qbarren {

namespace {

#if !defined(_WIN32)
[[noreturn]] void throw_io_error(const std::string& what,
                                 const std::string& path) {
  // std::error_code::message is thread-safe, unlike std::strerror
  // (concurrency-mt-unsafe): checkpoint writers call this off-main-thread.
  throw Error("write_file_atomic: " + what + " for " + path + ": " +
              std::error_code(errno, std::generic_category()).message());
}
#endif

}  // namespace

void write_file_atomic(const std::string& path, std::string_view content) {
  QBARREN_REQUIRE(!path.empty(), "write_file_atomic: empty path");
#if defined(_WIN32)
  // Portability fallback: plain truncating write (no fsync/rename
  // guarantees outside POSIX).
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw Error("write_file_atomic: cannot open " + path);
  }
  out.write(content.data(),
            static_cast<std::streamsize>(content.size()));
  out.flush();
  if (!out) {
    throw Error("write_file_atomic: write failed for " + path);
  }
#else
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    throw_io_error("cannot open temporary", tmp);
  }
  std::size_t written = 0;
  while (written < content.size()) {
    const ::ssize_t n =
        ::write(fd, content.data() + written, content.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      throw_io_error("write failed", tmp);
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw_io_error("fsync failed", tmp);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    throw_io_error("close failed", tmp);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    throw_io_error("rename failed", path);
  }
  // Durability of the rename itself requires fsync on the directory;
  // best-effort (some filesystems refuse directory fsync).
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash + 1);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY);
  if (dir_fd >= 0) {
    (void)::fsync(dir_fd);
    ::close(dir_fd);
  }
#endif
}

void CancellationToken::throw_if_cancelled(const std::string& context) const {
  if (cancelled()) {
    throw Cancelled("cancelled: " + context);
  }
}

namespace {

// The token the installed handlers forward to. A plain atomic pointer so
// the handler body is async-signal-safe.
std::atomic<CancellationToken*> g_signal_token{nullptr};

void forward_signal_to_token(int /*signum*/) {
  CancellationToken* token = g_signal_token.load(std::memory_order_relaxed);
  if (token != nullptr) {
    token->request_cancel();
  }
}

// Previous dispositions, restored on destruction. File-scope is safe:
// the compare-exchange on g_signal_token enforces a single live
// instance, so these are written only while no other instance exists.
#if !defined(_WIN32)
struct sigaction g_old_int {};
struct sigaction g_old_term {};
#else
void (*g_old_int)(int) = nullptr;
void (*g_old_term)(int) = nullptr;
#endif

}  // namespace

// Main-thread-only by contract (see the header): installation changes the
// process-wide disposition, so it must happen before worker threads start
// and restoration after they join. The compare-exchange on g_signal_token
// enforces single-instance, and the handler + worker polls touch only
// lock-free atomics, so no data race is possible once workers are
// running. POSIX builds use sigaction rather than std::signal — the
// latter's behaviour in multithreaded processes is implementation-defined
// (concurrency-mt-unsafe) and it cannot restore sa_mask/sa_flags.
ScopedSignalCancellation::ScopedSignalCancellation(CancellationToken& token) {
  CancellationToken* expected = nullptr;
  QBARREN_REQUIRE(
      g_signal_token.compare_exchange_strong(expected, &token),
      "ScopedSignalCancellation: another instance is already active");
#if !defined(_WIN32)
  struct sigaction forward {};
  forward.sa_handler = &forward_signal_to_token;
  sigemptyset(&forward.sa_mask);
  (void)::sigaction(SIGINT, &forward, &g_old_int);
  (void)::sigaction(SIGTERM, &forward, &g_old_term);
#else
  g_old_int = std::signal(SIGINT, &forward_signal_to_token);
  g_old_term = std::signal(SIGTERM, &forward_signal_to_token);
#endif
}

ScopedSignalCancellation::~ScopedSignalCancellation() {
#if !defined(_WIN32)
  (void)::sigaction(SIGINT, &g_old_int, nullptr);
  (void)::sigaction(SIGTERM, &g_old_term, nullptr);
#else
  std::signal(SIGINT, g_old_int == SIG_ERR ? SIG_DFL : g_old_int);
  std::signal(SIGTERM, g_old_term == SIG_ERR ? SIG_DFL : g_old_term);
#endif
  g_signal_token.store(nullptr, std::memory_order_relaxed);
}

}  // namespace qbarren
