#include "qbarren/common/cli.hpp"

#include <algorithm>
#include <sstream>

#include "qbarren/common/error.hpp"

namespace qbarren {

CliArgs::CliArgs(int argc, const char* const* argv,
                 std::vector<std::string> allowed) {
  auto check_allowed = [&](const std::string& name) {
    if (!allowed.empty() &&
        std::find(allowed.begin(), allowed.end(), name) == allowed.end()) {
      throw InvalidArgument("unknown option --" + name);
    }
  };

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      std::string name = arg.substr(0, eq);
      check_allowed(name);
      values_[name] = arg.substr(eq + 1);
      continue;
    }
    // `--name value` unless the next token is another option or absent, in
    // which case it is a boolean flag.
    check_allowed(arg);
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string CliArgs::get_string(const std::string& name,
                                const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw InvalidArgument("option --" + name + " expects an integer, got '" +
                          it->second + "'");
  }
}

std::uint64_t CliArgs::get_uint(const std::string& name,
                                std::uint64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    return std::stoull(it->second);
  } catch (const std::exception&) {
    throw InvalidArgument("option --" + name +
                          " expects an unsigned integer, got '" + it->second +
                          "'");
  }
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw InvalidArgument("option --" + name + " expects a number, got '" +
                          it->second + "'");
  }
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw InvalidArgument("option --" + name + " expects a boolean, got '" + v +
                        "'");
}

std::vector<int> CliArgs::get_int_list(const std::string& name,
                                       const std::vector<int>& fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  std::vector<int> out;
  std::stringstream ss(it->second);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (tok.empty()) continue;
    try {
      out.push_back(std::stoi(tok));
    } catch (const std::exception&) {
      throw InvalidArgument("option --" + name +
                            " expects a comma-separated integer list, got '" +
                            it->second + "'");
    }
  }
  if (out.empty()) {
    throw InvalidArgument("option --" + name + " produced an empty list");
  }
  return out;
}

}  // namespace qbarren
