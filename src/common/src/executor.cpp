#include "qbarren/common/executor.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <numeric>
#include <thread>

namespace qbarren {

namespace {

using Clock = std::chrono::steady_clock;

/// Watchdog bookkeeping for one worker's in-flight attempt. Guarded by
/// RunState::watch_mu; the token itself is internally thread-safe, so the
/// worker polls it lock-free while the watchdog fires it under the lock.
struct Slot {
  std::shared_ptr<CancellationToken> token;  ///< fresh per attempt
  Clock::time_point deadline{};
  bool has_deadline = false;
  bool deadline_fired = false;
  bool active = false;
};

struct RunState {
  const std::vector<CellTask>* tasks = nullptr;
  std::atomic<std::size_t> next{0};
  /// Set on run-wide cancellation or a blown failure budget: workers stop
  /// dequeuing and the watchdog broadcasts cancellation to in-flight cells.
  std::atomic<bool> stop{false};

  std::mutex mu;  // guards the result bookkeeping below
  std::size_t completed = 0;
  std::vector<CellFailure> failures;
  std::vector<std::exception_ptr> originals;  // parallel to `failures`
  std::exception_ptr cancelled_eptr;  // first Cancelled seen under run cancel
  bool budget_blown = false;

  std::mutex watch_mu;  // guards slots / shutdown / the cv
  std::condition_variable watch_cv;
  std::vector<Slot> slots;
  bool shutdown = false;
};

Clock::duration to_duration(double seconds) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(seconds));
}

/// Fires deadlines and broadcasts stop/cancel to in-flight cells. Runs
/// only when the options carry a run token or a finite cell timeout.
void watchdog_loop(RunState& st, const ExecutorOptions& opt) {
  std::unique_lock<std::mutex> lock(st.watch_mu);
  while (!st.shutdown) {
    const bool cancel_all =
        st.stop.load() || (opt.cancel != nullptr && opt.cancel->cancelled());
    if (cancel_all) st.stop.store(true);
    const Clock::time_point now = Clock::now();
    Clock::time_point next_wake = now + std::chrono::milliseconds(10);
    for (Slot& s : st.slots) {
      if (!s.active) continue;
      if (cancel_all) {
        s.token->request_cancel();
        continue;
      }
      if (s.has_deadline && !s.deadline_fired) {
        if (now >= s.deadline) {
          s.deadline_fired = true;
          s.token->request_cancel();
        } else {
          next_wake = std::min(next_wake, s.deadline);
        }
      }
    }
    st.watch_cv.wait_until(lock, next_wake);
  }
}

/// Marks the worker's slot idle; returns whether the watchdog had fired
/// this attempt's deadline (the kTimeout discriminator).
bool deactivate_slot(RunState& st, std::size_t slot_idx) {
  std::lock_guard<std::mutex> lock(st.watch_mu);
  Slot& s = st.slots[slot_idx];
  s.active = false;
  s.token.reset();
  return s.deadline_fired;
}

void record_failure(RunState& st, const ExecutorOptions& opt,
                    const CellTask& task, CellErrorClass error,
                    std::string message, std::size_t attempts,
                    std::exception_ptr original) {
  std::lock_guard<std::mutex> lock(st.mu);
  st.failures.push_back(
      CellFailure{task.key, error, std::move(message), attempts});
  st.originals.push_back(std::move(original));
  if (st.failures.size() > opt.max_failures && !st.budget_blown) {
    st.budget_blown = true;
    st.stop.store(true);
    st.watch_cv.notify_all();  // broadcast the abort to in-flight cells
  }
}

/// Interruptible exponential-backoff sleep before retry `attempt`.
void backoff_sleep(RunState& st, const ExecutorOptions& opt,
                   std::size_t attempt) {
  const double factor = std::pow(2.0, static_cast<double>(attempt - 1));
  const double seconds = std::min(opt.backoff_initial_seconds * factor,
                                  opt.backoff_max_seconds);
  if (seconds <= 0.0) return;
  std::unique_lock<std::mutex> lock(st.watch_mu);
  st.watch_cv.wait_for(lock, to_duration(seconds),
                       [&st] { return st.stop.load() || st.shutdown; });
}

void run_cell(RunState& st, const ExecutorOptions& opt, std::size_t slot_idx,
              const CellTask& task) {
  const bool finite_timeout = std::isfinite(opt.cell_timeout_seconds);
  for (std::size_t attempt = 0; attempt < opt.max_attempts; ++attempt) {
    if (attempt > 0) backoff_sleep(st, opt, attempt);
    if (st.stop.load()) return;

    auto token = std::make_shared<CancellationToken>();
    {
      std::lock_guard<std::mutex> lock(st.watch_mu);
      Slot& s = st.slots[slot_idx];
      s.token = token;
      s.has_deadline = finite_timeout;
      if (finite_timeout) {
        s.deadline = Clock::now() + to_duration(opt.cell_timeout_seconds);
      }
      s.deadline_fired = false;
      s.active = true;
    }
    st.watch_cv.notify_all();  // let the watchdog adopt the new deadline

    CellContext ctx{token.get(), opt.cancel, attempt};
    try {
      task.work(ctx);
      (void)deactivate_slot(st, slot_idx);
      std::lock_guard<std::mutex> lock(st.mu);
      ++st.completed;
      return;
    } catch (const Cancelled& e) {
      const bool fired = deactivate_slot(st, slot_idx);
      if (fired) {
        char bound[64];
        std::snprintf(bound, sizeof(bound), "%g", opt.cell_timeout_seconds);
        std::string message = "cell exceeded its soft deadline of " +
                              std::string(bound) + " s (" + e.what() + ")";
        // The original is a dedicated timeout error, not the captured
        // Cancelled: a budget-0 rethrow must read as a run error, not as
        // a user interrupt (the CLI maps Cancelled to exit 130).
        auto original = std::make_exception_ptr(
            CellTimeoutError("cell '" + task.key + "': " + message));
        record_failure(st, opt, task, CellErrorClass::kTimeout,
                       std::move(message), attempt + 1, std::move(original));
        return;
      }
      if (opt.cancel != nullptr && opt.cancel->cancelled()) {
        // Run-wide cancellation (e.g. SIGINT): not a cell failure.
        std::lock_guard<std::mutex> lock(st.mu);
        if (st.cancelled_eptr == nullptr) {
          st.cancelled_eptr = std::current_exception();
        }
        st.stop.store(true);
        return;
      }
      // Cancelled by the budget-abort broadcast: recorded so the abort
      // summary names the cells that were cut short.
      record_failure(st, opt, task, CellErrorClass::kCancelled, e.what(),
                     attempt + 1, std::current_exception());
      return;
    } catch (const NumericalError& e) {
      (void)deactivate_slot(st, slot_idx);
      if (attempt + 1 < opt.max_attempts && !st.stop.load()) {
        continue;  // retryable: back off and try again
      }
      record_failure(st, opt, task, CellErrorClass::kNonFinite, e.what(),
                     attempt + 1, std::current_exception());
      return;
    } catch (const std::exception& e) {
      (void)deactivate_slot(st, slot_idx);
      record_failure(st, opt, task, CellErrorClass::kException, e.what(),
                     attempt + 1, std::current_exception());
      return;
    } catch (...) {
      (void)deactivate_slot(st, slot_idx);
      record_failure(st, opt, task, CellErrorClass::kException,
                     "unknown exception", attempt + 1,
                     std::current_exception());
      return;
    }
  }
}

void worker_loop(RunState& st, const ExecutorOptions& opt,
                 std::size_t slot_idx) {
  for (;;) {
    if (st.stop.load()) return;
    if (opt.cancel != nullptr && opt.cancel->cancelled()) {
      st.stop.store(true);
      st.watch_cv.notify_all();
      return;
    }
    const std::size_t i = st.next.fetch_add(1);
    if (i >= st.tasks->size()) return;
    run_cell(st, opt, slot_idx, (*st.tasks)[i]);
  }
}

}  // namespace

const char* cell_error_class_name(CellErrorClass c) noexcept {
  switch (c) {
    case CellErrorClass::kException: return "exception";
    case CellErrorClass::kNonFinite: return "non-finite";
    case CellErrorClass::kTimeout: return "timeout";
    case CellErrorClass::kCancelled: return "cancelled";
    case CellErrorClass::kCrashed: return "crashed";
    case CellErrorClass::kKilled: return "killed";
  }
  return "exception";
}

CellErrorClass cell_error_class_from_name(const std::string& name) {
  for (const CellErrorClass c :
       {CellErrorClass::kException, CellErrorClass::kNonFinite,
        CellErrorClass::kTimeout, CellErrorClass::kCancelled,
        CellErrorClass::kCrashed, CellErrorClass::kKilled}) {
    if (name == cell_error_class_name(c)) return c;
  }
  throw NotFound("cell_error_class_from_name: unknown class '" + name + "'");
}

std::string failure_summary(const std::vector<CellFailure>& failures) {
  std::string out;
  for (const CellFailure& f : failures) {
    out += "cell " + f.cell + ": " + cell_error_class_name(f.error) +
           " after " + std::to_string(f.attempts) + " attempt(s): " +
           f.message + "\n";
  }
  return out;
}

JsonValue failures_to_json(const std::vector<CellFailure>& failures) {
  JsonValue array = JsonValue::array();
  for (const CellFailure& f : failures) {
    JsonValue entry = JsonValue::object();
    entry.set("cell", f.cell);
    entry.set("error", cell_error_class_name(f.error));
    entry.set("message", f.message);
    entry.set("attempts", f.attempts);
    array.push_back(std::move(entry));
  }
  return array;
}

Executor::Executor(ExecutorOptions options) : options_(options) {
  QBARREN_REQUIRE(!(options_.cell_timeout_seconds < 0.0) &&
                      !std::isnan(options_.cell_timeout_seconds),
                  "Executor: cell timeout must be >= 0 seconds");
  QBARREN_REQUIRE(options_.max_attempts >= 1,
                  "Executor: need at least one attempt per cell");
  QBARREN_REQUIRE(options_.backoff_initial_seconds >= 0.0 &&
                      options_.backoff_max_seconds >= 0.0,
                  "Executor: backoff bounds must be >= 0");
}

std::size_t Executor::resolve_jobs(std::size_t jobs) noexcept {
  if (jobs != 0) return jobs;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ExecutorReport Executor::run(std::vector<CellTask> tasks) const {
  for (const CellTask& t : tasks) {
    QBARREN_REQUIRE(t.work != nullptr,
                    "Executor::run: task '" + t.key + "' has no work");
  }
  ExecutorReport report;
  if (tasks.empty()) return report;
  if (options_.cancel != nullptr) {
    // Pre-cancelled run: nothing starts, matching a serial loop that
    // polls before its first cell.
    options_.cancel->throw_if_cancelled("executor run");
  }

  const std::size_t jobs =
      std::min(resolve_jobs(options_.jobs), tasks.size());
  RunState st;
  st.tasks = &tasks;
  st.slots.resize(jobs);

  const bool need_watchdog = options_.cancel != nullptr ||
                             std::isfinite(options_.cell_timeout_seconds);
  std::thread watchdog;
  if (need_watchdog) {
    watchdog = std::thread(
        [&st, this] { watchdog_loop(st, options_); });
  }
  std::vector<std::thread> workers;
  workers.reserve(jobs);
  for (std::size_t w = 0; w < jobs; ++w) {
    workers.emplace_back(
        [&st, this, w] { worker_loop(st, options_, w); });
  }
  for (std::thread& t : workers) t.join();
  {
    std::lock_guard<std::mutex> lock(st.watch_mu);
    st.shutdown = true;
  }
  st.watch_cv.notify_all();
  if (watchdog.joinable()) watchdog.join();

  // Post-mortem: single-threaded from here on.
  if (options_.cancel != nullptr && options_.cancel->cancelled()) {
    // Completed cells were already deposited/flushed by their work
    // closures; propagating Cancelled makes the interrupt durable.
    if (st.cancelled_eptr != nullptr) {
      std::rethrow_exception(st.cancelled_eptr);
    }
    throw Cancelled("cancelled: executor run");
  }

  // Deterministic failure order: sort by cell key (stable — completion
  // order is scheduling noise, the key order is not).
  std::vector<std::size_t> order(st.failures.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&st](std::size_t a, std::size_t b) {
                     return st.failures[a].cell < st.failures[b].cell;
                   });
  std::vector<CellFailure> failures;
  std::vector<std::exception_ptr> originals;
  failures.reserve(order.size());
  originals.reserve(order.size());
  for (const std::size_t i : order) {
    failures.push_back(std::move(st.failures[i]));
    originals.push_back(std::move(st.originals[i]));
  }

  if (failures.size() > options_.max_failures) {
    if (options_.max_failures == 0) {
      // Serial semantics: surface the first failure with its original
      // type ("first" by key order, which is deterministic). In-flight
      // cells cancelled by the budget-abort broadcast are casualties of
      // the failure, not its cause — skip them so the causative error
      // surfaces regardless of how keys interleave with scheduling.
      std::size_t pick = 0;
      for (std::size_t i = 0; i < failures.size(); ++i) {
        if (failures[i].error != CellErrorClass::kCancelled) {
          pick = i;
          break;
        }
      }
      std::rethrow_exception(originals[pick]);
    }
    // Build the message before std::move(failures): the evaluation order
    // of the two constructor arguments is unspecified.
    const std::string what =
        "executor: failure budget exceeded (" +
        std::to_string(failures.size()) + " failed cells, budget " +
        std::to_string(options_.max_failures) + "):\n" +
        failure_summary(failures);
    throw FailureBudgetExceeded(what, std::move(failures));
  }

  report.completed = st.completed;
  report.failures = std::move(failures);
  return report;
}

}  // namespace qbarren
