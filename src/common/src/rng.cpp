#include "qbarren/common/rng.hpp"

#include <cmath>

#include "qbarren/common/error.hpp"

namespace qbarren {

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t derive_child_seed(std::uint64_t parent_seed,
                                std::uint64_t stream_index) noexcept {
  // Mix the parent seed with the stream index through two splitmix rounds;
  // a single round would make child(0) of seed s collide with Rng(s).
  return splitmix64(splitmix64(parent_seed) ^ (stream_index + 1));
}

Rng::Rng(std::uint64_t seed) : seed_(seed), engine_(splitmix64(seed)) {}

Rng Rng::child(std::uint64_t stream_index) const {
  return Rng(derive_child_seed(seed_, stream_index));
}

double Rng::uniform(double lo, double hi) {
  QBARREN_REQUIRE(lo < hi, "uniform: lo must be < hi");
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::normal() {
  std::normal_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

double Rng::normal(double mean, double stddev) {
  QBARREN_REQUIRE(stddev >= 0.0, "normal: stddev must be non-negative");
  if (stddev == 0.0) {
    return mean;
  }
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

double Rng::beta(double alpha, double beta_param) {
  QBARREN_REQUIRE(alpha > 0.0 && beta_param > 0.0,
                  "beta: shape parameters must be positive");
  std::gamma_distribution<double> ga(alpha, 1.0);
  std::gamma_distribution<double> gb(beta_param, 1.0);
  const double x = ga(engine_);
  const double y = gb(engine_);
  const double sum = x + y;
  // Both gamma variates can underflow to zero for tiny shapes; fall back to
  // the distribution mean rather than dividing 0/0.
  if (sum <= 0.0) {
    return alpha / (alpha + beta_param);
  }
  return x / sum;
}

std::uint64_t Rng::uniform_int(std::uint64_t lo, std::uint64_t hi) {
  QBARREN_REQUIRE(lo <= hi, "uniform_int: lo must be <= hi");
  std::uniform_int_distribution<std::uint64_t> dist(lo, hi);
  return dist(engine_);
}

std::size_t Rng::index(std::size_t n) {
  QBARREN_REQUIRE(n > 0, "index: n must be positive");
  return static_cast<std::size_t>(uniform_int(0, n - 1));
}

bool Rng::bernoulli(double p) {
  QBARREN_REQUIRE(p >= 0.0 && p <= 1.0, "bernoulli: p must be in [0, 1]");
  std::bernoulli_distribution dist(p);
  return dist(engine_);
}

std::vector<double> Rng::normal_vector(std::size_t n) {
  std::vector<double> out(n);
  std::normal_distribution<double> dist(0.0, 1.0);
  for (auto& v : out) {
    v = dist(engine_);
  }
  return out;
}

std::vector<double> Rng::uniform_vector(std::size_t n, double lo, double hi) {
  QBARREN_REQUIRE(lo < hi, "uniform_vector: lo must be < hi");
  std::vector<double> out(n);
  std::uniform_real_distribution<double> dist(lo, hi);
  for (auto& v : out) {
    v = dist(engine_);
  }
  return out;
}

}  // namespace qbarren
