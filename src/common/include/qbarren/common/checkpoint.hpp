// Versioned on-disk checkpoint store for long experiment runs.
//
// A Checkpoint maps cell keys (one per unit of resumable work, e.g.
// "q=8/init=random") to payloads of named scalars and double vectors. The
// store is keyed by an *options fingerprint*: a canonical string derived
// from every option that shaped the run. Loading a checkpoint whose
// fingerprint differs from the current run's options throws, so a stale
// file can never silently contaminate fresh results.
//
// The file format is line-based text, version-tagged, and stores doubles
// as C hexfloats ("%a"), which round-trip bit-for-bit — a resumed run
// reproduces an uninterrupted run exactly. Every flush() rewrites the file
// through write_file_atomic, so a kill at any instant leaves either the
// previous complete checkpoint or the new one, never a torn file.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "qbarren/common/error.hpp"

namespace qbarren {

/// Thrown on checkpoint version/fingerprint mismatch or file corruption.
class CheckpointError : public Error {
 public:
  explicit CheckpointError(const std::string& what) : Error(what) {}
};

/// Payload of one completed unit of work. Names are identifiers
/// ([A-Za-z0-9_] only); values round-trip exactly.
struct CheckpointCell {
  std::map<std::string, double> scalars;
  std::map<std::string, std::vector<double>> vectors;

  /// Typed lookups that throw CheckpointError (naming the missing field)
  /// instead of std::out_of_range, so a truncated or hand-edited cell is
  /// reported as checkpoint corruption.
  [[nodiscard]] double scalar(const std::string& name) const;
  [[nodiscard]] const std::vector<double>& vector(
      const std::string& name) const;
};

/// Outcome of Checkpoint::open_salvaging on a store that failed strict
/// loading: what was kept, where the damaged bytes went, and why.
struct CheckpointSalvage {
  /// True when the on-disk file was damaged and moved aside.
  bool quarantined = false;
  /// Destination of the damaged file ("<path>.corrupt"); set whenever a
  /// quarantine was attempted, even if the rename itself failed.
  std::string quarantine_path;
  /// The strict loader's error (empty when the store loaded cleanly).
  std::string reason;
  /// Complete cells recovered from the damaged file (0 when the header or
  /// fingerprint was unusable — foreign data is never salvaged).
  std::size_t salvaged_cells = 0;
};

class Checkpoint {
 public:
  static constexpr int kFormatVersion = 1;

  /// A fresh, empty store. Nothing touches the filesystem until flush().
  /// `path` may name a non-existent file; `fingerprint` must be a single
  /// line. An empty path makes flush() a no-op (in-memory store).
  Checkpoint(std::string path, std::string fingerprint);

  /// Parses the checkpoint at `path`. Throws CheckpointError when the file
  /// is missing, malformed, has a different format version, or carries a
  /// fingerprint other than `expected_fingerprint` (a stale checkpoint
  /// from a run with different options).
  [[nodiscard]] static Checkpoint load(const std::string& path,
                                       const std::string& expected_fingerprint);

  /// `resume` ? load-if-present (validating the fingerprint) : fresh store.
  [[nodiscard]] static Checkpoint open(const std::string& path,
                                       const std::string& fingerprint,
                                       bool resume);

  /// Torn-write-tolerant open: load-if-present, but a file that fails the
  /// strict loader (truncated mid-cell by a death during flush, corrupt
  /// bytes, stale fingerprint) is *quarantined* — renamed to
  /// "<path>.corrupt" — instead of aborting the run, and every complete
  /// cell parsed before the damage is kept (the damaged cell and anything
  /// after it are simply recomputed). A missing file yields a fresh store
  /// with no quarantine. `salvage`, when non-null, receives what happened.
  /// This is the open mode for long-lived stores (the serve result cache)
  /// where "refuse to start" is worse than "recompute a few cells".
  [[nodiscard]] static Checkpoint open_salvaging(
      const std::string& path, const std::string& fingerprint,
      CheckpointSalvage* salvage = nullptr);

  [[nodiscard]] bool has_cell(const std::string& key) const;

  /// nullptr when absent.
  [[nodiscard]] const CheckpointCell* find_cell(const std::string& key) const;

  /// Inserts or replaces a cell. Keys must be non-empty single lines.
  void put_cell(const std::string& key, CheckpointCell cell);

  /// put_cell + flush as one atomic operation under the store's writer
  /// mutex — the entry point for concurrent producers (executor worker
  /// threads). Interleaved record_cell calls from any number of threads
  /// leave the store uncorrupted, and every flush writes a complete,
  /// loadable file.
  void record_cell(const std::string& key, CheckpointCell cell);

  /// Atomically rewrites the backing file with the current contents.
  /// No-op for an in-memory store (empty path).
  void flush() const;

  [[nodiscard]] std::size_t cell_count() const noexcept;
  [[nodiscard]] const std::string& path() const noexcept { return path_; }
  [[nodiscard]] const std::string& fingerprint() const noexcept {
    return fingerprint_;
  }

  /// The exact byte content flush() writes (exposed for tests).
  [[nodiscard]] std::string serialize() const;

 private:
  void put_cell_locked(const std::string& key, CheckpointCell cell);
  [[nodiscard]] std::string serialize_locked() const;

  std::string path_;
  std::string fingerprint_;
  std::map<std::string, CheckpointCell> cells_;  // ordered => deterministic
  // Writer mutex serializing record_cell/put_cell/flush from concurrent
  // producers. Behind unique_ptr because load()/open() return by value
  // (std::mutex is immovable); never null after construction.
  std::unique_ptr<std::mutex> mutex_ = std::make_unique<std::mutex>();
};

/// One structural problem found by scan_checkpoint_file, anchored to a
/// 1-based line number (0 = the file as a whole).
struct CheckpointScanIssue {
  std::size_t line = 0;
  std::string message;
};

/// Lenient structural read of a checkpoint/result-cache file — the
/// introspection hook behind `qbarren fsck` (analysis/store_audit.hpp).
/// Where the strict loader throws on the first problem and open_salvaging
/// silently quarantines, the scanner parses the whole file with the same
/// grammar (header, fingerprint line, cell/endcell framing, hexfloat
/// payload lines, end marker) and records *every* structural problem with
/// its line number, plus the record layout in file order (duplicates
/// preserved — the strict loader's map would silently shadow them).
struct CheckpointScan {
  /// One `cell <key>` record, in file order.
  struct Record {
    std::string key;
    std::size_t line = 0;   ///< 1-based line of the "cell" tag
    bool complete = false;  ///< endcell reached with every payload line intact
  };

  bool exists = false;          ///< file could be opened
  bool header_ok = false;       ///< first line is "qbarren-checkpoint <v>"
  int version = -1;             ///< parsed format version (-1 = unparsed)
  bool version_ok = false;      ///< version == kFormatVersion
  bool has_fingerprint = false; ///< second line is "fingerprint <fp>"
  std::string fingerprint;      ///< stored fingerprint (when present)
  std::vector<Record> records;  ///< every cell record, duplicates included
  bool saw_end = false;         ///< "end <n>" marker reached
  std::size_t declared_cells = 0;  ///< <n> from the end marker
  std::vector<CheckpointScanIssue> issues;

  /// True exactly when Checkpoint::load would accept the file given the
  /// stored fingerprint: structure intact, version current, every record
  /// complete, end count consistent with the distinct keys.
  [[nodiscard]] bool structurally_clean() const;
};

/// Scans the file at `path`. Never throws on file content; a missing file
/// yields exists = false and one issue.
[[nodiscard]] CheckpointScan scan_checkpoint_file(const std::string& path);

/// Serializes one cell's payload as the checkpoint format's body lines
/// ("scalar <name> <hex>\n" / "vector <name> <n> <hex...>\n", no
/// cell/endcell framing). Doubles are hexfloats, so parse_cell_payload
/// reproduces the cell bit-for-bit — this is the wire format serve
/// workers use to return results without any precision loss.
[[nodiscard]] std::string serialize_cell_payload(const CheckpointCell& cell);

/// Inverse of serialize_cell_payload; throws CheckpointError on any
/// malformed line.
[[nodiscard]] CheckpointCell parse_cell_payload(const std::string& text);

}  // namespace qbarren
