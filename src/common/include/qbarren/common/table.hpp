// Tabular result rendering.
//
// Experiment harnesses build a `Table` and render it as aligned ASCII (for
// terminals / bench logs), CSV (for plotting scripts), or Markdown (for
// EXPERIMENTS.md). Cells are stored as strings; numeric helpers format with
// a configurable precision.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace qbarren {

class Table {
 public:
  /// Creates a table with the given column headers (at least one).
  explicit Table(std::vector<std::string> headers);

  /// Number of columns.
  [[nodiscard]] std::size_t columns() const noexcept {
    return headers_.size();
  }

  /// Number of data rows.
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Appends a fully-formed row; must match the column count.
  void add_row(std::vector<std::string> cells);

  /// Row-building helper: begin a new row, then push cells one by one.
  void begin_row();
  void push(std::string cell);
  void push(double value, int precision = 6);
  void push(std::size_t value);
  void push(long long value);
  /// Scientific notation, e.g. for variances spanning many decades.
  void push_sci(double value, int precision = 3);

  /// Renders with aligned columns and a header separator.
  [[nodiscard]] std::string to_ascii() const;

  /// Renders as RFC-4180-ish CSV (quotes cells containing separators).
  [[nodiscard]] std::string to_csv() const;

  /// Renders as a GitHub-flavored Markdown table.
  [[nodiscard]] std::string to_markdown() const;

  /// Writes the CSV rendering to a file; throws qbarren::Error on I/O
  /// failure.
  void write_csv(const std::string& path) const;

  [[nodiscard]] const std::vector<std::string>& headers() const noexcept {
    return headers_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& data()
      const noexcept {
    return rows_;
  }

 private:
  void finish_pending_row_if_full();

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> pending_;
  bool row_open_ = false;
};

/// Formats a double with fixed precision (helper shared with Table::push).
[[nodiscard]] std::string format_fixed(double value, int precision);

/// Formats a double in scientific notation.
[[nodiscard]] std::string format_sci(double value, int precision);

}  // namespace qbarren
