// Error types used throughout qbarren.
//
// The library reports precondition violations and invalid configuration via
// exceptions derived from qbarren::Error, so callers can distinguish library
// failures from std:: failures. Hot simulation kernels validate at their
// public entry points only; inner loops assume validated inputs.
#pragma once

#include <stdexcept>
#include <string>

namespace qbarren {

/// Base class of every exception thrown by qbarren.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller-supplied argument violated a documented precondition
/// (bad qubit index, mismatched dimension, empty range, ...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A name lookup failed (unknown initializer / optimizer / gate name).
class NotFound : public Error {
 public:
  explicit NotFound(const std::string& what) : Error(what) {}
};

/// A numerical routine could not produce a meaningful result
/// (degenerate regression, non-normalizable state, ...).
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_invalid_argument(const char* expr,
                                                const std::string& msg) {
  throw InvalidArgument(msg + " (violated: " + expr + ")");
}
}  // namespace detail

}  // namespace qbarren

/// Precondition check used at public API boundaries. Throws
/// qbarren::InvalidArgument carrying both a human message and the
/// violated expression.
#define QBARREN_REQUIRE(expr, msg)                                \
  do {                                                            \
    if (!(expr)) {                                                \
      ::qbarren::detail::throw_invalid_argument(#expr, (msg));    \
    }                                                             \
  } while (false)
