// Minimal JSON document model: builder, serializer, and parser.
//
// Experiment results are exported as JSON for downstream plotting. This is
// a value-tree builder with a standards-compliant serializer (string
// escaping, non-finite numbers rendered as null per RFC 8259's exclusion)
// plus a recursive-descent parser (`parse_json`) used by round-trip tests
// and tools that consume qbarren's own output (e.g. `qbarren lint
// --format=json`).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace qbarren {

class JsonValue {
 public:
  /// null by default.
  JsonValue() = default;

  [[nodiscard]] static JsonValue null();
  [[nodiscard]] static JsonValue boolean(bool value);
  [[nodiscard]] static JsonValue number(double value);
  [[nodiscard]] static JsonValue integer(std::int64_t value);
  [[nodiscard]] static JsonValue string(std::string value);
  [[nodiscard]] static JsonValue array();
  [[nodiscard]] static JsonValue object();

  /// Array append; requires an array value.
  void push_back(JsonValue element);

  /// Object insert/overwrite; requires an object value.
  void set(const std::string& key, JsonValue value);

  /// Convenience typed setters (object values only).
  void set(const std::string& key, double value);
  void set(const std::string& key, std::int64_t value);
  void set(const std::string& key, std::size_t value);
  void set(const std::string& key, const std::string& value);
  void set(const std::string& key, const char* value);
  void set(const std::string& key, bool value);

  /// Builds a JSON array from a numeric vector.
  [[nodiscard]] static JsonValue number_array(
      const std::vector<double>& values);

  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  /// True for both floating-point and integer numbers.
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::kNumber || kind_ == Kind::kInteger;
  }
  [[nodiscard]] bool is_integer() const noexcept {
    return kind_ == Kind::kInteger;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::kString;
  }
  [[nodiscard]] bool is_array() const noexcept {
    return kind_ == Kind::kArray;
  }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::kObject;
  }

  // --- read access (used by parse_json consumers) ---------------------------

  /// Boolean value; throws InvalidArgument on other kinds.
  [[nodiscard]] bool as_bool() const;

  /// Numeric value (integers widen to double); throws on other kinds.
  [[nodiscard]] double as_number() const;

  /// Integer value; throws on other kinds (including kNumber).
  [[nodiscard]] std::int64_t as_integer() const;

  /// String value; throws on other kinds.
  [[nodiscard]] const std::string& as_string() const;

  /// Element/member count; throws on non-container kinds.
  [[nodiscard]] std::size_t size() const;

  /// Array element access; throws on out-of-range or non-array.
  [[nodiscard]] const JsonValue& at(std::size_t index) const;

  /// Object member access; throws NotFound on a missing key.
  [[nodiscard]] const JsonValue& at(const std::string& key) const;

  /// True when this is an object containing `key`.
  [[nodiscard]] bool contains(const std::string& key) const noexcept;

  /// Sorted member keys of an object; throws on other kinds.
  [[nodiscard]] std::vector<std::string> keys() const;

  /// Serializes; `indent` > 0 pretty-prints with that many spaces.
  [[nodiscard]] std::string dump(int indent = 0) const;

 private:
  enum class Kind { kNull, kBool, kNumber, kInteger, kString, kArray,
                    kObject };

  void dump_impl(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::int64_t integer_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  // std::map keeps key order deterministic — important for golden tests.
  std::map<std::string, JsonValue> object_;
};

/// Writes `value.dump(indent)` to a file; throws qbarren::Error on I/O
/// failure.
void write_json_file(const JsonValue& value, const std::string& path,
                     int indent = 2);

/// Parses an RFC 8259 JSON document (objects, arrays, strings with the
/// standard escapes including \uXXXX surrogate pairs, numbers, booleans,
/// null). Numbers without a fraction or exponent that fit std::int64_t
/// parse as integers, everything else as doubles — so dump() output
/// round-trips kind-exactly (non-finite doubles were dumped as null and
/// come back as null). Throws InvalidArgument with a byte offset on
/// malformed input or trailing garbage.
[[nodiscard]] JsonValue parse_json(const std::string& text);

}  // namespace qbarren
