// Minimal JSON document builder (write-only).
//
// Experiment results are exported as JSON for downstream plotting. This is
// a value-tree builder with a standards-compliant serializer (string
// escaping, non-finite numbers rendered as null per RFC 8259's exclusion);
// qbarren never needs to *parse* JSON, so no parser is provided.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace qbarren {

class JsonValue {
 public:
  /// null by default.
  JsonValue() = default;

  [[nodiscard]] static JsonValue null();
  [[nodiscard]] static JsonValue boolean(bool value);
  [[nodiscard]] static JsonValue number(double value);
  [[nodiscard]] static JsonValue integer(std::int64_t value);
  [[nodiscard]] static JsonValue string(std::string value);
  [[nodiscard]] static JsonValue array();
  [[nodiscard]] static JsonValue object();

  /// Array append; requires an array value.
  void push_back(JsonValue element);

  /// Object insert/overwrite; requires an object value.
  void set(const std::string& key, JsonValue value);

  /// Convenience typed setters (object values only).
  void set(const std::string& key, double value);
  void set(const std::string& key, std::int64_t value);
  void set(const std::string& key, std::size_t value);
  void set(const std::string& key, const std::string& value);
  void set(const std::string& key, const char* value);
  void set(const std::string& key, bool value);

  /// Builds a JSON array from a numeric vector.
  [[nodiscard]] static JsonValue number_array(
      const std::vector<double>& values);

  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_array() const noexcept {
    return kind_ == Kind::kArray;
  }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::kObject;
  }

  /// Serializes; `indent` > 0 pretty-prints with that many spaces.
  [[nodiscard]] std::string dump(int indent = 0) const;

 private:
  enum class Kind { kNull, kBool, kNumber, kInteger, kString, kArray,
                    kObject };

  void dump_impl(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::int64_t integer_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  // std::map keeps key order deterministic — important for golden tests.
  std::map<std::string, JsonValue> object_;
};

/// Writes `value.dump(indent)` to a file; throws qbarren::Error on I/O
/// failure.
void write_json_file(const JsonValue& value, const std::string& path,
                     int indent = 2);

}  // namespace qbarren
