// Descriptive statistics and ordinary least squares.
//
// The barren-plateau analysis reduces to two statistical primitives:
//   * the sample variance of gradient samples (one per random circuit), and
//   * an OLS fit of log-variance against qubit count, whose slope is the
//     "variance decay rate" the paper compares across initializers.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace qbarren {

/// Arithmetic mean. Requires a non-empty range.
[[nodiscard]] double mean(std::span<const double> xs);

/// Unbiased sample variance (divides by n-1). Requires n >= 2.
[[nodiscard]] double sample_variance(std::span<const double> xs);

/// Population variance (divides by n). Requires n >= 1.
[[nodiscard]] double population_variance(std::span<const double> xs);

/// Sample standard deviation, sqrt(sample_variance). Requires n >= 2.
[[nodiscard]] double sample_stddev(std::span<const double> xs);

/// Median (averages the two central elements for even n). Requires n >= 1.
[[nodiscard]] double median(std::span<const double> xs);

/// Five-number-style summary of a sample.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;  ///< unbiased sample variance (0 when count < 2)
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
};

/// Computes a Summary of a non-empty sample.
[[nodiscard]] Summary summarize(std::span<const double> xs);

/// Result of an ordinary-least-squares straight-line fit y = slope*x + b.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;      ///< coefficient of determination
  double slope_stderr = 0.0;   ///< standard error of the slope estimate
  std::size_t n = 0;           ///< number of points fitted
};

/// OLS fit of y against x. Requires xs.size() == ys.size() >= 2 and at
/// least two distinct x values; throws NumericalError on a degenerate
/// (vertical) configuration.
[[nodiscard]] LinearFit linear_fit(std::span<const double> xs,
                                   std::span<const double> ys);

/// Element-wise natural log. Requires every element > 0 (throws
/// NumericalError otherwise) — used to linearize exponential decay.
[[nodiscard]] std::vector<double> log_transform(std::span<const double> xs);

/// Pearson correlation coefficient. Requires n >= 2 and non-constant inputs.
[[nodiscard]] double pearson_correlation(std::span<const double> xs,
                                         std::span<const double> ys);

/// Sample skewness m3 / m2^{3/2} (population moments). Requires n >= 2
/// and a non-constant sample.
[[nodiscard]] double sample_skewness(std::span<const double> xs);

/// Excess kurtosis m4 / m2^2 - 3 (population moments): 0 for a Gaussian,
/// -1.2 for a uniform distribution; heavy tails push it positive. Barren
/// plateau gradient samples are strongly leptokurtic. Requires n >= 2 and
/// a non-constant sample.
[[nodiscard]] double sample_excess_kurtosis(std::span<const double> xs);

}  // namespace qbarren
