// Minimal command-line option parsing for the example and bench binaries.
//
// Supports `--name value` and `--name=value` pairs plus bare `--flag`
// booleans. Unknown options throw, so typos surface instead of silently
// running the default experiment.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace qbarren {

class CliArgs {
 public:
  /// Parses argv. `allowed` lists recognized option names (without the
  /// leading dashes); an empty list accepts anything.
  CliArgs(int argc, const char* const* argv,
          std::vector<std::string> allowed = {});

  [[nodiscard]] bool has(const std::string& name) const;

  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] std::uint64_t get_uint(const std::string& name,
                                       std::uint64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  /// Comma-separated list of integers, e.g. --qubits 2,4,6,8,10.
  [[nodiscard]] std::vector<int> get_int_list(
      const std::string& name, const std::vector<int>& fallback) const;

  /// Positional (non-option) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace qbarren
