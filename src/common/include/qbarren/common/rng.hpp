// Deterministic pseudo-random number generation.
//
// Every stochastic component in qbarren draws from an explicitly seeded
// `Rng`. Independent sub-streams (one per sampled circuit, per initializer
// call, ...) are derived with `Rng::child`, which hashes the parent seed and
// a stream index through splitmix64. This makes experiment results
// independent of evaluation order and trivially reproducible from a single
// 64-bit seed.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace qbarren {

/// splitmix64 single step: maps any 64-bit value to a well-mixed 64-bit
/// value. Used both to expand user seeds and to derive child streams.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x) noexcept;

/// The seed `Rng(parent_seed).child(stream_index)` is constructed from —
/// the child-stream derivation as a pure function. The static determinism
/// auditor (analysis/stream_graph.hpp) walks entire experiments' derivation
/// trees through this without instantiating a single generator; Rng::child
/// calls it, so the two can never drift.
[[nodiscard]] std::uint64_t derive_child_seed(std::uint64_t parent_seed,
                                              std::uint64_t stream_index)
    noexcept;

/// Seeded random source wrapping std::mt19937_64 with the convenience
/// distributions used across the library.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed. Two Rng constructed from
  /// the same seed produce identical streams.
  explicit Rng(std::uint64_t seed);

  /// Derives an independent child stream. Children with distinct indices
  /// (or from parents with distinct seeds) are statistically independent.
  [[nodiscard]] Rng child(std::uint64_t stream_index) const;

  /// The seed this generator was constructed from (pre-mixing).
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Uniform real on [lo, hi). Requires lo < hi.
  [[nodiscard]] double uniform(double lo, double hi);

  /// Standard normal draw, N(0, 1).
  [[nodiscard]] double normal();

  /// Normal draw with the given mean and standard deviation (stddev >= 0).
  [[nodiscard]] double normal(double mean, double stddev);

  /// Beta(alpha, beta) draw on (0, 1) via two gamma variates.
  /// Requires alpha > 0 and beta > 0.
  [[nodiscard]] double beta(double alpha, double beta);

  /// Uniform integer on [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi);

  /// Uniform index on [0, n). Requires n > 0.
  [[nodiscard]] std::size_t index(std::size_t n);

  /// Bernoulli draw with probability p of `true`. Requires p in [0, 1].
  [[nodiscard]] bool bernoulli(double p);

  /// n i.i.d. standard normal draws.
  [[nodiscard]] std::vector<double> normal_vector(std::size_t n);

  /// n i.i.d. uniform draws on [lo, hi).
  [[nodiscard]] std::vector<double> uniform_vector(std::size_t n, double lo,
                                                   double hi);

  /// Access to the underlying engine for std:: distribution interop.
  [[nodiscard]] std::mt19937_64& engine() noexcept { return engine_; }

 private:
  std::uint64_t seed_ = 0;
  std::mt19937_64 engine_;
};

}  // namespace qbarren
