// Fault-isolated parallel executor for experiment cells.
//
// The paper's grids are embarrassingly parallel — 200 circuits x 5 qubit
// counts x 6 initializers for Fig 5a, plus per-initializer training runs —
// and every cell draws from an independent RNG child stream, so cells can
// run concurrently without changing a single bit of the results. The
// Executor runs such cells on a fixed-size thread pool and keeps one bad
// cell from taking the run down with it:
//
//   * exception capture — a throwing cell becomes a structured CellFailure
//     (error class + message + cell key + attempt count) instead of
//     tearing down the process;
//   * watchdog — a per-cell soft deadline enforced cooperatively: a
//     watchdog thread fires the cell's CancellationToken when the deadline
//     passes, and the cell's work polls the token between units of work;
//   * retries — cells that fail with NumericalError (the non-finite
//     class) are retried with capped exponential backoff; the work closure
//     sees the attempt number and can switch to a fallback gradient path
//     (the PR 1 parameter-shift fallback) on retry;
//   * failure budget — once more than `max_failures` cells have failed
//     the run aborts with a summary instead of grinding through a broken
//     grid. With the default budget of 0 the first failure is rethrown
//     with its original type, exactly like a serial loop.
//
// Determinism: tasks deposit results keyed by cell (each task owns its
// output slot), so a run's artifacts are byte-identical at any job count.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "qbarren/common/error.hpp"
#include "qbarren/common/json.hpp"
#include "qbarren/common/run.hpp"

namespace qbarren {

/// Why a cell failed. The classes are coarse on purpose: they drive retry
/// decisions and the failure summary, not diagnosis (the message carries
/// the detail).
enum class CellErrorClass {
  kException,  ///< any exception other than the classes below
  kNonFinite,  ///< NumericalError (NaN/Inf detected); retryable
  kTimeout,    ///< the cell's soft deadline fired (watchdog cancellation)
  kCancelled,  ///< cancelled for another reason (e.g. run abort)
  /// The worker *process* computing the cell died abnormally (segfault,
  /// abort, OOM kill, nonzero exit mid-cell). Only the serve layer can
  /// observe this class — an in-process executor does not survive it.
  kCrashed,
  /// The worker process was deliberately SIGKILLed by the serve layer's
  /// hard watchdog (the cell outlived its hard deadline and did not
  /// respond to cooperative cancellation).
  kKilled,
};

/// Stable lower-case name ("exception", "non-finite", "timeout",
/// "cancelled", "crashed", "killed") used in summaries and JSON.
[[nodiscard]] const char* cell_error_class_name(CellErrorClass c) noexcept;

/// Inverse of cell_error_class_name; throws NotFound on an unknown name.
[[nodiscard]] CellErrorClass cell_error_class_from_name(
    const std::string& name);

/// One failed cell, as reported in ExecutorReport / result JSON.
struct CellFailure {
  std::string cell;  ///< cell key, e.g. "q=8/init=random"
  CellErrorClass error = CellErrorClass::kException;
  std::string message;
  std::size_t attempts = 1;  ///< attempts consumed (>= 1)
};

/// Thrown when a cell exceeded its soft deadline and the run's failure
/// budget is 0: a timeout is a run error, not a user interrupt, so it must
/// not surface as Cancelled (the CLI maps Cancelled to the SIGINT exit
/// convention).
class CellTimeoutError : public Error {
 public:
  explicit CellTimeoutError(const std::string& what) : Error(what) {}
};

/// Thrown when more cells fail than `ExecutorOptions::max_failures`
/// allows; carries every failure recorded before the abort.
class FailureBudgetExceeded : public Error {
 public:
  FailureBudgetExceeded(const std::string& what,
                        std::vector<CellFailure> failures)
      : Error(what), failures_(std::move(failures)) {}

  [[nodiscard]] const std::vector<CellFailure>& failures() const noexcept {
    return failures_;
  }

 private:
  std::vector<CellFailure> failures_;
};

/// Handed to every cell's work closure; poll it between units of work.
/// `cell_token` is this attempt's private token — the watchdog fires it
/// when the cell's soft deadline passes or the run aborts. `run_token` is
/// the run-wide token (e.g. the SIGINT token), checked directly so
/// cancellation is observed at the very next poll rather than after the
/// watchdog's next sweep. `attempt` is 0 on the first try and increments
/// on every retry, so work can switch to a fallback computation path when
/// retrying.
struct CellContext {
  const CancellationToken* cell_token = nullptr;
  const CancellationToken* run_token = nullptr;
  std::size_t attempt = 0;

  [[nodiscard]] bool cancelled() const noexcept {
    return (cell_token != nullptr && cell_token->cancelled()) ||
           (run_token != nullptr && run_token->cancelled());
  }

  /// Throws Cancelled carrying `context` when either token fired. The
  /// executor classifies the resulting failure as kTimeout when its
  /// watchdog fired the cell token on deadline, as run-wide cancellation
  /// when the run token fired, and as kCancelled otherwise (run abort).
  void throw_if_cancelled(const std::string& context) const {
    if (run_token != nullptr) run_token->throw_if_cancelled(context);
    if (cell_token != nullptr) cell_token->throw_if_cancelled(context);
  }
};

struct ExecutorOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency(). The job
  /// count never changes results, only wall-clock time.
  std::size_t jobs = 1;

  /// Soft per-cell deadline. When a cell runs longer, the watchdog fires
  /// its token; the cell is recorded as kTimeout once it unwinds
  /// (cooperative — a cell that never polls is not interrupted).
  double cell_timeout_seconds = std::numeric_limits<double>::infinity();

  /// Failed cells tolerated before the run aborts. With the default 0 the
  /// first failure is rethrown with its original exception type (serial
  /// semantics); with K > 0 the run completes unless more than K cells
  /// fail, in which case FailureBudgetExceeded is thrown.
  std::size_t max_failures = 0;

  /// Attempts per cell for retryable (kNonFinite) failures. 1 = no retry.
  std::size_t max_attempts = 1;

  /// Backoff before retry k (1-based) is
  /// min(backoff_initial_seconds * 2^(k-1), backoff_max_seconds).
  double backoff_initial_seconds = 0.001;
  double backoff_max_seconds = 0.1;

  /// Optional run-wide cancellation (e.g. the SIGINT token). Only the
  /// main thread installs signal handlers (see ScopedSignalCancellation);
  /// workers poll this token through their CellContext. When it fires the
  /// executor stops issuing cells, forwards the cancellation to every
  /// in-flight cell, joins, and throws Cancelled.
  const CancellationToken* cancel = nullptr;
};

/// One unit of isolated work. `work` must deposit its own output (each
/// task owns a distinct result slot — that is what keeps parallel runs
/// byte-identical to serial ones) and poll `CellContext::token` between
/// units of computation.
struct CellTask {
  std::string key;
  std::function<void(CellContext&)> work;
};

struct ExecutorReport {
  std::size_t completed = 0;           ///< cells that succeeded
  std::vector<CellFailure> failures;   ///< sorted by cell key
  [[nodiscard]] bool ok() const noexcept { return failures.empty(); }
};

/// Human-readable failure lines ("cell <key>: <class> after N attempt(s):
/// <message>\n" per failure), for stderr summaries. Empty for no failures.
[[nodiscard]] std::string failure_summary(
    const std::vector<CellFailure>& failures);

/// JSON array of {"cell", "error", "message", "attempts"} objects, in the
/// given (sorted) order — embedded in result JSON so partial runs are
/// self-describing.
[[nodiscard]] JsonValue failures_to_json(
    const std::vector<CellFailure>& failures);

class Executor {
 public:
  /// Validates the options (jobs resolved lazily; throws InvalidArgument
  /// on a negative timeout/backoff or max_attempts == 0).
  explicit Executor(ExecutorOptions options);

  /// Runs every task to completion (or until cancellation / budget
  /// exhaustion) and returns the report. Throws Cancelled when
  /// `options.cancel` fired, and FailureBudgetExceeded when more than
  /// max_failures cells failed. When max_failures == 0 the first failure's
  /// original exception is rethrown instead ("first" by cell-key order,
  /// skipping kCancelled casualties of the abort broadcast so the
  /// causative error surfaces, not a cell it cancelled); a kTimeout
  /// failure rethrows as CellTimeoutError. Synchronous: all worker and
  /// watchdog threads are joined before it returns or throws.
  [[nodiscard]] ExecutorReport run(std::vector<CellTask> tasks) const;

  [[nodiscard]] const ExecutorOptions& options() const noexcept {
    return options_;
  }

  /// 0 -> hardware concurrency (at least 1).
  [[nodiscard]] static std::size_t resolve_jobs(std::size_t jobs) noexcept;

 private:
  ExecutorOptions options_;
};

}  // namespace qbarren
