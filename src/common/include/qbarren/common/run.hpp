// Resilient-run infrastructure: atomic file output, cooperative
// cancellation, and the control block threaded through long experiments.
//
// The paper's sweeps (200 circuits x 6 initializers x 5 qubit counts, plus
// multi-seed training) run for hours; an all-or-nothing loop discards
// everything on a crash or Ctrl-C. The pieces here make such runs durable:
//   * write_file_atomic  — write-temp + fsync + rename, so readers (and a
//     killed process) never observe a truncated file;
//   * CancellationToken  — a cooperative flag experiments poll between
//     units of work, optionally wired to SIGINT/SIGTERM;
//   * RunControl         — the optional bundle of cancellation, checkpoint
//     store, and progress callback accepted by every experiment runner.
#pragma once

#include <atomic>
#include <functional>
#include <string>
#include <string_view>

#include "qbarren/common/error.hpp"

namespace qbarren {

class Checkpoint;  // checkpoint.hpp; forward-declared to keep this header light

/// Thrown when a run stops because cancellation was requested. Completed
/// checkpoint cells have already been flushed when this propagates out of
/// an experiment runner, so catching it at the top level and exiting is a
/// durable interrupt.
class Cancelled : public Error {
 public:
  explicit Cancelled(const std::string& what) : Error(what) {}
};

/// Writes `content` to `path` atomically: the bytes go to a temporary file
/// in the same directory, are fsync'ed, and the temporary is rename(2)'d
/// over the destination. Readers either see the old complete file or the
/// new complete file, never a mix or a truncation. Throws qbarren::Error
/// on any I/O failure (the temporary is removed on the failure path).
void write_file_atomic(const std::string& path, std::string_view content);

/// Cooperative cancellation flag. Thread- and signal-safe: request_cancel
/// is async-signal-safe (lock-free atomic store), so it can be called from
/// a signal handler while an experiment polls cancelled() between cells.
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  void request_cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Throws Cancelled carrying `context` when cancellation was requested.
  void throw_if_cancelled(const std::string& context) const;

 private:
  std::atomic<bool> cancelled_{false};
  static_assert(std::atomic<bool>::is_always_lock_free,
                "request_cancel must be async-signal-safe");
};

/// RAII: while alive, SIGINT and SIGTERM request cancellation on the given
/// token instead of killing the process; the previous handlers are
/// restored on destruction. At most one may be active at a time (the
/// constructor throws InvalidArgument otherwise).
class ScopedSignalCancellation {
 public:
  explicit ScopedSignalCancellation(CancellationToken& token);
  ~ScopedSignalCancellation();
  ScopedSignalCancellation(const ScopedSignalCancellation&) = delete;
  ScopedSignalCancellation& operator=(const ScopedSignalCancellation&) = delete;

 private:
  void (*old_int_)(int) = nullptr;
  void (*old_term_)(int) = nullptr;
};

/// One completed experiment cell, reported through RunControl::progress.
struct RunProgress {
  std::string cell;              ///< cell key, e.g. "q=8/init=random"
  std::size_t completed = 0;     ///< cells finished so far (including this)
  std::size_t total = 0;         ///< total cells in the run
  bool from_checkpoint = false;  ///< true when restored rather than computed
};

/// Optional hooks threaded through every experiment runner. Default
/// construction is a no-op control block, so `run(inits, RunControl{})`
/// behaves exactly like the hook-free overload.
struct RunControl {
  /// Polled between units of work; a set token makes the runner flush all
  /// completed checkpoint cells and throw Cancelled.
  const CancellationToken* cancel = nullptr;

  /// When set, completed cells are stored (and flushed atomically) as the
  /// run progresses, and cells already present are restored instead of
  /// recomputed. The store's fingerprint must match the experiment's
  /// options fingerprint (verified by the runner when cell_prefix is
  /// empty; composite runners such as the training sweep verify their own
  /// fingerprint and call inner runners with a non-empty prefix).
  Checkpoint* checkpoint = nullptr;

  /// Prepended to every cell key; used by composite runners to namespace
  /// inner cells ("rep=3/" + "init=random").
  std::string cell_prefix;

  /// Called after every completed (or restored) cell.
  std::function<void(const RunProgress&)> progress;
};

}  // namespace qbarren
