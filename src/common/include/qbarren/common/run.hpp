// Resilient-run infrastructure: atomic file output, cooperative
// cancellation, and the control block threaded through long experiments.
//
// The paper's sweeps (200 circuits x 6 initializers x 5 qubit counts, plus
// multi-seed training) run for hours; an all-or-nothing loop discards
// everything on a crash or Ctrl-C. The pieces here make such runs durable:
//   * write_file_atomic  — write-temp + fsync + rename, so readers (and a
//     killed process) never observe a truncated file;
//   * CancellationToken  — a cooperative flag experiments poll between
//     units of work, optionally wired to SIGINT/SIGTERM;
//   * RunControl         — the optional bundle of cancellation, checkpoint
//     store, and progress callback accepted by every experiment runner.
#pragma once

#include <atomic>
#include <functional>
#include <limits>
#include <string>
#include <string_view>

#include "qbarren/common/error.hpp"

namespace qbarren {

class Checkpoint;  // checkpoint.hpp; forward-declared to keep this header light

/// Thrown when a run stops because cancellation was requested. Completed
/// checkpoint cells have already been flushed when this propagates out of
/// an experiment runner, so catching it at the top level and exiting is a
/// durable interrupt.
class Cancelled : public Error {
 public:
  explicit Cancelled(const std::string& what) : Error(what) {}
};

/// Writes `content` to `path` atomically: the bytes go to a temporary file
/// in the same directory, are fsync'ed, and the temporary is rename(2)'d
/// over the destination. Readers either see the old complete file or the
/// new complete file, never a mix or a truncation. Throws qbarren::Error
/// on any I/O failure (the temporary is removed on the failure path).
void write_file_atomic(const std::string& path, std::string_view content);

/// Cooperative cancellation flag. Thread- and signal-safe: request_cancel
/// is async-signal-safe (lock-free atomic store), so it can be called from
/// a signal handler while an experiment polls cancelled() between cells.
class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  void request_cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// Throws Cancelled carrying `context` when cancellation was requested.
  void throw_if_cancelled(const std::string& context) const;

 private:
  std::atomic<bool> cancelled_{false};
  static_assert(std::atomic<bool>::is_always_lock_free,
                "request_cancel must be async-signal-safe");
};

/// RAII: while alive, SIGINT and SIGTERM request cancellation on the given
/// token instead of killing the process; the previous handlers are
/// restored on destruction. At most one may be active at a time (the
/// constructor throws InvalidArgument otherwise).
///
/// Threading contract: construct and destroy this on the main thread only,
/// before worker threads that observe the token start and after they are
/// joined. The handler itself may run on any thread (signal disposition is
/// process-wide) and only performs an async-signal-safe atomic store;
/// worker threads never install handlers — they poll the shared token,
/// which is safe concurrently from any number of threads.
class ScopedSignalCancellation {
 public:
  explicit ScopedSignalCancellation(CancellationToken& token);
  ~ScopedSignalCancellation();
  ScopedSignalCancellation(const ScopedSignalCancellation&) = delete;
  ScopedSignalCancellation& operator=(const ScopedSignalCancellation&) = delete;

};

/// One completed experiment cell, reported through RunControl::progress.
struct RunProgress {
  std::string cell;              ///< cell key, e.g. "q=8/init=random"
  std::size_t completed = 0;     ///< cells finished so far (including this)
  std::size_t total = 0;         ///< total cells in the run
  bool from_checkpoint = false;  ///< true when restored rather than computed
};

/// Optional hooks threaded through every experiment runner. Default
/// construction is a no-op control block, so `run(inits, RunControl{})`
/// behaves exactly like the hook-free overload.
struct RunControl {
  /// Polled between units of work; a set token makes the runner flush all
  /// completed checkpoint cells and throw Cancelled.
  const CancellationToken* cancel = nullptr;

  /// When set, completed cells are stored (and flushed atomically) as the
  /// run progresses, and cells already present are restored instead of
  /// recomputed. The store's fingerprint must match the experiment's
  /// options fingerprint (verified by the runner when cell_prefix is
  /// empty; composite runners such as the training sweep verify their own
  /// fingerprint and call inner runners with a non-empty prefix).
  Checkpoint* checkpoint = nullptr;

  /// Prepended to every cell key; used by composite runners to namespace
  /// inner cells ("rep=3/" + "init=random").
  std::string cell_prefix;

  /// When true, the runner only *assembles*: cells present in the
  /// checkpoint are restored as usual, but a cell absent from it is
  /// recorded as a kCancelled failure ("not restored") instead of being
  /// computed — nothing executes, so assembly is instant and cannot fail
  /// the way a computation can. Requires `checkpoint` to be set. Restore-
  /// only failures bypass the executor and therefore do not count against
  /// max_cell_failures. This is how the serve layer turns a bag of
  /// worker-computed cells into the exact result object (tables, fits,
  /// JSON) a serial in-process run would have produced.
  bool restore_only = false;

  /// Called after every completed (or restored) cell. May be invoked from
  /// a worker thread when jobs > 1 (calls are serialized under the
  /// runner's deposit lock, so the callback itself needs no locking).
  std::function<void(const RunProgress&)> progress;

  // --- parallel execution (forwarded to qbarren::Executor) -------------

  /// Worker threads for cell-parallel runners; 0 = hardware concurrency.
  /// The job count changes wall-clock time only, never results: cells
  /// draw from independent RNG child streams and deposit by key.
  std::size_t jobs = 1;

  /// Soft per-cell deadline in seconds (default unbounded). A cell that
  /// outlives it is cancelled cooperatively and recorded as a timeout
  /// failure.
  double cell_timeout_seconds = std::numeric_limits<double>::infinity();

  /// Failed cells tolerated before the run aborts. 0 (default) rethrows
  /// the first failure with its original type, exactly like a serial
  /// loop; K > 0 lets the run complete with up to K failed cells
  /// (reported in the result's failure list) and throws
  /// FailureBudgetExceeded beyond that.
  std::size_t max_cell_failures = 0;

  /// Attempts per cell for retryable (non-finite) failures; retries
  /// switch to the parameter-shift fallback path. 1 = no retry.
  std::size_t max_cell_attempts = 1;
};

}  // namespace qbarren
