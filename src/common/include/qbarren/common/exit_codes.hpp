// Process exit-code taxonomy shared by the CLI, the serve layer, and the
// tests that assert on subprocess outcomes.
//
// One header instead of scattered integer literals: the CLI's main(), the
// serve request lifecycle, the `submit` client, and test_cli.cpp must all
// agree on what each code means, and a silent divergence (e.g. a new
// failure path reusing 130) would corrupt scripted retry logic around the
// service. Codes follow shell conventions: 0 success, small positive for
// tool-defined failures, 128+signal for deaths-by-signal (130 = SIGINT,
// the interactive interrupt convention the CLI has used since PR 1).
#pragma once

namespace qbarren {

/// The run completed (possibly with failed cells inside a non-zero
/// failure budget — the result JSON's failure list is authoritative).
inline constexpr int kExitOk = 0;

/// Generic run failure: an experiment error, a failure budget exceeded,
/// I/O trouble, or a bad command line.
inline constexpr int kExitFailure = 1;

/// The request never started: admission preflight rejected the spec
/// (lint errors), the queue was full (backpressure), or the service was
/// draining. Nothing was computed; resubmitting a *fixed* spec is safe.
inline constexpr int kExitAdmissionRejected = 3;

/// The per-request worker-crash budget was exhausted: worker processes
/// died (crashed or were hard-killed) more times than the service allows
/// for one request. Distinct from kExitFailure so callers can tell "your
/// spec computes garbage" from "cells keep killing workers".
inline constexpr int kExitWorkerCrashBudget = 4;

/// Interrupted by SIGINT/SIGTERM (128 + SIGINT). Checkpointed state is
/// durable: rerunning with --resume (or resubmitting to the service,
/// which replays its result cache) continues where the run stopped.
inline constexpr int kExitInterrupted = 130;

}  // namespace qbarren
