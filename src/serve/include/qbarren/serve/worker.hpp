// Worker-process entry point of the serve layer.
//
// `qbarren worker` is the process the service forks for every pool slot.
// It reads WorkerJob lines from `in_fd`, computes one cell per job with
// the same RNG child streams as the in-process runners, and writes
// WorkerReply lines to `out_fd`: a kStart marker before the computation
// (the hard watchdog's timing anchor), then kOk carrying the cell in
// checkpoint hexfloat text (bit-exact doubles) or kFail carrying the
// failure taxonomy. Anything that escapes a cell as a process death —
// crash-at: aborts, real segfaults — is the *service's* problem to
// classify; the worker only reports failures it can survive.
#pragma once

namespace qbarren::serve {

/// Runs the worker job loop until `in_fd` reaches EOF (service closed the
/// pipe — the graceful shutdown signal). Returns a process exit code: 0 on
/// clean EOF, 1 when the protocol itself breaks (unparseable job line).
[[nodiscard]] int worker_main(int in_fd, int out_fd);

}  // namespace qbarren::serve
