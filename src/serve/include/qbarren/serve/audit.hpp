// Static determinism audit of serve requests — the analysis→serve bridge.
//
// The serve layer's core claim is "byte-identical to the serial runner at
// any shard count and crash schedule". That claim has three static
// preconditions the stream-graph auditor (analysis/stream_graph.hpp) can
// verify per request before any worker is forked:
//
//   1. the request's RNG stream graph is collision-free (QD100) and its
//      cell enumeration is key-unique (QD103) — otherwise resume/cache
//      restore aliases cells;
//   2. the options fingerprint moves under every result-affecting field
//      (QD102) — otherwise the shared result cache serves stale cells
//      across requests;
//   3. the worker-visible options encoding (variance/training
//      options_to_json) carries every fingerprinted field and round-trips
//      it exactly (QD103 wire probes) — otherwise a worker computes under
//      defaults while the cache files the result under the perturbed
//      fingerprint: cache poisoning.
//
// audit_request runs all three; the service merges its findings into
// admission control (errors reject the request, exit code 3, same as the
// physical-feasibility admission_check), and `qbarren audit --request`
// runs it offline.
#pragma once

#include "qbarren/analysis/store_audit.hpp"
#include "qbarren/analysis/stream_graph.hpp"
#include "qbarren/serve/protocol.hpp"

namespace qbarren::serve {

/// Stream derivation graph of the request's underlying experiment,
/// labelled "request:<id>". Cells match enumerate_cells keys exactly.
[[nodiscard]] StreamGraph request_stream_graph(const RequestSpec& spec);

/// Wire-level fingerprint probes: in-process probes augmented with the
/// worker-visible options encoding before/after each perturbation and the
/// fingerprint recovered by round-tripping the perturbed options through
/// the wire (encode → decode → fingerprint).
[[nodiscard]] std::vector<FingerprintProbe> request_fingerprint_probes(
    const RequestSpec& spec);

/// The full static determinism audit of one request: stream-graph rules
/// (QD100/QD103), fingerprint soundness (QD102), and wire coverage
/// (QD103). Error findings mean the request must not run.
[[nodiscard]] Diagnostics audit_request(const RequestSpec& spec,
                                        const LintOptions& lint = {});

/// As audit_request across several requests, adding QD101 across their
/// graphs: requests presented as independent must not share root seeds.
[[nodiscard]] Diagnostics audit_requests(
    const std::vector<RequestSpec>& specs, const LintOptions& lint = {});

/// What a store serving this request should contain — feeds
/// `qbarren fsck --request`. `cache_store` selects the shared result
/// cache layout (ExperimentService::kCacheFingerprint as the store
/// fingerprint, cells namespaced "<spec_fingerprint>|<cell>") over the
/// per-run checkpoint layout (spec fingerprint, bare cell keys).
[[nodiscard]] StoreAuditOptions store_expectations(const RequestSpec& spec,
                                                   bool cache_store);

}  // namespace qbarren::serve
