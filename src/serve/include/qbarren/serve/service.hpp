// The experiment service: admission control, a process-isolated worker
// pool, hard-kill watchdogs, crash retries, and a shared result cache.
//
// ExperimentService::run_request takes one RequestSpec through the full
// robustness pipeline:
//
//   1. *Admission*: the PR 3 lint preflight runs on the spec's options; an
//      error-severity finding rejects the request (exit 3) with the
//      QB/QP diagnostic JSON, before any worker burns a core.
//   2. *Cache*: cells already in the content-addressed result cache
//      (keyed "<options-fingerprint>|<cell-key>") are restored, not
//      recomputed — identical cells dedupe across requests and across
//      service restarts when the cache is file-backed.
//   3. *Sharding*: remaining cells are dispatched one at a time to a pool
//      of `qbarren worker` processes. Per-cell RNG child streams make the
//      shard layout irrelevant: any worker count produces byte-identical
//      results.
//   4. *Recovery*: a worker that dies (crash) or is SIGKILLed by the hard
//      watchdog (hang) loses only its in-flight cell, which is retried on
//      a fresh worker with capped exponential backoff — at the *same*
//      engine attempt, so the replay is bit-identical. Non-finite
//      failures retry with the fallback engine, exactly like the
//      in-process executor. Budgets bound both: per-request cell-failure
//      and worker-crash budgets abort the request (exit 1 / exit 4)
//      without taking the service down.
//   5. *Assembly*: completed cells are restored through the in-process
//      runner in restore-only mode, so the final result JSON is
//      byte-identical to a serial in-process run — at any shard count,
//      under any crash/retry schedule.
#pragma once

#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "qbarren/common/checkpoint.hpp"
#include "qbarren/common/executor.hpp"
#include "qbarren/common/json.hpp"
#include "qbarren/common/run.hpp"
#include "qbarren/serve/protocol.hpp"

namespace qbarren::serve {

struct ServiceOptions {
  /// Worker-pool width. Any value yields byte-identical results.
  std::size_t workers = 2;

  /// Command line for worker processes. Empty resolves to
  /// {"/proc/self/exe", "worker"} at pool start — the service re-executes
  /// its own binary in worker mode.
  std::vector<std::string> worker_argv;

  /// Backing file of the shared result cache; "" keeps it in memory.
  /// A damaged file is quarantined (Checkpoint::open_salvaging), never
  /// fatal.
  std::string cache_path;

  /// Hard watchdog: a worker whose in-flight cell has been running this
  /// long since its start marker is SIGKILLed and the cell retried
  /// elsewhere. Infinity disables the watchdog.
  double worker_kill_seconds = std::numeric_limits<double>::infinity();

  /// Crash redispatches allowed per cell (worker death, not non-finite).
  /// A cell whose worker dies more than this many times fails terminally
  /// as crashed/killed.
  std::size_t max_crash_attempts = 3;

  /// Worker deaths tolerated per request before the whole request aborts
  /// with kExitWorkerCrashBudget.
  std::size_t max_worker_crashes = 8;

  /// Exponential backoff for crash retries: delay doubles from `initial`
  /// per crash of the same cell, capped at `max`.
  double backoff_initial_seconds = 0.01;
  double backoff_max_seconds = 0.5;

  /// Test hook: when set and returning true for a cell key, the service
  /// SIGKILLs the worker the instant that cell's start marker arrives —
  /// a deterministic stand-in for an external `kill -9` mid-cell.
  std::function<bool(const std::string& cell_key)> kill_on_cell_start;
};

struct RequestOutcome {
  enum class Status {
    kOk,           ///< all cells accounted for within budget
    kRejected,     ///< admission preflight found an error-severity issue
    kFailed,       ///< cell-failure budget or deadline exceeded
    kCrashBudget,  ///< worker deaths exceeded max_worker_crashes
    kDrained,      ///< drain token fired with cells still pending
  };

  Status status = Status::kOk;
  /// Matching qbarren/common/exit_codes.hpp constant.
  int exit_code = 0;

  std::size_t cells = 0;          ///< total cells in the request
  std::size_t cached = 0;         ///< restored from the result cache
  std::size_t computed = 0;       ///< computed by workers this request
  std::size_t retries = 0;        ///< redispatches (crash + non-finite)
  std::size_t worker_deaths = 0;  ///< worker processes lost this request

  /// Terminal per-cell failures (PR 2 taxonomy + crashed/killed), sorted
  /// by cell key.
  std::vector<CellFailure> failures;

  /// Assembled experiment result (to_json(VarianceResult|TrainingResult))
  /// when the request ran to completion; null otherwise.
  JsonValue result;
};

/// "ok" / "rejected" / "failed" / "crash-budget" / "drained".
[[nodiscard]] const char* request_status_name(
    RequestOutcome::Status status) noexcept;

class ExperimentService {
 public:
  /// Streaming event sink: called with one JSON object per protocol event
  /// ("admitted", "cell", "rejected", "done"), in order, from the thread
  /// running run_request.
  using EventSink = std::function<void(const JsonValue&)>;

  explicit ExperimentService(ServiceOptions options);
  ~ExperimentService();
  ExperimentService(const ExperimentService&) = delete;
  ExperimentService& operator=(const ExperimentService&) = delete;

  /// Runs one request to a terminal state. Blocks the calling thread; the
  /// worker pool (started lazily on first call) does the computing.
  /// `drain`, when cancelled, lets in-flight cells finish (their results
  /// land in the cache) but dispatches nothing new — a request cut short
  /// this way reports kDrained/130.
  RequestOutcome run_request(const RequestSpec& spec,
                             const EventSink& sink = nullptr,
                             const CancellationToken* drain = nullptr);

  /// The shared result cache (fingerprint kCacheFingerprint, cell keys
  /// "<options-fingerprint>|<cell-key>").
  [[nodiscard]] Checkpoint& cache() noexcept;

  /// What open_salvaging found in the cache file at construction.
  [[nodiscard]] const CheckpointSalvage& cache_salvage() const noexcept;

  /// PIDs of the live worker processes (empty before the pool starts).
  [[nodiscard]] std::vector<long> worker_pids() const;

  /// Stops the pool: closes job pipes (workers exit on EOF), joins reader
  /// threads, reaps children. Idempotent; the destructor calls it.
  void shutdown();

  static constexpr const char* kCacheFingerprint = "qbarren-serve-cache/v1";

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace qbarren::serve
