// NDJSON socket front end of the experiment service.
//
// SocketServer listens on a Unix-domain stream socket. A client connects,
// writes one request object on one line, and reads back the request's
// event stream ("admitted", "cell", ..., "done"); the server closes the
// connection after the terminal event. Requests run FIFO, one at a time
// (the worker pool inside ExperimentService provides the parallelism);
// connections beyond the bounded admission queue are rejected immediately
// with a backpressure event instead of queueing without bound. SIGTERM or
// SIGINT drains: the in-flight request's running cells finish (and land
// in the result cache), queued connections are turned away, and run()
// returns kExitInterrupted.
#pragma once

#include <cstddef>
#include <string>

#include "qbarren/serve/service.hpp"

namespace qbarren::serve {

struct ServerOptions {
  /// Filesystem path of the Unix-domain listening socket. A stale socket
  /// file from a previous run is removed at bind time.
  std::string socket_path;

  /// Connections allowed to wait behind the active request. Beyond this
  /// the server answers {"event":"rejected","reason":"backpressure"} and
  /// closes — admission control for the queue itself.
  std::size_t max_pending = 4;
};

class SocketServer {
 public:
  SocketServer(ServiceOptions service_options, ServerOptions options);
  ~SocketServer();
  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Binds, listens, and serves until a drain signal arrives. Installs
  /// SIGINT/SIGTERM cancellation for its duration (main-thread contract
  /// of ScopedSignalCancellation applies). Returns the process exit code.
  [[nodiscard]] int run();

  /// The underlying service — exposed so tests can inspect the cache.
  [[nodiscard]] ExperimentService& service() noexcept { return service_; }

 private:
  ExperimentService service_;
  ServerOptions options_;
};

}  // namespace qbarren::serve
