// Wire protocol of the qbarren experiment service.
//
// Everything is newline-delimited JSON (NDJSON), in two dialects:
//
//   * client <-> service — one request object per line in, a stream of
//     event objects per line out ("admitted", "cell", "rejected",
//     "done"); see TUTORIAL §15 for the schemas;
//   * service <-> worker — WorkerJob lines down a pipe to `qbarren
//     worker` processes, WorkerReply lines back. Cell payloads cross the
//     pipe in the checkpoint layer's hexfloat text format
//     (serialize_cell_payload), so a double computed in a worker process
//     lands in the service's result cache bit-for-bit — the foundation of
//     the serve layer's byte-identical-to-serial guarantee.
//
// A request names an experiment kind ("variance" or "training"), its
// options (defaults match the in-process experiment defaults), and
// per-request run controls (failure budget, non-finite retry attempts,
// wall-clock deadline). The service always runs the paper initializer set
// (layer-tensor fan mode) — the same grid `qbarren variance`/`train`
// run — so every cell key matches the in-process runner's keys and the
// shared result cache dedupes across the CLI and the service.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "qbarren/bp/training.hpp"
#include "qbarren/bp/variance.hpp"
#include "qbarren/common/json.hpp"

namespace qbarren::serve {

inline constexpr int kProtocolVersion = 1;

enum class SpecKind {
  kVariance,  ///< VarianceExperiment::run_paper_set (Fig 5a grid)
  kTraining,  ///< TrainingExperiment::run_paper_set (Fig 5b/c series)
};

/// "variance" / "training".
[[nodiscard]] const char* spec_kind_name(SpecKind kind) noexcept;

/// Inverse of spec_kind_name; throws NotFound on an unknown name.
[[nodiscard]] SpecKind spec_kind_from_name(const std::string& name);

/// One experiment request. Exactly one of `variance` / `training` is
/// meaningful, selected by `kind`; the other keeps its defaults.
struct RequestSpec {
  /// Client-chosen identifier echoed on every event for this request.
  std::string id;
  SpecKind kind = SpecKind::kVariance;
  VarianceExperimentOptions variance;
  TrainingExperimentOptions training;

  // --- per-request run controls (mirror RunControl semantics) -----------
  /// Terminal cell failures tolerated before the request aborts.
  std::size_t max_cell_failures = 0;
  /// Attempts per cell for retryable (non-finite) failures; retries use
  /// the parameter-shift fallback path, exactly like the in-process
  /// executor. 1 = no retry. (Worker crashes have their own budget,
  /// ServiceOptions::max_crash_attempts — a crash retry does NOT advance
  /// the engine attempt, so the replayed cell is bit-identical.)
  std::size_t max_cell_attempts = 1;
  /// Wall-clock deadline for the whole request, in seconds.
  double deadline_seconds = std::numeric_limits<double>::infinity();
};

/// Parses a request object:
///   {"id": "...", "kind": "variance"|"training",
///    "options": {...},                           // kind-specific, all
///                                                // fields optional
///    "control": {"max_cell_failures": 0, "max_cell_attempts": 1,
///                "deadline_seconds": 60.0}}      // optional
/// Unknown keys anywhere are rejected (InvalidArgument) — a typo'd option
/// must not silently run with defaults.
[[nodiscard]] RequestSpec request_from_json(const JsonValue& value);
[[nodiscard]] JsonValue to_json(const RequestSpec& spec);

/// The underlying experiment's options fingerprint — the result cache's
/// namespace for this request's cells. Two requests whose options
/// fingerprint identically share cells regardless of id or run controls.
[[nodiscard]] std::string spec_fingerprint(const RequestSpec& spec);

/// Kind-specific options as JSON (inverse of the "options" member parse).
[[nodiscard]] JsonValue variance_options_to_json(
    const VarianceExperimentOptions& options);
[[nodiscard]] VarianceExperimentOptions variance_options_from_json(
    const JsonValue& value);
[[nodiscard]] JsonValue training_options_to_json(
    const TrainingExperimentOptions& options);
[[nodiscard]] TrainingExperimentOptions training_options_from_json(
    const JsonValue& value);

/// Names of the paper initializer set in run order (layer-tensor mode) —
/// the serve layer's cell enumeration must match run_paper_set exactly.
[[nodiscard]] std::vector<std::string> paper_initializer_names();

/// One dispatchable cell of a request, with the indices a worker needs to
/// reproduce the runner's RNG streams. `key` matches the in-process cell
/// key ("q=<q>/init=<name>" or "init=<name>").
struct CellJob {
  std::string key;
  std::size_t qubit_index = 0;  ///< variance only
  std::size_t initializer_index = 0;
};

/// Every cell of the request, in the runner's deterministic order.
[[nodiscard]] std::vector<CellJob> enumerate_cells(const RequestSpec& spec);

// --- service <-> worker messages ----------------------------------------

struct WorkerJob {
  std::uint64_t job_id = 0;  ///< service-global, monotonically increasing
  SpecKind kind = SpecKind::kVariance;
  JsonValue options;  ///< kind-specific options object
  CellJob cell;
  /// Non-finite retry attempt this dispatch represents (maps to
  /// CellContext::attempt, selecting the fallback engine when > 0).
  std::size_t engine_attempt = 0;
};

[[nodiscard]] JsonValue to_json(const WorkerJob& job);
[[nodiscard]] WorkerJob worker_job_from_json(const JsonValue& value);

struct WorkerReply {
  enum class Type {
    kStart,  ///< cell computation begins (watchdog anchor)
    kOk,     ///< payload carries the cell in checkpoint text format
    kFail,   ///< in-worker failure; error/message carry the taxonomy
  };
  Type type = Type::kStart;
  std::uint64_t job_id = 0;
  std::string cell_key;
  std::string payload;  ///< kOk: serialize_cell_payload text
  std::string error;    ///< kFail: cell_error_class_name value
  std::string message;  ///< kFail: human-readable detail
};

[[nodiscard]] JsonValue to_json(const WorkerReply& reply);
[[nodiscard]] WorkerReply worker_reply_from_json(const JsonValue& value);

/// value.dump(0) + '\n' — one protocol line.
[[nodiscard]] std::string ndjson_line(const JsonValue& value);

}  // namespace qbarren::serve
