#include "qbarren/serve/worker.hpp"

#include <sys/types.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "qbarren/bp/training.hpp"
#include "qbarren/bp/variance.hpp"
#include "qbarren/common/checkpoint.hpp"
#include "qbarren/common/error.hpp"
#include "qbarren/common/executor.hpp"
#include "qbarren/grad/engine.hpp"
#include "qbarren/init/registry.hpp"
#include "qbarren/serve/protocol.hpp"

namespace qbarren::serve {

namespace {

/// Per-process worker state: engines are cached by name so stateful
/// decorators (the fault injectors' call counters) span jobs, exactly as
/// they do inside one in-process run — a crash-at:<k> engine crashes this
/// worker once per process lifetime, and the retried cell completes on a
/// fresh worker whose counter restarts.
struct WorkerState {
  std::vector<std::unique_ptr<Initializer>> initializers =
      paper_initializers(FanMode::kLayerTensor);
  std::map<std::string, std::unique_ptr<GradientEngine>> engines;

  GradientEngine& engine_for(const std::string& name) {
    auto it = engines.find(name);
    if (it == engines.end()) {
      it = engines.emplace(name, make_gradient_engine(name)).first;
    }
    return *it->second;
  }

  /// Computes one cell exactly as the in-process runner would: same
  /// initializer set, same engine-selection-by-attempt rule, same RNG
  /// child streams (the indices ride in the job). The returned cell is
  /// what the runner would have deposited into its checkpoint.
  CheckpointCell compute_cell(const WorkerJob& job) {
    if (job.cell.initializer_index >= initializers.size()) {
      throw InvalidArgument("worker: initializer_index out of range");
    }
    const Initializer& initializer = *initializers[job.cell.initializer_index];
    CheckpointCell cell;
    switch (job.kind) {
      case SpecKind::kVariance: {
        const VarianceExperimentOptions options =
            variance_options_from_json(job.options);
        // Attempt > 0 retries with the parameter-shift reference engine —
        // the same fallback the in-process executor path uses.
        GradientEngine& engine =
            engine_for(job.engine_attempt == 0 ? options.gradient_engine
                                               : "parameter-shift");
        cell.vectors["samples"] = compute_variance_cell(
            options, job.cell.qubit_index, initializer,
            job.cell.initializer_index, engine);
        break;
      }
      case SpecKind::kTraining: {
        const TrainingExperimentOptions options =
            training_options_from_json(job.options);
        const CostFunction cost = make_training_cost(options);
        CellContext ctx;
        ctx.attempt = job.engine_attempt;
        cell = checkpoint_cell_from_train_result(run_training_cell(
            options, cost, initializer, job.cell.initializer_index, ctx));
        break;
      }
    }
    return cell;
  }
};

/// Writes one reply line and flushes — the service reads line-at-a-time
/// and must see kStart before the cell computation begins.
void emit(std::FILE* out, const WorkerReply& reply) {
  const std::string line = ndjson_line(to_json(reply));
  std::fwrite(line.data(), 1, line.size(), out);
  std::fflush(out);
}

}  // namespace

int worker_main(int in_fd, int out_fd) {
  std::FILE* in = fdopen(in_fd, "r");
  std::FILE* out = fdopen(out_fd, "w");
  if (in == nullptr || out == nullptr) return 1;

  WorkerState state;
  char* line = nullptr;
  std::size_t capacity = 0;
  int exit_code = 0;
  while (true) {
    const ssize_t length = getline(&line, &capacity, in);
    if (length < 0) break;  // EOF: service closed our pipe — clean exit
    const std::string text(line, static_cast<std::size_t>(length));
    if (text.find_first_not_of(" \t\r\n") == std::string::npos) continue;

    WorkerJob job;
    try {
      job = worker_job_from_json(parse_json(text));
    } catch (const std::exception&) {
      exit_code = 1;  // protocol breakage — the service treats our death
      break;          // as a crash and re-forks
    }

    WorkerReply start;
    start.type = WorkerReply::Type::kStart;
    start.job_id = job.job_id;
    start.cell_key = job.cell.key;
    emit(out, start);

    WorkerReply done;
    done.job_id = job.job_id;
    done.cell_key = job.cell.key;
    try {
      done.type = WorkerReply::Type::kOk;
      done.payload = serialize_cell_payload(state.compute_cell(job));
    } catch (const NumericalError& e) {
      done.type = WorkerReply::Type::kFail;
      done.error = cell_error_class_name(CellErrorClass::kNonFinite);
      done.message = e.what();
    } catch (const std::exception& e) {
      done.type = WorkerReply::Type::kFail;
      done.error = cell_error_class_name(CellErrorClass::kException);
      done.message = e.what();
    }
    emit(out, done);
  }
  std::free(line);  // NOLINT(cppcoreguidelines-no-malloc) getline allocates
  std::fclose(in);
  std::fclose(out);
  return exit_code;
}

}  // namespace qbarren::serve
