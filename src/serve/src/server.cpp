#include "qbarren/serve/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>

#include "qbarren/common/error.hpp"
#include "qbarren/common/exit_codes.hpp"

namespace qbarren::serve {

namespace {

/// Best-effort full write; a vanished client must not abort the request
/// (its cells still land in the shared cache).
void write_all(int fd, const std::string& text) {
  std::size_t offset = 0;
  while (offset < text.size()) {
    const ssize_t n =
        ::write(fd, text.data() + offset, text.size() - offset);
    if (n <= 0) return;
    offset += static_cast<std::size_t>(n);
  }
}

void write_event(int fd, const JsonValue& event) {
  write_all(fd, ndjson_line(event));
}

JsonValue rejection_event(const char* reason) {
  JsonValue event = JsonValue::object();
  event.set("event", "rejected");
  event.set("reason", reason);
  event.set("exit_code", static_cast<std::int64_t>(kExitAdmissionRejected));
  return event;
}

/// Reads one newline-terminated line from `fd` (the request). Returns
/// false on EOF/error before a full line arrived.
bool read_line(int fd, std::string& line) {
  line.clear();
  char ch = 0;
  while (true) {
    const ssize_t n = ::read(fd, &ch, 1);
    if (n <= 0) return false;
    if (ch == '\n') return true;
    line.push_back(ch);
    if (line.size() > (1u << 20)) return false;  // oversized request
  }
}

}  // namespace

SocketServer::SocketServer(ServiceOptions service_options,
                           ServerOptions options)
    : service_(std::move(service_options)), options_(std::move(options)) {}

SocketServer::~SocketServer() = default;

int SocketServer::run() {
  if (options_.socket_path.empty()) {
    throw InvalidArgument("serve: socket path must not be empty");
  }
  // A client that disconnects mid-stream must not kill the server with
  // SIGPIPE; writes to its socket just start failing (write_all ignores).
  // sigaction, not signal(): the server shares the process with the pool's
  // reader threads (concurrency-mt-unsafe).
  struct sigaction ignore_pipe {};
  ignore_pipe.sa_handler = SIG_IGN;
  (void)::sigaction(SIGPIPE, &ignore_pipe, nullptr);
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(address.sun_path)) {
    throw InvalidArgument("serve: socket path too long: " +
                          options_.socket_path);
  }
  std::memcpy(address.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);

  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) throw Error("serve: socket() failed");
  // Keep server-side fds out of forked workers: an inherited client
  // connection would hold the stream open after the service closes it,
  // leaving the client blocked waiting for EOF.
  (void)::fcntl(listen_fd, F_SETFD, FD_CLOEXEC);
  (void)::unlink(options_.socket_path.c_str());
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&address),
             sizeof(address)) != 0 ||
      ::listen(listen_fd, 16) != 0) {
    ::close(listen_fd);
    throw Error("serve: cannot bind/listen on " + options_.socket_path);
  }

  CancellationToken drain;
  ScopedSignalCancellation signal_guard(drain);

  std::mutex mu;
  std::condition_variable cv;
  std::deque<int> queue;  // accepted connections awaiting service
  bool active = false;    // a request is currently being served
  bool accept_done = false;

  // Accept loop: admits into the bounded queue or rejects immediately.
  std::thread acceptor([&] {
    while (!drain.cancelled()) {
      pollfd pfd{listen_fd, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, 250);
      if (ready <= 0) continue;
      const int client = ::accept(listen_fd, nullptr, nullptr);
      if (client < 0) continue;
      (void)::fcntl(client, F_SETFD, FD_CLOEXEC);
      bool reject_backpressure = false;
      {
        const std::lock_guard<std::mutex> lock(mu);
        const std::size_t waiting = queue.size() + (active ? 1 : 0);
        if (waiting > options_.max_pending) {
          reject_backpressure = true;
        } else {
          queue.push_back(client);
        }
      }
      if (reject_backpressure) {
        write_event(client, rejection_event("backpressure"));
        ::close(client);
      } else {
        cv.notify_all();
      }
    }
    {
      const std::lock_guard<std::mutex> lock(mu);
      accept_done = true;
    }
    cv.notify_all();
  });

  // Service loop: one queued connection at a time, FIFO.
  while (true) {
    int client = -1;
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait_for(lock, std::chrono::milliseconds(250), [&] {
        return !queue.empty() || accept_done;
      });
      if (drain.cancelled() && queue.empty()) break;
      if (queue.empty()) continue;
      client = queue.front();
      queue.pop_front();
      if (drain.cancelled()) {
        lock.unlock();
        write_event(client, rejection_event("draining"));
        ::close(client);
        continue;
      }
      active = true;
    }

    std::string line;
    if (!read_line(client, line)) {
      write_event(client, rejection_event("no request line"));
    } else {
      try {
        const RequestSpec spec = request_from_json(parse_json(line));
        (void)service_.run_request(
            spec, [client](const JsonValue& event) {
              write_event(client, event);
            },
            &drain);
      } catch (const std::exception& e) {
        JsonValue event = rejection_event("bad request");
        event.set("message", e.what());
        write_event(client, event);
      }
    }
    ::close(client);
    {
      const std::lock_guard<std::mutex> lock(mu);
      active = false;
    }
  }

  acceptor.join();
  {
    const std::lock_guard<std::mutex> lock(mu);
    while (!queue.empty()) {
      write_event(queue.front(), rejection_event("draining"));
      ::close(queue.front());
      queue.pop_front();
    }
  }
  ::close(listen_fd);
  (void)::unlink(options_.socket_path.c_str());
  service_.shutdown();
  return kExitInterrupted;
}

}  // namespace qbarren::serve
