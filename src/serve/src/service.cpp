#include "qbarren/serve/service.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include "qbarren/analysis/admission.hpp"
#include "qbarren/serve/audit.hpp"
#include "qbarren/bp/serialize.hpp"
#include "qbarren/common/error.hpp"
#include "qbarren/common/exit_codes.hpp"

namespace qbarren::serve {

namespace {

using Clock = std::chrono::steady_clock;

Clock::duration seconds_duration(double seconds) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(seconds));
}

std::string cache_key(const std::string& fingerprint, const std::string& key) {
  return fingerprint + "|" + key;
}

/// A cell awaiting dispatch (or redispatch after a retryable failure).
struct PendingCell {
  CellJob cell;
  std::size_t engine_attempt = 0;  // non-finite retries advance this
  std::size_t crash_attempts = 0;  // worker deaths while holding this cell
  Clock::time_point not_before{};  // crash-retry backoff gate
};

struct Event {
  enum class Kind { kReply, kDeath };
  Kind kind = Kind::kReply;
  std::size_t slot = 0;
  WorkerReply reply;    // kReply
  int wait_status = 0;  // kDeath: waitpid status
};

}  // namespace

const char* request_status_name(RequestOutcome::Status status) noexcept {
  switch (status) {
    case RequestOutcome::Status::kOk: return "ok";
    case RequestOutcome::Status::kRejected: return "rejected";
    case RequestOutcome::Status::kFailed: return "failed";
    case RequestOutcome::Status::kCrashBudget: return "crash-budget";
    case RequestOutcome::Status::kDrained: return "drained";
  }
  return "ok";
}

struct ExperimentService::Impl {
  /// One worker-pool seat. `defunct` marks a worker that has been (or is
  /// being) killed whose death event has not been consumed yet — the seat
  /// is not dispatchable until the death is processed and it respawns.
  struct Slot {
    pid_t pid = -1;
    int job_fd = -1;
    std::thread reader;
    bool live = false;
    bool busy = false;
    bool defunct = false;
    std::uint64_t job_id = 0;
    bool started = false;  // kStart seen for the in-flight job
    Clock::time_point start_time{};
  };

  ServiceOptions options;
  CheckpointSalvage salvage;  // must precede `cache`: open_cache fills it
  Checkpoint cache;
  std::vector<std::string> worker_argv;  // resolved at pool start
  std::vector<Slot> slots;
  bool pool_started = false;
  bool shut_down = false;
  std::uint64_t next_job_id = 1;

  std::mutex event_mu;
  std::condition_variable event_cv;
  std::deque<Event> events;

  static Checkpoint open_cache(const ServiceOptions& options,
                               CheckpointSalvage* salvage) {
    if (options.cache_path.empty()) {
      return Checkpoint(std::string(), kCacheFingerprint);
    }
    return Checkpoint::open_salvaging(options.cache_path, kCacheFingerprint,
                                      salvage);
  }

  explicit Impl(ServiceOptions opts)
      : options(std::move(opts)), cache(open_cache(options, &salvage)) {}

  void push_event(Event event) {
    {
      const std::lock_guard<std::mutex> lock(event_mu);
      events.push_back(std::move(event));
    }
    event_cv.notify_all();
  }

  /// Reads WorkerReply lines from a worker's stdout until EOF, then reaps
  /// the process and reports its death. Runs on a per-slot thread.
  void reader_loop(std::size_t slot_index, int reply_fd, pid_t pid) {
    std::FILE* stream = fdopen(reply_fd, "r");
    if (stream != nullptr) {
      char* line = nullptr;
      std::size_t capacity = 0;
      while (true) {
        const ssize_t length = getline(&line, &capacity, stream);
        if (length < 0) break;
        Event event;
        event.kind = Event::Kind::kReply;
        event.slot = slot_index;
        try {
          event.reply = worker_reply_from_json(
              parse_json(std::string(line, static_cast<std::size_t>(length))));
        } catch (const std::exception&) {
          continue;  // garbage line; the worker's death will surface it
        }
        push_event(std::move(event));
      }
      std::free(line);  // NOLINT(cppcoreguidelines-no-malloc)
      std::fclose(stream);
    } else {
      ::close(reply_fd);
    }
    int status = 0;
    (void)::waitpid(pid, &status, 0);
    Event death;
    death.kind = Event::Kind::kDeath;
    death.slot = slot_index;
    death.wait_status = status;
    push_event(std::move(death));
  }

  void resolve_worker_argv() {
    if (!worker_argv.empty()) return;
    if (!options.worker_argv.empty()) {
      worker_argv = options.worker_argv;
      return;
    }
    char buffer[4096];
    const ssize_t n =
        ::readlink("/proc/self/exe", buffer, sizeof(buffer) - 1);
    if (n <= 0) {
      throw Error("serve: cannot resolve /proc/self/exe to spawn workers; "
                  "set ServiceOptions::worker_argv explicitly");
    }
    buffer[n] = '\0';
    worker_argv = {std::string(buffer), "worker"};
  }

  void spawn(std::size_t slot_index) {
    Slot& slot = slots[slot_index];
    int job_pipe[2];
    int reply_pipe[2];
    if (::pipe(job_pipe) != 0) {
      throw Error("serve: pipe failed spawning a worker");
    }
    if (::pipe(reply_pipe) != 0) {
      ::close(job_pipe[0]);
      ::close(job_pipe[1]);
      throw Error("serve: pipe failed spawning a worker");
    }
    // Parent-side ends must not leak into later children past exec.
    (void)::fcntl(job_pipe[1], F_SETFD, FD_CLOEXEC);
    (void)::fcntl(reply_pipe[0], F_SETFD, FD_CLOEXEC);
    std::vector<char*> argv;
    argv.reserve(worker_argv.size() + 1);
    for (std::string& arg : worker_argv) argv.push_back(arg.data());
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(job_pipe[0]);
      ::close(job_pipe[1]);
      ::close(reply_pipe[0]);
      ::close(reply_pipe[1]);
      throw Error("serve: fork failed spawning a worker");
    }
    if (pid == 0) {
      // Child: only async-signal-safe calls until exec.
      (void)::dup2(job_pipe[0], STDIN_FILENO);
      (void)::dup2(reply_pipe[1], STDOUT_FILENO);
      ::close(job_pipe[0]);
      ::close(reply_pipe[1]);
      ::execv(argv[0], argv.data());
      ::_exit(127);
    }
    ::close(job_pipe[0]);
    ::close(reply_pipe[1]);
    slot.pid = pid;
    slot.job_fd = job_pipe[1];
    slot.live = true;
    slot.busy = false;
    slot.defunct = false;
    slot.started = false;
    slot.job_id = 0;
    slot.reader = std::thread([this, slot_index, fd = reply_pipe[0], pid] {
      reader_loop(slot_index, fd, pid);
    });
  }

  void start_pool() {
    if (pool_started) return;
    // Workers write reply lines to a pipe the service may have closed
    // (shutdown races); die-on-SIGPIPE would take the whole service down.
    // sigaction, not signal(): the pool runs multithreaded and signal()'s
    // semantics are not thread-safe everywhere (concurrency-mt-unsafe).
    struct sigaction ignore_pipe {};
    ignore_pipe.sa_handler = SIG_IGN;
    (void)::sigaction(SIGPIPE, &ignore_pipe, nullptr);
    resolve_worker_argv();
    slots.resize(std::max<std::size_t>(options.workers, 1));
    for (std::size_t i = 0; i < slots.size(); ++i) spawn(i);
    pool_started = true;
  }

  /// Consumes a death event for `slot`: joins the reader, closes the job
  /// pipe, and leaves the seat ready for respawn.
  void retire(std::size_t slot_index) {
    Slot& slot = slots[slot_index];
    if (slot.reader.joinable()) slot.reader.join();
    if (slot.job_fd >= 0) {
      ::close(slot.job_fd);
      slot.job_fd = -1;
    }
    slot.live = false;
    slot.busy = false;
    slot.defunct = false;
    slot.started = false;
    slot.pid = -1;
  }

  /// Kills every worker holding an in-flight job and rebuilds those
  /// seats, consuming their death (and any straggler reply) events so
  /// they cannot leak into the next request's budget accounting.
  void quiesce() {
    std::size_t outstanding = 0;
    for (Slot& slot : slots) {
      if (slot.live && (slot.busy || slot.defunct)) {
        (void)::kill(slot.pid, SIGKILL);
        slot.defunct = true;
        ++outstanding;
      }
    }
    while (outstanding > 0) {
      Event event;
      {
        std::unique_lock<std::mutex> lock(event_mu);
        event_cv.wait(lock, [this] { return !events.empty(); });
        event = std::move(events.front());
        events.pop_front();
      }
      if (event.kind == Event::Kind::kDeath) {
        retire(event.slot);
        spawn(event.slot);
        --outstanding;
      }
      // Straggler replies from killed workers are dropped on the floor.
    }
  }

  void stop() {
    if (shut_down) return;
    shut_down = true;
    if (!pool_started) return;
    for (Slot& slot : slots) {
      if (slot.job_fd >= 0) {
        ::close(slot.job_fd);  // EOF: workers exit their job loop
        slot.job_fd = -1;
      }
    }
    for (Slot& slot : slots) {
      if (slot.reader.joinable()) slot.reader.join();
      slot.live = false;
    }
    pool_started = false;
  }
};

ExperimentService::ExperimentService(ServiceOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

ExperimentService::~ExperimentService() { shutdown(); }

Checkpoint& ExperimentService::cache() noexcept { return impl_->cache; }

const CheckpointSalvage& ExperimentService::cache_salvage() const noexcept {
  return impl_->salvage;
}

std::vector<long> ExperimentService::worker_pids() const {
  std::vector<long> pids;
  for (const Impl::Slot& slot : impl_->slots) {
    if (slot.live) pids.push_back(static_cast<long>(slot.pid));
  }
  return pids;
}

void ExperimentService::shutdown() { impl_->stop(); }

namespace {

JsonValue cell_event(const std::string& request_id, const std::string& key,
                     const char* status) {
  JsonValue event = JsonValue::object();
  event.set("event", "cell");
  event.set("id", request_id);
  event.set("cell", key);
  event.set("status", status);
  return event;
}

void sink_emit(const ExperimentService::EventSink& sink,
               const JsonValue& event) {
  if (sink) sink(event);
}

}  // namespace

RequestOutcome ExperimentService::run_request(const RequestSpec& spec,
                                              const EventSink& sink,
                                              const CancellationToken* drain) {
  Impl& impl = *impl_;
  RequestOutcome outcome;

  // --- 1. admission -------------------------------------------------------
  AdmissionDecision admission =
      spec.kind == SpecKind::kVariance ? admission_check(spec.variance)
                                       : admission_check(spec.training);
  {
    // Physical feasibility (QB/QP, above) and static determinism (QD) gate
    // together: a request whose stream graph collides or whose wire
    // encoding drops a fingerprinted field would poison the shared result
    // cache, which is strictly worse than wasting one worker pool.
    Diagnostics determinism = audit_request(spec);
    if (has_errors(determinism)) admission.admitted = false;
    admission.findings.insert(admission.findings.end(),
                              std::make_move_iterator(determinism.begin()),
                              std::make_move_iterator(determinism.end()));
  }
  if (!admission.admitted) {
    outcome.status = RequestOutcome::Status::kRejected;
    outcome.exit_code = kExitAdmissionRejected;
    JsonValue event = JsonValue::object();
    event.set("event", "rejected");
    event.set("id", spec.id);
    event.set("exit_code", static_cast<std::int64_t>(outcome.exit_code));
    event.set("findings", admission.findings_json());
    sink_emit(sink, event);
    return outcome;
  }

  const std::string fingerprint = spec_fingerprint(spec);
  const std::vector<CellJob> cells = enumerate_cells(spec);
  outcome.cells = cells.size();

  {
    JsonValue event = JsonValue::object();
    event.set("event", "admitted");
    event.set("id", spec.id);
    event.set("kind", spec_kind_name(spec.kind));
    event.set("cells", cells.size());
    event.set("fingerprint", fingerprint);
    if (!admission.findings.empty()) {
      event.set("findings", admission.findings_json());
    }
    sink_emit(sink, event);
  }

  // --- 2. cache restore ---------------------------------------------------
  std::deque<PendingCell> pending;
  for (const CellJob& cell : cells) {
    if (impl.cache.has_cell(cache_key(fingerprint, cell.key))) {
      ++outcome.cached;
      sink_emit(sink, cell_event(spec.id, cell.key, "cached"));
    } else {
      pending.push_back(PendingCell{cell, 0, 0, Clock::time_point{}});
    }
  }

  // --- 3/4. dispatch with recovery ---------------------------------------
  const Clock::time_point request_start = Clock::now();
  const bool has_deadline = std::isfinite(spec.deadline_seconds);
  const Clock::time_point request_deadline =
      has_deadline ? request_start + seconds_duration(spec.deadline_seconds)
                   : Clock::time_point::max();
  const bool has_watchdog = std::isfinite(impl.options.worker_kill_seconds);

  const JsonValue options_json = spec.kind == SpecKind::kVariance
                                     ? variance_options_to_json(spec.variance)
                                     : training_options_to_json(spec.training);

  std::map<std::uint64_t, PendingCell> inflight;
  // Jobs whose worker was deliberately SIGKILLed by the kill_on_cell_start
  // test hook. A fast worker may have written its kOk reply before the
  // signal landed; dropping such replies makes the hook equivalent to a
  // kill that arrived mid-computation, so recovery is exercised
  // deterministically regardless of cell speed.
  std::set<std::uint64_t> doomed;
  bool aborted = false;

  if (!pending.empty()) impl.start_pool();

  const auto terminal_failure = [&](const PendingCell& cell,
                                    CellErrorClass error,
                                    const std::string& message,
                                    std::size_t attempts) {
    outcome.failures.push_back(
        CellFailure{cell.cell.key, error, message, attempts});
    JsonValue event = cell_event(spec.id, cell.cell.key, "failed");
    event.set("error", cell_error_class_name(error));
    event.set("message", message);
    event.set("attempts", attempts);
    sink_emit(sink, event);
    if (outcome.failures.size() > spec.max_cell_failures) {
      outcome.status = RequestOutcome::Status::kFailed;
      outcome.exit_code = kExitFailure;
      aborted = true;
    }
  };

  const auto retry_cell = [&](PendingCell cell, const char* reason,
                              bool backoff) {
    ++outcome.retries;
    JsonValue event = cell_event(spec.id, cell.cell.key, "retry");
    event.set("reason", reason);
    event.set("engine_attempt", cell.engine_attempt);
    event.set("crash_attempts", cell.crash_attempts);
    sink_emit(sink, event);
    if (backoff) {
      const double exponent =
          cell.crash_attempts > 0
              ? static_cast<double>(cell.crash_attempts - 1)
              : 0.0;
      const double delay =
          std::min(impl.options.backoff_initial_seconds *
                       std::pow(2.0, exponent),
                   impl.options.backoff_max_seconds);
      cell.not_before = Clock::now() + seconds_duration(delay);
    }
    pending.push_back(std::move(cell));
  };

  while (!aborted && (!pending.empty() || !inflight.empty())) {
    const bool draining = drain != nullptr && drain->cancelled();
    const Clock::time_point now = Clock::now();

    if (has_deadline && now >= request_deadline) {
      outcome.status = RequestOutcome::Status::kFailed;
      outcome.exit_code = kExitFailure;
      aborted = true;
      break;
    }
    if (draining && inflight.empty()) {
      outcome.status = RequestOutcome::Status::kDrained;
      outcome.exit_code = kExitInterrupted;
      aborted = true;
      break;
    }

    // Dispatch ready cells onto free seats (skip backoff-gated ones).
    if (!draining) {
      for (std::size_t s = 0; s < impl.slots.size() && !pending.empty();
           ++s) {
        Impl::Slot& slot = impl.slots[s];
        if (!slot.live || slot.busy || slot.defunct) continue;
        auto ready = std::find_if(
            pending.begin(), pending.end(),
            [&now](const PendingCell& c) { return c.not_before <= now; });
        if (ready == pending.end()) break;
        PendingCell cell = std::move(*ready);
        pending.erase(ready);

        WorkerJob job;
        job.job_id = impl.next_job_id++;
        job.kind = spec.kind;
        job.options = options_json;
        job.cell = cell.cell;
        job.engine_attempt = cell.engine_attempt;
        const std::string line = ndjson_line(to_json(job));

        slot.busy = true;
        slot.started = false;
        slot.job_id = job.job_id;
        inflight.emplace(job.job_id, std::move(cell));
        if (::write(slot.job_fd, line.data(), line.size()) !=
            static_cast<ssize_t>(line.size())) {
          // The worker is dead or dying; its death event will requeue
          // the cell through the normal crash path.
          slot.defunct = true;
        }
      }
    }

    // Pick the earliest deadline worth waking for.
    Clock::time_point wake = request_deadline;
    if (has_watchdog) {
      for (const Impl::Slot& slot : impl.slots) {
        if (slot.busy && slot.started && !slot.defunct) {
          wake = std::min(
              wake, slot.start_time +
                        seconds_duration(impl.options.worker_kill_seconds));
        }
      }
    }
    for (const PendingCell& cell : pending) {
      if (cell.not_before > now) wake = std::min(wake, cell.not_before);
    }
    if (draining) {
      // Nothing scheduled ahead; wake on events only (with a coarse
      // heartbeat so a lost wakeup cannot wedge the drain).
      wake = std::min(wake, now + seconds_duration(0.25));
    }

    Event event;
    {
      std::unique_lock<std::mutex> lock(impl.event_mu);
      if (impl.events.empty()) {
        if (wake == Clock::time_point::max()) {
          impl.event_cv.wait_for(lock, seconds_duration(0.25));
        } else {
          impl.event_cv.wait_until(lock, wake);
        }
      }
      if (impl.events.empty()) {
        lock.unlock();
        // Timed out: fire the hard watchdog on overdue workers.
        if (has_watchdog) {
          const Clock::time_point check = Clock::now();
          for (Impl::Slot& slot : impl.slots) {
            if (slot.busy && slot.started && !slot.defunct &&
                check - slot.start_time >=
                    seconds_duration(impl.options.worker_kill_seconds)) {
              (void)::kill(slot.pid, SIGKILL);
              slot.defunct = true;
            }
          }
        }
        continue;
      }
      event = std::move(impl.events.front());
      impl.events.pop_front();
    }

    Impl::Slot& slot = impl.slots[event.slot];
    switch (event.kind) {
      case Event::Kind::kReply: {
        if (!slot.busy || event.reply.job_id != slot.job_id) break;  // stale
        if (event.reply.type != WorkerReply::Type::kStart &&
            doomed.count(event.reply.job_id) != 0) {
          break;  // outcome discarded; the SIGKILL death requeues the cell
        }
        const auto it = inflight.find(event.reply.job_id);
        if (it == inflight.end()) break;
        switch (event.reply.type) {
          case WorkerReply::Type::kStart: {
            slot.started = true;
            slot.start_time = Clock::now();
            if (impl.options.kill_on_cell_start &&
                impl.options.kill_on_cell_start(event.reply.cell_key)) {
              (void)::kill(slot.pid, SIGKILL);
              slot.defunct = true;
              doomed.insert(event.reply.job_id);
            }
            break;
          }
          case WorkerReply::Type::kOk: {
            PendingCell cell = std::move(it->second);
            inflight.erase(it);
            slot.busy = false;
            slot.started = false;
            try {
              impl.cache.record_cell(
                  cache_key(fingerprint, cell.cell.key),
                  parse_cell_payload(event.reply.payload));
              ++outcome.computed;
              JsonValue done = cell_event(spec.id, cell.cell.key, "ok");
              if (cell.engine_attempt > 0 || cell.crash_attempts > 0) {
                done.set("engine_attempt", cell.engine_attempt);
                done.set("crash_attempts", cell.crash_attempts);
              }
              sink_emit(sink, done);
            } catch (const std::exception& e) {
              terminal_failure(cell, CellErrorClass::kException,
                               std::string("worker payload rejected: ") +
                                   e.what(),
                               cell.engine_attempt + 1);
            }
            break;
          }
          case WorkerReply::Type::kFail: {
            PendingCell cell = std::move(it->second);
            inflight.erase(it);
            slot.busy = false;
            slot.started = false;
            const CellErrorClass error =
                cell_error_class_from_name(event.reply.error);
            if (error == CellErrorClass::kNonFinite &&
                cell.engine_attempt + 1 < spec.max_cell_attempts) {
              ++cell.engine_attempt;
              retry_cell(std::move(cell), "non-finite", false);
            } else {
              terminal_failure(cell, error, event.reply.message,
                               cell.engine_attempt + 1);
            }
            break;
          }
        }
        break;
      }
      case Event::Kind::kDeath: {
        const bool killed = WIFSIGNALED(event.wait_status) &&
                            WTERMSIG(event.wait_status) == SIGKILL;
        const CellErrorClass error =
            killed ? CellErrorClass::kKilled : CellErrorClass::kCrashed;
        ++outcome.worker_deaths;

        doomed.erase(slot.job_id);
        const auto it = inflight.find(slot.job_id);
        const bool had_job = slot.busy && it != inflight.end();
        PendingCell cell;
        if (had_job) {
          cell = std::move(it->second);
          inflight.erase(it);
        }
        impl.retire(event.slot);
        if (!impl.shut_down) impl.spawn(event.slot);

        if (had_job) {
          ++cell.crash_attempts;
          if (cell.crash_attempts <= impl.options.max_crash_attempts) {
            retry_cell(std::move(cell),
                       killed ? "worker killed" : "worker crashed", true);
          } else {
            terminal_failure(cell, error,
                             killed ? "worker SIGKILLed (watchdog or "
                                      "external) while computing this cell"
                                    : "worker process died while computing "
                                      "this cell",
                             cell.crash_attempts);
          }
        }
        if (outcome.worker_deaths > impl.options.max_worker_crashes) {
          outcome.status = RequestOutcome::Status::kCrashBudget;
          outcome.exit_code = kExitWorkerCrashBudget;
          aborted = true;
        }
        break;
      }
    }
  }

  if (aborted) {
    impl.quiesce();
  }

  // --- 5. assembly --------------------------------------------------------
  const bool complete =
      !aborted && outcome.failures.size() <= spec.max_cell_failures;
  if (complete) {
    outcome.status = RequestOutcome::Status::kOk;
    outcome.exit_code = kExitOk;

    Checkpoint assembly{std::string(), fingerprint};
    for (const CellJob& cell : cells) {
      if (const CheckpointCell* stored =
              impl.cache.find_cell(cache_key(fingerprint, cell.key))) {
        assembly.put_cell(cell.key, *stored);
      }
    }
    RunControl control;
    control.checkpoint = &assembly;
    control.restore_only = true;
    // The assembly pass restores every present cell; the serve loop's own
    // failure records (crashed/killed taxonomy) replace the restore-only
    // placeholders for absent ones.
    std::sort(outcome.failures.begin(), outcome.failures.end(),
              [](const CellFailure& a, const CellFailure& b) {
                return a.cell < b.cell;
              });
    switch (spec.kind) {
      case SpecKind::kVariance: {
        VarianceResult result = VarianceExperiment(spec.variance)
                                    .run_paper_set(FanMode::kLayerTensor,
                                                   control);
        result.failures = outcome.failures;
        outcome.result = to_json(result);
        break;
      }
      case SpecKind::kTraining: {
        TrainingResult result = TrainingExperiment(spec.training)
                                    .run_paper_set(FanMode::kLayerTensor,
                                                   control);
        result.failures = outcome.failures;
        outcome.result = to_json(result);
        break;
      }
    }
  }

  JsonValue done = JsonValue::object();
  done.set("event", "done");
  done.set("id", spec.id);
  done.set("status", request_status_name(outcome.status));
  done.set("exit_code", static_cast<std::int64_t>(outcome.exit_code));
  done.set("cells", outcome.cells);
  done.set("cached", outcome.cached);
  done.set("computed", outcome.computed);
  done.set("retries", outcome.retries);
  done.set("worker_deaths", outcome.worker_deaths);
  if (!outcome.failures.empty()) {
    done.set("failures", failures_to_json(outcome.failures));
  }
  if (!outcome.result.is_null()) {
    done.set("result", outcome.result);
  }
  sink_emit(sink, done);
  return outcome;
}

}  // namespace qbarren::serve
