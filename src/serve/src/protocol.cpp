#include "qbarren/serve/protocol.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "qbarren/common/error.hpp"
#include "qbarren/init/registry.hpp"

namespace qbarren::serve {

namespace {

/// Rejects unknown members so a typo'd option name fails the request
/// instead of silently running with the default.
void check_keys(const JsonValue& object,
                std::initializer_list<const char*> allowed,
                const std::string& where) {
  for (const std::string& key : object.keys()) {
    const bool known =
        std::any_of(allowed.begin(), allowed.end(),
                    [&key](const char* a) { return key == a; });
    if (!known) {
      throw InvalidArgument("request: unknown key '" + key + "' in " + where);
    }
  }
}

std::size_t get_size(const JsonValue& object, const char* key,
                     std::size_t fallback) {
  if (!object.contains(key)) return fallback;
  const std::int64_t v = object.at(key).as_integer();
  if (v < 0) {
    throw InvalidArgument(std::string("request: '") + key +
                          "' must be non-negative");
  }
  return static_cast<std::size_t>(v);
}

std::uint64_t get_u64(const JsonValue& object, const char* key,
                      std::uint64_t fallback) {
  if (!object.contains(key)) return fallback;
  return static_cast<std::uint64_t>(object.at(key).as_integer());
}

double get_double(const JsonValue& object, const char* key, double fallback) {
  if (!object.contains(key)) return fallback;
  return object.at(key).as_number();
}

bool get_bool(const JsonValue& object, const char* key, bool fallback) {
  if (!object.contains(key)) return fallback;
  return object.at(key).as_bool();
}

std::string get_string(const JsonValue& object, const char* key,
                       std::string fallback) {
  if (!object.contains(key)) return fallback;
  return object.at(key).as_string();
}

const char* gradient_parameter_name(GradientParameter p) noexcept {
  switch (p) {
    case GradientParameter::kLast: return "last";
    case GradientParameter::kMiddle: return "middle";
    case GradientParameter::kFirst: return "first";
  }
  return "last";
}

GradientParameter gradient_parameter_from_name(const std::string& name) {
  if (name == "last") return GradientParameter::kLast;
  if (name == "middle") return GradientParameter::kMiddle;
  if (name == "first") return GradientParameter::kFirst;
  throw NotFound("request: unknown which_parameter '" + name + "'");
}

const char* non_finite_policy_name(NonFinitePolicy p) noexcept {
  switch (p) {
    case NonFinitePolicy::kThrow: return "throw";
    case NonFinitePolicy::kAbortSeries: return "abort";
    case NonFinitePolicy::kFallbackEngine: return "fallback";
  }
  return "throw";
}

NonFinitePolicy non_finite_policy_from_name(const std::string& name) {
  if (name == "throw") return NonFinitePolicy::kThrow;
  if (name == "abort") return NonFinitePolicy::kAbortSeries;
  if (name == "fallback") return NonFinitePolicy::kFallbackEngine;
  throw NotFound("request: unknown non_finite_policy '" + name + "'");
}

const char* entangler_gate_name(EntanglerGate gate) noexcept {
  switch (gate) {
    case EntanglerGate::kCz: return "cz";
    case EntanglerGate::kCnot: return "cnot";
  }
  return "cz";
}

EntanglerGate entangler_gate_from_name(const std::string& name) {
  if (name == "cz") return EntanglerGate::kCz;
  if (name == "cnot") return EntanglerGate::kCnot;
  throw NotFound("request: unknown entangler '" + name + "'");
}

const char* entangler_topology_name(EntanglerTopology topology) noexcept {
  switch (topology) {
    case EntanglerTopology::kLinear: return "linear";
    case EntanglerTopology::kRing: return "ring";
    case EntanglerTopology::kAllToAll: return "all-to-all";
  }
  return "linear";
}

EntanglerTopology entangler_topology_from_name(const std::string& name) {
  if (name == "linear") return EntanglerTopology::kLinear;
  if (name == "ring") return EntanglerTopology::kRing;
  if (name == "all-to-all") return EntanglerTopology::kAllToAll;
  throw NotFound("request: unknown topology '" + name + "'");
}

}  // namespace

const char* spec_kind_name(SpecKind kind) noexcept {
  switch (kind) {
    case SpecKind::kVariance: return "variance";
    case SpecKind::kTraining: return "training";
  }
  return "variance";
}

SpecKind spec_kind_from_name(const std::string& name) {
  if (name == "variance") return SpecKind::kVariance;
  if (name == "training") return SpecKind::kTraining;
  throw NotFound("request: unknown kind '" + name + "'");
}

JsonValue variance_options_to_json(const VarianceExperimentOptions& options) {
  JsonValue out = JsonValue::object();
  JsonValue counts = JsonValue::array();
  for (const std::size_t q : options.qubit_counts) {
    counts.push_back(JsonValue::integer(static_cast<std::int64_t>(q)));
  }
  out.set("qubit_counts", std::move(counts));
  out.set("circuits_per_point", options.circuits_per_point);
  out.set("layers", options.layers);
  out.set("cost", cost_kind_name(options.cost));
  out.set("seed", static_cast<std::int64_t>(options.seed));
  out.set("entangle", options.entangle);
  out.set("gradient_engine", options.gradient_engine);
  out.set("which_parameter",
          gradient_parameter_name(options.which_parameter));
  // entangler/topology are part of the options fingerprint, so they MUST
  // cross the wire: a worker blind to them would compute under the default
  // gate/topology while the cache files the result under the perturbed
  // fingerprint (the QD103 poisoning scenario qbarren audit checks for).
  out.set("entangler", entangler_gate_name(options.entangler));
  out.set("topology", entangler_topology_name(options.topology));
  out.set("keep_samples", options.keep_samples);
  return out;
}

VarianceExperimentOptions variance_options_from_json(const JsonValue& value) {
  check_keys(value,
             {"qubit_counts", "circuits_per_point", "layers", "cost", "seed",
              "entangle", "gradient_engine", "which_parameter", "entangler",
              "topology", "keep_samples"},
             "variance options");
  VarianceExperimentOptions options;
  if (value.contains("qubit_counts")) {
    const JsonValue& counts = value.at("qubit_counts");
    options.qubit_counts.clear();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      const std::int64_t q = counts.at(i).as_integer();
      if (q < 1) {
        throw InvalidArgument("request: qubit_counts entries must be >= 1");
      }
      options.qubit_counts.push_back(static_cast<std::size_t>(q));
    }
  }
  options.circuits_per_point =
      get_size(value, "circuits_per_point", options.circuits_per_point);
  options.layers = get_size(value, "layers", options.layers);
  options.cost =
      cost_kind_from_name(get_string(value, "cost", cost_kind_name(options.cost)));
  options.seed = get_u64(value, "seed", options.seed);
  options.entangle = get_bool(value, "entangle", options.entangle);
  options.gradient_engine =
      get_string(value, "gradient_engine", options.gradient_engine);
  options.which_parameter = gradient_parameter_from_name(get_string(
      value, "which_parameter",
      gradient_parameter_name(options.which_parameter)));
  options.entangler = entangler_gate_from_name(
      get_string(value, "entangler", entangler_gate_name(options.entangler)));
  options.topology = entangler_topology_from_name(get_string(
      value, "topology", entangler_topology_name(options.topology)));
  options.keep_samples = get_bool(value, "keep_samples", options.keep_samples);
  return options;
}

JsonValue training_options_to_json(const TrainingExperimentOptions& options) {
  JsonValue out = JsonValue::object();
  out.set("qubits", options.qubits);
  out.set("layers", options.layers);
  out.set("iterations", options.iterations);
  out.set("learning_rate", options.learning_rate);
  out.set("optimizer", options.optimizer);
  out.set("gradient_engine", options.gradient_engine);
  out.set("cost", cost_kind_name(options.cost));
  out.set("seed", static_cast<std::int64_t>(options.seed));
  out.set("non_finite_policy",
          non_finite_policy_name(options.non_finite_policy));
  if (std::isfinite(options.deadline_seconds)) {
    out.set("deadline_seconds", options.deadline_seconds);
  }
  return out;
}

TrainingExperimentOptions training_options_from_json(const JsonValue& value) {
  check_keys(value,
             {"qubits", "layers", "iterations", "learning_rate", "optimizer",
              "gradient_engine", "cost", "seed", "non_finite_policy",
              "deadline_seconds"},
             "training options");
  TrainingExperimentOptions options;
  options.qubits = get_size(value, "qubits", options.qubits);
  options.layers = get_size(value, "layers", options.layers);
  options.iterations = get_size(value, "iterations", options.iterations);
  options.learning_rate =
      get_double(value, "learning_rate", options.learning_rate);
  options.optimizer = get_string(value, "optimizer", options.optimizer);
  options.gradient_engine =
      get_string(value, "gradient_engine", options.gradient_engine);
  options.cost =
      cost_kind_from_name(get_string(value, "cost", cost_kind_name(options.cost)));
  options.seed = get_u64(value, "seed", options.seed);
  options.non_finite_policy = non_finite_policy_from_name(get_string(
      value, "non_finite_policy",
      non_finite_policy_name(options.non_finite_policy)));
  options.deadline_seconds =
      get_double(value, "deadline_seconds", options.deadline_seconds);
  return options;
}

RequestSpec request_from_json(const JsonValue& value) {
  check_keys(value, {"id", "kind", "options", "control"}, "request");
  RequestSpec spec;
  spec.id = get_string(value, "id", "");
  if (spec.id.empty()) {
    throw InvalidArgument("request: missing or empty 'id'");
  }
  spec.kind = spec_kind_from_name(get_string(value, "kind", ""));
  if (value.contains("options")) {
    switch (spec.kind) {
      case SpecKind::kVariance:
        spec.variance = variance_options_from_json(value.at("options"));
        break;
      case SpecKind::kTraining:
        spec.training = training_options_from_json(value.at("options"));
        break;
    }
  }
  if (value.contains("control")) {
    const JsonValue& control = value.at("control");
    check_keys(control,
               {"max_cell_failures", "max_cell_attempts", "deadline_seconds"},
               "control");
    spec.max_cell_failures =
        get_size(control, "max_cell_failures", spec.max_cell_failures);
    spec.max_cell_attempts =
        get_size(control, "max_cell_attempts", spec.max_cell_attempts);
    if (spec.max_cell_attempts == 0) {
      throw InvalidArgument("request: max_cell_attempts must be >= 1");
    }
    spec.deadline_seconds =
        get_double(control, "deadline_seconds", spec.deadline_seconds);
    if (!(spec.deadline_seconds > 0.0)) {
      throw InvalidArgument("request: deadline_seconds must be positive");
    }
  }
  return spec;
}

JsonValue to_json(const RequestSpec& spec) {
  JsonValue out = JsonValue::object();
  out.set("id", spec.id);
  out.set("kind", spec_kind_name(spec.kind));
  out.set("options", spec.kind == SpecKind::kVariance
                         ? variance_options_to_json(spec.variance)
                         : training_options_to_json(spec.training));
  JsonValue control = JsonValue::object();
  control.set("max_cell_failures", spec.max_cell_failures);
  control.set("max_cell_attempts", spec.max_cell_attempts);
  if (std::isfinite(spec.deadline_seconds)) {
    control.set("deadline_seconds", spec.deadline_seconds);
  }
  out.set("control", std::move(control));
  return out;
}

std::string spec_fingerprint(const RequestSpec& spec) {
  switch (spec.kind) {
    case SpecKind::kVariance: return options_fingerprint(spec.variance);
    case SpecKind::kTraining: return options_fingerprint(spec.training);
  }
  return options_fingerprint(spec.variance);
}

std::vector<std::string> paper_initializer_names() {
  std::vector<std::string> names;
  for (const auto& init : paper_initializers(FanMode::kLayerTensor)) {
    names.push_back(init->name());
  }
  return names;
}

std::vector<CellJob> enumerate_cells(const RequestSpec& spec) {
  const std::vector<std::string> inits = paper_initializer_names();
  std::vector<CellJob> cells;
  switch (spec.kind) {
    case SpecKind::kVariance:
      for (std::size_t qi = 0; qi < spec.variance.qubit_counts.size(); ++qi) {
        for (std::size_t t = 0; t < inits.size(); ++t) {
          cells.push_back(CellJob{
              "q=" + std::to_string(spec.variance.qubit_counts[qi]) +
                  "/init=" + inits[t],
              qi, t});
        }
      }
      break;
    case SpecKind::kTraining:
      for (std::size_t t = 0; t < inits.size(); ++t) {
        cells.push_back(CellJob{"init=" + inits[t], 0, t});
      }
      break;
  }
  return cells;
}

JsonValue to_json(const WorkerJob& job) {
  JsonValue out = JsonValue::object();
  out.set("job", static_cast<std::int64_t>(job.job_id));
  out.set("kind", spec_kind_name(job.kind));
  out.set("options", job.options);
  JsonValue cell = JsonValue::object();
  cell.set("key", job.cell.key);
  cell.set("qubit_index", job.cell.qubit_index);
  cell.set("initializer_index", job.cell.initializer_index);
  out.set("cell", std::move(cell));
  out.set("engine_attempt", job.engine_attempt);
  return out;
}

WorkerJob worker_job_from_json(const JsonValue& value) {
  WorkerJob job;
  job.job_id = static_cast<std::uint64_t>(value.at("job").as_integer());
  job.kind = spec_kind_from_name(value.at("kind").as_string());
  job.options = value.at("options");
  const JsonValue& cell = value.at("cell");
  job.cell.key = cell.at("key").as_string();
  job.cell.qubit_index =
      static_cast<std::size_t>(cell.at("qubit_index").as_integer());
  job.cell.initializer_index =
      static_cast<std::size_t>(cell.at("initializer_index").as_integer());
  job.engine_attempt =
      static_cast<std::size_t>(value.at("engine_attempt").as_integer());
  return job;
}

namespace {

const char* reply_type_name(WorkerReply::Type type) noexcept {
  switch (type) {
    case WorkerReply::Type::kStart: return "start";
    case WorkerReply::Type::kOk: return "ok";
    case WorkerReply::Type::kFail: return "fail";
  }
  return "start";
}

WorkerReply::Type reply_type_from_name(const std::string& name) {
  if (name == "start") return WorkerReply::Type::kStart;
  if (name == "ok") return WorkerReply::Type::kOk;
  if (name == "fail") return WorkerReply::Type::kFail;
  throw NotFound("worker reply: unknown type '" + name + "'");
}

}  // namespace

JsonValue to_json(const WorkerReply& reply) {
  JsonValue out = JsonValue::object();
  out.set("reply", reply_type_name(reply.type));
  out.set("job", static_cast<std::int64_t>(reply.job_id));
  out.set("cell", reply.cell_key);
  switch (reply.type) {
    case WorkerReply::Type::kStart:
      break;
    case WorkerReply::Type::kOk:
      out.set("payload", reply.payload);
      break;
    case WorkerReply::Type::kFail:
      out.set("error", reply.error);
      out.set("message", reply.message);
      break;
  }
  return out;
}

WorkerReply worker_reply_from_json(const JsonValue& value) {
  WorkerReply reply;
  reply.type = reply_type_from_name(value.at("reply").as_string());
  reply.job_id = static_cast<std::uint64_t>(value.at("job").as_integer());
  reply.cell_key = value.at("cell").as_string();
  switch (reply.type) {
    case WorkerReply::Type::kStart:
      break;
    case WorkerReply::Type::kOk:
      reply.payload = value.at("payload").as_string();
      break;
    case WorkerReply::Type::kFail:
      reply.error = value.at("error").as_string();
      reply.message = value.at("message").as_string();
      break;
  }
  return reply;
}

std::string ndjson_line(const JsonValue& value) { return value.dump(0) + "\n"; }

}  // namespace qbarren::serve
