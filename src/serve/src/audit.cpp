#include "qbarren/serve/audit.hpp"

#include <utility>

#include "qbarren/serve/service.hpp"

namespace qbarren::serve {

namespace {

std::string wire_encoding(SpecKind kind,
                          const VarianceExperimentOptions& variance,
                          const TrainingExperimentOptions& training) {
  switch (kind) {
    case SpecKind::kVariance: return variance_options_to_json(variance).dump(0);
    case SpecKind::kTraining: return training_options_to_json(training).dump(0);
  }
  return variance_options_to_json(variance).dump(0);
}

/// Fingerprint of the options after a full wire round-trip (encode →
/// parse → decode) — what a worker process would actually compute under.
std::string roundtrip_fingerprint(SpecKind kind,
                                  const VarianceExperimentOptions& variance,
                                  const TrainingExperimentOptions& training) {
  switch (kind) {
    case SpecKind::kVariance:
      return options_fingerprint(variance_options_from_json(
          parse_json(variance_options_to_json(variance).dump(0))));
    case SpecKind::kTraining:
      return options_fingerprint(training_options_from_json(
          parse_json(training_options_to_json(training).dump(0))));
  }
  return options_fingerprint(variance);
}

}  // namespace

StreamGraph request_stream_graph(const RequestSpec& spec) {
  const std::string label = "request:" + spec.id;
  switch (spec.kind) {
    case SpecKind::kVariance:
      return variance_stream_graph(spec.variance, label);
    case SpecKind::kTraining:
      return training_stream_graph(spec.training, label);
  }
  return variance_stream_graph(spec.variance, label);
}

std::vector<FingerprintProbe> request_fingerprint_probes(
    const RequestSpec& spec) {
  std::vector<FingerprintProbe> probes;
  const std::string wire_base =
      wire_encoding(spec.kind, spec.variance, spec.training);
  switch (spec.kind) {
    case SpecKind::kVariance:
      probes = variance_fingerprint_probes(spec.variance);
      for (FingerprintProbe& probe : probes) {
        for (const VariancePerturbation& p :
             variance_perturbations(spec.variance)) {
          if (p.field != probe.field) continue;
          probe.wire_base = wire_base;
          probe.wire_perturbed =
              wire_encoding(spec.kind, p.options, spec.training);
          probe.wire_roundtrip =
              roundtrip_fingerprint(spec.kind, p.options, spec.training);
          break;
        }
      }
      break;
    case SpecKind::kTraining:
      probes = training_fingerprint_probes(spec.training);
      for (FingerprintProbe& probe : probes) {
        for (const TrainingPerturbation& p :
             training_perturbations(spec.training)) {
          if (p.field != probe.field) continue;
          probe.wire_base = wire_base;
          probe.wire_perturbed =
              wire_encoding(spec.kind, spec.variance, p.options);
          probe.wire_roundtrip =
              roundtrip_fingerprint(spec.kind, spec.variance, p.options);
          break;
        }
      }
      break;
  }
  return probes;
}

Diagnostics audit_request(const RequestSpec& spec, const LintOptions& lint) {
  Diagnostics out = audit_stream_graph(request_stream_graph(spec), lint);
  Diagnostics probes = audit_fingerprint_probes(
      request_fingerprint_probes(spec), "request:" + spec.id, lint);
  out.insert(out.end(), std::make_move_iterator(probes.begin()),
             std::make_move_iterator(probes.end()));
  return out;
}

Diagnostics audit_requests(const std::vector<RequestSpec>& specs,
                           const LintOptions& lint) {
  // QD100/QD103 per graph plus QD101 across requests comes from the graph
  // collection; the per-request fingerprint probes are appended after.
  std::vector<StreamGraph> graphs;
  graphs.reserve(specs.size());
  for (const RequestSpec& spec : specs) {
    graphs.push_back(request_stream_graph(spec));
  }
  Diagnostics out = audit_stream_graphs(graphs, lint);
  for (const RequestSpec& spec : specs) {
    Diagnostics probes = audit_fingerprint_probes(
        request_fingerprint_probes(spec), "request:" + spec.id, lint);
    out.insert(out.end(), std::make_move_iterator(probes.begin()),
               std::make_move_iterator(probes.end()));
  }
  return out;
}

StoreAuditOptions store_expectations(const RequestSpec& spec,
                                     bool cache_store) {
  StoreAuditOptions expectations;
  for (const CellJob& cell : enumerate_cells(spec)) {
    expectations.expected_cells.push_back(cell.key);
  }
  if (cache_store) {
    expectations.expected_fingerprint = ExperimentService::kCacheFingerprint;
    expectations.cell_namespace = spec_fingerprint(spec) + "|";
  } else {
    expectations.expected_fingerprint = spec_fingerprint(spec);
  }
  return expectations;
}

}  // namespace qbarren::serve
