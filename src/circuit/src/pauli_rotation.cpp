#include "qbarren/circuit/pauli_rotation.hpp"

#include <cmath>

namespace qbarren {

std::size_t add_pauli_rotation(Circuit& circuit, const std::string& paulis) {
  QBARREN_REQUIRE(paulis.size() == circuit.num_qubits(),
                  "add_pauli_rotation: string width mismatch");
  std::vector<std::size_t> support;
  for (std::size_t q = 0; q < paulis.size(); ++q) {
    const char ch = paulis[q];
    QBARREN_REQUIRE(ch == 'I' || ch == 'X' || ch == 'Y' || ch == 'Z',
                    "add_pauli_rotation: characters must be I/X/Y/Z");
    if (ch != 'I') {
      support.push_back(q);
    }
  }
  QBARREN_REQUIRE(!support.empty(),
                  "add_pauli_rotation: identity string has no rotation");

  // Basis change into Z on every support qubit. For X: H Z H = X. For Y:
  // RX(pi/2) Z RX(-pi/2) = Y, so conjugating the Z-rotation by
  // RX(-pi/2) ... RX(pi/2) implements the Y-rotation.
  auto enter_basis = [&](std::size_t q) {
    if (paulis[q] == 'X') {
      circuit.add_hadamard(q);
    } else if (paulis[q] == 'Y') {
      circuit.add_fixed_rotation(gates::Axis::kX, q, M_PI / 2.0);
    }
  };
  auto exit_basis = [&](std::size_t q) {
    if (paulis[q] == 'X') {
      circuit.add_hadamard(q);
    } else if (paulis[q] == 'Y') {
      circuit.add_fixed_rotation(gates::Axis::kX, q, -M_PI / 2.0);
    }
  };

  for (const std::size_t q : support) {
    enter_basis(q);
  }
  // Parity chain onto the last support qubit.
  for (std::size_t i = 0; i + 1 < support.size(); ++i) {
    circuit.add_cnot(support[i], support[i + 1]);
  }
  const std::size_t param =
      circuit.add_rotation(gates::Axis::kZ, support.back());
  for (std::size_t i = support.size() - 1; i-- > 0;) {
    circuit.add_cnot(support[i], support[i + 1]);
  }
  for (std::size_t i = support.size(); i-- > 0;) {
    exit_basis(support[i]);
  }
  return param;
}

}  // namespace qbarren
