#include "qbarren/circuit/ansatz.hpp"

namespace qbarren {

void add_cz_ladder(Circuit& circuit) {
  for (std::size_t q = 0; q + 1 < circuit.num_qubits(); ++q) {
    circuit.add_cz(q, q + 1);
  }
}

void add_entangling_layer(Circuit& circuit, EntanglerGate gate,
                          EntanglerTopology topology) {
  const std::size_t n = circuit.num_qubits();
  auto add_pair = [&](std::size_t a, std::size_t b) {
    if (gate == EntanglerGate::kCz) {
      circuit.add_cz(a, b);
    } else {
      circuit.add_cnot(a, b);
    }
  };
  switch (topology) {
    case EntanglerTopology::kLinear:
      for (std::size_t q = 0; q + 1 < n; ++q) {
        add_pair(q, q + 1);
      }
      return;
    case EntanglerTopology::kRing:
      for (std::size_t q = 0; q + 1 < n; ++q) {
        add_pair(q, q + 1);
      }
      if (n > 2) {
        add_pair(n - 1, 0);
      }
      return;
    case EntanglerTopology::kAllToAll:
      for (std::size_t a = 0; a < n; ++a) {
        for (std::size_t b = a + 1; b < n; ++b) {
          add_pair(a, b);
        }
      }
      return;
  }
  throw InvalidArgument("add_entangling_layer: unknown topology");
}

Circuit variance_ansatz(std::size_t num_qubits, Rng& rng,
                        const VarianceAnsatzOptions& options) {
  QBARREN_REQUIRE(options.layers >= 1, "variance_ansatz: need >= 1 layer");
  Circuit c(num_qubits);
  constexpr gates::Axis kAxes[3] = {gates::Axis::kX, gates::Axis::kY,
                                    gates::Axis::kZ};
  for (std::size_t layer = 0; layer < options.layers; ++layer) {
    for (std::size_t q = 0; q < num_qubits; ++q) {
      c.add_rotation(kAxes[rng.index(3)], q);
    }
    if (options.entangle) {
      add_entangling_layer(c, options.entangler, options.topology);
    }
  }
  c.set_layer_shape(LayerShape{options.layers, num_qubits});
  return c;
}

Circuit training_ansatz(std::size_t num_qubits,
                        const TrainingAnsatzOptions& options) {
  QBARREN_REQUIRE(options.layers >= 1, "training_ansatz: need >= 1 layer");
  Circuit c(num_qubits);
  for (std::size_t layer = 0; layer < options.layers; ++layer) {
    // Eq 3 writes RY(theta) RX(theta) per qubit: RX acts on the state
    // first, then RY.
    for (std::size_t q = 0; q < num_qubits; ++q) {
      c.add_rotation(gates::Axis::kX, q);
      c.add_rotation(gates::Axis::kY, q);
    }
    if (options.entangle) {
      add_entangling_layer(c, options.entangler, options.topology);
    }
  }
  c.set_layer_shape(LayerShape{options.layers, 2 * num_qubits});
  return c;
}

Circuit motivational_ansatz(std::size_t num_qubits, std::size_t layers) {
  TrainingAnsatzOptions options;
  options.layers = layers;
  return training_ansatz(num_qubits, options);
}

Circuit hardware_efficient_ansatz(std::size_t num_qubits, std::size_t layers,
                                  const std::vector<gates::Axis>& axes_per_qubit,
                                  bool entangle) {
  QBARREN_REQUIRE(layers >= 1, "hardware_efficient_ansatz: need >= 1 layer");
  QBARREN_REQUIRE(!axes_per_qubit.empty(),
                  "hardware_efficient_ansatz: need at least one rotation per "
                  "qubit per layer");
  Circuit c(num_qubits);
  for (std::size_t layer = 0; layer < layers; ++layer) {
    for (std::size_t q = 0; q < num_qubits; ++q) {
      for (gates::Axis axis : axes_per_qubit) {
        c.add_rotation(axis, q);
      }
    }
    if (entangle) {
      add_cz_ladder(c);
    }
  }
  c.set_layer_shape(LayerShape{layers, num_qubits * axes_per_qubit.size()});
  return c;
}

Circuit controlled_rotation_ansatz(std::size_t num_qubits,
                                   std::size_t layers) {
  QBARREN_REQUIRE(layers >= 1, "controlled_rotation_ansatz: need >= 1 layer");
  QBARREN_REQUIRE(num_qubits >= 2,
                  "controlled_rotation_ansatz: need >= 2 qubits for the "
                  "CRZ ladder");
  Circuit c(num_qubits);
  for (std::size_t layer = 0; layer < layers; ++layer) {
    for (std::size_t q = 0; q < num_qubits; ++q) {
      (void)c.add_rotation(gates::Axis::kY, q);
    }
    for (std::size_t q = 0; q + 1 < num_qubits; ++q) {
      (void)c.add_controlled_rotation(gates::Axis::kZ, q, q + 1);
    }
  }
  c.set_layer_shape(LayerShape{layers, 2 * num_qubits - 1});
  return c;
}

MirrorBlockAnsatz mirror_block_ansatz(std::size_t num_qubits,
                                      std::size_t half_layers,
                                      std::size_t blocks, Rng& rng) {
  QBARREN_REQUIRE(half_layers >= 1, "mirror_block_ansatz: need >= 1 layer");
  QBARREN_REQUIRE(blocks >= 1, "mirror_block_ansatz: need >= 1 block");

  MirrorBlockAnsatz out{Circuit(num_qubits), {}};
  Circuit& c = out.circuit;
  constexpr gates::Axis kAxes[3] = {gates::Axis::kX, gates::Axis::kY,
                                    gates::Axis::kZ};

  for (std::size_t b = 0; b < blocks; ++b) {
    // Forward half: record (layer, qubit) -> (axis, param index).
    std::vector<std::vector<std::pair<gates::Axis, std::size_t>>> layers(
        half_layers);
    for (std::size_t layer = 0; layer < half_layers; ++layer) {
      for (std::size_t q = 0; q < num_qubits; ++q) {
        const gates::Axis axis = kAxes[rng.index(3)];
        layers[layer].emplace_back(axis, c.add_rotation(axis, q));
      }
      add_cz_ladder(c);
    }
    // Mirrored half: layers reversed; within each layer first undo the
    // ladder (self-inverse — all CZ are diagonal and mutually commuting),
    // then the rotations in reverse qubit order.
    for (std::size_t layer = half_layers; layer-- > 0;) {
      add_cz_ladder(c);
      for (std::size_t q = num_qubits; q-- > 0;) {
        const auto& [axis, forward_param] = layers[layer][q];
        const std::size_t mirror_param = c.add_rotation(axis, q);
        out.mirror_pairs.emplace_back(forward_param, mirror_param);
      }
    }
  }
  c.set_layer_shape(LayerShape{2 * half_layers * blocks, num_qubits});
  return out;
}

std::vector<double> initialize_identity_blocks(const MirrorBlockAnsatz& ansatz,
                                               Rng& rng, double lo,
                                               double hi) {
  QBARREN_REQUIRE(lo < hi, "initialize_identity_blocks: lo must be < hi");
  QBARREN_REQUIRE(
      ansatz.mirror_pairs.size() * 2 == ansatz.circuit.num_parameters(),
      "initialize_identity_blocks: pairing does not cover the parameters");
  std::vector<double> params(ansatz.circuit.num_parameters(), 0.0);
  for (const auto& [forward, mirror] : ansatz.mirror_pairs) {
    const double theta = rng.uniform(lo, hi);
    params[forward] = theta;
    params[mirror] = -theta;
  }
  return params;
}

}  // namespace qbarren
