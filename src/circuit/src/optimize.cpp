#include "qbarren/circuit/optimize.hpp"

#include <cmath>
#include <optional>

namespace qbarren {

namespace {

bool touches_qubit(const Operation& op, std::size_t q) {
  if (op.qubit0 == q) return true;
  return is_two_qubit(op.kind) && op.qubit1 == q;
}

bool ops_share_qubit(const Operation& a, const Operation& b) {
  if (touches_qubit(a, b.qubit0)) return true;
  return is_two_qubit(b.kind) && touches_qubit(a, b.qubit1);
}

bool is_self_inverse_single(OpKind kind) {
  switch (kind) {
    case OpKind::kHadamard:
    case OpKind::kPauliX:
    case OpKind::kPauliY:
    case OpKind::kPauliZ:
      return true;
    default:
      return false;
  }
}

bool same_two_qubit_gate(const Operation& a, const Operation& b) {
  if (a.kind != b.kind) return false;
  if (a.kind == OpKind::kCz || a.kind == OpKind::kSwap) {
    // Symmetric gates: qubit order irrelevant.
    return (a.qubit0 == b.qubit0 && a.qubit1 == b.qubit1) ||
           (a.qubit0 == b.qubit1 && a.qubit1 == b.qubit0);
  }
  if (a.kind == OpKind::kCnot) {
    return a.qubit0 == b.qubit0 && a.qubit1 == b.qubit1;
  }
  return false;
}

// Finds the next op after index i (in the working list) acting on any
// qubit of ops[i]; returns nullopt when something unrelated intervenes...
// actually returns the index of the first op touching a shared qubit, or
// nullopt if none exists.
std::optional<std::size_t> next_on_same_qubits(
    const std::vector<Operation>& ops, std::size_t i) {
  for (std::size_t j = i + 1; j < ops.size(); ++j) {
    if (ops_share_qubit(ops[i], ops[j])) {
      return j;
    }
  }
  return std::nullopt;
}

}  // namespace

Circuit optimize_circuit(const Circuit& circuit, OptimizeStats* stats) {
  OptimizeStats local;
  std::vector<Operation> ops(circuit.operations().begin(),
                             circuit.operations().end());

  bool changed = true;
  while (changed) {
    changed = false;

    // Pass 1: drop exact zero-angle fixed rotations.
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (ops[i].kind == OpKind::kFixedRotation &&
          ops[i].fixed_angle == 0.0) {
        ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(i));
        ++local.removed_operations;
        changed = true;
        break;
      }
    }
    if (changed) continue;

    // Pass 2: fuse / cancel adjacent pairs.
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const auto j_opt = next_on_same_qubits(ops, i);
      if (!j_opt.has_value()) continue;
      const std::size_t j = *j_opt;
      Operation& a = ops[i];
      Operation& b = ops[j];

      // Fuse same-axis fixed rotations on the same qubit.
      if (a.kind == OpKind::kFixedRotation &&
          b.kind == OpKind::kFixedRotation && a.axis == b.axis &&
          a.qubit0 == b.qubit0) {
        a.fixed_angle += b.fixed_angle;
        ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(j));
        ++local.fused_rotations;
        changed = true;
        break;
      }

      // Cancel identical self-inverse single-qubit pairs.
      if (is_self_inverse_single(a.kind) && a.kind == b.kind &&
          a.qubit0 == b.qubit0) {
        ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(j));
        ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(i));
        local.cancelled_pairs += 1;
        local.removed_operations += 2;
        changed = true;
        break;
      }

      // Cancel identical two-qubit pairs (CZ/SWAP symmetric, CNOT exact).
      if (is_two_qubit(a.kind) && same_two_qubit_gate(a, b)) {
        ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(j));
        ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(i));
        local.cancelled_pairs += 1;
        local.removed_operations += 2;
        changed = true;
        break;
      }
    }
  }

  // Rebuild a circuit with identical parameter indexing. Circuit's builder
  // assigns parameter indices sequentially, so re-adding rotations in
  // order preserves them iff the relative order of parameterized ops is
  // unchanged — the passes above never reorder or remove trainable
  // rotations, only fixed gates.
  Circuit out(circuit.num_qubits());
  for (const Operation& op : ops) {
    switch (op.kind) {
      case OpKind::kRotation:
        (void)out.add_rotation(op.axis, op.qubit0);
        break;
      case OpKind::kControlledRotation:
        (void)out.add_controlled_rotation(op.axis, op.qubit0, op.qubit1);
        break;
      case OpKind::kFixedRotation:
        out.add_fixed_rotation(op.axis, op.qubit0, op.fixed_angle);
        break;
      case OpKind::kHadamard:
        out.add_hadamard(op.qubit0);
        break;
      case OpKind::kPauliX:
        out.add_pauli_x(op.qubit0);
        break;
      case OpKind::kPauliY:
        out.add_pauli_y(op.qubit0);
        break;
      case OpKind::kPauliZ:
        out.add_pauli_z(op.qubit0);
        break;
      case OpKind::kSGate:
        out.add_s(op.qubit0);
        break;
      case OpKind::kTGate:
        out.add_t(op.qubit0);
        break;
      case OpKind::kCz:
        out.add_cz(op.qubit0, op.qubit1);
        break;
      case OpKind::kCnot:
        out.add_cnot(op.qubit0, op.qubit1);
        break;
      case OpKind::kSwap:
        out.add_swap(op.qubit0, op.qubit1);
        break;
      case OpKind::kCustomSingle: {
        // Opaque matrices: copied through untouched (no rewrite applies).
        const CustomGate& gate = circuit.custom_gates()[op.custom_index];
        out.add_custom_gate(gate.name, gate.matrix, op.qubit0);
        break;
      }
      case OpKind::kCustomTwo: {
        const CustomGate& gate = circuit.custom_gates()[op.custom_index];
        out.add_custom_two_qubit_gate(gate.name, gate.matrix, op.qubit0,
                                      op.qubit1);
        break;
      }
    }
  }
  QBARREN_REQUIRE(out.num_parameters() == circuit.num_parameters(),
                  "optimize_circuit: internal error — parameter count "
                  "changed");
  if (circuit.layer_shape().has_value()) {
    // Layer metadata may no longer tile the op list, but the parameter
    // tensor shape is untouched; keep it.
    out.set_layer_shape(*circuit.layer_shape());
  }
  if (stats != nullptr) {
    *stats = local;
  }
  return out;
}

}  // namespace qbarren
