#include "qbarren/circuit/qasm_parser.hpp"

#include <cctype>
#include <cmath>
#include <optional>
#include <sstream>

namespace qbarren {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw InvalidArgument("parse_qasm: line " + std::to_string(line) + ": " +
                        message);
}

std::string trim(const std::string& s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

// Evaluates the restricted angle grammar: term (('*'|'/') term)*, where a
// term is `pi`, a decimal literal, or a unary-minus of either.
double parse_angle(const std::string& expr, std::size_t line) {
  const std::string text = trim(expr);
  if (text.empty()) {
    fail(line, "empty angle expression");
  }
  std::size_t pos = 0;

  auto parse_term = [&]() -> double {
    double sign = 1.0;
    while (pos < text.size() && (text[pos] == '-' || text[pos] == '+')) {
      if (text[pos] == '-') sign = -sign;
      ++pos;
    }
    if (text.compare(pos, 2, "pi") == 0) {
      pos += 2;
      return sign * M_PI;
    }
    const std::size_t start = pos;
    while (pos < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '.' || text[pos] == 'e' || text[pos] == 'E' ||
            ((text[pos] == '-' || text[pos] == '+') && pos > start &&
             (text[pos - 1] == 'e' || text[pos - 1] == 'E')))) {
      ++pos;
    }
    if (pos == start) {
      fail(line, "cannot parse angle term in '" + text + "'");
    }
    try {
      return sign * std::stod(text.substr(start, pos - start));
    } catch (const std::exception&) {
      fail(line, "bad numeric literal in '" + text + "'");
    }
  };

  double value = parse_term();
  while (pos < text.size()) {
    const char op = text[pos];
    if (op != '*' && op != '/') {
      fail(line, "unexpected character '" + std::string(1, op) +
                     "' in angle '" + text + "'");
    }
    ++pos;
    const double rhs = parse_term();
    if (op == '*') {
      value *= rhs;
    } else {
      if (rhs == 0.0) {
        fail(line, "division by zero in angle");
      }
      value /= rhs;
    }
  }
  return value;
}

// Parses "<reg>[<idx>]" and returns idx; the register name is checked
// against the declared one.
std::size_t parse_qubit_ref(const std::string& token,
                            const std::string& reg_name, std::size_t width,
                            std::size_t line) {
  const std::string t = trim(token);
  const std::size_t open = t.find('[');
  const std::size_t close = t.find(']');
  if (open == std::string::npos || close == std::string::npos ||
      close < open) {
    fail(line, "expected qubit reference like q[0], got '" + t + "'");
  }
  if (trim(t.substr(0, open)) != reg_name) {
    fail(line, "unknown register '" + t.substr(0, open) + "'");
  }
  std::size_t idx = 0;
  try {
    idx = static_cast<std::size_t>(std::stoul(t.substr(open + 1,
                                                       close - open - 1)));
  } catch (const std::exception&) {
    fail(line, "bad qubit index in '" + t + "'");
  }
  if (idx >= width) {
    fail(line, "qubit index " + std::to_string(idx) +
                   " exceeds register width " + std::to_string(width));
  }
  return idx;
}

}  // namespace

ParsedQasm parse_qasm(const std::string& source) {
  std::istringstream in(source);
  std::string raw_line;
  std::size_t line_number = 0;

  std::optional<std::string> reg_name;
  std::size_t width = 0;
  std::optional<Circuit> circuit;
  std::vector<double> parameters;

  bool saw_version = false;

  while (std::getline(in, raw_line)) {
    ++line_number;
    // Strip comments and whitespace; a line can carry several statements.
    const std::size_t comment = raw_line.find("//");
    if (comment != std::string::npos) {
      raw_line = raw_line.substr(0, comment);
    }
    std::stringstream statements(raw_line);
    std::string stmt;
    while (std::getline(statements, stmt, ';')) {
      stmt = trim(stmt);
      if (stmt.empty()) continue;

      if (stmt.rfind("OPENQASM", 0) == 0) {
        saw_version = true;
        continue;
      }
      if (stmt.rfind("include", 0) == 0) {
        continue;
      }
      if (stmt.rfind("creg", 0) == 0) {
        continue;  // classical registers are irrelevant to simulation
      }
      if (stmt.rfind("qreg", 0) == 0) {
        if (reg_name.has_value()) {
          fail(line_number, "multiple qreg declarations are not supported");
        }
        const std::string decl = trim(stmt.substr(4));
        const std::size_t open = decl.find('[');
        const std::size_t close = decl.find(']');
        if (open == std::string::npos || close == std::string::npos) {
          fail(line_number, "malformed qreg declaration '" + decl + "'");
        }
        reg_name = trim(decl.substr(0, open));
        try {
          width = static_cast<std::size_t>(
              std::stoul(decl.substr(open + 1, close - open - 1)));
        } catch (const std::exception&) {
          fail(line_number, "bad register width in '" + decl + "'");
        }
        if (width == 0) {
          fail(line_number, "qreg width must be positive");
        }
        circuit.emplace(width);
        continue;
      }

      if (!circuit.has_value()) {
        fail(line_number, "gate statement before qreg declaration");
      }

      // Gate name = leading identifier.
      std::size_t name_end = 0;
      while (name_end < stmt.size() &&
             (std::isalnum(static_cast<unsigned char>(stmt[name_end])))) {
        ++name_end;
      }
      const std::string gate = stmt.substr(0, name_end);
      std::string rest = trim(stmt.substr(name_end));

      if (gate == "rx" || gate == "ry" || gate == "rz") {
        if (rest.empty() || rest.front() != '(') {
          fail(line_number, gate + " requires an angle argument");
        }
        const std::size_t close = rest.find(')');
        if (close == std::string::npos) {
          fail(line_number, "missing ')' in " + gate + " argument");
        }
        const double angle = parse_angle(rest.substr(1, close - 1),
                                         line_number);
        const std::size_t qubit = parse_qubit_ref(
            rest.substr(close + 1), *reg_name, width, line_number);
        circuit->add_rotation(gates::axis_from_name(gate), qubit);
        parameters.push_back(angle);
        continue;
      }

      if (gate == "h" || gate == "x" || gate == "y" || gate == "z" ||
          gate == "s" || gate == "t") {
        const std::size_t qubit =
            parse_qubit_ref(rest, *reg_name, width, line_number);
        if (gate == "h") circuit->add_hadamard(qubit);
        if (gate == "x") circuit->add_pauli_x(qubit);
        if (gate == "y") circuit->add_pauli_y(qubit);
        if (gate == "z") circuit->add_pauli_z(qubit);
        if (gate == "s") circuit->add_s(qubit);
        if (gate == "t") circuit->add_t(qubit);
        continue;
      }

      if (gate == "crz") {
        if (rest.empty() || rest.front() != '(') {
          fail(line_number, "crz requires an angle argument");
        }
        const std::size_t close = rest.find(')');
        if (close == std::string::npos) {
          fail(line_number, "missing ')' in crz argument");
        }
        const double angle =
            parse_angle(rest.substr(1, close - 1), line_number);
        const std::string operands = rest.substr(close + 1);
        const std::size_t comma = operands.find(',');
        if (comma == std::string::npos) {
          fail(line_number, "crz requires two qubit operands");
        }
        const std::size_t control = parse_qubit_ref(
            operands.substr(0, comma), *reg_name, width, line_number);
        const std::size_t target = parse_qubit_ref(
            operands.substr(comma + 1), *reg_name, width, line_number);
        circuit->add_controlled_rotation(gates::Axis::kZ, control, target);
        parameters.push_back(angle);
        continue;
      }

      if (gate == "cz" || gate == "cx" || gate == "swap") {
        const std::size_t comma = rest.find(',');
        if (comma == std::string::npos) {
          fail(line_number, gate + " requires two qubit operands");
        }
        const std::size_t a = parse_qubit_ref(rest.substr(0, comma),
                                              *reg_name, width, line_number);
        const std::size_t b = parse_qubit_ref(rest.substr(comma + 1),
                                              *reg_name, width, line_number);
        if (gate == "cz") circuit->add_cz(a, b);
        if (gate == "cx") circuit->add_cnot(a, b);
        if (gate == "swap") circuit->add_swap(a, b);
        continue;
      }

      fail(line_number, "unsupported statement '" + stmt + "'");
    }
  }

  if (!saw_version) {
    throw InvalidArgument("parse_qasm: missing OPENQASM version header");
  }
  if (!circuit.has_value()) {
    throw InvalidArgument("parse_qasm: no qreg declaration found");
  }
  return ParsedQasm{std::move(*circuit), std::move(parameters)};
}

}  // namespace qbarren
