#include "qbarren/circuit/circuit.hpp"

#include <cmath>

namespace qbarren {

bool is_two_qubit(OpKind kind) noexcept {
  switch (kind) {
    case OpKind::kCz:
    case OpKind::kCnot:
    case OpKind::kSwap:
    case OpKind::kControlledRotation:
    case OpKind::kCustomTwo:
      return true;
    default:
      return false;
  }
}

bool is_parameterized(OpKind kind) noexcept {
  return kind == OpKind::kRotation || kind == OpKind::kControlledRotation;
}

Circuit::Circuit(std::size_t num_qubits) : num_qubits_(num_qubits) {
  QBARREN_REQUIRE(num_qubits >= 1, "Circuit: need at least one qubit");
}

void Circuit::check_qubit(std::size_t q) const {
  QBARREN_REQUIRE(q < num_qubits_, "Circuit: qubit index out of range");
}

void Circuit::push_op(const Operation& op) {
  // Structural mutation: any previously compiled plan no longer matches.
  invalidate_execution_plan();
  ops_.push_back(op);
}

std::size_t Circuit::two_qubit_gate_count() const noexcept {
  std::size_t n = 0;
  for (const Operation& op : ops_) {
    if (is_two_qubit(op.kind)) ++n;
  }
  return n;
}

std::size_t Circuit::depth() const {
  // Greedy ASAP scheduling: each op lands one layer after the latest busy
  // layer among its qubits.
  std::vector<std::size_t> busy_until(num_qubits_, 0);
  std::size_t depth = 0;
  for (const Operation& op : ops_) {
    std::size_t layer = busy_until[op.qubit0] + 1;
    if (is_two_qubit(op.kind)) {
      layer = std::max(layer, busy_until[op.qubit1] + 1);
    }
    busy_until[op.qubit0] = layer;
    if (is_two_qubit(op.kind)) {
      busy_until[op.qubit1] = layer;
    }
    depth = std::max(depth, layer);
  }
  return depth;
}

const Operation& Circuit::operation_for_parameter(
    std::size_t param_index) const {
  QBARREN_REQUIRE(param_index < num_params_,
                  "Circuit::operation_for_parameter: index out of range");
  if (const auto plan = plan_slot_.get()) {
    // Compiled param->op binding table: O(1) instead of the linear scan.
    const std::size_t op_index = plan->source_op_for_parameter(param_index);
    if (op_index != ExecutionPlan::kNoOperation && op_index < ops_.size()) {
      return ops_[op_index];
    }
  } else {
    for (const Operation& op : ops_) {
      if (is_parameterized(op.kind) && op.param_index == param_index) {
        return op;
      }
    }
  }
  throw NotFound(
      "Circuit::operation_for_parameter: no operation consumes parameter " +
      std::to_string(param_index));
}

void Circuit::set_layer_shape(LayerShape shape) {
  QBARREN_REQUIRE(shape.layers > 0 && shape.params_per_layer > 0,
                  "Circuit::set_layer_shape: dimensions must be positive");
  layer_shape_ = shape;
}

std::size_t Circuit::add_rotation(gates::Axis axis, std::size_t qubit) {
  check_qubit(qubit);
  Operation op;
  op.kind = OpKind::kRotation;
  op.axis = axis;
  op.qubit0 = qubit;
  op.param_index = num_params_++;
  push_op(op);
  return op.param_index;
}

std::size_t Circuit::add_controlled_rotation(gates::Axis axis,
                                             std::size_t control,
                                             std::size_t target) {
  check_qubit(control);
  check_qubit(target);
  QBARREN_REQUIRE(control != target,
                  "Circuit::add_controlled_rotation: qubits must differ");
  Operation op;
  op.kind = OpKind::kControlledRotation;
  op.axis = axis;
  op.qubit0 = control;
  op.qubit1 = target;
  op.param_index = num_params_++;
  push_op(op);
  return op.param_index;
}

void Circuit::add_fixed_rotation(gates::Axis axis, std::size_t qubit,
                                 double angle) {
  check_qubit(qubit);
  Operation op;
  op.kind = OpKind::kFixedRotation;
  op.axis = axis;
  op.qubit0 = qubit;
  op.fixed_angle = angle;
  push_op(op);
}

namespace {
Operation single(OpKind kind, std::size_t qubit) {
  Operation op;
  op.kind = kind;
  op.qubit0 = qubit;
  return op;
}
}  // namespace

void Circuit::add_hadamard(std::size_t qubit) {
  check_qubit(qubit);
  push_op(single(OpKind::kHadamard, qubit));
}
void Circuit::add_pauli_x(std::size_t qubit) {
  check_qubit(qubit);
  push_op(single(OpKind::kPauliX, qubit));
}
void Circuit::add_pauli_y(std::size_t qubit) {
  check_qubit(qubit);
  push_op(single(OpKind::kPauliY, qubit));
}
void Circuit::add_pauli_z(std::size_t qubit) {
  check_qubit(qubit);
  push_op(single(OpKind::kPauliZ, qubit));
}
void Circuit::add_s(std::size_t qubit) {
  check_qubit(qubit);
  push_op(single(OpKind::kSGate, qubit));
}
void Circuit::add_t(std::size_t qubit) {
  check_qubit(qubit);
  push_op(single(OpKind::kTGate, qubit));
}

void Circuit::add_cz(std::size_t a, std::size_t b) {
  check_qubit(a);
  check_qubit(b);
  QBARREN_REQUIRE(a != b, "Circuit::add_cz: qubits must differ");
  Operation op;
  op.kind = OpKind::kCz;
  op.qubit0 = a;
  op.qubit1 = b;
  push_op(op);
}

void Circuit::add_cnot(std::size_t control, std::size_t target) {
  check_qubit(control);
  check_qubit(target);
  QBARREN_REQUIRE(control != target, "Circuit::add_cnot: qubits must differ");
  Operation op;
  op.kind = OpKind::kCnot;
  op.qubit0 = control;
  op.qubit1 = target;
  push_op(op);
}

void Circuit::add_swap(std::size_t a, std::size_t b) {
  check_qubit(a);
  check_qubit(b);
  QBARREN_REQUIRE(a != b, "Circuit::add_swap: qubits must differ");
  Operation op;
  op.kind = OpKind::kSwap;
  op.qubit0 = a;
  op.qubit1 = b;
  push_op(op);
}

void Circuit::add_custom_gate(std::string name, ComplexMatrix matrix,
                              std::size_t qubit) {
  check_qubit(qubit);
  Operation op;
  op.kind = OpKind::kCustomSingle;
  op.qubit0 = qubit;
  op.custom_index = custom_gates_.size();
  custom_gates_.push_back(CustomGate{std::move(name), std::move(matrix)});
  push_op(op);
}

void Circuit::add_custom_two_qubit_gate(std::string name,
                                        ComplexMatrix matrix,
                                        std::size_t q_low,
                                        std::size_t q_high) {
  check_qubit(q_low);
  check_qubit(q_high);
  QBARREN_REQUIRE(q_low < q_high,
                  "Circuit::add_custom_two_qubit_gate: q_low must be less "
                  "than q_high (matrix bit 0 = q_low)");
  Operation op;
  op.kind = OpKind::kCustomTwo;
  op.qubit0 = q_low;
  op.qubit1 = q_high;
  op.custom_index = custom_gates_.size();
  custom_gates_.push_back(CustomGate{std::move(name), std::move(matrix)});
  push_op(op);
}

const CustomGate& Circuit::custom_gate(const Operation& op) const {
  QBARREN_REQUIRE(op.kind == OpKind::kCustomSingle ||
                      op.kind == OpKind::kCustomTwo,
                  "Circuit::custom_gate: operation is not a custom gate");
  QBARREN_REQUIRE(op.custom_index < custom_gates_.size(),
                  "Circuit::custom_gate: dangling custom-gate index");
  return custom_gates_[op.custom_index];
}

void Circuit::append(const Circuit& other) {
  QBARREN_REQUIRE(other.num_qubits_ == num_qubits_,
                  "Circuit::append: width mismatch");
  invalidate_execution_plan();
  const std::size_t base = num_params_;
  const std::size_t custom_base = custom_gates_.size();
  for (Operation op : other.ops_) {
    if (is_parameterized(op.kind)) {
      op.param_index += base;
    }
    if (op.kind == OpKind::kCustomSingle || op.kind == OpKind::kCustomTwo) {
      op.custom_index += custom_base;
    }
    ops_.push_back(op);
  }
  custom_gates_.insert(custom_gates_.end(), other.custom_gates_.begin(),
                       other.custom_gates_.end());
  num_params_ += other.num_params_;
  layer_shape_.reset();  // composite circuits have no single tensor shape
}

void Circuit::apply(StateVector& state,
                    std::span<const double> params) const {
  QBARREN_REQUIRE(state.num_qubits() == num_qubits_,
                  "Circuit::apply: register width mismatch");
  QBARREN_REQUIRE(params.size() == num_params_,
                  "Circuit::apply: parameter count mismatch");
  if (const auto plan = plan_slot_.get()) {
    plan->apply_to(state, params);
    return;
  }
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    apply_operation(i, state, params);
  }
}

void Circuit::apply_operation(std::size_t op_index, StateVector& state,
                              std::span<const double> params) const {
  QBARREN_REQUIRE(op_index < ops_.size(),
                  "Circuit::apply_operation: index out of range");
  const Operation& op = ops_[op_index];
  switch (op.kind) {
    case OpKind::kRotation:
      state.apply_single_qubit(
          gates::rotation(op.axis, params[op.param_index]), op.qubit0);
      return;
    case OpKind::kFixedRotation:
      state.apply_single_qubit(gates::rotation(op.axis, op.fixed_angle),
                               op.qubit0);
      return;
    case OpKind::kControlledRotation:
      state.apply_controlled(
          gates::rotation(op.axis, params[op.param_index]), op.qubit0,
          op.qubit1);
      return;
    case OpKind::kHadamard:
      state.apply_single_qubit(gates::hadamard(), op.qubit0);
      return;
    case OpKind::kPauliX:
      state.apply_single_qubit(gates::pauli_x(), op.qubit0);
      return;
    case OpKind::kPauliY:
      state.apply_single_qubit(gates::pauli_y(), op.qubit0);
      return;
    case OpKind::kPauliZ:
      state.apply_single_qubit(gates::pauli_z(), op.qubit0);
      return;
    case OpKind::kSGate:
      state.apply_single_qubit(gates::s_gate(), op.qubit0);
      return;
    case OpKind::kTGate:
      state.apply_single_qubit(gates::t_gate(), op.qubit0);
      return;
    case OpKind::kCz:
      state.apply_cz(op.qubit0, op.qubit1);
      return;
    case OpKind::kCnot:
      // apply_controlled treats qubit0 as control.
      state.apply_controlled(gates::pauli_x(), op.qubit0, op.qubit1);
      return;
    case OpKind::kSwap:
      state.apply_two_qubit(gates::swap(), std::min(op.qubit0, op.qubit1),
                            std::max(op.qubit0, op.qubit1));
      return;
    case OpKind::kCustomSingle:
      // The generic kernels validate the matrix dimensions and throw
      // InvalidArgument on a malformed custom gate (lint rule QB006 flags
      // those statically, before execution).
      state.apply_single_qubit(custom_gates_[op.custom_index].matrix,
                               op.qubit0);
      return;
    case OpKind::kCustomTwo:
      // add_custom_two_qubit_gate enforces qubit0 < qubit1 with matrix
      // bit 0 = qubit0, matching apply_two_qubit's (q_low, q_high) order.
      state.apply_two_qubit(custom_gates_[op.custom_index].matrix,
                            op.qubit0, op.qubit1);
      return;
  }
  throw InvalidArgument("Circuit::apply_operation: unknown op kind");
}

void Circuit::apply_operation_inverse(std::size_t op_index, StateVector& state,
                                      std::span<const double> params) const {
  QBARREN_REQUIRE(op_index < ops_.size(),
                  "Circuit::apply_operation_inverse: index out of range");
  const Operation& op = ops_[op_index];
  switch (op.kind) {
    case OpKind::kRotation:
      state.apply_single_qubit(
          gates::rotation(op.axis, -params[op.param_index]), op.qubit0);
      return;
    case OpKind::kFixedRotation:
      state.apply_single_qubit(gates::rotation(op.axis, -op.fixed_angle),
                               op.qubit0);
      return;
    case OpKind::kControlledRotation:
      state.apply_controlled(
          gates::rotation(op.axis, -params[op.param_index]), op.qubit0,
          op.qubit1);
      return;
    case OpKind::kSGate:
      state.apply_single_qubit(adjoint(gates::s_gate()), op.qubit0);
      return;
    case OpKind::kTGate:
      state.apply_single_qubit(adjoint(gates::t_gate()), op.qubit0);
      return;
    case OpKind::kCustomSingle:
      // Inverse = adjoint, valid only for unitary custom matrices (QB006).
      state.apply_single_qubit(adjoint(custom_gates_[op.custom_index].matrix),
                               op.qubit0);
      return;
    case OpKind::kCustomTwo:
      state.apply_two_qubit(adjoint(custom_gates_[op.custom_index].matrix),
                            op.qubit0, op.qubit1);
      return;
    default:
      // Hadamard, Paulis, CZ, CNOT, SWAP are involutions.
      apply_operation(op_index, state, params);
      return;
  }
}

void Circuit::apply_operation_derivative(
    std::size_t op_index, StateVector& state,
    std::span<const double> params) const {
  QBARREN_REQUIRE(op_index < ops_.size(),
                  "Circuit::apply_operation_derivative: index out of range");
  const Operation& op = ops_[op_index];
  QBARREN_REQUIRE(is_parameterized(op.kind),
                  "Circuit::apply_operation_derivative: op is not a "
                  "trainable rotation");
  if (op.kind == OpKind::kRotation) {
    state.apply_single_qubit(
        gates::rotation_derivative(op.axis, params[op.param_index]),
        op.qubit0);
    return;
  }
  // Controlled rotation: d/dtheta [|0><0| (x) I + |1><1| (x) R(theta)]
  // = |1><1| (x) dR/dtheta — zero on the control-clear subspace. Build the
  // 4x4 (matrix bit 0 = control) and apply through the generic kernel.
  const ComplexMatrix dr =
      gates::rotation_derivative(op.axis, params[op.param_index]);
  ComplexMatrix full(4, 4);
  full(1, 1) = dr.at_unchecked(0, 0);
  full(1, 3) = dr.at_unchecked(0, 1);
  full(3, 1) = dr.at_unchecked(1, 0);
  full(3, 3) = dr.at_unchecked(1, 1);
  state.apply_two_qubit(full, op.qubit0, op.qubit1);
}

StateVector Circuit::simulate(std::span<const double> params) const {
  StateVector state(num_qubits_);
  apply(state, params);
  return state;
}

ComplexMatrix Circuit::op_matrix(const Operation& op,
                                 std::span<const double> params) const {
  switch (op.kind) {
    case OpKind::kRotation:
      return gates::rotation(op.axis, params[op.param_index]);
    case OpKind::kFixedRotation:
      return gates::rotation(op.axis, op.fixed_angle);
    case OpKind::kControlledRotation: {
      // Matrix bit 0 = control (consistent with CNOT / apply path).
      const ComplexMatrix r =
          gates::rotation(op.axis, params[op.param_index]);
      ComplexMatrix full = ComplexMatrix::identity(4);
      full(1, 1) = r.at_unchecked(0, 0);
      full(1, 3) = r.at_unchecked(0, 1);
      full(3, 1) = r.at_unchecked(1, 0);
      full(3, 3) = r.at_unchecked(1, 1);
      return full;
    }
    case OpKind::kHadamard:
      return gates::hadamard();
    case OpKind::kPauliX:
      return gates::pauli_x();
    case OpKind::kPauliY:
      return gates::pauli_y();
    case OpKind::kPauliZ:
      return gates::pauli_z();
    case OpKind::kSGate:
      return gates::s_gate();
    case OpKind::kTGate:
      return gates::t_gate();
    case OpKind::kCz:
      return gates::cz();
    case OpKind::kCnot:
      return gates::cnot();
    case OpKind::kSwap:
      return gates::swap();
    case OpKind::kCustomSingle:
    case OpKind::kCustomTwo:
      return custom_gates_[op.custom_index].matrix;
  }
  throw InvalidArgument("Circuit::op_matrix: unknown op kind");
}

ComplexMatrix Circuit::operation_matrix(std::size_t op_index,
                                        std::span<const double> params) const {
  QBARREN_REQUIRE(op_index < ops_.size(),
                  "Circuit::operation_matrix: index out of range");
  return op_matrix(ops_[op_index], params);
}

ComplexMatrix Circuit::unitary(std::span<const double> params) const {
  QBARREN_REQUIRE(params.size() == num_params_,
                  "Circuit::unitary: parameter count mismatch");
  QBARREN_REQUIRE(num_qubits_ <= 10,
                  "Circuit::unitary: reference path limited to 10 qubits");
  const std::size_t dim = std::size_t{1} << num_qubits_;
  ComplexMatrix acc = ComplexMatrix::identity(dim);
  for (const Operation& op : ops_) {
    ComplexMatrix full(1, 1);
    if (is_two_qubit(op.kind)) {
      // embed_two_qubit expects (q_low, q_high) mapping to matrix bit 0 /
      // bit 1. For CNOT the matrix's control is bit 0, so pass
      // (control, target); for symmetric gates order is irrelevant.
      full = embed_two_qubit(op_matrix(op, params), op.qubit0, op.qubit1,
                             num_qubits_);
    } else {
      full = embed_single_qubit(op_matrix(op, params), op.qubit0, num_qubits_);
    }
    acc = full * acc;
  }
  return acc;
}

}  // namespace qbarren
