#include "qbarren/circuit/printer.hpp"

#include <sstream>

namespace qbarren {

namespace {

std::string fixed_gate_name(OpKind kind) {
  switch (kind) {
    case OpKind::kHadamard:
      return "H";
    case OpKind::kPauliX:
      return "X";
    case OpKind::kPauliY:
      return "Y";
    case OpKind::kPauliZ:
      return "Z";
    case OpKind::kSGate:
      return "S";
    case OpKind::kTGate:
      return "T";
    case OpKind::kCz:
      return "CZ";
    case OpKind::kCnot:
      return "CX";
    case OpKind::kSwap:
      return "SWAP";
    default:
      return "?";
  }
}

std::string qasm_rotation_name(gates::Axis axis) {
  switch (axis) {
    case gates::Axis::kX:
      return "rx";
    case gates::Axis::kY:
      return "ry";
    case gates::Axis::kZ:
      return "rz";
  }
  return "r?";
}

}  // namespace

std::string to_text(const Circuit& circuit) {
  std::ostringstream oss;
  oss << "circuit: " << circuit.num_qubits() << " qubits, "
      << circuit.num_operations() << " ops, " << circuit.num_parameters()
      << " parameters\n";
  for (const Operation& op : circuit.operations()) {
    switch (op.kind) {
      case OpKind::kRotation:
        oss << gates::axis_name(op.axis) << "(theta[" << op.param_index
            << "]) q[" << op.qubit0 << "]\n";
        break;
      case OpKind::kFixedRotation:
        oss << gates::axis_name(op.axis) << "(" << op.fixed_angle << ") q["
            << op.qubit0 << "]\n";
        break;
      case OpKind::kControlledRotation:
        oss << "C" << gates::axis_name(op.axis) << "(theta["
            << op.param_index << "]) q[" << op.qubit0 << "], q["
            << op.qubit1 << "]\n";
        break;
      case OpKind::kCz:
      case OpKind::kCnot:
      case OpKind::kSwap:
        oss << fixed_gate_name(op.kind) << " q[" << op.qubit0 << "], q["
            << op.qubit1 << "]\n";
        break;
      case OpKind::kCustomSingle:
        oss << "CUSTOM(" << circuit.custom_gate(op).name << ") q["
            << op.qubit0 << "]\n";
        break;
      case OpKind::kCustomTwo:
        oss << "CUSTOM(" << circuit.custom_gate(op).name << ") q["
            << op.qubit0 << "], q[" << op.qubit1 << "]\n";
        break;
      default:
        oss << fixed_gate_name(op.kind) << " q[" << op.qubit0 << "]\n";
        break;
    }
  }
  return oss.str();
}

std::string to_qasm(const Circuit& circuit, std::span<const double> params) {
  QBARREN_REQUIRE(params.size() == circuit.num_parameters(),
                  "to_qasm: parameter count mismatch");
  std::ostringstream oss;
  oss << "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";
  oss << "qreg q[" << circuit.num_qubits() << "];\n";
  for (const Operation& op : circuit.operations()) {
    switch (op.kind) {
      case OpKind::kRotation:
        oss << qasm_rotation_name(op.axis) << "(" << params[op.param_index]
            << ") q[" << op.qubit0 << "];\n";
        break;
      case OpKind::kFixedRotation:
        oss << qasm_rotation_name(op.axis) << "(" << op.fixed_angle << ") q["
            << op.qubit0 << "];\n";
        break;
      case OpKind::kControlledRotation:
        // qelib1.inc only defines the Z-axis controlled rotation.
        QBARREN_REQUIRE(op.axis == gates::Axis::kZ,
                        "to_qasm: OpenQASM 2 (qelib1) has no CRX/CRY; "
                        "decompose before export");
        oss << "crz(" << params[op.param_index] << ") q[" << op.qubit0
            << "], q[" << op.qubit1 << "];\n";
        break;
      case OpKind::kHadamard:
        oss << "h q[" << op.qubit0 << "];\n";
        break;
      case OpKind::kPauliX:
        oss << "x q[" << op.qubit0 << "];\n";
        break;
      case OpKind::kPauliY:
        oss << "y q[" << op.qubit0 << "];\n";
        break;
      case OpKind::kPauliZ:
        oss << "z q[" << op.qubit0 << "];\n";
        break;
      case OpKind::kSGate:
        oss << "s q[" << op.qubit0 << "];\n";
        break;
      case OpKind::kTGate:
        oss << "t q[" << op.qubit0 << "];\n";
        break;
      case OpKind::kCz:
        oss << "cz q[" << op.qubit0 << "], q[" << op.qubit1 << "];\n";
        break;
      case OpKind::kCnot:
        oss << "cx q[" << op.qubit0 << "], q[" << op.qubit1 << "];\n";
        break;
      case OpKind::kSwap:
        oss << "swap q[" << op.qubit0 << "], q[" << op.qubit1 << "];\n";
        break;
      case OpKind::kCustomSingle:
      case OpKind::kCustomTwo:
        throw InvalidArgument(
            "to_qasm: OpenQASM 2 cannot express custom matrix gates "
            "(gate '" + circuit.custom_gate(op).name + "')");
    }
  }
  return oss.str();
}

}  // namespace qbarren
