// Multi-qubit Pauli rotations.
//
// exp(-i theta/2 * P) for a Pauli string P compiles to the textbook
// basis-change + CNOT-ladder + RZ + uncompute pattern:
//   * X on qubit q -> conjugate by H (HZH = X)
//   * Y on qubit q -> conjugate by the Y-basis change (RX(+-pi/2))
//   * entangle the support with a CNOT chain onto its last qubit
//   * RZ(theta) there, then undo the chain and the basis changes.
// The rotation consumes ONE trainable parameter regardless of the string's
// weight, and the parameter-shift rule remains exact (P^2 = I implies the
// usual two-term rule).
#pragma once

#include "qbarren/circuit/circuit.hpp"

namespace qbarren {

/// Appends exp(-i theta/2 * paulis) to `circuit` as a trainable rotation;
/// returns the parameter index. `paulis` uses one of I/X/Y/Z per qubit
/// (low qubit first), must contain at least one non-identity, and its
/// length must equal the circuit width.
std::size_t add_pauli_rotation(Circuit& circuit, const std::string& paulis);

}  // namespace qbarren
