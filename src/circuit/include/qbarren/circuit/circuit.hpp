// Parameterized circuit intermediate representation.
//
// A `Circuit` is an ordered list of operations on a fixed-width register.
// Parameterized rotations reference an entry of the external parameter
// vector by index; executing the circuit binds a caller-supplied parameter
// vector. This separation (structure vs parameters) is what the paper's
// experiments need: the same circuit is evaluated at shifted parameters
// (parameter-shift rule) and re-initialized by different strategies.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "qbarren/qsim/gates.hpp"
#include "qbarren/qsim/statevector.hpp"

namespace qbarren {

/// Interface of a compiled execution plan (the exec layer's lowered form of
/// a circuit). Declared here so a `Circuit` can carry an attached plan as
/// opaque derived data without the circuit layer depending on exec; the
/// only concrete implementation is `CompiledCircuit` in
/// qbarren/exec/compiled_circuit.hpp.
class ExecutionPlan {
 public:
  virtual ~ExecutionPlan() = default;

  /// Sentinel for "no operation consumes this parameter".
  static constexpr std::size_t kNoOperation = static_cast<std::size_t>(-1);

  /// Applies the whole lowered program to `state` with `params` bound.
  /// Must produce bit-identical amplitudes to the interpreted op-by-op
  /// walk of the source circuit.
  virtual void apply_to(StateVector& state,
                        std::span<const double> params) const = 0;

  /// Index, into the source circuit's operations(), of the first operation
  /// that consumes `param_index`; kNoOperation when none does.
  [[nodiscard]] virtual std::size_t source_op_for_parameter(
      std::size_t param_index) const noexcept = 0;
};

namespace detail {

/// Holds a circuit's attached execution plan behind a mutex so concurrent
/// readers (the parallel experiment executor simulates shared circuits
/// from many threads) are safe. Copying a circuit copies the attachment —
/// the plan is immutable and describes the same operation list.
class ExecutionPlanSlot {
 public:
  ExecutionPlanSlot() = default;
  ExecutionPlanSlot(const ExecutionPlanSlot& other) : plan_(other.get()) {}
  ExecutionPlanSlot& operator=(const ExecutionPlanSlot& other) {
    if (this != &other) set(other.get());
    return *this;
  }

  [[nodiscard]] std::shared_ptr<const ExecutionPlan> get() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return plan_;
  }
  void set(std::shared_ptr<const ExecutionPlan> plan) const {
    const std::lock_guard<std::mutex> lock(mutex_);
    plan_ = std::move(plan);
  }

 private:
  mutable std::mutex mutex_;
  mutable std::shared_ptr<const ExecutionPlan> plan_;
};

}  // namespace detail

enum class OpKind {
  kRotation,   ///< parameterized R_axis(theta_i) on one qubit
  kFixedRotation,  ///< R_axis(angle) with a literal, non-trainable angle
  kControlledRotation,  ///< parameterized controlled-R_axis (control =
                        ///< qubit0, target = qubit1). NOTE: the two-term
                        ///< parameter-shift rule is NOT exact for these;
                        ///< ParameterShiftEngine applies the four-term
                        ///< rule automatically.
  kHadamard,
  kPauliX,
  kPauliY,
  kPauliZ,
  kSGate,
  kTGate,
  kCz,
  kCnot,
  kSwap,
  kCustomSingle,  ///< caller-supplied 2x2 matrix (see Circuit::add_custom_gate)
  kCustomTwo,     ///< caller-supplied 4x4 matrix on an ordered qubit pair
};

/// True for two-qubit op kinds.
[[nodiscard]] bool is_two_qubit(OpKind kind) noexcept;

/// True when the op consumes a trainable parameter.
[[nodiscard]] bool is_parameterized(OpKind kind) noexcept;

struct Operation {
  OpKind kind = OpKind::kRotation;
  gates::Axis axis = gates::Axis::kX;  ///< rotation axis (rotation kinds only)
  std::size_t qubit0 = 0;              ///< target / first qubit
  std::size_t qubit1 = 0;              ///< second qubit (two-qubit kinds only)
  std::size_t param_index = 0;         ///< parameterized kinds only
  double fixed_angle = 0.0;            ///< kFixedRotation only
  std::size_t custom_index = 0;        ///< kCustom*: index into custom_gates()
};

/// A caller-supplied gate matrix referenced by kCustomSingle / kCustomTwo
/// operations. The matrix is stored exactly as given: dimensions and
/// unitarity are intentionally NOT validated at insertion, so that static
/// analysis (lint rule QB006) can flag inconsistent definitions before any
/// simulation runs; execution validates dimensions at apply() time and
/// throws InvalidArgument there.
struct CustomGate {
  std::string name;       ///< label used in listings and diagnostics
  ComplexMatrix matrix;   ///< 2x2 (single) or 4x4 (two-qubit) when valid
};

/// Layer-tensor shape metadata attached by ansatz builders: the parameter
/// vector is conceptually a (layers x params_per_layer) tensor. Classical
/// initializers use this as the fan-in/fan-out of each "layer".
struct LayerShape {
  std::size_t layers = 0;
  std::size_t params_per_layer = 0;
};

class Circuit {
 public:
  explicit Circuit(std::size_t num_qubits);

  [[nodiscard]] std::size_t num_qubits() const noexcept { return num_qubits_; }
  [[nodiscard]] std::size_t num_parameters() const noexcept {
    return num_params_;
  }
  [[nodiscard]] std::size_t num_operations() const noexcept {
    return ops_.size();
  }
  [[nodiscard]] const std::vector<Operation>& operations() const noexcept {
    return ops_;
  }

  /// Number of two-qubit operations (entangling gate count).
  [[nodiscard]] std::size_t two_qubit_gate_count() const noexcept;

  /// Circuit depth: length of the longest chain of operations that share
  /// qubits (the standard "layers after greedy parallelization" metric).
  /// 0 for an empty circuit.
  [[nodiscard]] std::size_t depth() const;

  /// The operation that consumes `param_index` (gradient engines use this
  /// to select the correct shift rule). Throws NotFound when no operation
  /// uses the index (possible only for hand-built inconsistent indices).
  [[nodiscard]] const Operation& operation_for_parameter(
      std::size_t param_index) const;

  /// Layer-tensor shape if an ansatz builder recorded one.
  [[nodiscard]] const std::optional<LayerShape>& layer_shape() const noexcept {
    return layer_shape_;
  }
  void set_layer_shape(LayerShape shape);

  // --- building ------------------------------------------------------------

  /// Appends a trainable rotation; returns its parameter index.
  std::size_t add_rotation(gates::Axis axis, std::size_t qubit);

  /// Appends a trainable controlled rotation (R_axis on `target` when
  /// `control` is |1>); returns its parameter index.
  std::size_t add_controlled_rotation(gates::Axis axis, std::size_t control,
                                      std::size_t target);

  /// Appends a rotation with a literal angle (not trainable).
  void add_fixed_rotation(gates::Axis axis, std::size_t qubit, double angle);

  void add_hadamard(std::size_t qubit);
  void add_pauli_x(std::size_t qubit);
  void add_pauli_y(std::size_t qubit);
  void add_pauli_z(std::size_t qubit);
  void add_s(std::size_t qubit);
  void add_t(std::size_t qubit);
  void add_cz(std::size_t a, std::size_t b);
  void add_cnot(std::size_t control, std::size_t target);
  void add_swap(std::size_t a, std::size_t b);

  /// Appends a fixed gate with a caller-supplied matrix on one qubit. The
  /// matrix should be 2x2 unitary; neither is checked here (see CustomGate
  /// — lint rule QB006 performs the static check, apply() enforces the
  /// dimensions at execution).
  void add_custom_gate(std::string name, ComplexMatrix matrix,
                       std::size_t qubit);

  /// Appends a fixed two-qubit gate with a caller-supplied matrix. The
  /// matrix's bit 0 corresponds to `q_low`; requires q_low < q_high. The
  /// matrix should be 4x4 unitary (unchecked, as above).
  void add_custom_two_qubit_gate(std::string name, ComplexMatrix matrix,
                                 std::size_t q_low, std::size_t q_high);

  /// Custom-gate table referenced by kCustomSingle / kCustomTwo ops.
  [[nodiscard]] const std::vector<CustomGate>& custom_gates() const noexcept {
    return custom_gates_;
  }

  /// The custom gate an operation references; requires a custom kind.
  [[nodiscard]] const CustomGate& custom_gate(const Operation& op) const;

  /// Appends every operation of `other` (same width), remapping its
  /// parameter indices to fresh indices of this circuit.
  void append(const Circuit& other);

  // --- execution -------------------------------------------------------------

  /// Applies all operations to `state` using `params` for trainable
  /// rotations. params.size() must equal num_parameters().
  void apply(StateVector& state, std::span<const double> params) const;

  /// Applies the single operation at `op_index` (exposed for adjoint-mode
  /// differentiation which walks the circuit op by op).
  void apply_operation(std::size_t op_index, StateVector& state,
                       std::span<const double> params) const;

  /// Applies the inverse (adjoint) of the operation at `op_index`.
  void apply_operation_inverse(std::size_t op_index, StateVector& state,
                               std::span<const double> params) const;

  /// Applies the parameter derivative of the (parameterized) operation at
  /// `op_index`: state <- dU_op/dtheta |state>. Non-unitary.
  void apply_operation_derivative(std::size_t op_index, StateVector& state,
                                  std::span<const double> params) const;

  /// Runs from |0...0> and returns the final state.
  [[nodiscard]] StateVector simulate(std::span<const double> params) const;

  /// Dense 2^n x 2^n unitary of the bound circuit (reference path for
  /// tests; exponential in width).
  [[nodiscard]] ComplexMatrix unitary(std::span<const double> params) const;

  /// Dense matrix of the single operation at `op_index` (2x2 or 4x4,
  /// matrix bit 0 = qubit0). Shared by the noisy simulator and the dense
  /// reference path.
  [[nodiscard]] ComplexMatrix operation_matrix(
      std::size_t op_index, std::span<const double> params) const;

  // --- execution plan (exec layer cache) -----------------------------------

  /// The attached compiled plan, or nullptr. Plans are derived data: they
  /// change how fast the circuit executes, never what it computes.
  [[nodiscard]] std::shared_ptr<const ExecutionPlan> execution_plan() const {
    return plan_slot_.get();
  }

  /// Attaches a compiled plan (nullptr detaches). Const because the plan
  /// is a cache keyed on the circuit's structure; any structural mutation
  /// (add_*, append) detaches it automatically. Thread-safe.
  void attach_execution_plan(std::shared_ptr<const ExecutionPlan> plan) const {
    plan_slot_.set(std::move(plan));
  }

 private:
  void check_qubit(std::size_t q) const;
  void invalidate_execution_plan() { plan_slot_.set(nullptr); }
  void push_op(const Operation& op);
  [[nodiscard]] ComplexMatrix op_matrix(const Operation& op,
                                        std::span<const double> params) const;

  std::size_t num_qubits_ = 0;
  std::size_t num_params_ = 0;
  std::vector<Operation> ops_;
  std::vector<CustomGate> custom_gates_;
  std::optional<LayerShape> layer_shape_;
  detail::ExecutionPlanSlot plan_slot_;
};

}  // namespace qbarren
