// OpenQASM 2.0 parser (the subset qbarren's printer emits).
//
// Supported statements:
//   OPENQASM 2.0;            include "qelib1.inc";
//   qreg <name>[<n>];        creg <name>[<n>];        (creg accepted, ignored)
//   rx(<expr>) q[i];  ry(...)  rz(...)                (rotations)
//   h/x/y/z/s/t q[i];                                 (fixed 1q gates)
//   cz/cx/swap q[i], q[j];                            (2q gates)
// Angle expressions support decimal literals, `pi`, unary minus, and
// products/quotients like `pi/2`, `3*pi/4`. Comments (`// ...`) and blank
// lines are skipped. Anything else throws qbarren::InvalidArgument with
// the offending line number.
//
// Parsed rotations become *trainable* parameters; their literal angles are
// returned alongside the circuit, so
//   auto [c, params] = parse_qasm(text);  c.simulate(params);
// reproduces the dumped circuit exactly and the circuit remains usable
// with every initializer / gradient engine.
#pragma once

#include <string>
#include <vector>

#include "qbarren/circuit/circuit.hpp"

namespace qbarren {

struct ParsedQasm {
  Circuit circuit;
  /// One entry per rotation, in program order: the literal angles.
  std::vector<double> parameters;
};

/// Parses an OpenQASM 2.0 program. Throws InvalidArgument on syntax the
/// subset does not cover (with a line number) and on semantic errors
/// (missing qreg, qubit index out of range, ...).
[[nodiscard]] ParsedQasm parse_qasm(const std::string& source);

}  // namespace qbarren
