// Textual circuit rendering: a one-op-per-line listing and an
// OpenQASM-2.0-compatible dump (useful for eyeballing circuits or feeding
// them to external tools).
#pragma once

#include <string>

#include "qbarren/circuit/circuit.hpp"

namespace qbarren {

/// One line per operation, e.g. "RY(theta[3]) q[1]" / "CZ q[0], q[1]".
[[nodiscard]] std::string to_text(const Circuit& circuit);

/// OpenQASM 2.0 program for the circuit bound to `params`.
[[nodiscard]] std::string to_qasm(const Circuit& circuit,
                                  std::span<const double> params);

}  // namespace qbarren
