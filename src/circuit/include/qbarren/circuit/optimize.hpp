// Peephole circuit optimization.
//
// Conservative rewrites that preserve the circuit's unitary exactly and
// never touch trainable parameters (their indices must stay stable for
// optimizers and initializers):
//   * drop fixed rotations with angle 0 (mod 4 pi exactly 0 only),
//   * fuse adjacent same-axis fixed rotations on one qubit,
//   * cancel adjacent identical CZ / CNOT / SWAP pairs,
//   * cancel adjacent H H / X X / Y Y / Z Z pairs.
// "Adjacent" means no intervening operation acts on any involved qubit.
#pragma once

#include "qbarren/circuit/circuit.hpp"

namespace qbarren {

struct OptimizeStats {
  std::size_t removed_operations = 0;
  std::size_t fused_rotations = 0;
  std::size_t cancelled_pairs = 0;
};

/// Returns an equivalent, possibly shorter circuit. Parameter indices and
/// count are preserved verbatim.
[[nodiscard]] Circuit optimize_circuit(const Circuit& circuit,
                                       OptimizeStats* stats = nullptr);

}  // namespace qbarren
