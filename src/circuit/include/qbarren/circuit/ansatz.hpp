// Hardware-efficient ansatz builders (paper §IV).
//
// Three concrete families are used in the paper:
//   * `variance_ansatz`  — Eq 2: per layer, one rotation per qubit with the
//     axis drawn uniformly from {RX, RY, RZ}, followed by a CZ
//     nearest-neighbour ladder. 200 such random circuits per qubit count
//     feed the gradient-variance analysis.
//   * `training_ansatz`  — Eq 3: per layer, RX then RY on every qubit,
//     followed by the CZ ladder. At n = 10, L = 5 this yields the paper's
//     quoted 145 gates / 100 parameters.
//   * `motivational_ansatz` — Fig 1: same layer structure as Eq 3, depth
//     100, used for the landscape scans.
#pragma once

#include "qbarren/circuit/circuit.hpp"
#include "qbarren/common/rng.hpp"

namespace qbarren {

/// Which two-qubit gate entangles neighbours. The paper's HEA "typically"
/// uses CZ (Eq 1); CNOT is the common alternative, ablated in
/// bench_ablation_entangler.
enum class EntanglerGate {
  kCz,
  kCnot,
};

/// Which pairs the entangling layer connects.
enum class EntanglerTopology {
  kLinear,    ///< (0,1)(1,2)...(n-2,n-1) — the paper's E
  kRing,      ///< linear plus the closing (n-1,0) pair
  kAllToAll,  ///< every pair (i<j)
};

/// Appends one entangling layer with the given gate and topology.
void add_entangling_layer(Circuit& circuit, EntanglerGate gate,
                          EntanglerTopology topology);

struct VarianceAnsatzOptions {
  std::size_t layers = 100;  ///< paper keeps "substantial depth"; Fig 1 uses 100
  bool entangle = true;      ///< include the entangling layer
  EntanglerGate entangler = EntanglerGate::kCz;
  EntanglerTopology topology = EntanglerTopology::kLinear;
};

/// Builds an Eq 2 random HEA: rotation axes drawn from `rng`.
/// Records LayerShape{layers, num_qubits}.
[[nodiscard]] Circuit variance_ansatz(std::size_t num_qubits, Rng& rng,
                                      const VarianceAnsatzOptions& options =
                                          {});

struct TrainingAnsatzOptions {
  std::size_t layers = 5;  ///< paper trains at L = 5
  bool entangle = true;
  EntanglerGate entangler = EntanglerGate::kCz;
  EntanglerTopology topology = EntanglerTopology::kLinear;
};

/// Builds the Eq 3 training HEA (RX, RY per qubit per layer + CZ ladder).
/// Records LayerShape{layers, 2 * num_qubits}.
[[nodiscard]] Circuit training_ansatz(std::size_t num_qubits,
                                      const TrainingAnsatzOptions& options =
                                          {});

/// Fig 1 motivational circuit: the Eq 3 layer structure at `layers` depth
/// (the paper's landscape figure uses 100).
[[nodiscard]] Circuit motivational_ansatz(std::size_t num_qubits,
                                          std::size_t layers = 100);

/// Generic HEA: per layer, for each qubit apply the given rotation-axis
/// sequence, then a CZ nearest-neighbour ladder. The building block behind
/// the three named ansaetze, exposed for custom experiments.
[[nodiscard]] Circuit hardware_efficient_ansatz(
    std::size_t num_qubits, std::size_t layers,
    const std::vector<gates::Axis>& axes_per_qubit, bool entangle = true);

/// Appends one CZ nearest-neighbour ladder CZ(0,1) CZ(1,2) ... to `circuit`.
/// No-op on a single qubit (matching the paper's E = prod_{j=1}^{q-1}).
void add_cz_ladder(Circuit& circuit);

/// HEA variant with *trainable* entanglers: per layer, RY on every qubit
/// followed by a CRZ(theta) nearest-neighbour ladder. Parameters per
/// layer: qubits + (qubits - 1). Controlled rotations use the four-term
/// parameter-shift rule automatically. Records LayerShape.
[[nodiscard]] Circuit controlled_rotation_ansatz(std::size_t num_qubits,
                                                 std::size_t layers);

// --- identity-block ansatz (paper §II-a context; Grant et al. 2019) -------

/// A circuit whose blocks each consist of a random half followed by its
/// structural mirror. `mirror_pairs` lists (forward, mirrored) parameter
/// indices; initializing theta_mirror = -theta_forward makes every block —
/// and hence the whole circuit — exactly the identity (CZ gates are
/// diagonal, so the reversed ladder cancels itself), which breaks the
/// 2-design structure that causes barren plateaus while keeping the
/// expressive deep ansatz.
struct MirrorBlockAnsatz {
  Circuit circuit;
  std::vector<std::pair<std::size_t, std::size_t>> mirror_pairs;
};

/// Builds `blocks` identity-blocks on `num_qubits` qubits; each block's
/// forward half has `half_layers` Eq-2-style layers (random axis per qubit
/// + CZ ladder) whose axes come from `rng`.
[[nodiscard]] MirrorBlockAnsatz mirror_block_ansatz(std::size_t num_qubits,
                                                    std::size_t half_layers,
                                                    std::size_t blocks,
                                                    Rng& rng);

/// Draws parameters for a MirrorBlockAnsatz: forward parameters uniform on
/// [lo, hi), each mirrored parameter the exact negation of its partner, so
/// the circuit evaluates to the identity.
[[nodiscard]] std::vector<double> initialize_identity_blocks(
    const MirrorBlockAnsatz& ansatz, Rng& rng, double lo = 0.0,
    double hi = 2.0 * M_PI);

}  // namespace qbarren
