// Side-by-side demo of barren-plateau mitigation strategies on one task
// (identity learning at a width where random + GD stalls):
//   1. random + gradient descent          — the failing baseline
//   2. xavier-normal + gradient descent   — the paper's proposal
//   3. random + quantum natural gradient  — geometry-aware steps (§II-b)
//   4. growing layer-wise + Adam          — depth scheduling (§II-c)
//   5. identity blocks + gradient descent — mirror initialization (§II-a)
//
// Run: ./mitigation_strategies [--qubits 6] [--layers 4] [--iterations 40]
#include <cstdio>
#include <exception>

#include "qbarren/circuit/ansatz.hpp"
#include "qbarren/common/cli.hpp"
#include "qbarren/grad/engine.hpp"
#include "qbarren/init/registry.hpp"
#include "qbarren/obs/cost.hpp"
#include "qbarren/opt/layerwise.hpp"
#include "qbarren/opt/natural_gradient.hpp"
#include "qbarren/opt/trainer.hpp"

namespace {

void report(const char* label, const qbarren::TrainResult& result) {
  std::printf("%-34s initial %.4f -> final %.6f (%zu iterations)\n", label,
              result.initial_loss, result.final_loss, result.iterations);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    using namespace qbarren;
    const CliArgs args(argc, argv, {"qubits", "layers", "iterations",
                                    "seed"});
    const auto qubits = static_cast<std::size_t>(args.get_int("qubits", 6));
    const auto layers = static_cast<std::size_t>(args.get_int("layers", 4));
    const auto iterations =
        static_cast<std::size_t>(args.get_int("iterations", 40));
    const std::uint64_t seed = args.get_uint("seed", 7);

    const AdjointEngine engine;
    TrainingAnsatzOptions ansatz_options;
    ansatz_options.layers = layers;
    auto circuit = std::make_shared<const Circuit>(
        training_ansatz(qubits, ansatz_options));
    const CostFunction cost = make_identity_cost(circuit);
    TrainOptions train_options;
    train_options.max_iterations = iterations;

    std::printf("identity learning, %zu qubits, %zu layers, %zu iters:\n\n",
                qubits, layers, iterations);

    {
      Rng rng(seed);
      auto params = make_initializer("random")->initialize(*circuit, rng);
      auto gd = make_optimizer("gradient-descent", 0.1);
      report("random + GD (baseline)",
             train(cost, engine, *gd, std::move(params), train_options));
    }
    {
      Rng rng(seed);
      auto params =
          make_initializer("xavier-normal")->initialize(*circuit, rng);
      auto gd = make_optimizer("gradient-descent", 0.1);
      report("xavier-normal + GD (paper)",
             train(cost, engine, *gd, std::move(params), train_options));
    }
    {
      Rng rng(seed);
      auto params = make_initializer("random")->initialize(*circuit, rng);
      NaturalGradientOptions qng;
      qng.max_iterations = iterations;
      qng.learning_rate = 0.1;
      report("random + QNG",
             train_natural_gradient(cost, engine, std::move(params), qng));
    }
    {
      GrowingLayerwiseOptions grow;
      grow.qubits = qubits;
      grow.total_layers = layers;
      grow.iterations_per_stage = std::max<std::size_t>(1, iterations / layers);
      grow.optimizer = "adam";
      grow.seed = seed;
      auto obs = std::make_shared<GlobalZeroObservable>(qubits);
      report("growing layer-wise + Adam",
             train_layerwise_growing(obs, engine, grow));
    }
    {
      Rng structure_rng(seed);
      const MirrorBlockAnsatz mirror = mirror_block_ansatz(
          qubits, 1, std::max<std::size_t>(1, layers / 2), structure_rng);
      auto mirror_circuit = std::make_shared<const Circuit>(mirror.circuit);
      const CostFunction mirror_cost = make_identity_cost(mirror_circuit);
      Rng param_rng(seed + 1);
      auto params = initialize_identity_blocks(mirror, param_rng);
      auto gd = make_optimizer("gradient-descent", 0.1);
      report("identity blocks + GD",
             train(mirror_cost, engine, *gd, std::move(params),
                   train_options));
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
