// Quickstart: build a hardware-efficient ansatz, initialize it with Xavier
// normal, evaluate the identity-learning cost and its gradient, and train
// for a few iterations with Adam.
//
// Run: ./quickstart [--qubits 4] [--layers 3] [--iterations 25] [--seed 11]
#include <cstdio>
#include <exception>

#include "qbarren/bp/cost_kind.hpp"
#include "qbarren/circuit/ansatz.hpp"
#include "qbarren/circuit/printer.hpp"
#include "qbarren/common/cli.hpp"
#include "qbarren/grad/engine.hpp"
#include "qbarren/init/registry.hpp"
#include "qbarren/obs/cost.hpp"
#include "qbarren/opt/trainer.hpp"

int main(int argc, char** argv) {
  try {
    const qbarren::CliArgs args(argc, argv,
                                {"qubits", "layers", "iterations", "seed"});
    const auto qubits = static_cast<std::size_t>(args.get_int("qubits", 4));
    const auto layers = static_cast<std::size_t>(args.get_int("layers", 3));
    const auto iterations =
        static_cast<std::size_t>(args.get_int("iterations", 25));
    const std::uint64_t seed = args.get_uint("seed", 11);

    // 1. Build the paper's Eq 3 training ansatz.
    qbarren::TrainingAnsatzOptions ansatz_options;
    ansatz_options.layers = layers;
    auto circuit = std::make_shared<const qbarren::Circuit>(
        qbarren::training_ansatz(qubits, ansatz_options));
    std::printf("ansatz: %zu qubits, %zu layers -> %zu gates, %zu params\n",
                qubits, layers, circuit->num_operations(),
                circuit->num_parameters());

    // 2. Initialize parameters with Xavier normal.
    const auto initializer = qbarren::make_initializer("xavier-normal");
    qbarren::Rng rng(seed);
    std::vector<double> params = initializer->initialize(*circuit, rng);

    // 3. Evaluate the Eq 4 identity cost and its gradient.
    const qbarren::CostFunction cost = qbarren::make_identity_cost(circuit);
    const auto engine = qbarren::make_gradient_engine("adjoint");
    const auto vg =
        engine->value_and_gradient(*circuit, cost.observable(), params);
    double grad_norm = 0.0;
    for (double g : vg.gradient) grad_norm += g * g;
    std::printf("initial cost  : %.6f\n", vg.value);
    std::printf("gradient norm : %.6f (%zu components)\n",
                std::sqrt(grad_norm), vg.gradient.size());

    // 4. Train with Adam at the paper's step size.
    auto optimizer = qbarren::make_optimizer("adam", 0.1);
    qbarren::TrainOptions train_options;
    train_options.max_iterations = iterations;
    const qbarren::TrainResult result = qbarren::train(
        cost, *engine, *optimizer, std::move(params), train_options);

    std::printf("\ntraining (%zu iterations of %s):\n", result.iterations,
                optimizer->name().c_str());
    for (std::size_t it = 0; it < result.loss_history.size();
         it += std::max<std::size_t>(1, iterations / 10)) {
      std::printf("  iter %3zu  loss %.6f\n", it, result.loss_history[it]);
    }
    std::printf("  final     loss %.6f\n", result.final_loss);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
