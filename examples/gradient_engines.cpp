// Gradient-engine comparison: evaluates the full gradient of a random HEA
// with the parameter-shift rule, central finite differences, adjoint
// differentiation, and SPSA, reporting agreement (max deviation from
// parameter-shift) and wall-clock time per engine.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <exception>

#include "qbarren/bp/cost_kind.hpp"
#include "qbarren/circuit/ansatz.hpp"
#include "qbarren/common/cli.hpp"
#include "qbarren/grad/engine.hpp"
#include "qbarren/init/registry.hpp"

int main(int argc, char** argv) {
  try {
    const qbarren::CliArgs args(argc, argv, {"qubits", "layers", "seed"});
    const auto qubits = static_cast<std::size_t>(args.get_int("qubits", 8));
    const auto layers = static_cast<std::size_t>(args.get_int("layers", 10));
    const std::uint64_t seed = args.get_uint("seed", 3);

    qbarren::Rng rng(seed);
    qbarren::VarianceAnsatzOptions ansatz_options;
    ansatz_options.layers = layers;
    const qbarren::Circuit circuit =
        qbarren::variance_ansatz(qubits, rng, ansatz_options);
    const auto observable = qbarren::make_cost_observable(
        qbarren::CostKind::kGlobalZero, qubits);
    const auto initializer = qbarren::make_initializer("random");
    const std::vector<double> params = initializer->initialize(circuit, rng);

    std::printf("circuit: %zu qubits, %zu layers, %zu parameters\n\n", qubits,
                layers, circuit.num_parameters());

    std::vector<double> reference;
    for (const char* name :
         {"parameter-shift", "adjoint", "finite-difference", "spsa"}) {
      const auto engine = qbarren::make_gradient_engine(name);
      const auto start = std::chrono::steady_clock::now();
      const std::vector<double> grad =
          engine->gradient(circuit, *observable, params);
      const auto elapsed = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
      if (reference.empty()) {
        reference = grad;
      }
      double max_dev = 0.0;
      for (std::size_t i = 0; i < grad.size(); ++i) {
        max_dev = std::max(max_dev, std::abs(grad[i] - reference[i]));
      }
      std::printf("%-18s %8.2f ms   max |dev from shift| = %.3e%s\n", name,
                  elapsed, max_dev,
                  std::string(name) == "spsa" ? "  (stochastic estimate)"
                                              : "");
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
