// Training under depolarizing noise — the exact density-matrix simulator
// in action.
//
// Trains a small identity-learning PQC with Xavier initialization at
// several depolarizing strengths. Gradients use the parameter-shift rule
// on the *noisy* expectation (still exact — noise channels carry no
// trainable parameter). Two effects appear as noise grows: the achievable
// loss floor rises (the state cannot stay pure), and convergence slows
// (gradients contract).
//
// Run: ./noisy_training [--qubits 3] [--layers 2] [--iterations 25]
//                       [--seed 9] [--noise 0.0,0.01,0.05]
#include <cstdio>
#include <exception>

#include "qbarren/circuit/ansatz.hpp"
#include "qbarren/common/cli.hpp"
#include "qbarren/dsim/noisy.hpp"
#include "qbarren/init/registry.hpp"
#include "qbarren/opt/optimizers.hpp"

namespace {

// Full parameter-shift gradient of the noisy cost.
std::vector<double> noisy_gradient(const qbarren::Circuit& circuit,
                                   const std::vector<double>& params,
                                   const qbarren::Observable& obs,
                                   const qbarren::NoiseModel& noise) {
  std::vector<double> grad(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    grad[i] = qbarren::noisy_parameter_shift_partial(circuit, params, obs,
                                                     noise, i);
  }
  return grad;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    using namespace qbarren;
    const CliArgs args(argc, argv,
                       {"qubits", "layers", "iterations", "seed"});
    const auto qubits = static_cast<std::size_t>(args.get_int("qubits", 3));
    const auto layers = static_cast<std::size_t>(args.get_int("layers", 2));
    const auto iterations =
        static_cast<std::size_t>(args.get_int("iterations", 25));
    const std::uint64_t seed = args.get_uint("seed", 9);

    TrainingAnsatzOptions ansatz_options;
    ansatz_options.layers = layers;
    const Circuit circuit = training_ansatz(qubits, ansatz_options);
    const GlobalZeroObservable obs(qubits);
    const auto init = make_initializer("xavier-normal");

    std::printf("noisy identity training: %zu qubits, %zu layers, "
                "%zu iterations (Adam, lr 0.1)\n\n",
                qubits, layers, iterations);

    for (const double p : {0.0, 0.01, 0.05}) {
      const NoiseModel noise =
          p > 0.0 ? make_depolarizing_model(p, p) : NoiseModel{};
      Rng rng(seed);
      std::vector<double> params = init->initialize(circuit, rng);
      AdamOptimizer optimizer(0.1);
      optimizer.reset(params.size());

      double loss = noisy_expectation(circuit, params, obs, noise);
      std::printf("depolarizing p = %.2f: initial loss %.6f\n", p, loss);
      for (std::size_t it = 0; it < iterations; ++it) {
        const auto grad = noisy_gradient(circuit, params, obs, noise);
        optimizer.step(params, grad);
        loss = noisy_expectation(circuit, params, obs, noise);
        if ((it + 1) % 5 == 0) {
          std::printf("  iter %3zu  loss %.6f\n", it + 1, loss);
        }
      }
      const DensityMatrix rho = simulate_noisy(circuit, params, noise);
      std::printf("  final loss %.6f, state purity %.4f\n\n", loss,
                  rho.purity());
    }
    std::printf(
        "reading: the loss floor rises and purity falls with noise —\n"
        "initialization cannot repair decoherence, only the unitary "
        "landscape.\n");
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
