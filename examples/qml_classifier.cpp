// Quantum machine-learning classifier — the paper's title domain in
// action. Trains a data-reuploading PQC binary classifier (Perez-Salinas
// et al. 2020 style) on a synthetic two-circles dataset and compares
// random vs Xavier initialization of the trainable parameters.
//
// Model: per layer, each qubit gets RY(w * x0) RZ(w' * x1) data encoders
// (weights fixed to 1 here; the *trainable* parameters are the RX/RY
// rotations between encodings) followed by the CZ ladder. The prediction
// is <Z_0> in [-1, 1]; class = sign. Loss = mean squared error against
// labels in {-1, +1}. Gradients: adjoint engine per sample (the encoders
// are fixed rotations, so only the trainable angles carry gradients).
//
// Run: ./qml_classifier [--qubits 2] [--layers 3] [--samples 48]
//                       [--iterations 30] [--seed 21]
#include <cmath>
#include <cstdio>
#include <exception>

#include "qbarren/circuit/circuit.hpp"
#include "qbarren/common/cli.hpp"
#include "qbarren/common/rng.hpp"
#include "qbarren/grad/engine.hpp"
#include "qbarren/init/registry.hpp"
#include "qbarren/obs/observable.hpp"
#include "qbarren/opt/optimizers.hpp"

namespace {

using namespace qbarren;

struct Sample {
  double x0 = 0.0;
  double x1 = 0.0;
  double label = 0.0;  // -1 (inner circle) or +1 (outer ring)
};

std::vector<Sample> make_two_circles(std::size_t count, Rng& rng) {
  std::vector<Sample> data;
  data.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const bool outer = rng.bernoulli(0.5);
    const double radius =
        outer ? rng.uniform(1.4, 2.0) : rng.uniform(0.0, 0.8);
    const double angle = rng.uniform(0.0, 2.0 * M_PI);
    data.push_back(Sample{radius * std::cos(angle),
                          radius * std::sin(angle), outer ? 1.0 : -1.0});
  }
  return data;
}

// Builds the reuploading circuit for one sample: the data enters as fixed
// rotations, the trainable parameters sit between encodings. The circuit
// *structure* (and hence the trainable parameter count) is identical for
// every sample, so one parameter vector serves the whole dataset.
Circuit build_model(const Sample& s, std::size_t qubits,
                    std::size_t layers) {
  Circuit c(qubits);
  for (std::size_t layer = 0; layer < layers; ++layer) {
    for (std::size_t q = 0; q < qubits; ++q) {
      c.add_fixed_rotation(gates::Axis::kY, q, s.x0);   // data encoder
      c.add_fixed_rotation(gates::Axis::kZ, q, s.x1);
      (void)c.add_rotation(gates::Axis::kX, q);         // trainable
      (void)c.add_rotation(gates::Axis::kY, q);
    }
    for (std::size_t q = 0; q + 1 < qubits; ++q) {
      c.add_cz(q, q + 1);
    }
  }
  c.set_layer_shape(LayerShape{layers, 2 * qubits});
  return c;
}

struct EpochStats {
  double mse = 0.0;
  double accuracy = 0.0;
};

EpochStats evaluate(const std::vector<Sample>& data,
                    const std::vector<double>& params, std::size_t qubits,
                    std::size_t layers, const Observable& z0) {
  EpochStats stats;
  for (const Sample& s : data) {
    const Circuit c = build_model(s, qubits, layers);
    const double prediction = z0.expectation(c.simulate(params));
    const double err = prediction - s.label;
    stats.mse += err * err;
    if ((prediction >= 0.0) == (s.label > 0.0)) {
      stats.accuracy += 1.0;
    }
  }
  stats.mse /= static_cast<double>(data.size());
  stats.accuracy /= static_cast<double>(data.size());
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv,
                       {"qubits", "layers", "samples", "iterations", "seed"});
    const auto qubits = static_cast<std::size_t>(args.get_int("qubits", 2));
    const auto layers = static_cast<std::size_t>(args.get_int("layers", 3));
    const auto samples =
        static_cast<std::size_t>(args.get_int("samples", 48));
    const auto iterations =
        static_cast<std::size_t>(args.get_int("iterations", 30));
    const std::uint64_t seed = args.get_uint("seed", 21);

    Rng data_rng(seed);
    const std::vector<Sample> train_set = make_two_circles(samples, data_rng);
    const std::vector<Sample> test_set =
        make_two_circles(samples / 2, data_rng);
    const auto z0 = make_z_observable(0, qubits);
    const AdjointEngine engine;
    const Circuit prototype = build_model(train_set[0], qubits, layers);

    std::printf(
        "two-circles classification: %zu train / %zu test samples,\n"
        "%zu qubits x %zu reuploading layers, %zu trainable parameters\n\n",
        train_set.size(), test_set.size(), qubits, layers,
        prototype.num_parameters());

    for (const char* init_name : {"random", "xavier-normal"}) {
      Rng rng(seed + 1);
      std::vector<double> params =
          make_initializer(init_name)->initialize(prototype, rng);
      AdamOptimizer optimizer(0.1);
      optimizer.reset(params.size());

      std::printf("%s init:\n", init_name);
      for (std::size_t it = 0; it < iterations; ++it) {
        // Full-batch MSE gradient: dL/dtheta = mean 2 (pred - y) d<Z0>.
        std::vector<double> grad(params.size(), 0.0);
        for (const Sample& s : train_set) {
          const Circuit c = build_model(s, qubits, layers);
          const auto vg = engine.value_and_gradient(c, *z0, params);
          const double factor =
              2.0 * (vg.value - s.label) / static_cast<double>(train_set.size());
          for (std::size_t k = 0; k < grad.size(); ++k) {
            grad[k] += factor * vg.gradient[k];
          }
        }
        optimizer.step(params, grad);
        if ((it + 1) % 10 == 0) {
          const EpochStats train_stats =
              evaluate(train_set, params, qubits, layers, *z0);
          std::printf("  iter %3zu  train mse %.4f  train acc %.1f%%\n",
                      it + 1, train_stats.mse,
                      100.0 * train_stats.accuracy);
        }
      }
      const EpochStats final_train =
          evaluate(train_set, params, qubits, layers, *z0);
      const EpochStats final_test =
          evaluate(test_set, params, qubits, layers, *z0);
      std::printf("  final     train acc %.1f%%  test acc %.1f%%\n\n",
                  100.0 * final_train.accuracy,
                  100.0 * final_test.accuracy);
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
