// One-shot paper reproduction: runs every experiment at paper scale and
// writes a results directory containing the JSON exports and a Markdown
// report mirroring EXPERIMENTS.md's structure.
//
// Run: ./reproduce_paper [--outdir results] [--circuits 200] [--layers 50]
// Takes ~1 minute at the defaults (exact simulation, single thread).
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>

#include "qbarren/bp/landscape.hpp"
#include "qbarren/bp/serialize.hpp"
#include "qbarren/bp/training.hpp"
#include "qbarren/bp/variance.hpp"
#include "qbarren/common/cli.hpp"

namespace {

using namespace qbarren;

void write_text(const std::string& path, const std::string& contents) {
  std::ofstream out(path);
  if (!out) {
    throw Error("cannot open " + path);
  }
  out << contents;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv, {"outdir", "circuits", "layers", "seed"});
    const std::string outdir = args.get_string("outdir", "results");
    std::filesystem::create_directories(outdir);

    std::string report;
    report += "# qbarren paper reproduction run\n\n";

    // --- Fig 1: landscape flatness ----------------------------------------
    std::printf("[1/4] Fig 1 landscape scans...\n");
    LandscapeOptions landscape_options;
    landscape_options.layers = 100;
    landscape_options.grid_points = 21;
    landscape_options.seed = 1;
    report += "## Fig 1 — landscape flatness\n\n";
    report += landscape_flatness_table({2, 5, 10}, landscape_options)
                  .to_markdown();
    for (const std::size_t q : {2u, 5u, 10u}) {
      LandscapeOptions single = landscape_options;
      single.qubits = q;
      write_json_file(to_json(scan_landscape(single)),
                      outdir + "/fig1_landscape_q" + std::to_string(q) +
                          ".json");
    }

    // --- Fig 5a + §VI-A: variance decay -----------------------------------
    std::printf("[2/4] Fig 5a variance analysis...\n");
    VarianceExperimentOptions variance_options;
    variance_options.circuits_per_point =
        static_cast<std::size_t>(args.get_int("circuits", 200));
    variance_options.layers =
        static_cast<std::size_t>(args.get_int("layers", 50));
    variance_options.seed = args.get_uint("seed", 42);
    const VarianceResult variance =
        VarianceExperiment(variance_options).run_paper_set();
    report += "\n## Fig 5a — gradient variance decay\n\n";
    report += variance.variance_table().to_markdown();
    report += "\n## §VI-A — decay rates and improvements\n\n";
    report += variance.decay_table().to_markdown();
    write_json_file(to_json(variance), outdir + "/fig5a_variance.json");

    // --- Fig 5b/5c: training ------------------------------------------------
    for (const char* optimizer : {"gradient-descent", "adam"}) {
      std::printf("[%c/4] training analysis (%s)...\n",
                  optimizer[0] == 'g' ? '3' : '4', optimizer);
      TrainingExperimentOptions training_options;
      training_options.optimizer = optimizer;
      training_options.seed = args.get_uint("seed", 42) == 42
                                  ? 7
                                  : args.get_uint("seed", 7);
      const TrainingResult training =
          TrainingExperiment(training_options).run_paper_set();
      const std::string figure =
          std::string(optimizer) == "adam" ? "fig5c" : "fig5b";
      report += "\n## " + figure + " — identity training (" + optimizer +
                ")\n\n";
      report += training.summary_table().to_markdown();
      write_json_file(to_json(training),
                      outdir + "/" + figure + "_training.json");
    }

    write_text(outdir + "/report.md", report);
    std::printf("\nwrote %s/report.md and per-figure JSON files.\n",
                outdir.c_str());
    std::printf("plot with: python3 scripts/plot_results.py %s/*.json\n",
                outdir.c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
