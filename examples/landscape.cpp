// Cost-landscape scan (paper Fig 1): renders an ASCII heat map of the
// identity cost over two parameters of a deep HEA and prints flatness
// metrics across qubit counts — the landscape visibly flattens as the
// width grows.
//
// Run: ./landscape [--qubits 2,5,10] [--layers 100] [--grid 21] [--seed 1]
#include <cstdio>
#include <exception>
#include <string>

#include "qbarren/bp/landscape.hpp"
#include "qbarren/common/cli.hpp"

namespace {

// Maps the grid to a coarse character ramp; '#' = high cost, ' ' = low.
void print_heatmap(const qbarren::LandscapeResult& result) {
  static const std::string ramp = " .:-=+*%@#";
  const std::size_t n = result.options.grid_points;
  const double lo = result.min_value;
  const double span = std::max(result.range, 1e-12);
  for (std::size_t i = 0; i < n; ++i) {
    std::string line;
    for (std::size_t j = 0; j < n; ++j) {
      const double t = (result.value_at(i, j) - lo) / span;
      const auto idx = static_cast<std::size_t>(
          t * static_cast<double>(ramp.size() - 1) + 0.5);
      line += ramp[std::min(idx, ramp.size() - 1)];
      line += ramp[std::min(idx, ramp.size() - 1)];
    }
    std::printf("  %s\n", line.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const qbarren::CliArgs args(argc, argv,
                                {"qubits", "layers", "grid", "seed"});

    qbarren::LandscapeOptions base;
    base.layers = static_cast<std::size_t>(args.get_int("layers", 100));
    base.grid_points = static_cast<std::size_t>(args.get_int("grid", 21));
    base.seed = args.get_uint("seed", 1);

    std::vector<std::size_t> qubit_counts;
    for (int q : args.get_int_list("qubits", {2, 5, 10})) {
      qubit_counts.push_back(static_cast<std::size_t>(q));
    }

    for (std::size_t q : qubit_counts) {
      qbarren::LandscapeOptions options = base;
      options.qubits = q;
      const qbarren::LandscapeResult result = qbarren::scan_landscape(options);
      std::printf("\n%zu qubits (depth %zu): range %.4f, stddev %.4f\n", q,
                  options.layers, result.range, result.stddev);
      print_heatmap(result);
    }

    std::printf("\nflatness metrics (cost range shrinks with width => "
                "barren plateau):\n%s",
                qbarren::landscape_flatness_table(qubit_counts, base)
                    .to_ascii()
                    .c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
