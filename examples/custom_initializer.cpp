// Extending qbarren with a custom initialization strategy.
//
// Implements a "scaled-random" initializer — uniform angles whose range
// shrinks with circuit width, theta ~ U[-pi/sqrt(n), pi/sqrt(n)] — plugs it
// into the variance experiment next to the paper's Random and Xavier
// strategies, and prints the resulting decay-rate comparison.
#include <cmath>
#include <cstdio>
#include <exception>

#include "qbarren/bp/variance.hpp"
#include "qbarren/common/cli.hpp"
#include "qbarren/init/registry.hpp"

namespace {

class ScaledRandomInitializer final : public qbarren::Initializer {
 public:
  [[nodiscard]] std::string name() const override { return "scaled-random"; }

  [[nodiscard]] std::vector<double> initialize(
      const qbarren::Circuit& circuit, qbarren::Rng& rng) const override {
    const double limit =
        M_PI / std::sqrt(static_cast<double>(circuit.num_qubits()));
    return rng.uniform_vector(circuit.num_parameters(), -limit, limit);
  }
};

}  // namespace

int main(int argc, char** argv) {
  try {
    const qbarren::CliArgs args(argc, argv,
                                {"qubits", "circuits", "layers", "seed"});

    qbarren::VarianceExperimentOptions options;
    options.qubit_counts.clear();
    for (int q : args.get_int_list("qubits", {2, 4, 6})) {
      options.qubit_counts.push_back(static_cast<std::size_t>(q));
    }
    options.circuits_per_point =
        static_cast<std::size_t>(args.get_int("circuits", 50));
    options.layers = static_cast<std::size_t>(args.get_int("layers", 30));
    options.seed = args.get_uint("seed", 42);

    const auto random = qbarren::make_initializer("random");
    const auto xavier = qbarren::make_initializer("xavier-normal");
    const ScaledRandomInitializer custom;

    const qbarren::VarianceExperiment experiment(options);
    const qbarren::VarianceResult result =
        experiment.run({random.get(), xavier.get(), &custom});

    std::printf("%s\n", result.variance_table().to_ascii().c_str());
    std::printf("%s", result.decay_table().to_ascii().c_str());
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
