// Unified command-line driver for every qbarren experiment.
//
// Usage:
//   qbarren_cli variance   [--qubits 2,4,6,8,10] [--circuits 200]
//                          [--layers 50] [--seed 42] [--batch B|auto]
//                          [--json out.json]
//   qbarren_cli train      [--optimizer adam] [--qubits 10] [--layers 5]
//                          [--iterations 50] [--deadline-sec 3600]
//                          [--nonfinite throw|abort|fallback]
//                          [--batch B|auto] [--json out.json]
//   qbarren_cli sweep      [--repetitions 5] [--optimizer adam] ...
//   qbarren_cli landscape  [--qubits 2,5,10] [--layers 100] [--grid 21]
//                          [--batch B|auto]
//   qbarren_cli express    [--qubits 4] [--layers 5] [--pairs 300]
//   qbarren_cli lightcone  [--qubits 6] [--layers 10]
//   qbarren_cli serve      --socket <path> [--workers 2] [--cache <file>]
//                          [--max-pending 4] [--worker-kill-sec S]
//                          [--crash-attempts 3] [--max-worker-crashes 8]
//                          | --once <request-file|-> (no socket)
//   qbarren_cli worker     (internal: spawned by serve; NDJSON on
//                          stdin/stdout)
//   qbarren_cli submit     --socket <path> [--request <file>] (default
//                          stdin); streams the event lines and exits with
//                          the request's exit code
//   qbarren_cli predict    [--qubits 2,4,6,8,10] [--layers 50]
//                          [--cost global|local|zz] [--seed 42]
//                          [--param last|middle|first]
//                          [--init name1,name2,...] [--structures 32]
//                          [--json out.json] [--conformance
//                          [--circuits 200] [--checkpoint f [--resume]]]
//   qbarren_cli lint       --qasm <file> | --ansatz variance|training|
//                          motivational [--qubits 10] [--layers 50]
//                          [--cost global|local|zz] [--seed 42]
//                          [--param last|middle|first] [--format table|json]
//                          [--verify-plan] [--rules]
//   qbarren_cli audit      --kind variance|training|sweep [runner flags]
//                          [--rep-seeds s1,s2,...] | --request <file|->
//                          [more request files...] | --rules
//                          [--format table|json]
//   qbarren_cli fsck       <store> [--fingerprint <fp> | --request <file>
//                          [--cache] | --kind ... [runner flags]]
//                          [--format table|json]
//
// `audit` statically proves (or refutes) the determinism claims of a
// configuration before anything runs: it enumerates the exact RNG stream
// derivations the run will perform and checks rules QD100-QD103 (stream
// collisions, cross-run seed aliasing, fingerprint soundness, cache-key
// coverage). `fsck` audits a checkpoint/result-cache store at rest
// (QD110-QD115: torn records, duplicate cells, version skew, foreign
// fingerprints, orphan cells). Both exit 1 on error findings, and the
// serve layer runs the same request audit as part of admission control.
//
// `lint` statically analyzes a circuit (rules QB001-QB011 + QN120: dead
// parameters, barren-plateau risk, redundant rotations, cancelling gate
// pairs, light-cone widths, plan cost, closed-form predicted gradient
// variance, FP-noise-floor violations, ...) and exits 1 when any
// error-severity finding fires. With --verify-plan it additionally lowers
// the circuit to a compiled execution plan and statically verifies the
// lowering (PlanVerifier, codes QP100-QP107). The experiment runners
// (variance / train / sweep) run the same analysis as a preflight:
// --lint=warn (default) prints findings and launches, --lint=error
// refuses to launch on error findings, --lint=off skips the check. With
// --verify-plans the runners also verify every compiled plan on first
// attach (results are byte-identical; a failed verification aborts the
// run). `landscape` accepts --verify-plans too, covering the Fig 1
// motivational circuit's lowering.
//
// Long runs (variance / train / sweep) accept --checkpoint <file>: every
// completed cell is flushed atomically, Ctrl-C (SIGINT/SIGTERM) stops the
// run cooperatively after the cell in flight, and --resume restores the
// completed cells and finishes the rest, reproducing an uninterrupted run
// bit-for-bit. A checkpoint written under different options is rejected.
//
// The same subcommands run their cells on a fault-isolated thread pool:
//   --jobs N               worker threads (default: hardware concurrency;
//                          results are byte-identical at any N)
//   --cell-timeout-sec S   soft per-cell deadline; an overrunning cell is
//                          cancelled and reported as a timeout failure
//   --max-cell-failures K  tolerate up to K failed cells (default 0 =
//                          fail fast on the first); failed cells are
//                          listed on stderr and in the result JSON
//   --cell-retries R       extra attempts for non-finite cells, retried
//                          with the parameter-shift fallback engine
//   --engine NAME          gradient engine for variance/train/sweep
//                          (adjoint, parameter-shift, finite-diff, spsa;
//                          decorators like nan-at:<k>:<engine> inject
//                          faults for testing the failure paths)
// Run with no arguments for this help text.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <iterator>
#include <limits>
#include <memory>
#include <optional>
#include <sstream>

#include "qbarren/analysis/plan_verify.hpp"
#include "qbarren/analysis/predict.hpp"
#include "qbarren/analysis/preflight.hpp"
#include "qbarren/analysis/store_audit.hpp"
#include "qbarren/analysis/stream_graph.hpp"
#include "qbarren/bp/expressibility.hpp"
#include "qbarren/bp/landscape.hpp"
#include "qbarren/bp/lightcone.hpp"
#include "qbarren/bp/serialize.hpp"
#include "qbarren/bp/training.hpp"
#include "qbarren/bp/variance.hpp"
#include "qbarren/common/checkpoint.hpp"
#include "qbarren/common/cli.hpp"
#include "qbarren/common/executor.hpp"
#include "qbarren/common/exit_codes.hpp"
#include "qbarren/exec/batched.hpp"
#include "qbarren/common/run.hpp"
#include "qbarren/circuit/qasm_parser.hpp"
#include "qbarren/common/version.hpp"
#include "qbarren/init/registry.hpp"
#include "qbarren/serve/audit.hpp"
#include "qbarren/serve/server.hpp"
#include "qbarren/serve/worker.hpp"

namespace {

using namespace qbarren;

std::vector<const Initializer*> borrow(
    const std::vector<std::unique_ptr<Initializer>>& owned) {
  std::vector<const Initializer*> ptrs;
  for (const auto& init : owned) {
    ptrs.push_back(init.get());
  }
  return ptrs;
}

/// Resilient-run plumbing shared by the long-running subcommands:
/// Ctrl-C cancellation, optional --checkpoint/--resume store, progress
/// lines on stderr.
struct ResilientRun {
  CancellationToken token;
  std::optional<Checkpoint> checkpoint;
  std::optional<ScopedSignalCancellation> signal_guard;
  RunControl control;

  ResilientRun(const CliArgs& args, const std::string& fingerprint) {
    if (args.has("checkpoint")) {
      const std::string path = args.get_string("checkpoint", "");
      QBARREN_REQUIRE(!path.empty(), "--checkpoint needs a file path");
      const bool resume = args.get_bool("resume", false);
      checkpoint.emplace(Checkpoint::open(path, fingerprint, resume));
      if (resume && checkpoint->cell_count() > 0) {
        std::fprintf(stderr, "resuming from %s (%zu completed cells)\n",
                     path.c_str(), checkpoint->cell_count());
      }
      control.checkpoint = &*checkpoint;
    } else {
      QBARREN_REQUIRE(!args.has("resume"),
                      "--resume requires --checkpoint <file>");
    }
    control.cancel = &token;
    signal_guard.emplace(token);
    control.progress = [](const RunProgress& p) {
      std::fprintf(stderr, "[%zu/%zu] %s%s\n", p.completed, p.total,
                   p.cell.c_str(),
                   p.from_checkpoint ? " (from checkpoint)" : "");
    };

    // Parallel execution: 0 jobs = hardware concurrency. The job count
    // never changes results, only wall-clock time.
    control.jobs = static_cast<std::size_t>(args.get_int("jobs", 0));
    control.cell_timeout_seconds = args.get_double(
        "cell-timeout-sec", std::numeric_limits<double>::infinity());
    control.max_cell_failures =
        static_cast<std::size_t>(args.get_int("max-cell-failures", 0));
    control.max_cell_attempts =
        1 + static_cast<std::size_t>(args.get_int("cell-retries", 0));
  }
};

/// Per-run failure summary on stderr (failed cell keys + error class);
/// empty when every cell succeeded. The same records land in the result
/// JSON's "failures" array.
void report_failures(const std::vector<CellFailure>& failures) {
  if (failures.empty()) return;
  std::fprintf(stderr, "%zu cell(s) failed within the failure budget:\n%s",
               failures.size(), failure_summary(failures).c_str());
}

/// Runs an experiment's preflight lint under the subcommand's --lint mode
/// (default warn). LintError propagates to main's handler -> exit 1, so
/// --lint=error refuses the launch before any cell executes.
void preflight(const CliArgs& args, const Diagnostics& diagnostics,
               const char* what) {
  const LintMode mode =
      lint_mode_from_name(args.get_string("lint", "warn"));
  enforce_preflight(diagnostics, mode, what);
}

/// Opt-in --verify-plans: while the guard is alive, every compiled plan is
/// statically verified on first attach (PlanVerifier, QP1xx codes); a
/// failing plan throws PlanVerificationError out of the run. Verification
/// reads the plan without touching execution, so results are byte-identical
/// to an unverified run.
std::unique_ptr<ScopedPlanVerification> plan_verification(const CliArgs& args) {
  if (!args.get_bool("verify-plans", false)) return nullptr;
  return std::make_unique<ScopedPlanVerification>();
}

void report_plan_verification(
    const std::unique_ptr<ScopedPlanVerification>& guard) {
  if (guard == nullptr) return;
  std::fprintf(stderr,
               "plan verification: %zu plan(s) statically verified, "
               "%zu warning(s)\n",
               guard->plans_verified(), guard->warnings());
}

/// Engine name with the fault/guard decorators peeled off ("guarded:",
/// "nan-at:<k>:", "crash-at:<k>:", "hang-at:<k>:"), so --batch validation
/// sees the engine that will actually run.
std::string strip_engine_decorators(std::string name) {
  bool stripped = true;
  while (stripped) {
    stripped = false;
    const std::string guarded = "guarded:";
    if (name.starts_with(guarded)) {
      name = name.substr(guarded.size());
      stripped = true;
      continue;
    }
    for (const char* prefix : {"nan-at:", "crash-at:", "hang-at:"}) {
      if (!name.starts_with(prefix)) continue;
      const std::size_t colon = name.find(':', std::strlen(prefix));
      if (colon == std::string::npos) return name;  // malformed; registry errors
      name = name.substr(colon + 1);
      stripped = true;
      break;
    }
  }
  return name;
}

/// Opt-in --batch=<B>|auto: scopes the process batch limit for the run.
/// Batched execution is byte-identical to serial, so this only changes
/// throughput. `engine_name` (empty when the subcommand has no gradient
/// engine) gates the nonsensical combination: the adjoint engine computes
/// the whole gradient in one forward/backward pass and has nothing to
/// batch, so an explicit lane count with it is rejected; --batch=auto
/// simply degrades to serial there.
std::unique_ptr<exec::ScopedBatchLimit> scoped_batch_limit(
    const CliArgs& args, const std::string& engine_name) {
  if (!args.has("batch")) return nullptr;
  const std::string text = args.get_string("batch", "");
  std::size_t limit = exec::kBatchAuto;
  if (text != "auto") {
    std::size_t parsed = 0;
    unsigned long long value = 0;
    if (!text.empty() && text.find_first_not_of("0123456789") ==
                             std::string::npos) {
      try {
        value = std::stoull(text, &parsed);
      } catch (const std::exception&) {
        parsed = 0;
      }
    }
    QBARREN_REQUIRE(parsed == text.size() && !text.empty() && value >= 1,
                    "--batch must be a positive lane count or 'auto', got '" +
                        text + "'");
    limit = static_cast<std::size_t>(value);
  }
  if (limit != exec::kBatchAuto && limit >= 2 &&
      strip_engine_decorators(engine_name) == "adjoint") {
    throw InvalidArgument(
        "--batch " + text +
        " makes no sense with --engine adjoint: the adjoint engine "
        "computes the whole gradient in one forward/backward pass and has "
        "no shifted bindings to batch; drop --batch, use --batch=auto "
        "(runs serial), or pick a shift-rule engine (parameter-shift, "
        "finite-diff, spsa)");
  }
  return std::make_unique<exec::ScopedBatchLimit>(limit);
}

VarianceExperimentOptions variance_options_from(const CliArgs& args) {
  VarianceExperimentOptions options;
  options.qubit_counts.clear();
  for (int q : args.get_int_list("qubits", {2, 4, 6, 8, 10})) {
    options.qubit_counts.push_back(static_cast<std::size_t>(q));
  }
  options.circuits_per_point =
      static_cast<std::size_t>(args.get_int("circuits", 200));
  options.layers = static_cast<std::size_t>(args.get_int("layers", 50));
  options.seed = args.get_uint("seed", 42);
  options.cost = cost_kind_from_name(args.get_string("cost", "global"));
  options.gradient_engine =
      args.get_string("engine", options.gradient_engine);
  const std::string which = args.get_string("param", "last");
  if (which == "last") {
    options.which_parameter = GradientParameter::kLast;
  } else if (which == "middle") {
    options.which_parameter = GradientParameter::kMiddle;
  } else if (which == "first") {
    options.which_parameter = GradientParameter::kFirst;
  } else {
    throw InvalidArgument("--param must be last, middle, or first");
  }
  return options;
}

int cmd_variance(const CliArgs& args) {
  const VarianceExperimentOptions options = variance_options_from(args);
  preflight(args, lint_variance_options(options), "variance preflight");
  ResilientRun resilient(args, options_fingerprint(options));
  const auto batch = scoped_batch_limit(args, options.gradient_engine);
  const auto verification = plan_verification(args);
  const VarianceResult result =
      VarianceExperiment(options).run_paper_set(FanMode::kLayerTensor,
                                                resilient.control);
  report_plan_verification(verification);
  report_failures(result.failures);
  std::printf("%s\n%s", result.variance_table().to_ascii().c_str(),
              result.decay_table().to_ascii().c_str());
  if (args.has("json")) {
    const std::string path = args.get_string("json", "variance.json");
    write_json_file(to_json(result), path);
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}

TrainingExperimentOptions training_options_from(const CliArgs& args) {
  TrainingExperimentOptions options;
  options.optimizer = args.get_string("optimizer", "gradient-descent");
  options.qubits = static_cast<std::size_t>(args.get_int("qubits", 10));
  options.layers = static_cast<std::size_t>(args.get_int("layers", 5));
  options.iterations =
      static_cast<std::size_t>(args.get_int("iterations", 50));
  options.learning_rate = args.get_double("lr", 0.1);
  options.seed = args.get_uint("seed", 7);
  options.gradient_engine =
      args.get_string("engine", options.gradient_engine);
  options.deadline_seconds = args.get_double(
      "deadline-sec", std::numeric_limits<double>::infinity());
  const std::string policy = args.get_string("nonfinite", "throw");
  if (policy == "throw") {
    options.non_finite_policy = NonFinitePolicy::kThrow;
  } else if (policy == "abort") {
    options.non_finite_policy = NonFinitePolicy::kAbortSeries;
  } else if (policy == "fallback") {
    options.non_finite_policy = NonFinitePolicy::kFallbackEngine;
  } else {
    throw InvalidArgument("--nonfinite must be throw, abort, or fallback");
  }
  return options;
}

int cmd_train(const CliArgs& args) {
  const TrainingExperimentOptions options = training_options_from(args);
  preflight(args, lint_training_options(options), "train preflight");
  ResilientRun resilient(args, options_fingerprint(options));
  const auto batch = scoped_batch_limit(args, options.gradient_engine);
  const auto verification = plan_verification(args);
  const TrainingResult result =
      TrainingExperiment(options).run_paper_set(FanMode::kLayerTensor,
                                                resilient.control);
  report_plan_verification(verification);
  report_failures(result.failures);
  std::printf("%s\n%s", result.loss_table(5).to_ascii().c_str(),
              result.summary_table().to_ascii().c_str());
  if (args.has("json")) {
    const std::string path = args.get_string("json", "training.json");
    write_json_file(to_json(result), path);
    std::printf("wrote %s\n", path.c_str());
  }
  return 0;
}

int cmd_sweep(const CliArgs& args) {
  TrainingSweepOptions options;
  options.base = training_options_from(args);
  options.repetitions =
      static_cast<std::size_t>(args.get_int("repetitions", 5));
  preflight(args, lint_sweep_options(options), "sweep preflight");
  ResilientRun resilient(args, options_fingerprint(options));
  const auto batch = scoped_batch_limit(args, options.base.gradient_engine);
  const auto verification = plan_verification(args);
  const auto owned = paper_initializers();
  const TrainingSweepResult result =
      run_training_sweep(borrow(owned), options, resilient.control);
  report_plan_verification(verification);
  report_failures(result.failures);
  std::printf("%s", result.summary_table().to_ascii().c_str());
  return 0;
}

int cmd_landscape(const CliArgs& args) {
  LandscapeOptions base;
  base.layers = static_cast<std::size_t>(args.get_int("layers", 100));
  base.grid_points = static_cast<std::size_t>(args.get_int("grid", 21));
  base.seed = args.get_uint("seed", 1);
  std::vector<std::size_t> widths;
  for (int q : args.get_int_list("qubits", {2, 5, 10})) {
    widths.push_back(static_cast<std::size_t>(q));
  }
  // No gradient engine here; any valid --batch value applies.
  const auto batch = scoped_batch_limit(args, "");
  const auto verification = plan_verification(args);
  std::printf("%s", landscape_flatness_table(widths, base).to_ascii().c_str());
  report_plan_verification(verification);
  if (args.has("json")) {
    LandscapeOptions single = base;
    single.qubits = widths.front();
    const std::string path = args.get_string("json", "landscape.json");
    write_json_file(to_json(scan_landscape(single)), path);
    std::printf("wrote %s (first width only)\n", path.c_str());
  }
  return 0;
}

int cmd_express(const CliArgs& args) {
  ExpressibilityOptions options;
  options.qubits = static_cast<std::size_t>(args.get_int("qubits", 4));
  options.layers = static_cast<std::size_t>(args.get_int("layers", 5));
  options.pairs = static_cast<std::size_t>(args.get_int("pairs", 300));
  options.seed = args.get_uint("seed", 17);
  const auto owned = paper_initializers();
  const auto results = analyze_expressibility(borrow(owned), options);
  std::printf("%s", expressibility_table(results).to_ascii().c_str());
  return 0;
}

int cmd_lightcone(const CliArgs& args) {
  const auto qubits = static_cast<std::size_t>(args.get_int("qubits", 6));
  const auto layers = static_cast<std::size_t>(args.get_int("layers", 10));
  Rng rng(args.get_uint("seed", 1));
  VarianceAnsatzOptions options;
  options.layers = layers;
  const Circuit c = variance_ansatz(qubits, rng, options);

  std::vector<std::pair<std::string, LightConeReport>> reports;
  std::vector<std::size_t> all;
  for (std::size_t q = 0; q < qubits; ++q) {
    all.push_back(q);
  }
  reports.emplace_back("global cost (all qubits)",
                       analyze_light_cone(c, all));
  reports.emplace_back("Z0 Z1 observable", analyze_light_cone(c, {0, 1}));
  reports.emplace_back("Z0 observable", analyze_light_cone(c, {0}));
  std::printf("%s", light_cone_table(reports).to_ascii().c_str());
  return 0;
}

/// Reads a whole stream (request text for serve --once / submit).
std::string read_stream(std::istream& in) {
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

serve::ServiceOptions service_options_from(const CliArgs& args) {
  serve::ServiceOptions options;
  options.workers = static_cast<std::size_t>(args.get_int("workers", 2));
  options.cache_path = args.get_string("cache", "");
  options.worker_kill_seconds = args.get_double(
      "worker-kill-sec", std::numeric_limits<double>::infinity());
  options.max_crash_attempts =
      static_cast<std::size_t>(args.get_int("crash-attempts", 3));
  options.max_worker_crashes =
      static_cast<std::size_t>(args.get_int("max-worker-crashes", 8));
  return options;
}

int cmd_serve(const CliArgs& args) {
  if (args.has("once")) {
    // One request from a file (or stdin with "-"), no socket: the full
    // admission/dispatch/recovery pipeline with the event stream on
    // stdout. Used by tests and for ad-hoc runs.
    const std::string path = args.get_string("once", "-");
    std::string text;
    if (path == "-") {
      text = read_stream(std::cin);
    } else {
      std::ifstream in(path, std::ios::binary);
      QBARREN_REQUIRE(in.good(), "serve: cannot open request file '" +
                                     path + "'");
      text = read_stream(in);
    }
    const serve::RequestSpec spec =
        serve::request_from_json(parse_json(text));
    serve::ExperimentService service(service_options_from(args));
    const serve::RequestOutcome outcome =
        service.run_request(spec, [](const JsonValue& event) {
          std::fputs(serve::ndjson_line(event).c_str(), stdout);
          std::fflush(stdout);
        });
    return outcome.exit_code;
  }

  serve::ServerOptions server;
  server.socket_path = args.get_string("socket", "");
  QBARREN_REQUIRE(!server.socket_path.empty(),
                  "serve needs --socket <path> (or --once <request-file>)");
  server.max_pending =
      static_cast<std::size_t>(args.get_int("max-pending", 4));
  serve::SocketServer socket_server(service_options_from(args), server);
  std::fprintf(stderr, "qbarren serve: listening on %s\n",
               server.socket_path.c_str());
  return socket_server.run();
}

int cmd_submit(const CliArgs& args) {
  const std::string socket_path = args.get_string("socket", "");
  QBARREN_REQUIRE(!socket_path.empty(), "submit needs --socket <path>");
  std::string text;
  if (args.has("request")) {
    const std::string path = args.get_string("request", "");
    std::ifstream in(path, std::ios::binary);
    QBARREN_REQUIRE(in.good(),
                    "submit: cannot open request file '" + path + "'");
    text = read_stream(in);
  } else {
    text = read_stream(std::cin);
  }
  // Re-serialize so multi-line request files become one protocol line.
  const std::string line = serve::ndjson_line(parse_json(text));

  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  QBARREN_REQUIRE(socket_path.size() < sizeof(address.sun_path),
                  "submit: socket path too long: " + socket_path);
  std::memcpy(address.sun_path, socket_path.c_str(),
              socket_path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  QBARREN_REQUIRE(fd >= 0, "submit: socket() failed");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) != 0) {
    ::close(fd);
    throw Error("submit: cannot connect to " + socket_path);
  }
  std::size_t offset = 0;
  while (offset < line.size()) {
    const ssize_t n =
        ::write(fd, line.data() + offset, line.size() - offset);
    QBARREN_REQUIRE(n > 0, "submit: write to service failed");
    offset += static_cast<std::size_t>(n);
  }

  // Stream event lines through to stdout; the terminal event carries the
  // request's exit code.
  int exit_code = kExitFailure;  // stream ended without a terminal event
  std::string event_line;
  char ch = 0;
  while (true) {
    const ssize_t n = ::read(fd, &ch, 1);
    if (n <= 0) break;
    if (ch != '\n') {
      event_line.push_back(ch);
      continue;
    }
    std::printf("%s\n", event_line.c_str());
    std::fflush(stdout);
    try {
      const JsonValue event = parse_json(event_line);
      const std::string kind = event.at("event").as_string();
      if (kind == "done" || kind == "rejected") {
        exit_code = static_cast<int>(event.at("exit_code").as_integer());
      }
    } catch (const std::exception&) {
      // Non-JSON noise on the stream: pass through, keep reading.
    }
    event_line.clear();
  }
  ::close(fd);
  return exit_code;
}

/// `qbarren predict`: the static Fig 5a — the closed-form variance model
/// evaluated over the same (qubits x initializer) grid the Monte-Carlo
/// `variance` subcommand simulates, in milliseconds and with zero
/// simulation. --conformance additionally runs the Monte-Carlo half and
/// checks every cell against the committed tolerance bands (exit 1 when
/// the model drifts out of band or the Fig 5a ordering breaks).
int cmd_predict(const CliArgs& args) {
  const VarianceExperimentOptions options = variance_options_from(args);
  std::vector<std::string> initializers;
  if (args.has("init")) {
    std::stringstream stream(args.get_string("init", ""));
    std::string name;
    while (std::getline(stream, name, ',')) {
      QBARREN_REQUIRE(!name.empty(), "--init: empty list entry");
      if (!angle_model_supported(name)) {
        throw InvalidArgument(
            "predict: initializer '" + name +
            "' has no closed-form angle model (beta's non-zero-mean law "
            "breaks the near-identity expansion); drop it or use the "
            "Monte-Carlo `variance` subcommand");
      }
      initializers.push_back(name);
    }
    QBARREN_REQUIRE(!initializers.empty(),
                    "--init needs at least one initializer name");
  } else {
    initializers = {"random", "xavier-normal", "xavier-uniform",
                    "he",     "lecun",         "orthogonal"};
  }
  // Ensemble cap: the prediction averages over the same circuit
  // structures the Monte-Carlo cell would sample; 32 is converged (the
  // spread across structures is small next to the decade-scale bands).
  const auto structures =
      static_cast<std::size_t>(args.get_int("structures", 32));

  if (args.get_bool("conformance", false)) {
    ResilientRun resilient(args, options_fingerprint(options));
    const auto batch = scoped_batch_limit(args, options.gradient_engine);
    const ConformanceReport report =
        predict_conformance(options, initializers, default_conformance_bands(),
                            {}, resilient.control);
    std::printf("%s\n%s", report.table().to_ascii().c_str(),
                report.slope_table().to_ascii().c_str());
    std::printf("ordering %s, tolerance bands %s\n",
                report.ordering_ok ? "ok" : "BROKEN",
                report.all_within ? "ok" : "EXCEEDED");
    if (args.has("json")) {
      const std::string path = args.get_string("json", "conformance.json");
      write_json_file(report.to_json(), path);
      std::printf("wrote %s\n", path.c_str());
    }
    return report.ok() ? kExitOk : kExitFailure;
  }

  const PredictionGrid grid =
      predict_variance_grid(options, initializers, {}, structures);
  std::printf("%s\n%s", grid.variance_table().to_ascii().c_str(),
              grid.decay_table().to_ascii().c_str());
  if (args.has("json")) {
    const std::string path = args.get_string("json", "predict.json");
    write_json_file(to_json(grid), path);
    std::printf("wrote %s\n", path.c_str());
  }
  return kExitOk;
}

int cmd_lint(const CliArgs& args) {
  if (args.has("rules")) {
    std::printf("%s", lint_rule_table().to_ascii().c_str());
    return 0;
  }

  Circuit circuit(1);
  CircuitLintContext context;
  if (args.has("qasm")) {
    const std::string path = args.get_string("qasm", "");
    std::ifstream in(path, std::ios::binary);
    QBARREN_REQUIRE(in.good(), "lint: cannot open QASM file '" + path + "'");
    std::ostringstream text;
    text << in.rdbuf();
    circuit = parse_qasm(text.str()).circuit;
  } else {
    const std::string ansatz = args.get_string("ansatz", "");
    QBARREN_REQUIRE(!ansatz.empty(),
                    "lint needs --qasm <file> or --ansatz "
                    "variance|training|motivational (or --rules)");
    const auto qubits = static_cast<std::size_t>(args.get_int("qubits", 10));
    if (ansatz == "variance") {
      const auto layers =
          static_cast<std::size_t>(args.get_int("layers", 100));
      Rng rng(args.get_uint("seed", 42));
      VarianceAnsatzOptions options;
      options.layers = layers;
      circuit = variance_ansatz(qubits, rng, options);
    } else if (ansatz == "training") {
      TrainingAnsatzOptions options;
      options.layers = static_cast<std::size_t>(args.get_int("layers", 5));
      circuit = training_ansatz(qubits, options);
    } else if (ansatz == "motivational") {
      circuit = motivational_ansatz(
          qubits, static_cast<std::size_t>(args.get_int("layers", 100)));
    } else {
      throw InvalidArgument(
          "--ansatz must be variance, training, or motivational");
    }
  }

  // Usage context: what the circuit would be measured with (and, for the
  // variance protocol, which parameter it differentiates).
  if (args.has("cost")) {
    const CostKind cost = cost_kind_from_name(args.get_string("cost", ""));
    context.observable_qubits =
        cost_observable_qubits(cost, circuit.num_qubits());
    context.global_cost = is_global_cost(cost);
    if (args.has("param") && circuit.num_parameters() > 0) {
      const std::string which = args.get_string("param", "last");
      if (which == "last") {
        context.differentiated_parameter = circuit.num_parameters() - 1;
      } else if (which == "middle") {
        context.differentiated_parameter = circuit.num_parameters() / 2;
      } else if (which == "first") {
        context.differentiated_parameter = 0;
      } else {
        throw InvalidArgument("--param must be last, middle, or first");
      }
    }
  }

  Diagnostics diagnostics = lint_circuit(circuit, context);
  if (args.get_bool("verify-plan", false)) {
    // verify-plan mode: lower the circuit and statically verify the
    // compiled plan against it (QP1xx findings join the QB report).
    Diagnostics plan_findings = verify_circuit_lowering(circuit);
    diagnostics.insert(diagnostics.end(),
                       std::make_move_iterator(plan_findings.begin()),
                       std::make_move_iterator(plan_findings.end()));
  }
  const std::string format = args.get_string("format", "table");
  if (format == "json") {
    std::printf("%s\n", to_json(diagnostics).dump(2).c_str());
  } else if (format == "table") {
    if (diagnostics.empty()) {
      std::printf("no findings\n");
    } else {
      std::printf("%s", diagnostics_table(diagnostics).to_ascii().c_str());
    }
  } else {
    throw InvalidArgument("--format must be table or json");
  }
  return has_errors(diagnostics) ? kExitFailure : kExitOk;
}

/// Renders a diagnostics report (table or round-trippable JSON) and maps
/// it to the process exit code — shared by `audit` and `fsck`.
int report_diagnostics(const CliArgs& args, const Diagnostics& diagnostics) {
  const std::string format = args.get_string("format", "table");
  if (format == "json") {
    std::printf("%s\n", to_json(diagnostics).dump(2).c_str());
  } else if (format == "table") {
    if (diagnostics.empty()) {
      std::printf("no findings\n");
    } else {
      std::printf("%s", diagnostics_table(diagnostics).to_ascii().c_str());
    }
  } else {
    throw InvalidArgument("--format must be table or json");
  }
  return has_errors(diagnostics) ? kExitFailure : kExitOk;
}

/// Comma-separated uint64 list ("--rep-seeds 7,7,9"); seeds exceed int
/// range, so get_int_list is not usable here.
std::vector<std::uint64_t> parse_seed_list(const std::string& text) {
  std::vector<std::uint64_t> seeds;
  std::stringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) {
    QBARREN_REQUIRE(!item.empty(), "--rep-seeds: empty list entry");
    seeds.push_back(std::stoull(item));
  }
  QBARREN_REQUIRE(!seeds.empty(), "--rep-seeds needs at least one seed");
  return seeds;
}

serve::RequestSpec request_spec_from_file(const std::string& path) {
  std::string text;
  if (path == "-") {
    text = read_stream(std::cin);
  } else {
    std::ifstream in(path, std::ios::binary);
    QBARREN_REQUIRE(in.good(), "cannot open request file '" + path + "'");
    text = read_stream(in);
  }
  return serve::request_from_json(parse_json(text));
}

/// Per-repetition training graphs for an explicit root-seed list — models
/// a hand-rolled sweep (scripted seeds instead of the derived ladder) so
/// `audit` can prove or refute its independence claim.
std::vector<StreamGraph> hand_rolled_sweep_graphs(
    const TrainingExperimentOptions& base,
    const std::vector<std::uint64_t>& seeds) {
  std::vector<StreamGraph> graphs;
  for (std::size_t rep = 0; rep < seeds.size(); ++rep) {
    TrainingExperimentOptions rep_options = base;
    rep_options.seed = seeds[rep];
    graphs.push_back(
        training_stream_graph(rep_options, "rep=" + std::to_string(rep)));
  }
  return graphs;
}

int cmd_audit(const CliArgs& args) {
  if (args.has("rules")) {
    std::printf("%s", determinism_rule_table().to_ascii().c_str());
    return 0;
  }

  // Serve request mode: one file audits that request (stream graph +
  // fingerprint/wire probes); several files additionally check QD101
  // across them — requests submitted as independent must not share roots.
  if (args.has("request") || !args.positional().empty()) {
    std::vector<serve::RequestSpec> specs;
    if (args.has("request")) {
      specs.push_back(request_spec_from_file(args.get_string("request", "")));
    }
    for (const std::string& path : args.positional()) {
      specs.push_back(request_spec_from_file(path));
    }
    return report_diagnostics(args, specs.size() == 1
                                        ? serve::audit_request(specs.front())
                                        : serve::audit_requests(specs));
  }

  const std::string kind = args.get_string("kind", "variance");
  if (kind == "variance") {
    return report_diagnostics(args,
                              audit_variance_options(variance_options_from(args)));
  }
  if (kind == "training") {
    return report_diagnostics(args,
                              audit_training_options(training_options_from(args)));
  }
  if (kind == "sweep") {
    const TrainingExperimentOptions base = training_options_from(args);
    if (args.has("rep-seeds")) {
      const auto seeds = parse_seed_list(args.get_string("rep-seeds", ""));
      return report_diagnostics(
          args, audit_stream_graphs(hand_rolled_sweep_graphs(base, seeds)));
    }
    TrainingSweepOptions options;
    options.base = base;
    options.repetitions =
        static_cast<std::size_t>(args.get_int("repetitions", 5));
    return report_diagnostics(args, audit_sweep_options(options));
  }
  throw InvalidArgument("--kind must be variance, training, or sweep");
}

int cmd_fsck(const CliArgs& args) {
  QBARREN_REQUIRE(!args.positional().empty(),
                  "fsck needs a store path: qbarren fsck <store> "
                  "[--fingerprint <fp> | --request <file> [--cache] | "
                  "--kind variance|training|sweep ...]");
  const std::string store = args.positional().front();

  StoreAuditOptions expectations;
  if (args.has("request")) {
    expectations = serve::store_expectations(
        request_spec_from_file(args.get_string("request", "")),
        args.get_bool("cache", false));
  } else if (args.has("fingerprint")) {
    expectations.expected_fingerprint = args.get_string("fingerprint", "");
  } else if (args.has("kind")) {
    // Expectations derived from the same experiment flags the runner
    // takes: fingerprint + the stream-graph cell enumeration, so fsck and
    // a --resume of the run agree on what the store may contain.
    const std::string kind = args.get_string("kind", "");
    std::vector<StreamGraph> graphs;
    if (kind == "variance") {
      const VarianceExperimentOptions options = variance_options_from(args);
      expectations.expected_fingerprint = options_fingerprint(options);
      graphs.push_back(variance_stream_graph(options));
    } else if (kind == "training") {
      const TrainingExperimentOptions options = training_options_from(args);
      expectations.expected_fingerprint = options_fingerprint(options);
      graphs.push_back(training_stream_graph(options));
    } else if (kind == "sweep") {
      TrainingSweepOptions options;
      options.base = training_options_from(args);
      options.repetitions =
          static_cast<std::size_t>(args.get_int("repetitions", 5));
      expectations.expected_fingerprint = options_fingerprint(options);
      graphs = sweep_stream_graphs(options);
    } else {
      throw InvalidArgument("--kind must be variance, training, or sweep");
    }
    for (const StreamGraph& graph : graphs) {
      expectations.expected_cells.insert(expectations.expected_cells.end(),
                                         graph.cells.begin(),
                                         graph.cells.end());
    }
  }

  const Diagnostics diagnostics = audit_store(store, expectations);
  const int code = report_diagnostics(args, diagnostics);
  if (code == kExitOk && args.get_string("format", "table") == "table") {
    std::printf("%s: clean\n", store.c_str());
  }
  return code;
}

void print_help() {
  std::printf(
      "qbarren %s — barren-plateau experiments\n"
      "subcommands: variance | train | sweep | landscape | express | "
      "lightcone | predict | lint | audit | fsck | serve | submit\n"
      "predict evaluates the closed-form 2-design gradient-variance model\n"
      "over the Fig 5a grid with zero simulation (--init to select\n"
      "initializers; beta is refused — no closed-form law). --conformance\n"
      "also runs the Monte-Carlo pipeline and checks each cell against\n"
      "the committed decade bands, exiting 1 on drift.\n"
      "audit statically verifies RNG stream independence and fingerprint\n"
      "soundness (rules QD100-QD103): --kind variance|training|sweep with\n"
      "the runner's flags, --rep-seeds s1,s2,... to check a hand-rolled\n"
      "sweep, or serve request files (--request <file|-> / positionals;\n"
      "several files also check cross-request seed aliasing). --rules\n"
      "lists the QD family. fsck <store> audits a checkpoint/result-cache\n"
      "file at rest (QD110-QD115: torn records, duplicates, version skew,\n"
      "foreign fingerprints, orphan cells) against --fingerprint <fp>,\n"
      "--request <file> [--cache], or the same --kind flags the runner\n"
      "takes. Both accept --format table|json and exit 1 on any\n"
      "error-severity finding. serve runs the same QD audit at admission.\n"
      "serve runs the process-isolated experiment service: NDJSON\n"
      "requests over a Unix socket (--socket) or a single request with\n"
      "--once <file|->; submit sends a request and streams the events.\n"
      "exit codes: 0 ok, 1 failure, 3 admission-rejected/backpressure,\n"
      "4 worker-crash-budget, 130 interrupted.\n"
      "lint statically analyzes a circuit (--qasm <file> or --ansatz\n"
      "variance|training|motivational; --rules lists rules QB001-QB011\n"
      "and QN120;\n"
      "--verify-plan also verifies the compiled execution plan, QP1xx);\n"
      "variance/train/sweep accept --lint=off|warn|error (default warn)\n"
      "to gate the launch on the same analysis, and --verify-plans to\n"
      "statically verify every compiled plan on first attach (results\n"
      "are byte-identical to an unverified run).\n"
      "long runs accept --checkpoint <file> [--resume]; train/sweep also\n"
      "accept --deadline-sec <s> and --nonfinite throw|abort|fallback.\n"
      "variance/train/sweep run cells in parallel: --jobs <n> (0 = all\n"
      "cores), --cell-timeout-sec <s>, --max-cell-failures <k>,\n"
      "--cell-retries <r>; results are identical at any --jobs value.\n"
      "variance/train/sweep/landscape accept --batch <B>|auto: evaluate\n"
      "up to B\n"
      "parameter bindings per kernel dispatch (auto picks the width);\n"
      "batched runs are byte-identical to serial ones, and --batch\n"
      "composes with --jobs (lanes batch within a cell, cells fan out\n"
      "across threads). An explicit --batch >= 2 is rejected with\n"
      "--engine adjoint, which has no shifted bindings to batch.\n"
      "see the header of examples/qbarren_cli.cpp for per-command "
      "options.\n",
      kVersionString);
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc < 2) {
      print_help();
      return 0;
    }
    const std::string command = argv[1];
    const CliArgs args(argc - 1, argv + 1);
    if (command == "variance") return cmd_variance(args);
    if (command == "train") return cmd_train(args);
    if (command == "sweep") return cmd_sweep(args);
    if (command == "landscape") return cmd_landscape(args);
    if (command == "express") return cmd_express(args);
    if (command == "lightcone") return cmd_lightcone(args);
    if (command == "predict") return cmd_predict(args);
    if (command == "lint") return cmd_lint(args);
    if (command == "audit") return cmd_audit(args);
    if (command == "fsck") return cmd_fsck(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "worker") return qbarren::serve::worker_main(0, 1);
    if (command == "submit") return cmd_submit(args);
    print_help();
    std::fprintf(stderr, "error: unknown subcommand '%s'\n",
                 command.c_str());
    return qbarren::kExitFailure;
  } catch (const qbarren::PlanVerificationError& e) {
    // A compiled plan failed static verification: a miscompile (or a
    // corrupted plan) would poison every figure, so the run aborts before
    // using it. The findings name the exact inconsistency.
    std::fprintf(stderr, "error: %s\n%s", e.what(),
                 qbarren::diagnostics_table(e.diagnostics())
                     .to_ascii()
                     .c_str());
    return qbarren::kExitFailure;
  } catch (const qbarren::Cancelled& e) {
    // Completed checkpoint cells were flushed before this propagated;
    // rerun with --resume to finish. kExitInterrupted matches the shell
    // convention for SIGINT termination.
    std::fprintf(stderr,
                 "interrupted: %s\n"
                 "rerun with the same options plus --resume to continue\n",
                 e.what());
    return qbarren::kExitInterrupted;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return qbarren::kExitFailure;
  }
}
